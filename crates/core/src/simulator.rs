//! The high-level APIM simulator facade.

use apim_arch::{
    AdaptiveController, ApimConfig, ApimCost, ArchError, Comparison, Executor, TuneOutcome,
};
use apim_baselines::{CostReport, GpuModel, GpuParams};
use apim_crossbar::{CrossbarError, HotSpot};
use apim_logic::error_analysis::SplitMix64;
use apim_logic::multiplier::CrossbarMultiplier;
use apim_logic::{functional, CostModel, PrecisionMode};
use apim_workloads::{run_app, App, QualityReport, RunConfig};

use apim_device::EnergyDelayProduct;

use std::error::Error;
use std::fmt;

/// Top-level error type of the facade.
#[derive(Debug, Clone, PartialEq)]
pub enum ApimError {
    /// An architecture-layer error (configuration, capacity).
    Arch(ArchError),
    /// A crossbar-layer error (gate-level simulation).
    Crossbar(CrossbarError),
    /// An execution runtime (e.g. the `apim-serve` pool) reported a
    /// failure it could not recover by retrying.
    Runtime(String),
}

impl fmt::Display for ApimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApimError::Arch(e) => write!(f, "{e}"),
            ApimError::Crossbar(e) => write!(f, "{e}"),
            ApimError::Runtime(msg) => write!(f, "runtime failure: {msg}"),
        }
    }
}

impl Error for ApimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ApimError::Arch(e) => Some(e),
            ApimError::Crossbar(e) => Some(e),
            ApimError::Runtime(_) => None,
        }
    }
}

impl From<ArchError> for ApimError {
    fn from(e: ArchError) -> Self {
        ApimError::Arch(e)
    }
}

impl From<CrossbarError> for ApimError {
    fn from(e: CrossbarError) -> Self {
        ApimError::Crossbar(e)
    }
}

/// Verdict of a gate-level self-test ([`Apim::self_test`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTestReport {
    /// Multiplications executed.
    pub samples: u32,
    /// Results that disagreed with the functional reference (0 = healthy).
    pub mismatches: u32,
    /// Wear absorbed by the hottest cell during the test.
    pub max_cell_writes: u64,
    /// The most-written cells, hottest first, so endurance pressure can be
    /// localised to concrete wordlines rather than just flagged.
    pub hotspots: Vec<HotSpot>,
}

impl SelfTestReport {
    /// Whether the device passed (no mismatches).
    pub fn passed(&self) -> bool {
        self.mismatches == 0
    }
}

/// Result of one multiplication on APIM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MulReport {
    /// The (possibly approximate) product, bit-exact in-memory semantics.
    pub product: u128,
    /// Modeled cost of the multiplication.
    pub cost: apim_logic::OpCost,
    /// Energy-delay product.
    pub edp: EnergyDelayProduct,
}

/// Result of one application run compared against the GPU baseline.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The application.
    pub app: App,
    /// Dataset size, bytes.
    pub dataset_bytes: u64,
    /// Precision mode used.
    pub mode: PrecisionMode,
    /// APIM cost.
    pub apim: ApimCost,
    /// GPU baseline cost.
    pub gpu: CostReport,
    /// APIM-vs-GPU ratios (the paper's "improvement ×" numbers).
    pub comparison: Comparison,
    /// Output quality vs the golden (exact) run.
    pub quality: QualityReport,
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>7} MB [{}]: {} | QoL {:.2}%",
            self.app.name(),
            self.dataset_bytes >> 20,
            self.mode,
            self.comparison,
            self.quality.qol_percent
        )
    }
}

/// The APIM system simulator: device + executor + baseline in one handle.
///
/// See the [crate docs](crate) for a quickstart.
#[derive(Debug, Clone)]
pub struct Apim {
    executor: Executor,
    gpu: GpuModel,
}

impl Apim {
    /// Builds a simulator for the given device configuration with the
    /// calibrated GPU baseline.
    ///
    /// # Errors
    ///
    /// Returns [`ApimError::Arch`] for invalid configurations.
    pub fn new(config: ApimConfig) -> Result<Self, ApimError> {
        Ok(Apim {
            executor: Executor::new(config)?,
            gpu: GpuModel::new(GpuParams::r9_390()),
        })
    }

    /// Replaces the GPU baseline parameters.
    pub fn with_gpu(mut self, gpu: GpuModel) -> Self {
        self.gpu = gpu;
        self
    }

    /// The device configuration.
    pub fn config(&self) -> &ApimConfig {
        self.executor.config()
    }

    /// The cost executor.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The GPU baseline model.
    pub fn gpu(&self) -> &GpuModel {
        &self.gpu
    }

    /// The analytic cost model.
    pub fn cost_model(&self) -> &CostModel {
        self.executor.cost_model()
    }

    /// Multiplies two values with bit-exact APIM semantics under `mode`,
    /// reporting the modeled cost of the in-memory execution.
    ///
    /// Operand width comes from the configuration (32 bits by default).
    pub fn multiply(&self, a: u64, b: u64, mode: PrecisionMode) -> MulReport {
        let n = self.config().operand_bits;
        let product = functional::multiply(a, b, n, mode);
        let cost = self.cost_model().multiply(n, b, mode);
        MulReport {
            product,
            cost,
            edp: self.cost_model().edp(cost),
        }
    }

    /// Runs an application over a resident dataset under the configured
    /// precision mode; costs come from the analytic executor, quality from
    /// an actual (sampled) kernel execution with bit-exact approximate
    /// arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`ApimError::Arch`] if the dataset exceeds device capacity.
    pub fn run(&self, app: App, dataset_bytes: u64) -> Result<RunReport, ApimError> {
        self.run_with_mode(app, dataset_bytes, self.config().mode)
    }

    /// [`Apim::run`] with an explicit precision mode.
    ///
    /// # Errors
    ///
    /// Returns [`ApimError::Arch`] if the dataset exceeds device capacity.
    pub fn run_with_mode(
        &self,
        app: App,
        dataset_bytes: u64,
        mode: PrecisionMode,
    ) -> Result<RunReport, ApimError> {
        let profile = crate::profile_of(app);
        let apim = self
            .executor
            .run_profile_with_mode(&profile, dataset_bytes, mode)?;
        let gpu = self.gpu.run(&profile, dataset_bytes);
        let comparison = Comparison::against(&apim, gpu.time, gpu.energy);
        let quality = run_app(
            app,
            &RunConfig {
                mode,
                ..RunConfig::default()
            },
        )
        .quality;
        Ok(RunReport {
            app,
            dataset_bytes,
            mode,
            apim,
            gpu,
            comparison,
            quality,
        })
    }

    /// Multiplies a batch of independent pairs, returning the per-pair
    /// reports plus the batch's parallel cost (pairs schedule across the
    /// configured processing-block pairs; energy sums, latency is the
    /// parallel makespan).
    pub fn multiply_batch(
        &self,
        pairs: &[(u64, u64)],
        mode: PrecisionMode,
    ) -> (Vec<MulReport>, ApimCost) {
        let reports: Vec<MulReport> = pairs
            .iter()
            .map(|&(a, b)| self.multiply(a, b, mode))
            .collect();
        let n = self.config().operand_bits;
        let mut trace = apim_arch::Trace::new();
        for &(_, b) in pairs {
            trace.push(apim_arch::Op::Mul {
                bits: n,
                multiplier_ones: Some(
                    functional::partial_product_shifts(b, mode.masked_multiplier_bits()).len()
                        as u32,
                ),
                mode,
            });
        }
        let cost = self.executor.run_trace(&trace);
        (reports, cost)
    }

    /// Runs a gate-level self-test: `samples` random multiplications are
    /// executed on a simulated crossbar (16-bit operands, the configured
    /// device parameters) across precision modes and checked bit-for-bit
    /// against the functional reference. A healthy device reports zero
    /// mismatches; injected faults (or corrupted device parameters) show up
    /// here — the production health check for a PIM DIMM.
    ///
    /// # Errors
    ///
    /// Propagates crossbar construction/execution failures (which are
    /// themselves a self-test verdict: e.g. a stuck-at-0 output cell
    /// surfaces as `UninitializedOutput`).
    pub fn self_test(&self, samples: u32, seed: u64) -> Result<SelfTestReport, ApimError> {
        let mut mul = CrossbarMultiplier::new(16, &self.config().params)?;
        let mut rng = SplitMix64::new(seed);
        let mut mismatches = 0;
        for i in 0..samples {
            let a = rng.next_bits(16);
            let b = rng.next_bits(16);
            let mode = match i % 3 {
                0 => PrecisionMode::Exact,
                1 => PrecisionMode::LastStage {
                    relax_bits: (rng.next_bits(5) as u8).min(31),
                },
                _ => PrecisionMode::FirstStage {
                    masked_bits: (rng.next_bits(4) as u8).min(15),
                },
            };
            let run = mul.multiply(a, b, mode)?;
            if run.product != functional::multiply(a, b, 16, mode) {
                mismatches += 1;
            }
        }
        Ok(SelfTestReport {
            samples,
            mismatches,
            max_cell_writes: mul.crossbar().max_cell_writes(),
            hotspots: mul.crossbar().hotspots(3),
        })
    }

    /// Runs the paper's adaptive QoS loop (§4.1) for an application:
    /// starting at 32 relax bits and stepping accuracy up by 4 bits until
    /// the application's acceptance criterion holds on a sampled run.
    pub fn tune(&self, app: App) -> TuneOutcome {
        AdaptiveController::paper().tune(|mode| {
            run_app(
                app,
                &RunConfig {
                    mode,
                    ..RunConfig::default()
                },
            )
            .quality
            .acceptable
        })
    }
}

impl Default for Apim {
    fn default() -> Self {
        Apim::new(ApimConfig::default()).expect("default config is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apim() -> Apim {
        Apim::default()
    }

    #[test]
    fn multiply_exact_matches_native() {
        let r = apim().multiply(123_456_789, 987_654_321, PrecisionMode::Exact);
        assert_eq!(r.product, 123_456_789u128 * 987_654_321);
        assert!(r.cost.cycles.get() > 0);
        assert!(r.edp.as_joule_seconds() > 0.0);
    }

    #[test]
    fn multiply_relaxed_bounds_error() {
        let r = apim().multiply(
            3_000_000_000,
            2_500_000_000,
            PrecisionMode::LastStage { relax_bits: 16 },
        );
        let exact = 3_000_000_000u128 * 2_500_000_000;
        assert!(r.product.abs_diff(exact) < 1 << 16);
    }

    #[test]
    fn run_reports_are_complete() {
        let report = apim().run(App::Robert, 128 << 20).unwrap();
        assert_eq!(report.app, App::Robert);
        assert!(report.apim.time.as_secs() > 0.0);
        assert!(report.gpu.time.as_secs() > 0.0);
        assert!(report.quality.acceptable, "exact mode is lossless");
        assert!(!report.to_string().is_empty());
    }

    #[test]
    fn oversized_dataset_errors() {
        let err = apim().run(App::Fft, 1 << 40).unwrap_err();
        assert!(matches!(
            err,
            ApimError::Arch(ArchError::DatasetTooLarge { .. })
        ));
    }

    #[test]
    fn tuning_finds_nontrivial_relaxation() {
        for app in [App::Sobel, App::DwtHaar1d] {
            let outcome = apim().tune(app);
            assert!(
                outcome.mode.relaxed_product_bits() >= 4,
                "{app}: every app tolerates some relaxation, got {:?}",
                outcome
            );
        }
    }

    #[test]
    fn batch_multiply_parallelizes() {
        let apim = apim();
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (1000 + i, 2000 + i)).collect();
        let (reports, cost) = apim.multiply_batch(&pairs, PrecisionMode::Exact);
        assert_eq!(reports.len(), 100);
        for (r, &(a, b)) in reports.iter().zip(&pairs) {
            assert_eq!(r.product, u128::from(a) * u128::from(b));
        }
        // 100 independent multiplies over 2048 units: latency is bounded by
        // the slowest single multiply, while energy sums.
        let max_single = reports.iter().map(|r| r.cost.cycles).max().unwrap();
        assert_eq!(cost.cycles, max_single);
        let sum_energy: f64 = reports.iter().map(|r| r.cost.energy.as_joules()).sum();
        assert!((cost.energy.as_joules() - sum_energy).abs() < 1e-9 * sum_energy);
    }

    #[test]
    fn self_test_passes_on_a_healthy_device() {
        let report = apim().self_test(12, 0xBEEF).unwrap();
        assert!(report.passed(), "{report:?}");
        assert_eq!(report.samples, 12);
        assert!(report.max_cell_writes > 0);
        // The top hotspot is by definition the hottest cell.
        assert_eq!(report.hotspots.len(), 3);
        assert_eq!(report.hotspots[0].writes, report.max_cell_writes);
        assert!(report.hotspots[0].writes >= report.hotspots[2].writes);
    }

    #[test]
    fn error_type_converts() {
        let arch_err: ApimError = ArchError::InvalidConfig("x".into()).into();
        assert!(arch_err.to_string().contains("x"));
        let xbar_err: ApimError = CrossbarError::InputsSpanBlocks.into();
        assert!(xbar_err.source().is_some());
    }
}
