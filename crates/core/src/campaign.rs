//! Structured experiment campaigns: sweep applications × dataset sizes ×
//! precision modes in one call and get a flat, CSV-exportable result
//! table.
//!
//! The bench harness regenerates the paper's exact exhibits; `Campaign` is
//! the general tool for everything else — custom sweeps, new operating
//! points, sensitivity studies.
//!
//! ```
//! use apim::campaign::Campaign;
//! use apim::{App, PrecisionMode};
//!
//! # fn main() -> Result<(), apim::ApimError> {
//! let results = Campaign::new()
//!     .apps([App::Sobel, App::Fft])
//!     .dataset_mb([256, 1024])
//!     .modes([PrecisionMode::Exact, PrecisionMode::LastStage { relax_bits: 8 }])
//!     .run()?;
//! assert_eq!(results.rows().len(), 8);
//! # Ok(())
//! # }
//! ```

use crate::simulator::{Apim, ApimError, RunReport};
use crate::{ApimConfig, App, PrecisionMode};
use std::fmt::Write as _;

/// A declarative sweep over applications, dataset sizes and precision
/// modes.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: ApimConfig,
    apps: Vec<App>,
    dataset_bytes: Vec<u64>,
    modes: Vec<PrecisionMode>,
}

impl Campaign {
    /// A campaign with the default device, all six applications, the
    /// paper's 1 GB operating point and exact mode.
    pub fn new() -> Self {
        Campaign {
            config: ApimConfig::default(),
            apps: App::all().to_vec(),
            dataset_bytes: vec![1 << 30],
            modes: vec![PrecisionMode::Exact],
        }
    }

    /// Replaces the device configuration.
    pub fn config(mut self, config: ApimConfig) -> Self {
        self.config = config;
        self
    }

    /// Restricts the applications.
    pub fn apps(mut self, apps: impl IntoIterator<Item = App>) -> Self {
        self.apps = apps.into_iter().collect();
        self
    }

    /// Sets the dataset sizes, in MiB.
    pub fn dataset_mb(mut self, mb: impl IntoIterator<Item = u64>) -> Self {
        self.dataset_bytes = mb.into_iter().map(|m| m << 20).collect();
        self
    }

    /// Sets the precision modes.
    pub fn modes(mut self, modes: impl IntoIterator<Item = PrecisionMode>) -> Self {
        self.modes = modes.into_iter().collect();
        self
    }

    /// The sweep's cross product as `(app, dataset_bytes, mode)` tuples,
    /// in row order (app-major, then size, then mode).
    pub fn jobs(&self) -> Vec<(App, u64, PrecisionMode)> {
        let mut jobs =
            Vec::with_capacity(self.apps.len() * self.dataset_bytes.len() * self.modes.len());
        for &app in &self.apps {
            for &bytes in &self.dataset_bytes {
                for &mode in &self.modes {
                    jobs.push((app, bytes, mode));
                }
            }
        }
        jobs
    }

    /// Runs the full cross product.
    ///
    /// # Errors
    ///
    /// Returns the first simulator error (invalid configuration, oversized
    /// dataset).
    pub fn run(self) -> Result<CampaignResults, ApimError> {
        let jobs = self.jobs();
        let apim = Apim::new(self.config)?;
        let rows = jobs
            .into_iter()
            .map(|(app, bytes, mode)| apim.run_with_mode(app, bytes, mode))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignResults { rows })
    }

    /// Runs the full cross product on a parallel backend (the `apim-serve`
    /// worker pool implements [`CampaignExecutor`]). Row order and values
    /// are identical to [`Campaign::run`] — the backend only changes the
    /// wall-clock time.
    ///
    /// # Errors
    ///
    /// Returns the first simulator or runtime error.
    pub fn run_parallel<E: CampaignExecutor>(
        self,
        executor: &E,
    ) -> Result<CampaignResults, ApimError> {
        let jobs = self.jobs();
        let rows = executor.run_campaign(&self.config, &jobs)?;
        Ok(CampaignResults { rows })
    }
}

/// A backend able to execute a campaign's job list in parallel. The sole
/// in-tree implementation is `apim_serve::Pool`, which shards simulator
/// instances across worker threads; the contract is strict: one
/// [`RunReport`] per job, in job order, identical to what the serial path
/// produces.
pub trait CampaignExecutor {
    /// Executes every `(app, dataset_bytes, mode)` job under `config`,
    /// returning reports in job order.
    ///
    /// # Errors
    ///
    /// Returns the first configuration or execution error.
    fn run_campaign(
        &self,
        config: &ApimConfig,
        jobs: &[(App, u64, PrecisionMode)],
    ) -> Result<Vec<RunReport>, ApimError>;
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign::new()
    }
}

/// The flat result table of a [`Campaign`].
#[derive(Debug, Clone)]
pub struct CampaignResults {
    rows: Vec<RunReport>,
}

impl CampaignResults {
    /// All runs, in sweep order (app-major, then size, then mode).
    pub fn rows(&self) -> &[RunReport] {
        &self.rows
    }

    /// The run maximizing GPU-normalized EDP improvement.
    pub fn best_edp(&self) -> Option<&RunReport> {
        self.rows.iter().max_by(|a, b| {
            a.comparison
                .edp_improvement
                .total_cmp(&b.comparison.edp_improvement)
        })
    }

    /// Only the runs that meet their application's QoS criterion.
    pub fn acceptable(&self) -> impl Iterator<Item = &RunReport> {
        self.rows.iter().filter(|r| r.quality.acceptable)
    }

    /// CSV export:
    /// `app,dataset_mb,mode,speedup,energy_improvement,edp_improvement,qol_percent,acceptable`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "app,dataset_mb,mode,speedup,energy_improvement,edp_improvement,qol_percent,acceptable\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                r.app.name(),
                r.dataset_bytes >> 20,
                r.mode,
                r.comparison.speedup,
                r.comparison.energy_improvement,
                r.comparison.edp_improvement,
                r.quality.qol_percent,
                r.quality.acceptable
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_campaign_covers_all_apps_at_1gb() {
        let results = Campaign::new().run().unwrap();
        assert_eq!(results.rows().len(), 6);
        assert!(results.acceptable().count() == 6, "exact mode is lossless");
        let best = results.best_edp().unwrap();
        assert!(best.comparison.edp_improvement > 100.0);
    }

    #[test]
    fn cross_product_dimensions() {
        let results = Campaign::new()
            .apps([App::Robert])
            .dataset_mb([64, 256, 1024])
            .modes([
                PrecisionMode::Exact,
                PrecisionMode::LastStage { relax_bits: 16 },
            ])
            .run()
            .unwrap();
        assert_eq!(results.rows().len(), 6);
    }

    #[test]
    fn csv_has_one_line_per_run_plus_header() {
        let results = Campaign::new()
            .apps([App::QuasiRandom])
            .dataset_mb([128])
            .modes([PrecisionMode::Exact])
            .run()
            .unwrap();
        let csv = results.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("QuasiR,128,exact,"));
    }

    #[test]
    fn oversized_sweep_errors_cleanly() {
        let err = Campaign::new().dataset_mb([1 << 20]).run().unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn acceptable_filters_by_qos() {
        let results = Campaign::new()
            .apps([App::Fft])
            .dataset_mb([64])
            .modes([
                PrecisionMode::Exact,
                PrecisionMode::LastStage { relax_bits: 32 },
            ])
            .run()
            .unwrap();
        // Exact passes; 32 relax bits destroys FFT quality.
        assert_eq!(results.acceptable().count(), 1);
    }
}
