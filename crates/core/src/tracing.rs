//! Kernel tracing: record the *actual* controller-level operations a
//! kernel performs and cost them exactly.
//!
//! The executor's profile path ([`crate::Apim::run`]) costs applications
//! from static per-byte estimates; [`TracingArith`] instead wraps the
//! approximate arithmetic backend and emits one [`apim_arch::Op`] per
//! operation — including each multiplication's true partial-product count,
//! which the §3.3 sense-amplifier scheme makes cost-relevant. Feed the
//! trace to [`apim_arch::Executor::run_trace`] for an exact cost of the
//! recorded kernel.
//!
//! ```
//! use apim::tracing::TracingArith;
//! use apim::{Apim, PrecisionMode};
//! use apim_workloads::{sobel, image::synthetic_image};
//!
//! let apim = Apim::default();
//! let mut arith = TracingArith::new(PrecisionMode::Exact);
//! let img = synthetic_image(16, 16, 1);
//! sobel::sobel(&img, &mut arith);
//! let cost = apim.executor().run_trace(arith.trace());
//! assert!(cost.energy.as_joules() > 0.0);
//! ```

use apim_arch::{Op, Trace};
use apim_logic::functional::{multiply_signed, partial_product_shifts};
use apim_logic::PrecisionMode;
use apim_workloads::{Arith, OpCounts};

/// An [`Arith`] backend that computes with bit-exact APIM semantics *and*
/// records the operation trace.
#[derive(Debug, Clone)]
pub struct TracingArith {
    mode: PrecisionMode,
    bits: u32,
    counts: OpCounts,
    trace: Trace,
}

impl TracingArith {
    /// A tracing backend at the given precision (32-bit operands).
    pub fn new(mode: PrecisionMode) -> Self {
        TracingArith {
            mode,
            bits: 32,
            counts: OpCounts::default(),
            trace: Trace::new(),
        }
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the backend, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The precision mode in force.
    pub fn mode(&self) -> PrecisionMode {
        self.mode
    }
}

impl Arith for TracingArith {
    fn mul(&mut self, a: i32, b: i32) -> i64 {
        self.counts.muls += 1;
        let ones =
            partial_product_shifts(b.unsigned_abs().into(), self.mode.masked_multiplier_bits())
                .len() as u32;
        self.trace.push(Op::Mul {
            bits: self.bits,
            multiplier_ones: Some(ones),
            mode: self.mode,
        });
        multiply_signed(i64::from(a), i64::from(b), self.bits, self.mode) as i64
    }

    fn add(&mut self, a: i64, b: i64) -> i64 {
        self.counts.adds += 1;
        self.trace.push(Op::Add { bits: self.bits });
        a + b
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Apim;
    use apim_workloads::image::synthetic_image;
    use apim_workloads::robert::robert;
    use apim_workloads::ApimArith;

    #[test]
    fn trace_length_matches_op_counts() {
        let mut arith = TracingArith::new(PrecisionMode::Exact);
        let img = synthetic_image(12, 12, 3);
        robert(&img, &mut arith);
        let counts = arith.counts();
        assert_eq!(
            arith.trace().len() as u64,
            counts.muls + counts.adds,
            "one op per recorded operation"
        );
        assert!(counts.muls > 0);
    }

    #[test]
    fn traced_values_match_untraced_backend() {
        let mode = PrecisionMode::LastStage { relax_bits: 12 };
        let img = synthetic_image(10, 10, 9);
        let mut traced = TracingArith::new(mode);
        let mut plain = ApimArith::new(mode);
        let a = robert(&img, &mut traced);
        let b = robert(&img, &mut plain);
        assert_eq!(a, b, "tracing must not change semantics");
    }

    #[test]
    fn traced_cost_reflects_real_multiplier_density() {
        let apim = Apim::default();
        // All-ones multipliers are the worst case; sparse ones are cheap.
        let mut dense = TracingArith::new(PrecisionMode::Exact);
        dense.mul(0x7FFF_FFFF, 0x7FFF_FFFF);
        let mut sparse = TracingArith::new(PrecisionMode::Exact);
        sparse.mul(0x7FFF_FFFF, 0b100);
        let dense_cost = apim.executor().run_trace(dense.trace());
        let sparse_cost = apim.executor().run_trace(sparse.trace());
        assert!(dense_cost.cycles.get() > 20 * sparse_cost.cycles.get());
    }

    #[test]
    fn traced_kernel_cost_is_positive_and_mode_sensitive() {
        let apim = Apim::default();
        let img = synthetic_image(8, 8, 5);
        let cost_of = |mode| {
            let mut arith = TracingArith::new(mode);
            robert(&img, &mut arith);
            apim.executor().run_trace(arith.trace())
        };
        let exact = cost_of(PrecisionMode::Exact);
        let relaxed = cost_of(PrecisionMode::LastStage { relax_bits: 32 });
        assert!(exact.energy.as_joules() > 0.0);
        assert!(relaxed.energy.as_joules() < exact.energy.as_joules());
    }
}
