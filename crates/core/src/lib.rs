//! # APIM — Approximate Processing In-Memory
//!
//! A full reproduction of *"Ultra-Efficient Processing In-Memory for Data
//! Intensive Applications"* (Imani, Gupta, Rosing — DAC 2017): a
//! configurable approximate processing-in-memory architecture that executes
//! addition and multiplication inside an RRAM crossbar using MAGIC NOR,
//! with runtime-tunable accuracy.
//!
//! This crate is the high-level facade; the layers underneath are usable
//! on their own:
//!
//! | crate | contents |
//! |---|---|
//! | [`apim_device`] | VTEAM memristor model, timing/energy constants |
//! | [`apim_crossbar`] | bit-accurate blocked-crossbar simulator |
//! | [`apim_logic`] | in-memory adders/multiplier + analytic cost model |
//! | [`apim_arch`] | executor, parallel scheduling, adaptive QoS |
//! | [`apim_baselines`] | GPU / \[24\] / \[25\] comparison models |
//! | [`apim_workloads`] | the six evaluation kernels + quality metrics |
//!
//! # Quickstart
//!
//! ```
//! use apim::{Apim, App};
//! use apim::PrecisionMode;
//!
//! # fn main() -> Result<(), apim::ApimError> {
//! // An APIM device in the paper's configuration.
//! let apim = Apim::new(apim::ApimConfig::default())?;
//!
//! // One approximate 32x32-bit multiplication, bit-exact semantics:
//! let report = apim.multiply(1_000_003, 2_000_029,
//!                            PrecisionMode::LastStage { relax_bits: 8 });
//! assert_eq!(report.product >> 8, (1_000_003u128 * 2_000_029) >> 8);
//!
//! // A whole application over a resident 256 MB dataset, compared to the
//! // GPU baseline:
//! let run = apim.run(App::Sobel, 256 << 20)?;
//! assert!(run.comparison.speedup > 1.0, "APIM wins beyond ~200 MB");
//! assert!(run.quality.acceptable);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod simulator;

pub mod campaign;
pub mod tracing;

pub use simulator::{Apim, ApimError, MulReport, RunReport, SelfTestReport};

pub use apim_arch::{
    AdaptiveController, ApimConfig, ApimConfigBuilder, ApimCost, ArchError, Comparison, Executor,
    PrecisionMode, TuneOutcome,
};
pub use apim_baselines::{AppProfile, CostReport, GpuModel, GpuParams};
pub use apim_crossbar::HotSpot;
pub use apim_device::{Cycles, DeviceParams, EnergyDelayProduct, Joules, Seconds};
pub use apim_workloads::{App, QualityReport, RunConfig};

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::campaign::{Campaign, CampaignExecutor};
    pub use crate::{
        AdaptiveController, Apim, ApimConfig, App, AppProfile, Comparison, GpuModel, PrecisionMode,
        RunReport,
    };
}

/// Maps an application to its compute/traffic profile.
pub fn profile_of(app: App) -> AppProfile {
    match app {
        App::Sobel => AppProfile::sobel(),
        App::Robert => AppProfile::robert(),
        App::Fft => AppProfile::fft(),
        App::DwtHaar1d => AppProfile::dwt_haar1d(),
        App::Sharpen => AppProfile::sharpen(),
        App::QuasiRandom => AppProfile::quasi_random(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_all_apps() {
        for app in App::all() {
            assert_eq!(profile_of(app).name, app.name());
        }
    }
}
