//! Property-based tests of the device layer: the VTEAM integration must
//! behave like a physical memristor.

use apim_device::vteam::VteamModel;
use apim_device::{Cycles, DeviceParams, EnergyModel, Joules, Seconds, TimingModel};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sub_threshold_voltages_never_switch(v in -0.69f64..0.29) {
        let model = VteamModel::new(&DeviceParams::paper());
        let mut off = model.cell_off();
        let mut on = model.cell_on();
        let w_off = off.state();
        let w_on = on.state();
        model.apply_pulse(&mut off, v, 5e-9);
        model.apply_pulse(&mut on, v, 5e-9);
        prop_assert_eq!(off.state(), w_off);
        prop_assert_eq!(on.state(), w_on);
    }

    #[test]
    fn stronger_set_pulses_switch_no_slower(v1 in 0.8f64..1.0, dv in 0.05f64..0.5) {
        let params = DeviceParams::paper();
        let model = VteamModel::new(&params);
        let v2 = v1 + dv;
        let t = 0.4e-9;
        let mut weak = model.cell_off();
        let mut strong = model.cell_off();
        model.apply_pulse(&mut weak, -v1, t);
        model.apply_pulse(&mut strong, -v2, t);
        // More drive moves the state at least as far toward RON.
        prop_assert!(strong.state() <= weak.state() + 1e-15);
    }

    #[test]
    fn pulse_energy_is_additive_in_time(v in 0.05f64..0.25, t in 0.1e-9..2e-9) {
        let model = VteamModel::new(&DeviceParams::paper());
        // Sub-threshold: the state is frozen, so dissipation is linear.
        let mut c1 = model.cell_off();
        let e1 = model.apply_pulse(&mut c1, v, t).energy.as_joules();
        let mut c2 = model.cell_off();
        let e2 = model.apply_pulse(&mut c2, v, 2.0 * t).energy.as_joules();
        prop_assert!((e2 - 2.0 * e1).abs() < 0.02 * e2.max(1e-30));
    }

    #[test]
    fn resistance_stays_within_device_bounds(v in -1.5f64..1.5, t in 0.0f64..5e-9) {
        let params = DeviceParams::paper();
        let model = VteamModel::new(&params);
        let mut cell = model.cell_off();
        model.apply_pulse(&mut cell, v, t);
        prop_assert!(cell.resistance_ohms() >= params.r_on_ohms - 1.0);
        prop_assert!(cell.resistance_ohms() <= params.r_off_ohms + 1.0);
    }

    #[test]
    fn energy_model_scales_affinely_with_width(w1 in 1usize..256, w2 in 1usize..256) {
        let em = EnergyModel::new(&DeviceParams::paper());
        let e = |w: usize| em.nor_op(w).as_joules();
        let per_cell = em.nor_per_cell().as_joules();
        let predicted = e(w1) + (w2 as f64 - w1 as f64) * per_cell;
        prop_assert!((e(w2) - predicted).abs() < 1e-18);
    }

    #[test]
    fn cycles_to_time_is_linear(c1 in 0u64..1_000_000, c2 in 0u64..1_000_000) {
        let tm = TimingModel::new(&DeviceParams::paper());
        let t = |c: u64| tm.cycles_to_time(Cycles::new(c)).as_secs();
        prop_assert!((t(c1 + c2) - (t(c1) + t(c2))).abs() < 1e-15);
    }

    #[test]
    fn unit_arithmetic_is_consistent(pj in 0.0f64..1e6, ns in 0.0f64..1e6) {
        let e = Joules::from_picojoules(pj);
        let t = Seconds::from_nanos(ns);
        let edp = e * t;
        prop_assert!((edp.as_joule_seconds() - pj * 1e-12 * ns * 1e-9).abs() < 1e-20);
    }
}
