//! Numerical integration of the VTEAM memristor model.
//!
//! VTEAM (Kvatinsky et al., TCAS-II 2015) describes a voltage-controlled
//! memristor with an internal state variable `w ∈ [w_min, w_max]`:
//!
//! ```text
//! dw/dt = k_off · (v/v_off − 1)^α_off · f_off(w)   for v > v_off
//!       = 0                                         for v_on ≤ v ≤ v_off
//!       = k_on  · (v/v_on − 1)^α_on  · f_on(w)     for v < v_on
//! ```
//!
//! with window functions `f_on/f_off` clamping `w` at the device boundaries,
//! and a linear resistance map `R(w) = R_on + (w − w_min)/(w_max − w_min) ·
//! (R_off − R_on)`.
//!
//! The paper uses this model in Cadence Virtuoso to extract per-operation
//! latency and energy; we integrate it directly (forward Euler with
//! sub-picosecond steps) to derive the same constants.

use crate::params::DeviceParams;
use crate::units::{Joules, Seconds};

/// State of a single VTEAM memristor.
///
/// ```
/// use apim_device::vteam::VteamModel;
/// use apim_device::DeviceParams;
///
/// let params = DeviceParams::default();
/// let model = VteamModel::new(&params);
/// let mut cell = model.cell_off();
/// // Applying a positive voltage above v_off keeps the device OFF-switching
/// // direction; a negative voltage below v_on drives it ON.
/// let report = model.apply_pulse(&mut cell, -1.0, 2e-9);
/// assert!(cell.resistance_ohms() < 1e6); // moved toward R_on
/// assert!(report.energy.as_joules() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VteamCell {
    /// Internal state variable, meters, clamped to `[w_min, w_max]`.
    w: f64,
    resistance: f64,
}

impl VteamCell {
    /// Current device resistance, ohms.
    pub fn resistance_ohms(&self) -> f64 {
        self.resistance
    }

    /// Internal state variable, meters.
    pub fn state(&self) -> f64 {
        self.w
    }
}

/// Outcome of applying a voltage pulse to a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseReport {
    /// Energy dissipated in the device during the pulse.
    pub energy: Joules,
    /// Time at which the state first saturated, if it did.
    pub saturated_at: Option<Seconds>,
}

/// The VTEAM model evaluator for a given parameter set.
#[derive(Debug, Clone)]
pub struct VteamModel {
    params: DeviceParams,
    /// Integration step, seconds.
    dt: f64,
}

impl VteamModel {
    /// Creates a model evaluator.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`DeviceParams::validate`]; constructing a
    /// model from unphysical parameters is a programming error.
    pub fn new(params: &DeviceParams) -> Self {
        params.validate().expect("invalid device parameters");
        VteamModel {
            params: params.clone(),
            dt: 0.5e-12,
        }
    }

    /// A cell initialized to the fully-ON (low resistance, logic '1' in the
    /// MAGIC convention) state.
    pub fn cell_on(&self) -> VteamCell {
        self.cell_at(self.params.w_min_m)
    }

    /// A cell initialized to the fully-OFF (high resistance, logic '0')
    /// state.
    pub fn cell_off(&self) -> VteamCell {
        self.cell_at(self.params.w_max_m)
    }

    fn cell_at(&self, w: f64) -> VteamCell {
        VteamCell {
            w,
            resistance: self.resistance(w),
        }
    }

    /// Linear resistance map `R(w)`.
    fn resistance(&self, w: f64) -> f64 {
        let p = &self.params;
        let frac = (w - p.w_min_m) / (p.w_max_m - p.w_min_m);
        p.r_on_ohms + frac * (p.r_off_ohms - p.r_on_ohms)
    }

    /// State derivative `dw/dt` at voltage `v`.
    fn dwdt(&self, w: f64, v: f64) -> f64 {
        let p = &self.params;
        if v > p.v_off_volts {
            // OFF-switching: w grows toward w_max.
            let drive = (v / p.v_off_volts - 1.0).powf(p.alpha_off);
            p.k_off * drive * Self::window(w, p.w_min_m, p.w_max_m)
        } else if v < p.v_on_volts {
            // ON-switching: w shrinks toward w_min (k_on < 0).
            let drive = (v / p.v_on_volts - 1.0).powf(p.alpha_on);
            p.k_on * drive * Self::window(w, p.w_min_m, p.w_max_m)
        } else {
            0.0
        }
    }

    /// Joglekar-style window keeping the state inside the device.
    fn window(w: f64, w_min: f64, w_max: f64) -> f64 {
        let x = (w - w_min) / (w_max - w_min);
        // Quadratic window: zero derivative at the boundaries.
        1.0 - (2.0 * x - 1.0).powi(2) * 0.99
    }

    /// Applies a constant-voltage pulse of the given duration, integrating
    /// the state and accumulating `v²/R` dissipation.
    pub fn apply_pulse(&self, cell: &mut VteamCell, volts: f64, duration_s: f64) -> PulseReport {
        let p = &self.params;
        let mut t = 0.0;
        let mut energy = 0.0;
        let mut saturated_at = None;
        while t < duration_s {
            let step = self.dt.min(duration_s - t);
            energy += volts * volts / cell.resistance * step;
            let dw = self.dwdt(cell.w, volts) * step;
            let w_new = (cell.w + dw).clamp(p.w_min_m, p.w_max_m);
            if saturated_at.is_none() && dw != 0.0 && (w_new == p.w_min_m || w_new == p.w_max_m) {
                saturated_at = Some(Seconds::new(t + step));
            }
            cell.w = w_new;
            cell.resistance = self.resistance(w_new);
            t += step;
        }
        PulseReport {
            energy: Joules::new(energy),
            saturated_at,
        }
    }

    /// Time for a full OFF→ON transition under `-V0` (a MAGIC output cell
    /// being written), found by integration.
    ///
    /// This must complete within one MAGIC cycle for the logic family to
    /// work; [`crate::TimingModel`] asserts it against the paper's 1.1 ns.
    pub fn set_time(&self) -> Seconds {
        let mut cell = self.cell_off();
        let horizon = 20.0 * self.params.cycle_ns * 1e-9;
        let report = self.apply_pulse(&mut cell, -self.params.v0_volts, horizon);
        report.saturated_at.unwrap_or(Seconds::new(horizon))
    }

    /// Energy of a full OFF→ON switching event under `-V0`.
    pub fn set_energy(&self) -> Joules {
        let mut cell = self.cell_off();
        let t = self.set_time().as_secs();
        self.apply_pulse(&mut cell, -self.params.v0_volts, t).energy
    }

    /// Time for a full ON→OFF transition under `+V0` (RESET), found by
    /// integration. RESET is the faster edge on this device: the
    /// OFF-threshold is lower than the ON-threshold, so the drive term is
    /// much larger.
    pub fn reset_time(&self) -> Seconds {
        let mut cell = self.cell_on();
        let horizon = 20.0 * self.params.cycle_ns * 1e-9;
        let report = self.apply_pulse(&mut cell, self.params.v0_volts, horizon);
        report.saturated_at.unwrap_or(Seconds::new(horizon))
    }

    /// Energy of a full ON→OFF switching event under `+V0`. The large
    /// OFF-drive makes the transition so fast that, despite starting at
    /// `RON`'s high current, the integral stays below the SET energy.
    pub fn reset_energy(&self) -> Joules {
        let mut cell = self.cell_on();
        let t = self.reset_time().as_secs();
        self.apply_pulse(&mut cell, self.params.v0_volts, t).energy
    }

    /// Energy dissipated reading a cell at `v_read` for the paper's 0.3 ns
    /// read, worst case (cell in the ON state, max current).
    pub fn read_energy(&self) -> Joules {
        let mut cell = self.cell_on();
        self.apply_pulse(
            &mut cell,
            self.params.v_read_volts,
            self.params.read_ns * 1e-9,
        )
        .energy
    }

    /// Energy dissipated by a half-selected cell held at `V0` across its
    /// (high) resistance for one cycle — the dominant sneak cost of a MAGIC
    /// op on non-switching cells.
    pub fn hold_energy_off(&self) -> Joules {
        let mut cell = self.cell_off();
        // v_off/2 bias: below threshold, no state change, pure dissipation.
        let v = self.params.v_off_volts * 0.5;
        self.apply_pulse(&mut cell, v, self.params.cycle_ns * 1e-9)
            .energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> VteamModel {
        VteamModel::new(&DeviceParams::paper())
    }

    #[test]
    fn initial_states_have_expected_resistance() {
        let m = model();
        assert!((m.cell_on().resistance_ohms() - 10e3).abs() < 1.0);
        assert!((m.cell_off().resistance_ohms() - 10e6).abs() < 1.0);
    }

    #[test]
    fn below_threshold_voltage_does_not_switch() {
        let m = model();
        let mut cell = m.cell_off();
        let before = cell.state();
        m.apply_pulse(&mut cell, 0.1, 5e-9); // |v| < v_off
        assert_eq!(cell.state(), before);
        m.apply_pulse(&mut cell, -0.2, 5e-9); // |v| < |v_on|
        assert_eq!(cell.state(), before);
    }

    #[test]
    fn negative_v0_sets_the_cell() {
        let m = model();
        let mut cell = m.cell_off();
        let report = m.apply_pulse(&mut cell, -1.0, 3e-9);
        assert!(cell.resistance_ohms() < 1e6);
        assert!(report.energy.as_joules() > 0.0);
    }

    #[test]
    fn positive_v0_resets_the_cell() {
        let m = model();
        let mut cell = m.cell_on();
        m.apply_pulse(&mut cell, 1.0, 3e-9);
        assert!(cell.resistance_ohms() > 20e3);
    }

    #[test]
    fn set_time_fits_in_a_magic_cycle() {
        let m = model();
        let t = m.set_time();
        assert!(
            t.as_nanos() <= DeviceParams::paper().cycle_ns,
            "SET took {} — must fit in one 1.1 ns cycle",
            t
        );
        assert!(t.as_nanos() > 0.05, "SET time implausibly fast: {}", t);
    }

    #[test]
    fn set_energy_is_positive_and_small() {
        let e = model().set_energy();
        assert!(e.as_joules() > 0.0);
        // Sanity: a single-cell switch should be in the fJ..pJ range.
        assert!(e.as_picojoules() < 10.0, "set energy {} too large", e);
    }

    #[test]
    fn read_energy_below_write_energy() {
        let m = model();
        assert!(m.read_energy().as_joules() < m.set_energy().as_joules());
    }

    #[test]
    fn hold_energy_is_small() {
        let m = model();
        assert!(m.hold_energy_off().as_joules() < m.read_energy().as_joules());
    }

    #[test]
    fn reset_is_the_fast_edge() {
        // The OFF threshold (0.3 V) is far below V0, so the RESET drive
        // term dwarfs the SET drive: RESET completes ~100x faster and,
        // despite flowing through RON, dissipates less total energy.
        let m = model();
        assert!(m.reset_time().as_secs() < 0.1 * m.set_time().as_secs());
        assert!(m.reset_energy().as_joules() < m.set_energy().as_joules());
        assert!(m.reset_time().as_nanos() <= DeviceParams::paper().cycle_ns);
        assert!(m.reset_energy().as_joules() > 0.0);
    }

    #[test]
    fn pulse_energy_scales_with_duration() {
        let m = model();
        let mut c1 = m.cell_off();
        let mut c2 = m.cell_off();
        let e1 = m.apply_pulse(&mut c1, 0.1, 1e-9).energy;
        let e2 = m.apply_pulse(&mut c2, 0.1, 2e-9).energy;
        assert!(e2.as_joules() > 1.9 * e1.as_joules());
    }

    #[test]
    #[should_panic(expected = "invalid device parameters")]
    fn invalid_params_panic() {
        let mut p = DeviceParams::paper();
        p.r_off_ohms = 1.0;
        let _ = VteamModel::new(&p);
    }
}
