//! Energy model: per-operation energies derived from the VTEAM device.
//!
//! The paper obtains per-op energy from Cadence circuit simulation; here the
//! same constants are computed by integrating the VTEAM model
//! ([`crate::vteam::VteamModel`]) once at construction and caching the
//! results.

use crate::params::DeviceParams;
use crate::units::Joules;
use crate::vteam::VteamModel;

/// Cached per-operation energies of the APIM memory unit.
///
/// ```
/// use apim_device::{DeviceParams, EnergyModel};
/// let e = EnergyModel::new(&DeviceParams::default());
/// // Wider NOR rows cost proportionally more (every bit position switches
/// // its own output cell).
/// let narrow = e.nor_op(8).as_joules();
/// let wide = e.nor_op(32).as_joules();
/// assert!(wide > 2.0 * narrow);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Worst-case energy of one MAGIC NOR evaluation on a single output
    /// cell: a full switching event plus half-select dissipation on inputs.
    nor_per_cell: Joules,
    /// Energy of writing one cell (initialization to RON before a MAGIC op,
    /// or storing a result).
    write_per_cell: Joules,
    /// Energy of one bitwise sense-amplifier read.
    read_per_bit: Joules,
    /// Energy of one sense-amplifier majority evaluation (read of three
    /// cells + analog majority + comparator).
    maj_per_bit: Joules,
    /// Interconnect switch energy per bit moved.
    interconnect_per_bit: Joules,
    /// Row/column decoder activation per operation.
    decoder_per_op: Joules,
}

impl EnergyModel {
    /// Derives the energy model from device parameters by integrating the
    /// VTEAM model.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see
    /// [`DeviceParams::validate`]).
    pub fn new(params: &DeviceParams) -> Self {
        let vteam = VteamModel::new(params);
        let set = vteam.set_energy();
        let hold = vteam.hold_energy_off();
        let read = vteam.read_energy();
        EnergyModel {
            // Output cell may fully switch; the 2 input cells dissipate
            // half-select energy.
            nor_per_cell: set + hold * 2.0,
            write_per_cell: set,
            read_per_bit: read + Joules::from_picojoules(params.senseamp_overhead_pj),
            maj_per_bit: read * 3.0 + Joules::from_picojoules(params.senseamp_overhead_pj * 2.0),
            interconnect_per_bit: Joules::from_picojoules(params.interconnect_pj_per_bit),
            decoder_per_op: Joules::from_picojoules(params.decoder_pj),
        }
    }

    /// Energy of one MAGIC NOR over `width` parallel bit positions.
    pub fn nor_op(&self, width: usize) -> Joules {
        self.nor_per_cell * width as f64 + self.decoder_per_op
    }

    /// Energy of initializing or writing `width` cells.
    pub fn write_op(&self, width: usize) -> Joules {
        self.write_per_cell * width as f64 + self.decoder_per_op
    }

    /// Energy of a bitwise read of `width` bits.
    pub fn read_op(&self, width: usize) -> Joules {
        self.read_per_bit * width as f64 + self.decoder_per_op
    }

    /// Energy of `width` parallel sense-amplifier majority evaluations.
    pub fn maj_op(&self, width: usize) -> Joules {
        self.maj_per_bit * width as f64 + self.decoder_per_op
    }

    /// Energy of moving `width` bits through the configurable interconnect.
    pub fn interconnect_op(&self, width: usize) -> Joules {
        self.interconnect_per_bit * width as f64
    }

    /// Energy per single-cell NOR (without decoder overhead) — exposed for
    /// analytic cost models.
    pub fn nor_per_cell(&self) -> Joules {
        self.nor_per_cell
    }

    /// Energy per single-cell write (without decoder overhead).
    pub fn write_per_cell(&self) -> Joules {
        self.write_per_cell
    }

    /// Energy per single-bit read (without decoder overhead).
    pub fn read_per_bit(&self) -> Joules {
        self.read_per_bit
    }

    /// Energy per single-bit majority evaluation.
    pub fn maj_per_bit(&self) -> Joules {
        self.maj_per_bit
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::new(&DeviceParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energies_are_positive() {
        let e = EnergyModel::default();
        assert!(e.nor_op(1).as_joules() > 0.0);
        assert!(e.write_op(1).as_joules() > 0.0);
        assert!(e.read_op(1).as_joules() > 0.0);
        assert!(e.maj_op(1).as_joules() > 0.0);
        assert!(e.interconnect_op(1).as_joules() > 0.0);
    }

    #[test]
    fn read_is_cheaper_than_nor() {
        let e = EnergyModel::default();
        assert!(e.read_per_bit().as_joules() < e.nor_per_cell().as_joules());
    }

    #[test]
    fn width_scaling_is_affine() {
        let e = EnergyModel::default();
        let w1 = e.nor_op(1).as_joules();
        let w10 = e.nor_op(10).as_joules();
        let per_cell = e.nor_per_cell().as_joules();
        assert!((w10 - w1 - 9.0 * per_cell).abs() < 1e-18);
    }

    #[test]
    fn maj_costs_roughly_three_reads() {
        let e = EnergyModel::default();
        let ratio = e.maj_per_bit().as_joules() / e.read_per_bit().as_joules();
        assert!(ratio > 1.5 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn per_cell_energies_in_physical_range() {
        // fJ..pJ per cell switch is physically plausible for RRAM at 45nm.
        let e = EnergyModel::default();
        let pj = e.nor_per_cell().as_picojoules();
        assert!(pj > 1e-4 && pj < 10.0, "nor/cell = {pj} pJ");
    }
}
