//! Device parameters of the paper's experimental setup (§4.1).

/// Physical and circuit parameters of the simulated RRAM crossbar.
///
/// Defaults reproduce the paper's setup: VTEAM memristor model with
/// `RON = 10 kΩ` and `ROFF = 10 MΩ`, a 45 nm CMOS periphery, a MAGIC NOR
/// cycle of 1.1 ns, a 0.3 ns bitwise read and a 0.6 ns sense-amplifier
/// majority evaluation.
///
/// ```
/// use apim_device::DeviceParams;
/// let p = DeviceParams::default();
/// assert_eq!(p.r_on_ohms, 10e3);
/// assert_eq!(p.r_off_ohms, 10e6);
/// assert!((p.cycle_ns - 1.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Low-resistance (SET / logic parameters depend on convention) state, ohms.
    pub r_on_ohms: f64,
    /// High-resistance state, ohms.
    pub r_off_ohms: f64,
    /// MAGIC execution voltage `V0`, volts.
    pub v0_volts: f64,
    /// VTEAM ON-switching threshold voltage (negative polarity), volts.
    pub v_on_volts: f64,
    /// VTEAM OFF-switching threshold voltage, volts.
    pub v_off_volts: f64,
    /// VTEAM ON rate constant `k_on`, m/s (negative by convention).
    pub k_on: f64,
    /// VTEAM OFF rate constant `k_off`, m/s.
    pub k_off: f64,
    /// VTEAM ON nonlinearity exponent `alpha_on`.
    pub alpha_on: f64,
    /// VTEAM OFF nonlinearity exponent `alpha_off`.
    pub alpha_off: f64,
    /// Undoped/doped boundary positions: full device length, meters.
    pub w_max_m: f64,
    /// Minimum state variable, meters.
    pub w_min_m: f64,
    /// One MAGIC NOR cycle, nanoseconds (paper: 1.1 ns).
    pub cycle_ns: f64,
    /// Bitwise sense-amplifier read latency, nanoseconds (paper: 0.3 ns).
    pub read_ns: f64,
    /// Sense-amplifier majority (MAJ) evaluation latency, nanoseconds
    /// (paper: 0.6 ns).
    pub maj_ns: f64,
    /// Read voltage applied during sensing, volts (below both thresholds so
    /// reads are non-destructive).
    pub v_read_volts: f64,
    /// Energy overhead of the sense amplifier per activation, picojoules.
    pub senseamp_overhead_pj: f64,
    /// Energy overhead of driving one interconnect switch column, picojoules.
    pub interconnect_pj_per_bit: f64,
    /// Row/column decoder activation energy per operation, picojoules.
    pub decoder_pj: f64,
}

impl DeviceParams {
    /// Parameters used throughout the paper's evaluation (§4.1).
    ///
    /// VTEAM constants follow Kvatinsky et al., "VTEAM: a general model for
    /// voltage-controlled memristors", TCAS-II 62(8), 2015 (their Table I
    /// fitted values, rescaled so the SET/RESET completes within the paper's
    /// 1.1 ns MAGIC cycle at `V0 = 1 V`).
    pub fn paper() -> Self {
        DeviceParams {
            r_on_ohms: 10e3,
            r_off_ohms: 10e6,
            v0_volts: 1.0,
            v_on_volts: -0.7,
            v_off_volts: 0.3,
            // Rate constants chosen so a full state traversal under |v| = V0
            // takes ~0.9 ns, consistent with the 1.1 ns MAGIC cycle (the
            // boundary-window integral gives t ~= 3 L / (k * drive) with
            // drive = (V0/v_on - 1)^alpha ~= 0.079).
            k_on: -130.0,
            k_off: 130.0,
            alpha_on: 3.0,
            alpha_off: 3.0,
            w_max_m: 3e-9,
            w_min_m: 0.0,
            cycle_ns: 1.1,
            read_ns: 0.3,
            maj_ns: 0.6,
            v_read_volts: 0.15,
            senseamp_overhead_pj: 0.002,
            interconnect_pj_per_bit: 0.002,
            decoder_pj: 0.01,
        }
    }

    /// Validates internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint:
    /// resistances must be positive with `r_off > r_on`, voltages must
    /// bracket zero correctly, and all latencies must be positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.r_on_ohms <= 0.0 {
            return Err("r_on must be positive".into());
        }
        if self.r_off_ohms <= self.r_on_ohms {
            return Err("r_off must exceed r_on".into());
        }
        if self.v_on_volts >= 0.0 {
            return Err("v_on must be negative (VTEAM convention)".into());
        }
        if self.v_off_volts <= 0.0 {
            return Err("v_off must be positive (VTEAM convention)".into());
        }
        if self.v0_volts <= self.v_off_volts {
            return Err("execution voltage V0 must exceed v_off".into());
        }
        if self.cycle_ns <= 0.0 || self.read_ns <= 0.0 || self.maj_ns <= 0.0 {
            return Err("latencies must be positive".into());
        }
        if self.w_max_m <= self.w_min_m {
            return Err("w_max must exceed w_min".into());
        }
        Ok(())
    }

    /// Resistance ratio `ROFF / RON` (10^3 for the paper's device).
    pub fn resistance_ratio(&self) -> f64 {
        self.r_off_ohms / self.r_on_ohms
    }

    /// Re-fits the VTEAM rate constants so a full SET completes in
    /// `fraction` of the MAGIC cycle (the calibration that produced the
    /// defaults, automated): switching time scales inversely with the
    /// rate constants, so one probe integration determines the scale.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]` or the parameters are
    /// invalid.
    pub fn calibrate_rate_for_cycle(&self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0, 1]");
        let probe = crate::vteam::VteamModel::new(self);
        let measured = probe.set_time().as_nanos();
        let target = self.cycle_ns * fraction;
        let scale = measured / target;
        DeviceParams {
            k_on: self.k_on * scale,
            k_off: self.k_off * scale,
            ..self.clone()
        }
    }

    /// Parameters adjusted to an operating temperature.
    ///
    /// Memristive switching is thermally activated: the VTEAM rate
    /// constants scale by an Arrhenius factor
    /// `exp(Ea/kB · (1/T₀ − 1/T))` (activation energy ≈ 0.2 eV for
    /// HfOx-class devices, reference T₀ = 300 K), and the OFF-state
    /// resistance droops mildly with temperature (semiconducting leakage).
    /// Hot devices switch faster — leaving more margin inside the 1.1 ns
    /// cycle — while cold ones risk incomplete switching; see the tests.
    pub fn at_temperature(&self, kelvin: f64) -> Self {
        const T0: f64 = 300.0;
        const EA_OVER_KB: f64 = 0.2 / 8.617e-5; // Ea / kB in kelvin
        let arrhenius = (EA_OVER_KB * (1.0 / T0 - 1.0 / kelvin)).exp();
        // ~0.2 %/K droop of the OFF resistance around T0.
        let r_off_scale = (1.0 - 0.002 * (kelvin - T0)).clamp(0.2, 2.0);
        DeviceParams {
            k_on: self.k_on * arrhenius,
            k_off: self.k_off * arrhenius,
            r_off_ohms: self.r_off_ohms * r_off_scale,
            ..self.clone()
        }
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_are_valid() {
        DeviceParams::paper()
            .validate()
            .expect("paper params valid");
    }

    #[test]
    fn default_matches_paper() {
        assert_eq!(DeviceParams::default(), DeviceParams::paper());
    }

    #[test]
    fn resistance_ratio_is_1000() {
        let p = DeviceParams::paper();
        assert!((p.resistance_ratio() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_hits_the_requested_set_time() {
        use crate::vteam::VteamModel;
        // Start from a deliberately detuned device (4x too slow).
        let mut slow = DeviceParams::paper();
        slow.k_on /= 4.0;
        slow.k_off /= 4.0;
        let fixed = slow.calibrate_rate_for_cycle(0.8);
        let t = VteamModel::new(&fixed).set_time().as_nanos();
        let target = 0.8 * fixed.cycle_ns;
        assert!(
            (t - target).abs() / target < 0.05,
            "calibrated SET {t} ns vs target {target} ns"
        );
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn calibration_rejects_bad_fraction() {
        let _ = DeviceParams::paper().calibrate_rate_for_cycle(0.0);
    }

    #[test]
    fn room_temperature_is_identity() {
        let p = DeviceParams::paper();
        let same = p.at_temperature(300.0);
        assert!((same.k_on - p.k_on).abs() < 1e-9 * p.k_on.abs());
        assert!((same.r_off_ohms - p.r_off_ohms).abs() < 1e-6 * p.r_off_ohms);
    }

    #[test]
    fn hot_devices_switch_faster() {
        use crate::vteam::VteamModel;
        let cold = VteamModel::new(&DeviceParams::paper().at_temperature(250.0));
        let room = VteamModel::new(&DeviceParams::paper());
        let hot = VteamModel::new(&DeviceParams::paper().at_temperature(350.0));
        let (tc, tr, th) = (cold.set_time(), room.set_time(), hot.set_time());
        assert!(th.as_secs() < tr.as_secs(), "hot {} !< room {}", th, tr);
        assert!(tr.as_secs() < tc.as_secs(), "room {} !< cold {}", tr, tc);
    }

    #[test]
    fn operating_window_holds_at_room_and_above() {
        use crate::vteam::VteamModel;
        for t in [295.0, 300.0, 320.0, 350.0] {
            let p = DeviceParams::paper().at_temperature(t);
            p.validate().unwrap();
            let set = VteamModel::new(&p).set_time();
            assert!(
                set.as_nanos() <= p.cycle_ns,
                "SET must fit the cycle at {t} K ({set})"
            );
        }
    }

    #[test]
    fn cold_devices_miss_the_cycle_budget() {
        // A real deployment finding: Arrhenius-slowed switching at 280 K
        // no longer completes inside the 1.1 ns MAGIC cycle — the clock
        // would need derating (or the execution voltage raising).
        use crate::vteam::VteamModel;
        let p = DeviceParams::paper().at_temperature(280.0);
        let set = VteamModel::new(&p).set_time();
        assert!(set.as_nanos() > p.cycle_ns, "cold SET {set} should overrun");
    }

    #[test]
    fn read_margin_degrades_when_hot() {
        use crate::sense::SenseAnalysis;
        let room = SenseAnalysis::new(&DeviceParams::paper()).margins();
        let hot = SenseAnalysis::new(&DeviceParams::paper().at_temperature(400.0)).margins();
        assert!(hot.single_bit < room.single_bit);
        assert!(hot.single_bit > 0.99, "still easily readable");
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut p = DeviceParams::paper();
        p.r_off_ohms = p.r_on_ohms / 2.0;
        assert!(p.validate().is_err());

        let mut p = DeviceParams::paper();
        p.v_on_volts = 0.5;
        assert!(p.validate().is_err());

        let mut p = DeviceParams::paper();
        p.cycle_ns = 0.0;
        assert!(p.validate().is_err());

        let mut p = DeviceParams::paper();
        p.v0_volts = 0.1;
        assert!(p.validate().is_err());

        let mut p = DeviceParams::paper();
        p.w_max_m = -1.0;
        assert!(p.validate().is_err());

        let mut p = DeviceParams::paper();
        p.r_on_ohms = 0.0;
        assert!(p.validate().is_err());

        let mut p = DeviceParams::paper();
        p.v_off_volts = -0.1;
        assert!(p.validate().is_err());
    }
}
