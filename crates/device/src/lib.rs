//! Device-level models for the APIM simulator.
//!
//! This crate is the foundation of the APIM (DAC'17) reproduction. It
//! provides:
//!
//! * strongly-typed physical quantities ([`Cycles`], [`Seconds`], [`Joules`],
//!   [`EnergyDelayProduct`]) used by every layer above,
//! * the published device parameters of the paper's experimental setup
//!   ([`DeviceParams`]: VTEAM memristor with `RON = 10 kΩ`,
//!   `ROFF = 10 MΩ`, a 1.1 ns MAGIC NOR cycle, 0.3 ns reads and a 0.6 ns
//!   sense-amplifier majority evaluation),
//! * a numerical integration of the VTEAM memristor model
//!   ([`vteam::VteamModel`]) used to derive switching times and per-operation
//!   energies from first principles, and
//! * the derived per-operation [`energy::EnergyModel`] and
//!   [`timing::TimingModel`] consumed by the crossbar simulator and the
//!   analytic cost model, and
//! * the sense-amplifier read-margin analysis ([`sense::SenseAnalysis`])
//!   quantifying why the paper's 10 kΩ/10 MΩ device reads (and computes
//!   MAJ) reliably.
//!
//! # Example
//!
//! ```
//! use apim_device::{DeviceParams, EnergyModel, TimingModel};
//!
//! let params = DeviceParams::default();
//! let timing = TimingModel::new(&params);
//! let energy = EnergyModel::new(&params);
//!
//! // One MAGIC NOR over a 32-cell row costs one 1.1 ns cycle.
//! let t = timing.cycle_time() * 1.0;
//! assert!((t.as_nanos() - 1.1).abs() < 1e-9);
//! // and a deterministic, strictly positive amount of energy.
//! assert!(energy.nor_op(32).as_joules() > 0.0);
//! ```

#![deny(missing_docs)]

mod params;
mod units;

pub mod energy;
pub mod sense;
pub mod timing;
pub mod vteam;

pub use energy::EnergyModel;
pub use params::DeviceParams;
pub use timing::TimingModel;
pub use units::{Cycles, EnergyDelayProduct, Joules, Seconds};
