//! Strongly-typed physical quantities.
//!
//! Newtypes keep cycles, wall-clock time, energy and energy-delay product
//! from being confused with one another across the simulator (C-NEWTYPE).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A count of MAGIC execution cycles.
///
/// One cycle is the time taken by one MAGIC NOR evaluation (1.1 ns in the
/// paper's 45 nm setup). Cycles are exact integers; convert to wall-clock
/// time with [`crate::TimingModel::cycles_to_time`].
///
/// ```
/// use apim_device::Cycles;
/// let total = Cycles::new(12) * 32 + Cycles::new(1);
/// assert_eq!(total.get(), 385); // 12N + 1 for N = 32
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(count: u64) -> Self {
        Cycles(count)
    }

    /// Returns the raw count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the maximum of two counts.
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// Wall-clock time in seconds.
///
/// ```
/// use apim_device::Seconds;
/// let t = Seconds::from_nanos(1.1) * 385.0;
/// assert!((t.as_nanos() - 423.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero time.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a time from seconds.
    pub const fn new(secs: f64) -> Self {
        Seconds(secs)
    }

    /// Creates a time from nanoseconds.
    pub fn from_nanos(nanos: f64) -> Self {
        Seconds(nanos * 1e-9)
    }

    /// Returns the value in seconds.
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the value in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the value in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the maximum of two times.
    pub fn max(self, rhs: Seconds) -> Seconds {
        Seconds(self.0.max(rhs.0))
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Div<Seconds> for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        Seconds(iter.map(|s| s.0).sum())
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else if self.0 >= 1e-6 {
            write!(f, "{:.3} us", self.0 * 1e6)
        } else {
            write!(f, "{:.3} ns", self.0 * 1e9)
        }
    }
}

/// Energy in joules.
///
/// ```
/// use apim_device::Joules;
/// let e = Joules::from_picojoules(0.1) * 1000.0;
/// assert!((e.as_picojoules() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Creates an energy from joules.
    pub const fn new(joules: f64) -> Self {
        Joules(joules)
    }

    /// Creates an energy from picojoules.
    pub fn from_picojoules(pj: f64) -> Self {
        Joules(pj * 1e-12)
    }

    /// Returns the value in joules.
    pub const fn as_joules(self) -> f64 {
        self.0
    }

    /// Returns the value in picojoules.
    pub fn as_picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the value in nanojoules.
    pub fn as_nanojoules(self) -> f64 {
        self.0 * 1e9
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

impl Div<Joules> for Joules {
    type Output = f64;
    fn div(self, rhs: Joules) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<f64> for Joules {
    type Output = Joules;
    fn div(self, rhs: f64) -> Joules {
        Joules(self.0 / rhs)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        Joules(iter.map(|e| e.0).sum())
    }
}

impl Mul<Seconds> for Joules {
    type Output = EnergyDelayProduct;
    fn mul(self, rhs: Seconds) -> EnergyDelayProduct {
        EnergyDelayProduct::new(self.0 * rhs.as_secs())
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} J", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} mJ", self.0 * 1e3)
        } else if self.0 >= 1e-6 {
            write!(f, "{:.3} uJ", self.0 * 1e6)
        } else if self.0 >= 1e-9 {
            write!(f, "{:.3} nJ", self.0 * 1e9)
        } else {
            write!(f, "{:.4} pJ", self.0 * 1e12)
        }
    }
}

/// Energy-delay product in joule-seconds — the figure of merit of Figure 4
/// and Table 1 of the paper.
///
/// ```
/// use apim_device::{Joules, Seconds};
/// let edp = Joules::from_picojoules(500.0) * Seconds::from_nanos(400.0);
/// assert!(edp.as_joule_seconds() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct EnergyDelayProduct(f64);

impl EnergyDelayProduct {
    /// Creates an EDP value from joule-seconds.
    pub const fn new(joule_seconds: f64) -> Self {
        EnergyDelayProduct(joule_seconds)
    }

    /// Returns the value in joule-seconds.
    pub const fn as_joule_seconds(self) -> f64 {
        self.0
    }

    /// Ratio of two EDPs — `baseline.improvement_over(ours)` reads as the
    /// paper's "EDP Imp." columns.
    pub fn improvement_over(self, other: EnergyDelayProduct) -> f64 {
        self.0 / other.0
    }
}

impl Add for EnergyDelayProduct {
    type Output = EnergyDelayProduct;
    fn add(self, rhs: EnergyDelayProduct) -> EnergyDelayProduct {
        EnergyDelayProduct(self.0 + rhs.0)
    }
}

impl fmt::Display for EnergyDelayProduct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} J.s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!((a + b).get(), 13);
        assert_eq!((a - b).get(), 7);
        assert_eq!((a * 4).get(), 40);
        assert_eq!(Cycles::ZERO.get(), 0);
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
    }

    #[test]
    fn cycles_sum() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total.get(), 10);
    }

    #[test]
    fn seconds_conversions() {
        let t = Seconds::from_nanos(1.1);
        assert!((t.as_secs() - 1.1e-9).abs() < 1e-18);
        assert!((t.as_nanos() - 1.1).abs() < 1e-12);
        assert!(((t * 2.0).as_nanos() - 2.2).abs() < 1e-12);
    }

    #[test]
    fn seconds_ratio() {
        let a = Seconds::from_nanos(100.0);
        let b = Seconds::from_nanos(25.0);
        assert!((a / b - 4.0).abs() < 1e-12);
    }

    #[test]
    fn joules_conversions() {
        let e = Joules::from_picojoules(100.0);
        assert!((e.as_nanojoules() - 0.1).abs() < 1e-12);
        assert!((e.as_joules() - 1e-10).abs() < 1e-20);
    }

    #[test]
    fn edp_from_product() {
        let edp = Joules::new(2.0) * Seconds::new(3.0);
        assert!((edp.as_joule_seconds() - 6.0).abs() < 1e-12);
        let better = EnergyDelayProduct::new(1.5);
        assert!((edp.improvement_over(better) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Cycles::new(0)).is_empty());
        assert!(!format!("{}", Seconds::ZERO).is_empty());
        assert!(!format!("{}", Joules::ZERO).is_empty());
        assert!(!format!("{}", EnergyDelayProduct::new(0.0)).is_empty());
    }

    #[test]
    fn display_units_scale() {
        assert_eq!(format!("{}", Seconds::new(2.0)), "2.000 s");
        assert_eq!(format!("{}", Seconds::from_nanos(5.0)), "5.000 ns");
        assert_eq!(format!("{}", Joules::from_picojoules(3.0)), "3.0000 pJ");
        assert_eq!(format!("{}", Joules::new(0.002)), "2.000 mJ");
    }
}
