//! Sense-amplifier read-margin analysis (Figure 3(b) of the paper).
//!
//! The modified sense amplifier mirrors the bitline current and compares it
//! against references (`R1 > x`, `R2 > 2` in the figure): a single-cell
//! read discriminates `RON` from `ROFF`; the majority (MAJ) function senses
//! *three* cells in parallel and thresholds the summed current at "more
//! than one cell in `RON`". Whether that works depends entirely on the
//! device's resistance ratio — this module quantifies the margins and the
//! resulting bit-error rate under current noise, justifying the paper's
//! choice of `ROFF/RON = 1000`.

use crate::params::DeviceParams;

/// Read margins of the single-bit and majority sense paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadMargins {
    /// Bitline current with the cell in `RON`, amps.
    pub i_on: f64,
    /// Bitline current with the cell in `ROFF`, amps.
    pub i_off: f64,
    /// Relative single-bit margin: `(i_on − i_off) / i_on`.
    pub single_bit: f64,
    /// Worst-case relative MAJ margin: the smallest gap between adjacent
    /// summed-current levels (0–3 cells in `RON`), normalized to one
    /// `RON` current step.
    pub majority: f64,
}

/// Sense-amplifier analysis for a device parameter set.
///
/// ```
/// use apim_device::{sense::SenseAnalysis, DeviceParams};
/// let sa = SenseAnalysis::new(&DeviceParams::default());
/// let margins = sa.margins();
/// // The paper's 10 kΩ / 10 MΩ device leaves >99.8 % of the signal.
/// assert!(margins.single_bit > 0.99);
/// ```
#[derive(Debug, Clone)]
pub struct SenseAnalysis {
    v_read: f64,
    r_on: f64,
    r_off: f64,
}

impl SenseAnalysis {
    /// Builds the analysis from device parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid.
    pub fn new(params: &DeviceParams) -> Self {
        params.validate().expect("invalid device parameters");
        SenseAnalysis {
            v_read: params.v_read_volts,
            r_on: params.r_on_ohms,
            r_off: params.r_off_ohms,
        }
    }

    /// Computes the read margins.
    pub fn margins(&self) -> ReadMargins {
        let i_on = self.v_read / self.r_on;
        let i_off = self.v_read / self.r_off;
        // MAJ: summed current of 3 cells, k of them ON: k·i_on + (3−k)·i_off.
        // Adjacent levels differ by exactly (i_on − i_off); the threshold
        // sits halfway between levels 1 and 2 ("R2 > 2" in Figure 3(b)).
        // Worst-case margin is half a level gap, normalized to i_on.
        let level_gap = i_on - i_off;
        ReadMargins {
            i_on,
            i_off,
            single_bit: level_gap / i_on,
            majority: 0.5 * level_gap / i_on,
        }
    }

    /// Bit-error rate of a single-bit read under Gaussian current noise of
    /// `sigma_relative` (standard deviation as a fraction of `i_on`): the
    /// probability that noise crosses half the margin.
    pub fn single_bit_error_rate(&self, sigma_relative: f64) -> f64 {
        let m = self.margins().single_bit;
        gaussian_tail(0.5 * m / sigma_relative.max(1e-12))
    }

    /// Bit-error rate of the MAJ evaluation under the same noise (three
    /// summed cells ⇒ √3 larger noise, half-level threshold distance).
    pub fn majority_error_rate(&self, sigma_relative: f64) -> f64 {
        let m = self.margins().majority;
        let sigma = sigma_relative.max(1e-12) * 3f64.sqrt();
        gaussian_tail(m / sigma)
    }

    /// The smallest `ROFF/RON` ratio keeping the MAJ margin above
    /// `required` (relative): solves the margin formula for the ratio.
    pub fn required_ratio_for_majority_margin(required: f64) -> f64 {
        // majority = 0.5 (1 − RON/ROFF)  ⇒  ROFF/RON = 1 / (1 − 2·required)
        assert!(
            required < 0.5,
            "majority margin asymptotically approaches 0.5"
        );
        1.0 / (1.0 - 2.0 * required)
    }
}

/// Upper Gaussian tail `Q(z)` via the Abramowitz–Stegun approximation
/// (absolute error < 7.5e-8) — good enough for BER estimates.
fn gaussian_tail(z: f64) -> f64 {
    if z < 0.0 {
        return 1.0 - gaussian_tail(-z);
    }
    let t = 1.0 / (1.0 + 0.2316419 * z);
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
    (pdf * poly).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> SenseAnalysis {
        SenseAnalysis::new(&DeviceParams::paper())
    }

    #[test]
    fn paper_device_has_huge_margins() {
        let m = paper().margins();
        assert!(m.single_bit > 0.998, "single-bit margin {}", m.single_bit);
        assert!(m.majority > 0.49, "MAJ margin {}", m.majority);
        assert!(m.i_on / m.i_off > 900.0);
    }

    #[test]
    fn low_ratio_devices_lose_margin() {
        let mut p = DeviceParams::paper();
        p.r_off_ohms = p.r_on_ohms * 2.0; // a terrible device
        let m = SenseAnalysis::new(&p).margins();
        assert!(m.single_bit < 0.51);
        assert!(m.majority < 0.26);
    }

    #[test]
    fn error_rates_are_negligible_at_realistic_noise() {
        let sa = paper();
        // 5 % current noise: errors far below 1e-9.
        assert!(sa.single_bit_error_rate(0.05) < 1e-9);
        assert!(sa.majority_error_rate(0.05) < 1e-6);
    }

    #[test]
    fn error_rates_grow_with_noise() {
        let sa = paper();
        let quiet = sa.majority_error_rate(0.02);
        let noisy = sa.majority_error_rate(0.2);
        assert!(noisy > quiet);
        assert!(noisy < 0.5);
    }

    #[test]
    fn required_ratio_matches_inverse_formula() {
        // A 40 % MAJ margin needs ROFF/RON = 5.
        let r = SenseAnalysis::required_ratio_for_majority_margin(0.4);
        assert!((r - 5.0).abs() < 1e-9);
        // The paper's ratio of 1000 buys a ~0.4995 margin.
        let mut p = DeviceParams::paper();
        p.r_off_ohms = p.r_on_ohms * r;
        let m = SenseAnalysis::new(&p).margins();
        assert!((m.majority - 0.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "asymptotically")]
    fn impossible_margin_rejected() {
        let _ = SenseAnalysis::required_ratio_for_majority_margin(0.5);
    }

    #[test]
    fn gaussian_tail_reference_points() {
        assert!((gaussian_tail(0.0) - 0.5).abs() < 1e-6);
        assert!((gaussian_tail(1.0) - 0.158_655).abs() < 1e-4);
        assert!((gaussian_tail(3.0) - 0.001_35).abs() < 1e-4);
        assert!((gaussian_tail(-1.0) - 0.841_345).abs() < 1e-4);
    }
}
