//! Timing model: cycle-accurate latency constants.

use crate::params::DeviceParams;
use crate::units::{Cycles, Seconds};

/// Latency constants of the APIM memory unit.
///
/// All in-memory logic is scheduled in units of the MAGIC NOR cycle
/// (1.1 ns). Sense-amplifier reads (0.3 ns) and majority evaluations
/// (0.6 ns) are sub-cycle: the paper counts "read + MAJ" as less than one
/// cycle, followed by one full cycle to write the computed carry back
/// (§3.4), which is why the approximate final stage costs 2 cycles per bit.
///
/// ```
/// use apim_device::{DeviceParams, TimingModel};
/// let t = TimingModel::new(&DeviceParams::default());
/// assert!((t.cycle_time().as_nanos() - 1.1).abs() < 1e-12);
/// assert!(t.read_time().as_nanos() + t.maj_time().as_nanos() < t.cycle_time().as_nanos());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    cycle: Seconds,
    read: Seconds,
    maj: Seconds,
}

impl TimingModel {
    /// Builds the timing model from device parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see
    /// [`DeviceParams::validate`]).
    pub fn new(params: &DeviceParams) -> Self {
        params.validate().expect("invalid device parameters");
        TimingModel {
            cycle: Seconds::from_nanos(params.cycle_ns),
            read: Seconds::from_nanos(params.read_ns),
            maj: Seconds::from_nanos(params.maj_ns),
        }
    }

    /// Duration of one MAGIC NOR cycle.
    pub fn cycle_time(&self) -> Seconds {
        self.cycle
    }

    /// Duration of one bitwise sense-amplifier read.
    pub fn read_time(&self) -> Seconds {
        self.read
    }

    /// Duration of one sense-amplifier majority evaluation.
    pub fn maj_time(&self) -> Seconds {
        self.maj
    }

    /// Converts a cycle count to wall-clock time.
    pub fn cycles_to_time(&self, cycles: Cycles) -> Seconds {
        self.cycle * cycles.get() as f64
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::new(&DeviceParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latencies() {
        let t = TimingModel::default();
        assert!((t.cycle_time().as_nanos() - 1.1).abs() < 1e-12);
        assert!((t.read_time().as_nanos() - 0.3).abs() < 1e-12);
        assert!((t.maj_time().as_nanos() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn cycles_to_time_scales_linearly() {
        let t = TimingModel::default();
        let one = t.cycles_to_time(Cycles::new(1));
        let many = t.cycles_to_time(Cycles::new(385));
        assert!((many.as_nanos() - 385.0 * one.as_nanos()).abs() < 1e-9);
    }

    #[test]
    fn read_plus_maj_fits_in_one_cycle() {
        // §3.4: "reading the inputs takes about 0.3ns, while our design
        // needs 0.6ns to calculate majority ... an effective delay of less
        // than 1 cycle".
        let t = TimingModel::default();
        assert!(t.read_time().as_nanos() + t.maj_time().as_nanos() < t.cycle_time().as_nanos());
    }
}
