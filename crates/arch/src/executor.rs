//! The cost executor: traces and application profiles → time/energy.

use apim_baselines::AppProfile;
use apim_logic::{CostModel, OpCost, PrecisionMode};

use crate::config::{ApimConfig, ArchError};
use crate::isa::{Op, Trace};
use crate::memmap::{MemoryMap, TileGeometry};
use crate::report::ApimCost;
use crate::scheduler::{makespan_uniform, Schedule};

use apim_device::{Cycles, Joules};

/// Costs APIM executions with the analytic model (which is itself
/// validated cycle-exactly against the gate-level simulator — see
/// `apim-logic`).
#[derive(Debug, Clone)]
pub struct Executor {
    config: ApimConfig,
    cost: CostModel,
    memmap: MemoryMap,
}

impl Executor {
    /// Builds an executor for a device configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] if the configuration is
    /// invalid, and [`ArchError::VerificationFailed`] if
    /// [`ApimConfig::verify_microprograms`] is set and the static hazard
    /// analysis finds errors in the gate-level kernels at the configured
    /// operand width.
    pub fn new(config: ApimConfig) -> Result<Self, ArchError> {
        config.validate()?;
        if config.verify_microprograms {
            Self::verify_microprograms(config.operand_bits)?;
        }
        let cost = CostModel::new(&config.params);
        let memmap = MemoryMap::new(config.capacity_bytes, TileGeometry::paper())?;
        Ok(Executor {
            config,
            cost,
            memmap,
        })
    }

    /// Runs the static microprogram verifier over every shipped kernel at
    /// `operand_bits`, mapping error-severity findings into
    /// [`ArchError::VerificationFailed`].
    fn verify_microprograms(operand_bits: u32) -> Result<(), ArchError> {
        let runs = apim_verify::verify_all(&[operand_bits])
            .map_err(|e| ArchError::InvalidConfig(e.to_string()))?;
        let errors: usize = runs.iter().map(|r| r.report.error_count()).sum();
        if errors == 0 {
            return Ok(());
        }
        Err(ArchError::VerificationFailed {
            errors,
            detail: apim_verify::render(&runs),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &ApimConfig {
        &self.config
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The device's address map.
    pub fn memory_map(&self) -> &MemoryMap {
        &self.memmap
    }

    fn op_cost(&self, op: &Op) -> OpCost {
        match *op {
            Op::Mul {
                bits,
                multiplier_ones,
                mode,
            } => match multiplier_ones {
                Some(ones) => self.cost.multiply_with_ones(bits, ones, mode),
                None => self.cost.multiply_expected(bits, mode),
            },
            Op::Add { bits } => self.cost.serial_add(bits),
            Op::SumReduce { operands, bits } => self.cost.sum_reduce(operands, bits, 0),
            Op::Mac { group, bits, mode } => {
                self.cost.mac_group(group, bits, (bits / 2).max(1), mode)
            }
            Op::Divide { bits } => {
                // Energy mirrors the cycle structure: n trial subtractions
                // (serial adds over 2n bits) plus commit copies.
                let trial = self.cost.serial_add(2 * bits);
                apim_logic::OpCost {
                    cycles: CostModel::divide_cycles(bits, bits / 2),
                    energy: trial.energy * f64::from(bits),
                }
            }
            Op::Sub { bits } => self.cost.serial_sub(bits),
            Op::MulTrunc {
                bits,
                multiplier_ones,
                mode,
            } => match multiplier_ones {
                Some(ones) => self.cost.multiply_trunc_with_ones(bits, ones, mode),
                None => self.cost.multiply_trunc_expected(bits, mode),
            },
            Op::Shift { bits, amount } => self.cost.shift_copy(bits, amount),
        }
    }

    /// Costs an explicit trace: independent ops are placed on the
    /// configured parallel units with an LPT greedy schedule (the real
    /// assignment the controller would make, not just the load-balance
    /// lower bound); energy is the sum over all ops.
    pub fn run_trace(&self, trace: &Trace) -> ApimCost {
        let costs: Vec<OpCost> = trace.ops().iter().map(|op| self.op_cost(op)).collect();
        let cycles_list: Vec<Cycles> = costs.iter().map(|c| c.cycles).collect();
        let span = Schedule::lpt(&cycles_list, self.config.parallel_units)
            .expect("config validated: parallel_units > 0")
            .makespan();
        let energy: Joules = costs.iter().map(|c| c.energy).sum();
        ApimCost {
            cycles: span,
            time: self.cost.timing().cycles_to_time(span),
            energy,
        }
    }

    /// The explicit LPT placement of a trace — for visualizing controller
    /// occupancy or verifying the makespan charged by
    /// [`Executor::run_trace`].
    pub fn schedule_trace(&self, trace: &Trace) -> Schedule {
        let cycles: Vec<Cycles> = trace
            .ops()
            .iter()
            .map(|op| self.op_cost(op).cycles)
            .collect();
        Schedule::lpt(&cycles, self.config.parallel_units)
            .expect("config validated: parallel_units > 0")
    }

    /// Costs a whole application over a resident dataset using its compute
    /// profile — the GB-scale path behind Figure 5 and Table 1.
    ///
    /// Multiplications use the random-data average density (§3.3); the
    /// device's configured [`PrecisionMode`] applies.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::DatasetTooLarge`] if the dataset exceeds the
    /// device capacity (APIM computes in place).
    pub fn run_profile(
        &self,
        profile: &AppProfile,
        dataset_bytes: u64,
    ) -> Result<ApimCost, ArchError> {
        self.run_profile_with_mode(profile, dataset_bytes, self.config.mode)
    }

    /// [`Executor::run_profile`] with an explicit precision mode (used by
    /// the Table 1 sweep without rebuilding executors).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::DatasetTooLarge`] if the dataset exceeds the
    /// device capacity.
    pub fn run_profile_with_mode(
        &self,
        profile: &AppProfile,
        dataset_bytes: u64,
        mode: PrecisionMode,
    ) -> Result<ApimCost, ArchError> {
        if dataset_bytes > self.config.capacity_bytes {
            return Err(ArchError::DatasetTooLarge {
                dataset_bytes,
                capacity_bytes: self.config.capacity_bytes,
            });
        }
        let bits = self.config.operand_bits;
        let muls = profile.mul_ops(dataset_bytes).round() as u64;
        let adds = profile.add_ops(dataset_bytes).round() as u64;
        // Only the tiles actually holding the dataset can compute on it.
        let units = self
            .memmap
            .effective_parallel_units(dataset_bytes, self.config.parallel_units);

        // Kernels execute C `int` (truncated) products, and APIM fuses each
        // output's `mac_group` products into one Wallace tree + one final
        // stage (§3.2). Accumulation adds ride inside the tree; one intra-
        // group add per product is therefore absorbed, and the remainder
        // run on the serial adder.
        let group = u64::from(profile.mac_group.max(1));
        let outputs = muls / group;
        let avg_ones = (bits - mode.masked_multiplier_bits().min(bits)) / 2;
        let group_cost = self
            .cost
            .mac_group(profile.mac_group.max(1), bits, avg_ones.max(1), mode);
        let absorbed_adds = muls.saturating_sub(outputs);
        let loose_adds = adds.saturating_sub(absorbed_adds);
        // Standalone additions use the same configurable final-stage adder
        // (§3.4 applies to any addition): exact mode degenerates to the
        // 12N + 1 serial adder.
        let add_cost = self
            .cost
            .final_add_width(bits, mode.relaxed_product_bits().min(bits));

        let mul_span = makespan_uniform(group_cost.cycles, outputs, units)?;
        let add_span = makespan_uniform(add_cost.cycles, loose_adds, units)?;
        let span = mul_span + add_span;
        let energy = group_cost.energy * outputs as f64 + add_cost.energy * loose_adds as f64;
        Ok(ApimCost {
            cycles: span,
            time: self.cost.timing().cycles_to_time(span),
            energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_logic::PrecisionMode;

    fn exec() -> Executor {
        Executor::new(ApimConfig::default()).unwrap()
    }

    fn exec_with_mode(mode: PrecisionMode) -> Executor {
        Executor::new(ApimConfig {
            mode,
            ..ApimConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn empty_trace_is_free() {
        let cost = exec().run_trace(&Trace::new());
        assert_eq!(cost.cycles, Cycles::ZERO);
        assert_eq!(cost.energy.as_joules(), 0.0);
    }

    #[test]
    fn trace_energy_adds_up_cycles_parallelize() {
        let e = exec();
        let mut one = Trace::new();
        one.push(Op::Add { bits: 32 });
        let single = e.run_trace(&one);

        let mut many = Trace::new();
        many.push_many(Op::Add { bits: 32 }, 1000);
        let bulk = e.run_trace(&many);
        assert!(
            (bulk.energy.as_joules() - 1000.0 * single.energy.as_joules()).abs()
                < 1e-9 * bulk.energy.as_joules()
        );
        // 1000 jobs over 7680 units: bounded by one job's latency.
        assert_eq!(bulk.cycles, single.cycles);
    }

    #[test]
    fn profile_scales_linearly_with_dataset() {
        let e = exec();
        let p = AppProfile::sobel();
        let small = e.run_profile(&p, 32 << 20).unwrap();
        let large = e.run_profile(&p, 256 << 20).unwrap();
        let t_ratio = large.time / small.time;
        assert!((t_ratio - 8.0).abs() < 0.2, "time ratio {t_ratio}");
        let e_ratio = large.energy / small.energy;
        assert!((e_ratio - 8.0).abs() < 0.2, "energy ratio {e_ratio}");
    }

    #[test]
    fn verification_mode_accepts_the_shipped_kernels() {
        let e = Executor::new(ApimConfig {
            verify_microprograms: true,
            operand_bits: 8,
            ..ApimConfig::default()
        })
        .unwrap();
        assert!(e.config().verify_microprograms);
    }

    #[test]
    fn dataset_must_fit() {
        let e = exec();
        let err = e.run_profile(&AppProfile::fft(), 64 << 30).unwrap_err();
        assert!(matches!(err, ArchError::DatasetTooLarge { .. }));
    }

    #[test]
    fn approximation_cuts_cost() {
        let p = AppProfile::fft();
        let exact = exec_with_mode(PrecisionMode::Exact)
            .run_profile(&p, 128 << 20)
            .unwrap();
        let approx = exec_with_mode(PrecisionMode::LastStage { relax_bits: 32 })
            .run_profile(&p, 128 << 20)
            .unwrap();
        assert!(approx.time.as_secs() < exact.time.as_secs());
        assert!(approx.energy.as_joules() < exact.energy.as_joules());
        assert!(approx.edp().as_joule_seconds() < exact.edp().as_joule_seconds());
    }

    #[test]
    fn more_units_speed_up_but_do_not_save_energy() {
        let p = AppProfile::sharpen();
        let small = Executor::new(ApimConfig {
            parallel_units: 1024,
            ..ApimConfig::default()
        })
        .unwrap()
        .run_profile(&p, 64 << 20)
        .unwrap();
        let big = Executor::new(ApimConfig {
            parallel_units: 8192,
            ..ApimConfig::default()
        })
        .unwrap()
        .run_profile(&p, 64 << 20)
        .unwrap();
        assert!(big.time.as_secs() < small.time.as_secs());
        assert!((big.energy.as_joules() - small.energy.as_joules()).abs() < 1e-12);
    }

    #[test]
    fn explicit_ones_cheaper_when_sparse() {
        let e = exec();
        let mut sparse = Trace::new();
        sparse.push(Op::Mul {
            bits: 32,
            multiplier_ones: Some(2),
            mode: PrecisionMode::Exact,
        });
        let mut dense = Trace::new();
        dense.push(Op::Mul {
            bits: 32,
            multiplier_ones: Some(32),
            mode: PrecisionMode::Exact,
        });
        assert!(e.run_trace(&sparse).cycles < e.run_trace(&dense).cycles);
    }

    #[test]
    fn sum_reduce_op_costed() {
        let e = exec();
        let mut t = Trace::new();
        t.push(Op::SumReduce {
            operands: 9,
            bits: 16,
        });
        let c = e.run_trace(&t);
        assert!(c.cycles.get() > 0);
    }

    #[test]
    fn mac_and_divide_ops_costed() {
        let e = exec();
        let mut t = Trace::new();
        t.push(Op::Mac {
            group: 12,
            bits: 32,
            mode: PrecisionMode::Exact,
        });
        let mac = e.run_trace(&t);
        let mut t = Trace::new();
        t.push(Op::Divide { bits: 32 });
        let div = e.run_trace(&t);
        assert!(mac.cycles.get() > 0);
        // Division dwarfs a fused MAC — the extension's design lesson.
        assert!(div.cycles.get() > 2 * mac.cycles.get());
    }
}
