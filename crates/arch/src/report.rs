//! Cost and comparison reports.

use apim_device::{Cycles, EnergyDelayProduct, Joules, Seconds};
use std::fmt;

/// Cost of one APIM execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApimCost {
    /// Critical-path cycles (after parallel scheduling).
    pub cycles: Cycles,
    /// Wall-clock time.
    pub time: Seconds,
    /// Total energy across all active units.
    pub energy: Joules,
}

impl ApimCost {
    /// Energy-delay product.
    pub fn edp(&self) -> EnergyDelayProduct {
        self.energy * self.time
    }

    /// Average power draw over the run, watts — the number a deployment
    /// compares against a memory module's thermal budget.
    pub fn average_power_watts(&self) -> f64 {
        if self.time.as_secs() == 0.0 {
            0.0
        } else {
            self.energy.as_joules() / self.time.as_secs()
        }
    }
}

impl fmt::Display for ApimCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} | {} | EDP {}", self.time, self.energy, self.edp())
    }
}

/// APIM vs a baseline, in the paper's "improvement ×" vocabulary
/// (values > 1 mean APIM wins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// `t_baseline / t_apim` — "Speed up (GPU=1)" of Figure 5.
    pub speedup: f64,
    /// `e_baseline / e_apim` — "Energy Improvement (GPU=1)".
    pub energy_improvement: f64,
    /// `edp_baseline / edp_apim` — the "EDP Imp." columns of Table 1.
    pub edp_improvement: f64,
}

impl Comparison {
    /// Compares an APIM cost against baseline time/energy.
    pub fn against(apim: &ApimCost, baseline_time: Seconds, baseline_energy: Joules) -> Self {
        Comparison {
            speedup: baseline_time / apim.time,
            energy_improvement: baseline_energy / apim.energy,
            edp_improvement: (baseline_energy * baseline_time).as_joule_seconds()
                / apim.edp().as_joule_seconds(),
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "speedup {:.2}x | energy {:.2}x | EDP {:.1}x",
            self.speedup, self.energy_improvement, self.edp_improvement
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> ApimCost {
        ApimCost {
            cycles: Cycles::new(1000),
            time: Seconds::from_nanos(1100.0),
            energy: Joules::from_picojoules(500.0),
        }
    }

    #[test]
    fn edp_is_product() {
        let c = cost();
        let expect = 500e-12 * 1100e-9;
        assert!((c.edp().as_joule_seconds() - expect).abs() < 1e-24);
    }

    #[test]
    fn average_power_is_energy_over_time() {
        let c = cost();
        let expect = 500e-12 / 1100e-9;
        assert!((c.average_power_watts() - expect).abs() < 1e-9);
        let zero = ApimCost {
            cycles: Cycles::ZERO,
            time: Seconds::ZERO,
            energy: Joules::ZERO,
        };
        assert_eq!(zero.average_power_watts(), 0.0);
    }

    #[test]
    fn comparison_ratios() {
        let c = cost();
        let cmp = Comparison::against(
            &c,
            Seconds::from_nanos(5500.0),
            Joules::from_picojoules(2500.0),
        );
        assert!((cmp.speedup - 5.0).abs() < 1e-9);
        assert!((cmp.energy_improvement - 5.0).abs() < 1e-9);
        assert!((cmp.edp_improvement - 25.0).abs() < 1e-6);
    }

    #[test]
    fn displays_are_nonempty() {
        let c = cost();
        assert!(!c.to_string().is_empty());
        let cmp = Comparison::against(&c, Seconds::from_nanos(1.0), Joules::new(1.0));
        assert!(cmp.to_string().contains("speedup"));
    }
}
