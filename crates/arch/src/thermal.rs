//! Steady-state thermal model for a PIM memory module.
//!
//! In-memory computation dissipates inside the DIMM, not on a heatsinked
//! processor die — a real deployment must check that the module's thermal
//! envelope holds, because device switching speed is itself temperature-
//! dependent (`apim_device::DeviceParams::at_temperature`). This module
//! closes that loop with a lumped thermal-resistance model:
//!
//! ```text
//! T_module = T_ambient + P_avg · θ_module
//! ```

use crate::report::ApimCost;

/// Lumped thermal description of a memory module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Ambient temperature, kelvin.
    pub ambient_kelvin: f64,
    /// Module thermal resistance, kelvin per watt (DIMM without a heat
    /// spreader ≈ 8–15 K/W; with one ≈ 3–6 K/W).
    pub theta_kelvin_per_watt: f64,
    /// Maximum allowed module temperature, kelvin (DRAM-class retention
    /// limits sit near 358 K / 85 °C).
    pub limit_kelvin: f64,
}

impl ThermalModel {
    /// A bare DIMM in a 300 K enclosure with an 85 °C limit.
    pub fn bare_dimm() -> Self {
        ThermalModel {
            ambient_kelvin: 300.0,
            theta_kelvin_per_watt: 12.0,
            limit_kelvin: 358.0,
        }
    }

    /// Steady-state module temperature while sustaining `cost`'s average
    /// power.
    pub fn steady_state_kelvin(&self, cost: &ApimCost) -> f64 {
        self.ambient_kelvin + cost.average_power_watts() * self.theta_kelvin_per_watt
    }

    /// Whether the run stays inside the thermal envelope.
    pub fn within_budget(&self, cost: &ApimCost) -> bool {
        self.steady_state_kelvin(cost) <= self.limit_kelvin
    }

    /// The maximum sustained power the envelope allows, watts.
    pub fn power_budget_watts(&self) -> f64 {
        (self.limit_kelvin - self.ambient_kelvin) / self.theta_kelvin_per_watt
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel::bare_dimm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ApimConfig;
    use crate::executor::Executor;
    use apim_baselines::AppProfile;
    use apim_device::{Cycles, Joules, Seconds};

    #[test]
    fn budget_arithmetic() {
        let t = ThermalModel::bare_dimm();
        assert!((t.power_budget_watts() - 58.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn idle_module_sits_at_ambient() {
        let t = ThermalModel::bare_dimm();
        let idle = ApimCost {
            cycles: Cycles::ZERO,
            time: Seconds::new(1.0),
            energy: Joules::ZERO,
        };
        assert_eq!(t.steady_state_kelvin(&idle), 300.0);
        assert!(t.within_budget(&idle));
    }

    #[test]
    fn paper_workloads_fit_a_bare_dimm() {
        // The headline configuration must be thermally deployable: a 1 GB
        // Sobel run draws well under the ~4.8 W budget.
        let exec = Executor::new(ApimConfig::default()).unwrap();
        let thermal = ThermalModel::bare_dimm();
        for profile in AppProfile::all() {
            let cost = exec.run_profile(&profile, 1 << 30).unwrap();
            assert!(
                thermal.within_budget(&cost),
                "{}: {:.2} W -> {:.1} K",
                profile.name,
                cost.average_power_watts(),
                thermal.steady_state_kelvin(&cost)
            );
        }
    }

    #[test]
    fn overdriven_module_trips_the_budget() {
        let t = ThermalModel::bare_dimm();
        let hot = ApimCost {
            cycles: Cycles::new(1),
            time: Seconds::new(1.0),
            energy: Joules::new(10.0), // 10 W sustained
        };
        assert!(!t.within_budget(&hot));
        assert!(t.steady_state_kelvin(&hot) > 400.0);
    }

    #[test]
    fn device_timing_survives_the_thermal_envelope() {
        // Close the loop: at the budget-limit temperature the device still
        // switches within the MAGIC cycle (hot devices are *faster*).
        use apim_device::vteam::VteamModel;
        use apim_device::DeviceParams;
        let t = ThermalModel::bare_dimm();
        let params = DeviceParams::paper().at_temperature(t.limit_kelvin);
        let set = VteamModel::new(&params).set_time();
        assert!(set.as_nanos() <= params.cycle_ns);
    }
}
