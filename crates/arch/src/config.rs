//! APIM device configuration.

use apim_device::DeviceParams;
use apim_logic::PrecisionMode;
use std::error::Error;
use std::fmt;

/// Errors from the architecture layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchError {
    /// Configuration rejected.
    InvalidConfig(String),
    /// A dataset exceeded the device capacity — APIM computes *in place*,
    /// so the working set must be memory-resident.
    DatasetTooLarge {
        /// Requested dataset size.
        dataset_bytes: u64,
        /// Configured capacity.
        capacity_bytes: u64,
    },
    /// A scheduling request named zero execution units. Raised by the
    /// `scheduler` entry points instead of panicking, so a hostile
    /// configuration arriving through a serving frontend degrades into a
    /// structured error.
    ZeroUnits,
    /// The static microprogram verifier found hazards in the device's
    /// kernels (only raised when
    /// [`ApimConfig::verify_microprograms`] is enabled).
    VerificationFailed {
        /// Number of error-severity findings.
        errors: usize,
        /// Rendered findings, one per line.
        detail: String,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidConfig(msg) => write!(f, "invalid APIM configuration: {msg}"),
            ArchError::DatasetTooLarge {
                dataset_bytes,
                capacity_bytes,
            } => write!(
                f,
                "dataset of {dataset_bytes} bytes exceeds APIM capacity of {capacity_bytes} bytes"
            ),
            ArchError::ZeroUnits => {
                write!(f, "cannot schedule onto zero parallel units")
            }
            ArchError::VerificationFailed { errors, detail } => write!(
                f,
                "microprogram verification failed with {errors} error(s):\n{detail}"
            ),
        }
    }
}

impl Error for ArchError {}

/// Configuration of an APIM memory device.
///
/// The default models the paper's setup: a multi-GB RRAM main memory
/// (datasets up to 1 GB stay resident, like the 64 GB DIMMs of §4.1) whose
/// blocked crossbars provide thousands of *concurrently active*
/// data/processing block pairs. The `parallel_units` figure is the one
/// calibrated constant on the APIM side (see `EXPERIMENTS.md`).
///
/// ```
/// use apim_arch::ApimConfig;
/// use apim_arch::PrecisionMode;
/// let config = ApimConfig::builder()
///     .parallel_units(1024)
///     .mode(PrecisionMode::LastStage { relax_bits: 8 })
///     .build()
///     .expect("valid");
/// assert_eq!(config.parallel_units, 1024);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ApimConfig {
    /// Device parameters (VTEAM constants, cycle time…).
    pub params: DeviceParams,
    /// Total memory capacity, bytes.
    pub capacity_bytes: u64,
    /// Concurrently active processing-block pairs.
    pub parallel_units: u32,
    /// Operand width of the in-memory ALU paths.
    pub operand_bits: u32,
    /// Multiplication precision mode.
    pub mode: PrecisionMode,
    /// When `true`, [`crate::Executor::new`] statically verifies the
    /// gate-level microprograms (via `apim-verify`) at the configured
    /// operand width before accepting the device.
    pub verify_microprograms: bool,
}

impl ApimConfig {
    /// Starts a builder.
    pub fn builder() -> ApimConfigBuilder {
        ApimConfigBuilder::new()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] for zero capacities/units,
    /// unsupported operand widths, inconsistent device parameters or an
    /// invalid precision mode.
    pub fn validate(&self) -> Result<(), ArchError> {
        self.params.validate().map_err(ArchError::InvalidConfig)?;
        if self.capacity_bytes == 0 {
            return Err(ArchError::InvalidConfig("capacity must be nonzero".into()));
        }
        if self.parallel_units == 0 {
            return Err(ArchError::InvalidConfig(
                "need at least one parallel unit".into(),
            ));
        }
        if !(4..=64).contains(&self.operand_bits) {
            return Err(ArchError::InvalidConfig(format!(
                "operand width {} outside 4..=64",
                self.operand_bits
            )));
        }
        self.mode
            .validate(self.operand_bits)
            .map_err(|e| ArchError::InvalidConfig(e.to_string()))?;
        Ok(())
    }
}

impl Default for ApimConfig {
    fn default() -> Self {
        ApimConfig {
            params: DeviceParams::default(),
            capacity_bytes: 8 << 30,
            parallel_units: 2048,
            operand_bits: 32,
            mode: PrecisionMode::Exact,
            verify_microprograms: false,
        }
    }
}

/// Builder for [`ApimConfig`].
#[derive(Debug, Clone, Default)]
pub struct ApimConfigBuilder {
    config: ApimConfig,
}

impl ApimConfigBuilder {
    /// Starts from the default configuration.
    pub fn new() -> Self {
        ApimConfigBuilder {
            config: ApimConfig::default(),
        }
    }

    /// Sets the device parameters.
    pub fn params(mut self, params: DeviceParams) -> Self {
        self.config.params = params;
        self
    }

    /// Sets the memory capacity in bytes.
    pub fn capacity_bytes(mut self, capacity: u64) -> Self {
        self.config.capacity_bytes = capacity;
        self
    }

    /// Sets the number of concurrently active processing-block pairs.
    pub fn parallel_units(mut self, units: u32) -> Self {
        self.config.parallel_units = units;
        self
    }

    /// Sets the operand width.
    pub fn operand_bits(mut self, bits: u32) -> Self {
        self.config.operand_bits = bits;
        self
    }

    /// Sets the precision mode.
    pub fn mode(mut self, mode: PrecisionMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Enables or disables static microprogram verification at executor
    /// construction.
    pub fn verify_microprograms(mut self, verify: bool) -> Self {
        self.config.verify_microprograms = verify;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`ApimConfig::validate`].
    pub fn build(self) -> Result<ApimConfig, ArchError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ApimConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_round_trips() {
        let c = ApimConfig::builder()
            .capacity_bytes(1 << 30)
            .parallel_units(128)
            .operand_bits(16)
            .mode(PrecisionMode::FirstStage { masked_bits: 4 })
            .build()
            .unwrap();
        assert_eq!(c.capacity_bytes, 1 << 30);
        assert_eq!(c.parallel_units, 128);
        assert_eq!(c.operand_bits, 16);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ApimConfig::builder().capacity_bytes(0).build().is_err());
        assert!(ApimConfig::builder().parallel_units(0).build().is_err());
        assert!(ApimConfig::builder().operand_bits(128).build().is_err());
        assert!(ApimConfig::builder()
            .operand_bits(16)
            .mode(PrecisionMode::LastStage { relax_bits: 64 })
            .build()
            .is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ArchError::DatasetTooLarge {
            dataset_bytes: 100,
            capacity_bytes: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(ArchError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
    }
}
