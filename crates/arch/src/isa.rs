//! Controller-level operation traces.
//!
//! The APIM memory controller (Figure 1(b)) dispatches whole arithmetic
//! macro-operations to processing blocks; a [`Trace`] is the sequence a
//! compiled kernel issues. The executor costs traces with the analytic
//! model and schedules independent ops across parallel block pairs.

use apim_logic::PrecisionMode;
use std::fmt;

/// One controller-level operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Multiply two `bits`-wide operands under `mode`. `multiplier_ones`
    /// is the set-bit count of the multiplier when known (`None` → model
    /// the random-data average, §3.3).
    Mul {
        /// Operand width.
        bits: u32,
        /// Known multiplier density, if any.
        multiplier_ones: Option<u32>,
        /// Precision mode for this multiplication.
        mode: PrecisionMode,
    },
    /// Add two `bits`-wide operands with the serial adder.
    Add {
        /// Operand width.
        bits: u32,
    },
    /// Reduce `operands` values of `bits` bits with the Wallace-tree fast
    /// adder (§3.2).
    SumReduce {
        /// Number of addends.
        operands: u32,
        /// Addend width.
        bits: u32,
    },
    /// A fused multiply-accumulate group: `group` truncated products into
    /// one tree + one final stage.
    Mac {
        /// Products in the group.
        group: u32,
        /// Operand width.
        bits: u32,
        /// Precision mode.
        mode: PrecisionMode,
    },
    /// Restoring division of `bits`-bit operands (extension).
    Divide {
        /// Operand width.
        bits: u32,
    },
    /// Subtract two `bits`-wide operands (serial adder netlist with a
    /// complemented subtrahend: `12N + 2` cycles).
    Sub {
        /// Operand width.
        bits: u32,
    },
    /// Truncated `bits × bits → bits` multiplication (C `int` semantics,
    /// the form compiled DAG products take). `multiplier_ones` as in
    /// [`Op::Mul`].
    MulTrunc {
        /// Operand width.
        bits: u32,
        /// Known multiplier density, if any.
        multiplier_ones: Option<u32>,
        /// Precision mode for this multiplication.
        mode: PrecisionMode,
    },
    /// Constant shift of a `bits`-wide word through the block interconnect:
    /// positive `amount` is a logical left shift, negative an arithmetic
    /// right shift (sign bits re-driven serially).
    Shift {
        /// Operand width.
        bits: u32,
        /// Signed shift distance.
        amount: i32,
    },
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Mul { bits, mode, .. } => write!(f, "mul{bits} [{mode}]"),
            Op::Add { bits } => write!(f, "add{bits}"),
            Op::SumReduce { operands, bits } => write!(f, "sum{operands}x{bits}"),
            Op::Mac { group, bits, mode } => write!(f, "mac{group}x{bits} [{mode}]"),
            Op::Divide { bits } => write!(f, "div{bits}"),
            Op::Sub { bits } => write!(f, "sub{bits}"),
            Op::MulTrunc { bits, mode, .. } => write!(f, "tmul{bits} [{mode}]"),
            Op::Shift { bits, amount } if *amount >= 0 => write!(f, "shl{bits}.{amount}"),
            Op::Shift { bits, amount } => write!(f, "shr{bits}.{}", -amount),
        }
    }
}

/// A sequence of controller operations. Ops are assumed independent for
/// scheduling purposes (kernels over distinct elements), which matches the
/// data-parallel OpenCL workloads of the evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    ops: Vec<Op>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Appends `count` copies of an operation.
    pub fn push_many(&mut self, op: Op, count: usize) -> &mut Self {
        self.ops.extend(std::iter::repeat_n(op, count));
        self
    }

    /// The operations in issue order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromIterator<Op> for Trace {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Trace {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<Op> for Trace {
    fn extend<I: IntoIterator<Item = Op>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_push_many() {
        let mut t = Trace::new();
        t.push(Op::Add { bits: 32 });
        t.push_many(
            Op::Mul {
                bits: 32,
                multiplier_ones: None,
                mode: PrecisionMode::Exact,
            },
            3,
        );
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let t: Trace = (0..5).map(|_| Op::Add { bits: 16 }).collect();
        assert_eq!(t.len(), 5);
        let mut t2 = Trace::new();
        t2.extend(t.ops().iter().copied());
        assert_eq!(t, t2);
    }

    #[test]
    fn display_is_informative() {
        let op = Op::SumReduce {
            operands: 9,
            bits: 16,
        };
        assert_eq!(op.to_string(), "sum9x16");
        assert_eq!(Op::Add { bits: 8 }.to_string(), "add8");
        assert_eq!(Op::Divide { bits: 8 }.to_string(), "div8");
        assert_eq!(
            Op::Mac {
                group: 4,
                bits: 32,
                mode: PrecisionMode::Exact
            }
            .to_string(),
            "mac4x32 [exact]"
        );
    }
}
