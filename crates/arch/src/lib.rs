//! The APIM architecture layer.
//!
//! Sits between the arithmetic stack (`apim-logic`) and whole applications:
//!
//! * [`config`] — sizing and configuration of an APIM memory device
//!   (capacity, parallel processing-block pairs, operand width, precision).
//! * [`isa`] — the controller-level operation trace ([`isa::Op`],
//!   [`isa::Trace`]): what the memory controller dispatches.
//! * [`memmap`] — dataset placement across crossbar tiles: address
//!   translation and the tile-count bound on usable parallelism.
//! * [`scheduler`] — maps independent operations onto the device's parallel
//!   processing-block pairs (makespan model).
//! * [`executor`] — costs traces and whole application profiles using the
//!   analytic [`apim_logic::CostModel`]; this is what regenerates Figure 5
//!   and the EDP columns of Table 1 at GB scale.
//! * [`adaptive`] — the runtime QoS controller of §4.1: start from the
//!   maximum approximation (32 relax bits) and step accuracy up 4 bits at a
//!   time until the application's quality threshold holds.
//! * [`report`] — cost/comparison report types with table-friendly
//!   [`std::fmt::Display`] impls.
//! * [`thermal`] — the lumped thermal-envelope check a PIM DIMM deployment
//!   needs (dissipation happens in the memory module).
//!
//! # Example
//!
//! ```
//! use apim_arch::{ApimConfig, Executor};
//! use apim_baselines::AppProfile;
//!
//! # fn main() -> Result<(), apim_arch::ArchError> {
//! let exec = Executor::new(ApimConfig::default())?;
//! let cost = exec.run_profile(&AppProfile::sobel(), 256 << 20)?;
//! assert!(cost.time.as_secs() > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod adaptive;
pub mod config;
pub mod executor;
pub mod isa;
pub mod memmap;
pub mod report;
pub mod scheduler;
pub mod thermal;

pub use adaptive::{AdaptiveController, TuneOutcome};
pub use config::{ApimConfig, ApimConfigBuilder, ArchError};
pub use executor::Executor;
pub use isa::{Op, Trace};
pub use report::{ApimCost, Comparison};
pub use thermal::ThermalModel;

// The precision type is defined beside the multiplier but is part of the
// architecture's public vocabulary.
pub use apim_logic::{PrecisionError, PrecisionMode};
