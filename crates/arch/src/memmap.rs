//! Dataset placement across crossbar tiles.
//!
//! An APIM main memory is a sea of crossbar *tiles* (one data block plus
//! its processing blocks and shared controllers, Figure 1(a)). A resident
//! dataset is striped across tiles; computation on it can only use the
//! processing blocks of the tiles that actually hold data — which is why
//! a sub-tile working set cannot light up thousands of parallel units.
//! Data is striped across tiles at *row* granularity (consecutive data
//! rows land on consecutive tiles), so realistic datasets spread wide and
//! the paper's fixed-parallelism, linear-scaling regime (§4.2) holds; the
//! executor clamps its parallelism with
//! [`MemoryMap::effective_parallel_units`], which only binds for datasets
//! smaller than one row per unit.

use crate::config::ArchError;

/// Geometry of one tile's data block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGeometry {
    /// Wordlines per block.
    pub rows: usize,
    /// Bitlines per block.
    pub cols: usize,
}

impl TileGeometry {
    /// The paper-scale default: 1024 × 1024 cells per block (128 KiB of
    /// data per tile).
    pub fn paper() -> Self {
        TileGeometry {
            rows: 1024,
            cols: 1024,
        }
    }

    /// Data bytes stored per tile.
    pub fn bytes_per_tile(&self) -> u64 {
        (self.rows as u64 * self.cols as u64) / 8
    }
}

impl Default for TileGeometry {
    fn default() -> Self {
        TileGeometry::paper()
    }
}

/// Physical location of a byte within the memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Tile index.
    pub tile: u64,
    /// Wordline within the tile's data block.
    pub row: usize,
    /// First bit cell of the byte within the wordline.
    pub col_bit: usize,
}

/// The address map of an APIM memory device.
///
/// ```
/// use apim_arch::memmap::{MemoryMap, TileGeometry};
///
/// # fn main() -> Result<(), apim_arch::ArchError> {
/// let map = MemoryMap::new(1 << 30, TileGeometry::paper())?;
/// assert_eq!(map.tiles(), 8192);
/// let loc = map.translate(128 + 5)?; // second data row -> second tile
/// assert_eq!(loc.tile, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryMap {
    capacity_bytes: u64,
    geometry: TileGeometry,
    tiles: u64,
}

impl MemoryMap {
    /// Builds the map for a device of `capacity_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] if the capacity does not hold
    /// at least one tile.
    pub fn new(capacity_bytes: u64, geometry: TileGeometry) -> Result<Self, ArchError> {
        let per_tile = geometry.bytes_per_tile();
        if per_tile == 0 {
            return Err(ArchError::InvalidConfig(
                "tile geometry stores no data".into(),
            ));
        }
        let tiles = capacity_bytes / per_tile;
        if tiles == 0 {
            return Err(ArchError::InvalidConfig(format!(
                "capacity {capacity_bytes} smaller than one tile ({per_tile} B)"
            )));
        }
        Ok(MemoryMap {
            capacity_bytes,
            geometry,
            tiles,
        })
    }

    /// Number of tiles.
    pub fn tiles(&self) -> u64 {
        self.tiles
    }

    /// The tile geometry.
    pub fn geometry(&self) -> TileGeometry {
        self.geometry
    }

    /// Translates a byte address to its physical location.
    ///
    /// Striping is row-interleaved: data row `r` lands on tile
    /// `r mod tiles`, wordline `r / tiles` — consecutive rows spread
    /// across tiles so computation parallelizes even for modest datasets.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::DatasetTooLarge`] for addresses beyond the
    /// mapped capacity.
    pub fn translate(&self, byte_addr: u64) -> Result<Location, ArchError> {
        let per_tile = self.geometry.bytes_per_tile();
        let mapped = self.tiles * per_tile;
        if byte_addr >= mapped {
            return Err(ArchError::DatasetTooLarge {
                dataset_bytes: byte_addr + 1,
                capacity_bytes: mapped,
            });
        }
        let bytes_per_row = (self.geometry.cols / 8) as u64;
        let data_row = byte_addr / bytes_per_row;
        Ok(Location {
            tile: data_row % self.tiles,
            row: (data_row / self.tiles) as usize,
            col_bit: ((byte_addr % bytes_per_row) * 8) as usize,
        })
    }

    /// Tiles touched by a dataset of the given size (row-interleaved
    /// striping: one tile per data row until every tile holds data).
    pub fn tiles_for(&self, dataset_bytes: u64) -> u64 {
        let bytes_per_row = (self.geometry.cols / 8) as u64;
        dataset_bytes.div_ceil(bytes_per_row).clamp(1, self.tiles)
    }

    /// The parallelism actually available to a dataset: no more units than
    /// tiles holding its data, and never more than the device offers.
    pub fn effective_parallel_units(&self, dataset_bytes: u64, configured_units: u32) -> u32 {
        u32::try_from(self.tiles_for(dataset_bytes))
            .unwrap_or(u32::MAX)
            .min(configured_units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> MemoryMap {
        MemoryMap::new(8 << 30, TileGeometry::paper()).unwrap()
    }

    #[test]
    fn paper_geometry_is_128k_per_tile() {
        assert_eq!(TileGeometry::paper().bytes_per_tile(), 128 * 1024);
        assert_eq!(map().tiles(), 65536);
    }

    #[test]
    fn translation_round_trips_structure() {
        let m = map();
        let bytes_per_row = 128u64;
        let loc = m.translate(0).unwrap();
        assert_eq!((loc.tile, loc.row, loc.col_bit), (0, 0, 0));
        // Byte 127 is still data row 0; byte 128 starts row 1 -> tile 1.
        let loc = m.translate(bytes_per_row - 1).unwrap();
        assert_eq!((loc.tile, loc.row, loc.col_bit), (0, 0, 1016));
        let loc = m.translate(bytes_per_row).unwrap();
        assert_eq!((loc.tile, loc.row, loc.col_bit), (1, 0, 0));
        // After one row on every tile, striping wraps to wordline 1.
        let loc = m.translate(bytes_per_row * 65536).unwrap();
        assert_eq!((loc.tile, loc.row, loc.col_bit), (0, 1, 0));
    }

    #[test]
    fn translation_is_injective_on_samples() {
        let m = map();
        let mut seen = std::collections::HashSet::new();
        for addr in (0..10_000_000u64).step_by(977) {
            let loc = m.translate(addr).unwrap();
            assert!(seen.insert((loc.tile, loc.row, loc.col_bit)), "addr {addr}");
        }
    }

    #[test]
    fn out_of_range_addresses_error() {
        let m = map();
        assert!(m.translate((8u64 << 30) + 1).is_err());
    }

    #[test]
    fn only_tiny_datasets_limit_parallelism() {
        let m = map();
        assert_eq!(m.effective_parallel_units(1, 2048), 1);
        assert_eq!(m.effective_parallel_units(129, 2048), 2, "two data rows");
        assert_eq!(m.effective_parallel_units(64 * 1024, 2048), 512);
        // Anything beyond units x row_bytes uses the full device.
        assert_eq!(m.effective_parallel_units(1 << 20, 2048), 2048);
        assert_eq!(m.effective_parallel_units(1 << 30, 2048), 2048);
    }

    #[test]
    fn capacity_must_hold_a_tile() {
        assert!(MemoryMap::new(1024, TileGeometry::paper()).is_err());
        assert!(MemoryMap::new(128 * 1024, TileGeometry::paper()).is_ok());
    }
}
