//! The runtime QoS controller (§4.1).
//!
//! "To find a proper level of accuracy, our framework computes APIM at the
//! maximum level of approximation (32 relax bits). In case of large
//! inaccuracy, it increases the level of accuracy in 4-bit steps until
//! ensuring the acceptable quality of service."

use apim_logic::PrecisionMode;

/// Outcome of an adaptive tuning session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneOutcome {
    /// The selected precision mode (the most aggressive acceptable one).
    pub mode: PrecisionMode,
    /// Number of candidate levels evaluated.
    pub trials: u32,
}

/// The adaptive precision controller.
///
/// Generic over an acceptance oracle so it can drive either real kernel
/// runs (`apim-workloads`) or analytic error estimates.
///
/// ```
/// use apim_arch::{AdaptiveController, PrecisionMode};
///
/// // An application that tolerates at most 12 relaxed bits.
/// let outcome = AdaptiveController::paper().tune(|mode| {
///     mode.relaxed_product_bits() <= 12
/// });
/// assert_eq!(outcome.mode, PrecisionMode::LastStage { relax_bits: 12 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveController {
    /// The starting (maximum) number of relax bits.
    pub max_relax_bits: u8,
    /// Accuracy step per iteration, bits.
    pub step_bits: u8,
}

impl AdaptiveController {
    /// The paper's controller: start at 32 relax bits, step by 4.
    pub fn paper() -> Self {
        AdaptiveController {
            max_relax_bits: 32,
            step_bits: 4,
        }
    }

    /// Finds the most aggressive acceptable approximation level.
    ///
    /// `accept` is called with candidate modes from the maximum relaxation
    /// downward in `step_bits` decrements; tuning stops at the first
    /// accepted candidate. If even `relax_bits = 0` is rejected the
    /// outcome falls back to [`PrecisionMode::Exact`].
    pub fn tune<F>(&self, mut accept: F) -> TuneOutcome
    where
        F: FnMut(PrecisionMode) -> bool,
    {
        let mut trials = 0;
        let mut m = i32::from(self.max_relax_bits);
        let step = i32::from(self.step_bits.max(1));
        loop {
            let mode = if m > 0 {
                PrecisionMode::LastStage {
                    relax_bits: m as u8,
                }
            } else {
                PrecisionMode::Exact
            };
            trials += 1;
            if accept(mode) {
                return TuneOutcome { mode, trials };
            }
            if m <= 0 {
                // Even exact was rejected — the oracle is judging something
                // other than approximation error; report exact.
                return TuneOutcome {
                    mode: PrecisionMode::Exact,
                    trials,
                };
            }
            m -= step;
            if m < 0 {
                m = 0;
            }
        }
    }
}

impl Default for AdaptiveController {
    fn default() -> Self {
        AdaptiveController::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_maximum_when_tolerant() {
        let outcome = AdaptiveController::paper().tune(|_| true);
        assert_eq!(outcome.mode, PrecisionMode::LastStage { relax_bits: 32 });
        assert_eq!(outcome.trials, 1);
    }

    #[test]
    fn steps_down_in_4_bit_increments() {
        // Accept at <= 20 relaxed bits: 32, 28, 24, 20 -> 4 trials.
        let outcome = AdaptiveController::paper().tune(|mode| mode.relaxed_product_bits() <= 20);
        assert_eq!(outcome.mode, PrecisionMode::LastStage { relax_bits: 20 });
        assert_eq!(outcome.trials, 4);
    }

    #[test]
    fn falls_back_to_exact() {
        let outcome = AdaptiveController::paper().tune(|mode| !mode.is_approximate());
        assert_eq!(outcome.mode, PrecisionMode::Exact);
        // 32,28,24,20,16,12,8,4 rejected; 0 accepted as Exact.
        assert_eq!(outcome.trials, 9);
    }

    #[test]
    fn rejecting_everything_still_terminates() {
        let outcome = AdaptiveController::paper().tune(|_| false);
        assert_eq!(outcome.mode, PrecisionMode::Exact);
        assert_eq!(outcome.trials, 9);
    }

    #[test]
    fn custom_step_sizes() {
        let ctl = AdaptiveController {
            max_relax_bits: 16,
            step_bits: 8,
        };
        let outcome = ctl.tune(|mode| mode.relaxed_product_bits() <= 8);
        assert_eq!(outcome.mode, PrecisionMode::LastStage { relax_bits: 8 });
        assert_eq!(outcome.trials, 2);
    }

    #[test]
    fn zero_step_is_clamped() {
        let ctl = AdaptiveController {
            max_relax_bits: 4,
            step_bits: 0,
        };
        let outcome = ctl.tune(|mode| !mode.is_approximate());
        assert_eq!(outcome.mode, PrecisionMode::Exact);
    }
}
