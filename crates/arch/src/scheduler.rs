//! Parallel scheduling of independent operations onto block pairs.
//!
//! The evaluation workloads are data-parallel: each element's arithmetic is
//! independent, so the controller spreads operations over the
//! `parallel_units` active block pairs. The makespan of `k` independent
//! jobs on `u` identical machines is lower-bounded by both the average
//! load and the longest job:
//!
//! ```text
//! makespan_lb = max(ceil(total_cycles / units), longest_op_cycles)
//! ```
//!
//! [`makespan`]/[`makespan_uniform`] return that cycle-granular bound
//! (jobs pipeline across rounds in the profile-level model);
//! [`Schedule::lpt`] builds the explicit job-granular assignment, which
//! trace-level costing uses.

use crate::config::ArchError;
use apim_device::Cycles;

/// Computes the parallel makespan of a set of jobs.
///
/// ```
/// use apim_arch::scheduler::makespan;
/// use apim_device::Cycles;
/// # fn main() -> Result<(), apim_arch::ArchError> {
/// let jobs = [Cycles::new(10), Cycles::new(10), Cycles::new(10), Cycles::new(10)];
/// assert_eq!(makespan(&jobs, 2)?.get(), 20);
/// assert_eq!(makespan(&jobs, 8)?.get(), 10, "bounded by the longest job");
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`ArchError::ZeroUnits`] for `units == 0` — a structured
/// rejection rather than a release-mode division panic, so hostile
/// configurations surfacing through the serving layer degrade cleanly.
pub fn makespan(jobs: &[Cycles], units: u32) -> Result<Cycles, ArchError> {
    if units == 0 {
        return Err(ArchError::ZeroUnits);
    }
    let total: u64 = jobs.iter().map(|c| c.get()).sum();
    let longest = jobs.iter().map(|c| c.get()).max().unwrap_or(0);
    Ok(Cycles::new((total.div_ceil(u64::from(units))).max(longest)))
}

/// One placed job in a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index of the job in the input list.
    pub job: usize,
    /// Unit executing it.
    pub unit: u32,
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles.
    pub cycles: u64,
}

/// An explicit assignment of jobs to units (LPT greedy), for callers that
/// need the timeline rather than just the makespan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    placements: Vec<Placement>,
    makespan: Cycles,
    units: u32,
}

impl Schedule {
    /// Builds a longest-processing-time greedy schedule: jobs sorted by
    /// decreasing length, each placed on the earliest-free unit. For the
    /// near-uniform job sets APIM dispatches this matches the
    /// [`makespan`] lower bound; for pathological mixes it is within the
    /// classic 4/3 factor.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::ZeroUnits`] for `units == 0`.
    pub fn lpt(jobs: &[Cycles], units: u32) -> Result<Self, ArchError> {
        if units == 0 {
            return Err(ArchError::ZeroUnits);
        }
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(jobs[i].get()));
        let mut free_at = vec![0u64; units as usize];
        let mut placements = Vec::with_capacity(jobs.len());
        for job in order {
            let (unit, start) = free_at
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(_, t)| t)
                .expect("at least one unit");
            placements.push(Placement {
                job,
                unit: unit as u32,
                start,
                cycles: jobs[job].get(),
            });
            free_at[unit] = start + jobs[job].get();
        }
        let makespan = Cycles::new(free_at.into_iter().max().unwrap_or(0));
        Ok(Schedule {
            placements,
            makespan,
            units,
        })
    }

    /// The placed jobs (in LPT placement order).
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The schedule's completion time.
    pub fn makespan(&self) -> Cycles {
        self.makespan
    }

    /// Aggregate utilization: busy unit-cycles over `units × makespan`.
    pub fn utilization(&self) -> f64 {
        let busy: u64 = self.placements.iter().map(|p| p.cycles).sum();
        let span = self.makespan.get() * u64::from(self.units);
        if span == 0 {
            0.0
        } else {
            busy as f64 / span as f64
        }
    }
}

/// Makespan for `count` identical jobs of `per_job` cycles — the common
/// case for element-wise kernels, computed without materializing the job
/// list (counts can be billions).
///
/// # Errors
///
/// Returns [`ArchError::ZeroUnits`] for `units == 0`.
pub fn makespan_uniform(per_job: Cycles, count: u64, units: u32) -> Result<Cycles, ArchError> {
    if units == 0 {
        return Err(ArchError::ZeroUnits);
    }
    if count == 0 {
        return Ok(Cycles::ZERO);
    }
    let total = per_job.get().saturating_mul(count);
    Ok(Cycles::new(
        (total.div_ceil(u64::from(units))).max(per_job.get()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_job_set_is_free() {
        assert_eq!(makespan(&[], 4).unwrap(), Cycles::ZERO);
        assert_eq!(
            makespan_uniform(Cycles::new(100), 0, 4).unwrap(),
            Cycles::ZERO
        );
    }

    #[test]
    fn zero_units_is_a_structured_error_not_a_panic() {
        let jobs = [Cycles::new(5)];
        assert_eq!(makespan(&jobs, 0), Err(ArchError::ZeroUnits));
        assert_eq!(
            makespan_uniform(Cycles::new(5), 10, 0),
            Err(ArchError::ZeroUnits)
        );
        assert_eq!(Schedule::lpt(&jobs, 0), Err(ArchError::ZeroUnits));
        assert!(ArchError::ZeroUnits.to_string().contains("zero"));
    }

    #[test]
    fn single_unit_serializes() {
        let jobs = [Cycles::new(5), Cycles::new(7), Cycles::new(11)];
        assert_eq!(makespan(&jobs, 1).unwrap().get(), 23);
    }

    #[test]
    fn many_units_bound_by_longest() {
        let jobs = [Cycles::new(5), Cycles::new(7), Cycles::new(100)];
        assert_eq!(makespan(&jobs, 64).unwrap().get(), 100);
    }

    #[test]
    fn uniform_matches_explicit() {
        let jobs = vec![Cycles::new(13); 1000];
        for units in [1u32, 3, 64, 10_000] {
            assert_eq!(
                makespan(&jobs, units).unwrap(),
                makespan_uniform(Cycles::new(13), 1000, units).unwrap(),
                "units = {units}"
            );
        }
    }

    #[test]
    fn uniform_handles_huge_counts() {
        let c = makespan_uniform(Cycles::new(900), 10_000_000_000, 7680).unwrap();
        assert!(c.get() > 1_000_000_000);
    }

    #[test]
    fn lpt_places_every_job_without_overlap() {
        let jobs: Vec<Cycles> = [13u64, 7, 25, 3, 25, 9, 1]
            .iter()
            .map(|&c| Cycles::new(c))
            .collect();
        let sched = Schedule::lpt(&jobs, 3).unwrap();
        assert_eq!(sched.placements().len(), jobs.len());
        // Per unit: intervals must not overlap.
        for unit in 0..3 {
            let mut intervals: Vec<(u64, u64)> = sched
                .placements()
                .iter()
                .filter(|p| p.unit == unit)
                .map(|p| (p.start, p.start + p.cycles))
                .collect();
            intervals.sort_unstable();
            for pair in intervals.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "overlap on unit {unit}");
            }
        }
        // Every job appears exactly once.
        let mut seen: Vec<usize> = sched.placements().iter().map(|p| p.job).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..jobs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn lpt_respects_the_lower_bound_and_4_3_factor() {
        let jobs: Vec<Cycles> = (1..40).map(|i| Cycles::new(i * 7 % 90 + 1)).collect();
        for units in [1u32, 2, 5, 11] {
            let lb = makespan(&jobs, units).unwrap().get();
            let got = Schedule::lpt(&jobs, units).unwrap().makespan().get();
            assert!(got >= lb, "units {units}");
            assert!(3 * got <= 4 * lb + 3 * jobs.iter().map(|c| c.get()).max().unwrap());
        }
    }

    #[test]
    fn uniform_jobs_schedule_tightly() {
        // Jobs are indivisible: 100 x 17 cycles on 8 units is exactly
        // ceil(100/8) = 13 rounds, one cycle-granular round above the
        // fractional lower bound.
        let jobs = vec![Cycles::new(17); 100];
        let sched = Schedule::lpt(&jobs, 8).unwrap();
        assert_eq!(sched.makespan(), Cycles::new(13 * 17));
        assert!(sched.makespan() >= makespan(&jobs, 8).unwrap());
        assert!(sched.utilization() > 0.95);
    }

    #[test]
    fn empty_schedule_is_zero() {
        let sched = Schedule::lpt(&[], 4).unwrap();
        assert_eq!(sched.makespan(), Cycles::ZERO);
        assert_eq!(sched.utilization(), 0.0);
    }

    #[test]
    fn more_units_never_slower() {
        let jobs: Vec<Cycles> = (1..50).map(Cycles::new).collect();
        let mut last = u64::MAX;
        for units in [1u32, 2, 4, 8, 16, 32] {
            let m = makespan(&jobs, units).unwrap().get();
            assert!(m <= last);
            last = m;
        }
    }
}
