//! Property-based tests for the architecture layer.

use apim_arch::scheduler::{makespan, makespan_uniform};
use apim_arch::{AdaptiveController, ApimConfig, Executor, Op, PrecisionMode, Trace};
use apim_baselines::AppProfile;
use apim_device::Cycles;
use proptest::prelude::*;

proptest! {
    #[test]
    fn makespan_bounds_hold(jobs in proptest::collection::vec(1u64..10_000, 1..64), units in 1u32..128) {
        let cycles: Vec<Cycles> = jobs.iter().map(|&j| Cycles::new(j)).collect();
        let span = makespan(&cycles, units).unwrap().get();
        let total: u64 = jobs.iter().sum();
        let longest = *jobs.iter().max().unwrap();
        // Classic machine-scheduling bounds.
        prop_assert!(span >= longest);
        prop_assert!(span >= total / u64::from(units));
        prop_assert!(span <= total);
    }

    #[test]
    fn uniform_makespan_equals_general(per_job in 1u64..5000, count in 0u64..500, units in 1u32..64) {
        let jobs: Vec<Cycles> = (0..count).map(|_| Cycles::new(per_job)).collect();
        prop_assert_eq!(
            makespan(&jobs, units).unwrap(),
            makespan_uniform(Cycles::new(per_job), count, units).unwrap()
        );
    }

    #[test]
    fn executor_energy_is_unit_independent(units in 1u32..10_000) {
        let base = Executor::new(ApimConfig::default()).unwrap();
        let scaled = Executor::new(ApimConfig {
            parallel_units: units,
            ..ApimConfig::default()
        })
        .unwrap();
        let p = AppProfile::fft();
        let a = base.run_profile(&p, 64 << 20).unwrap();
        let b = scaled.run_profile(&p, 64 << 20).unwrap();
        prop_assert!((a.energy.as_joules() - b.energy.as_joules()).abs()
            < 1e-9 * a.energy.as_joules());
    }

    #[test]
    fn trace_cost_is_permutation_invariant(muls in 0usize..20, adds in 0usize..20) {
        let exec = Executor::new(ApimConfig::default()).unwrap();
        let mul = Op::Mul {
            bits: 32,
            multiplier_ones: Some(7),
            mode: PrecisionMode::Exact,
        };
        let add = Op::Add { bits: 32 };
        let mut forward = Trace::new();
        forward.push_many(mul, muls);
        forward.push_many(add, adds);
        let mut backward = Trace::new();
        backward.push_many(add, adds);
        backward.push_many(mul, muls);
        let a = exec.run_trace(&forward);
        let b = exec.run_trace(&backward);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert!((a.energy.as_joules() - b.energy.as_joules()).abs() <= 1e-12);
    }

    #[test]
    fn adaptive_always_returns_a_level_it_tested(threshold in 0u32..=36) {
        // Oracle: accept anything at or below `threshold` relax bits.
        let outcome = AdaptiveController::paper()
            .tune(|mode| mode.relaxed_product_bits() <= threshold);
        let chosen = outcome.mode.relaxed_product_bits();
        prop_assert!(chosen <= threshold.min(32));
        // The controller steps in 4-bit decrements from 32, so the chosen
        // level is the first grid point at or below the threshold.
        let expected = if threshold >= 32 { 32 } else { threshold / 4 * 4 };
        prop_assert_eq!(chosen, expected);
    }

    #[test]
    fn dataset_scaling_is_linear(mb in 1u64..512) {
        let exec = Executor::new(ApimConfig::default()).unwrap();
        let p = AppProfile::sharpen();
        let one = exec.run_profile(&p, mb << 20).unwrap();
        let two = exec.run_profile(&p, (mb * 2) << 20).unwrap();
        let ratio = two.energy.as_joules() / one.energy.as_joules();
        prop_assert!((ratio - 2.0).abs() < 0.05, "energy ratio {}", ratio);
    }
}
