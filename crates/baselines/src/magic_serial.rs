//! Cost model of the serial MAGIC adder of Talati et al. \[24\] —
//! the "MAGIC" series of Figure 6.
//!
//! \[24\] adds two `N`-bit numbers in `12N + 1` cycles (the same netlist
//! family as `apim_logic::adder_serial`, which is validated gate-level).
//! Adding `M` operands serially accumulates one at a time, and the
//! accumulator grows by up to one bit per addition, so
//!
//! ```text
//! cycles(M operands of N bits) = Σ_{i=1}^{M−1} (12 · w_i + 1),
//! w_i = N + ceil(log2 i)   (accumulator width before step i)
//! ```
//!
//! This is slightly *kinder* to \[24\] than the paper's own expression
//! `(M−1)·(12(N−1)+1)` at small widths, and unlike the paper we also note
//! that \[24\]'s counts exclude shift latency entirely (the paper makes the
//! same remark in §4.2).

use apim_device::Cycles;
use apim_logic::model::ceil_log2;

/// Cycles for \[24\] to add two `n`-bit numbers.
pub fn add_two_cycles(n: u32) -> Cycles {
    Cycles::new(u64::from(12 * n + 1))
}

/// Cycles for \[24\] to reduce `m` operands of `n` bits by serial
/// accumulation.
///
/// ```
/// use apim_baselines::magic_serial::sum_cycles;
/// // Two operands degenerate to a single 12N+1 addition.
/// assert_eq!(sum_cycles(2, 8).get(), 12 * 8 + 1);
/// ```
pub fn sum_cycles(m: u32, n: u32) -> Cycles {
    if m < 2 {
        return Cycles::ZERO;
    }
    (1..m)
        .map(|i| {
            let width = n + ceil_log2(i);
            Cycles::new(u64::from(12 * width + 1))
        })
        .sum()
}

/// Relative energy proxy: serial accumulation executes one NOR per cycle at
/// single-bit width, so energy scales with the cycle count.
pub fn relative_energy(m: u32, n: u32) -> f64 {
    sum_cycles(m, n).get() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_operands_match_paper_formula() {
        for n in [4u32, 8, 16, 32] {
            assert_eq!(sum_cycles(2, n), add_two_cycles(n));
        }
    }

    #[test]
    fn degenerate_counts() {
        assert_eq!(sum_cycles(0, 32), Cycles::ZERO);
        assert_eq!(sum_cycles(1, 32), Cycles::ZERO);
    }

    #[test]
    fn cost_grows_superlinearly_with_operands() {
        // M-1 additions, each over a (slowly) growing width.
        let c4 = sum_cycles(4, 16).get();
        let c8 = sum_cycles(8, 16).get();
        let c16 = sum_cycles(16, 16).get();
        assert!(c8 > 2 * c4 - 30);
        assert!(c16 > 2 * c8 - 30);
    }

    #[test]
    fn accumulator_width_growth_counts() {
        // Adding 9 operands of 8 bits: widths 8,9,10,10,11,11,11,11
        // (ceil_log2 of the operand index).
        let total: u64 = [8u32, 9, 10, 10, 11, 11, 11, 11]
            .iter()
            .map(|&w| u64::from(12 * w + 1))
            .sum();
        assert_eq!(sum_cycles(9, 8).get(), total);
    }

    #[test]
    fn linear_dependency_on_width() {
        // §2: "linear dependency of latency of execution on the size of
        // data".
        let narrow = sum_cycles(8, 8).get() as f64;
        let wide = sum_cycles(8, 32).get() as f64;
        assert!(wide / narrow > 2.5);
    }
}
