//! Baseline cost models for the APIM evaluation (§4).
//!
//! The paper compares APIM against three external systems that this repo
//! cannot run directly and therefore models analytically (see `DESIGN.md`
//! §2 for the substitution arguments):
//!
//! * [`gpu`] — the AMD Radeon R9 390 GPU with 64 GB DDR4: an analytic
//!   compute + data-movement cost model with a capacity-driven cache-miss
//!   curve ([`cache`]). Small datasets are compute-bound (GPU wins); large
//!   datasets are movement-bound (APIM wins) — the crossover structure of
//!   Figure 5. Calibrated once against the paper's quoted 1 GB operating
//!   point (about 28x energy, 4.8x speedup).
//! * [`magic_serial`] — the MAGIC-based serial adder of Talati et al.
//!   \[24\], whose latency grows linearly with operand count *and* width.
//! * [`gpusim`] — a trace-driven GPU memory-hierarchy simulator
//!   (set-associative LRU caches + row-buffer DRAM) standing in for the
//!   paper's modified multi2sim; the analytic [`gpu`] model is its closed
//!   form and the two are cross-validated.
//! * [`imply`] — stateful material-implication logic (\[21\]/\[22\]), the
//!   in-crossbar logic family §2 surveys and rejects (29 steps per
//!   full-adder bit vs MAGIC's 12).
//! * [`pc_adder`] — the complementary-resistive-switching (CRS) crossbar
//!   adder of Siemon et al. \[25\], faster than \[24\] but paying a large
//!   per-array controller area overhead.
//!
//! [`profiles`] holds the per-application compute/traffic profiles shared
//! by the GPU model and the APIM executor.

#![deny(missing_docs)]

pub mod cache;
pub mod gpu;
pub mod gpusim;
pub mod imply;
pub mod magic_serial;
pub mod pc_adder;
pub mod profiles;

pub use gpu::{CostReport, GpuModel, GpuParams};
pub use profiles::AppProfile;
