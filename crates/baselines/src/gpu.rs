//! Analytic cost model of the GPU baseline (AMD Radeon R9 390 + 64 GB
//! DDR4, §4.1).
//!
//! The paper measures the GPU with a power meter; this repo replaces the
//! measurement with a two-term model — compute plus data movement — whose
//! structure reproduces §4.2's observation: *"In small dataset (~KB), the
//! computation cost is dominant, while running applications with large
//! datasets (~GB), the energy and performance ... are bound by the data
//! movement"*. The single free scale (effective reuse capacity, random-
//! access DRAM cost) is calibrated against the paper's quoted 1 GB exact-
//! mode operating point (≈28× energy, ≈4.8× speedup vs APIM); everything
//! else about Figures 5/6 and Table 1 then *emerges*.

use apim_device::{EnergyDelayProduct, Joules, Seconds};

use crate::cache::CapacityModel;
use crate::profiles::AppProfile;

/// Time + energy of one baseline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Wall-clock execution time.
    pub time: Seconds,
    /// Energy consumed.
    pub energy: Joules,
}

impl CostReport {
    /// Energy-delay product.
    pub fn edp(&self) -> EnergyDelayProduct {
        self.energy * self.time
    }
}

/// Tunable parameters of the GPU model.
///
/// ```
/// use apim_baselines::GpuParams;
/// let p = GpuParams::r9_390();
/// assert!(p.compute_ops_per_sec > 1e11);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuParams {
    /// Effective sustained arithmetic throughput, ops/s.
    pub compute_ops_per_sec: f64,
    /// Dynamic energy per arithmetic operation, joules (core + register
    /// file + scheduling overhead).
    pub energy_per_op: Joules,
    /// Effective on-chip reuse capacity, bytes (caches, LDS and row-buffer
    /// locality combined).
    pub reuse_capacity_bytes: u64,
    /// Sustained random-access DRAM bandwidth, bytes/s.
    pub dram_bandwidth: f64,
    /// System-level energy per DRAM byte moved (device + IO + controller),
    /// joules.
    pub energy_per_dram_byte: Joules,
    /// Energy per on-chip byte referenced, joules.
    pub energy_per_cache_byte: Joules,
    /// Fixed launch/transfer overhead per kernel invocation, seconds.
    pub launch_overhead: Seconds,
}

impl GpuParams {
    /// The calibrated R9 390 parameter set (see module docs and
    /// `EXPERIMENTS.md` for the calibration).
    pub fn r9_390() -> Self {
        GpuParams {
            compute_ops_per_sec: 1.0e12,
            energy_per_op: Joules::from_picojoules(60.0),
            reuse_capacity_bytes: 160 << 20,
            dram_bandwidth: 1.2e10,
            energy_per_dram_byte: Joules::from_picojoules(400.0),
            energy_per_cache_byte: Joules::from_picojoules(2.0),
            launch_overhead: Seconds::from_nanos(2.0e5), // 0.2 ms
        }
    }
}

impl Default for GpuParams {
    fn default() -> Self {
        GpuParams::r9_390()
    }
}

/// The GPU baseline cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    params: GpuParams,
    cache: CapacityModel,
}

impl GpuModel {
    /// Builds the model.
    pub fn new(params: GpuParams) -> Self {
        let cache = CapacityModel::new(params.reuse_capacity_bytes);
        GpuModel { params, cache }
    }

    /// The parameter set in force.
    pub fn params(&self) -> &GpuParams {
        &self.params
    }

    /// Costs one application run over a resident dataset of
    /// `dataset_bytes` bytes.
    ///
    /// ```
    /// use apim_baselines::{GpuModel, GpuParams, AppProfile};
    /// let gpu = GpuModel::new(GpuParams::r9_390());
    /// let small = gpu.run(&AppProfile::sobel(), 32 << 20);
    /// let large = gpu.run(&AppProfile::sobel(), 1 << 30);
    /// // Cost grows super-linearly across the capacity cliff.
    /// let scale = (1u64 << 30) as f64 / (32u64 << 20) as f64;
    /// assert!(large.time.as_secs() > small.time.as_secs() * scale);
    /// ```
    pub fn run(&self, profile: &AppProfile, dataset_bytes: u64) -> CostReport {
        let p = &self.params;
        let ops = profile.total_ops(dataset_bytes);
        let traffic = dataset_bytes as f64 * profile.traffic_amplification;
        let dram_bytes = self.cache.dram_bytes(traffic, dataset_bytes);

        let t_compute = ops / p.compute_ops_per_sec;
        let t_mem = dram_bytes / p.dram_bandwidth;
        // Compute and DRAM access overlap poorly under capacity thrashing;
        // serialized addition matches the paper's movement-bound regime.
        let time = p.launch_overhead + Seconds::new(t_compute + t_mem);

        let energy = p.energy_per_op * ops
            + p.energy_per_dram_byte * dram_bytes
            + p.energy_per_cache_byte * traffic;
        CostReport { time, energy }
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::new(GpuParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuModel {
        GpuModel::default()
    }

    #[test]
    fn costs_are_positive_and_monotone_in_size() {
        let gpu = gpu();
        let p = AppProfile::fft();
        let mut last = CostReport {
            time: Seconds::ZERO,
            energy: Joules::ZERO,
        };
        for mb in [32u64, 64, 128, 256, 512, 1024] {
            let r = gpu.run(&p, mb << 20);
            assert!(r.time.as_secs() > last.time.as_secs());
            assert!(r.energy.as_joules() > last.energy.as_joules());
            last = r;
        }
    }

    #[test]
    fn small_datasets_are_compute_bound() {
        let gpu = gpu();
        let p = AppProfile::sobel();
        let r = gpu.run(&p, 32 << 20);
        // Under the reuse capacity: no DRAM term, so doubling ops_per_byte
        // roughly doubles the (time - overhead).
        let base = r.time.as_secs() - gpu.params().launch_overhead.as_secs();
        let mut p2 = p.clone();
        p2.ops_per_byte *= 2.0;
        let r2 = gpu.run(&p2, 32 << 20);
        let base2 = r2.time.as_secs() - gpu.params().launch_overhead.as_secs();
        assert!((base2 / base - 2.0).abs() < 1e-6);
    }

    #[test]
    fn large_datasets_are_movement_bound() {
        let gpu = gpu();
        let p = AppProfile::sobel();
        let d = 1u64 << 30;
        let r = gpu.run(&p, d);
        let compute_only = p.total_ops(d) / gpu.params().compute_ops_per_sec;
        assert!(
            r.time.as_secs() > 10.0 * compute_only,
            "at 1 GiB the DRAM term must dominate"
        );
    }

    #[test]
    fn per_byte_cost_grows_across_capacity_cliff() {
        let gpu = gpu();
        let p = AppProfile::robert();
        let small = gpu.run(&p, 64 << 20);
        let large = gpu.run(&p, 1 << 30);
        let per_byte_small = (small.energy.as_joules()) / (64u64 << 20) as f64;
        let per_byte_large = (large.energy.as_joules()) / (1u64 << 30) as f64;
        assert!(per_byte_large > 3.0 * per_byte_small);
    }

    #[test]
    fn edp_is_product() {
        let gpu = gpu();
        let r = gpu.run(&AppProfile::sharpen(), 256 << 20);
        let expect = r.energy.as_joules() * r.time.as_secs();
        assert!((r.edp().as_joule_seconds() - expect).abs() < 1e-12);
    }
}
