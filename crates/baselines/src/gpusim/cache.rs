//! A set-associative LRU cache.

/// A classic set-associative cache with true-LRU replacement, tracking
/// hit/miss statistics. Addresses are byte addresses; the cache works on
/// aligned lines.
///
/// ```
/// use apim_baselines::gpusim::cache::SetAssocCache;
/// let mut c = SetAssocCache::new(1024, 2, 64); // 16 lines, 2-way
/// assert!(!c.access(0));  // cold miss
/// assert!(c.access(0));   // hit
/// assert!(c.access(63));  // same line
/// assert!(!c.access(64)); // next line
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<(u64, bool)>>,
    set_shift: u32,
    set_mask: u64,
    line_shift: u32,
    ways: usize,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

/// Outcome of one flagged cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether a dirty line was evicted to make room (a write-back to the
    /// next tier).
    pub evicted_dirty: bool,
}

impl SetAssocCache {
    /// Builds a cache of `capacity_bytes` with `ways` ways and
    /// `line_bytes` lines. Capacity is rounded down to a power-of-two set
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `line_bytes` is not a power of
    /// two.
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(capacity_bytes > 0 && ways > 0, "degenerate cache");
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        let lines = (capacity_bytes / line_bytes).max(1);
        let raw_sets = (lines / ways as u64).max(1);
        // Round down to a power of two so set indexing is a mask.
        let set_count = 1u64 << (63 - raw_sets.leading_zeros());
        SetAssocCache {
            sets: vec![Vec::with_capacity(ways); set_count as usize],
            set_shift: line_bytes.trailing_zeros(),
            set_mask: set_count - 1,
            line_shift: line_bytes.trailing_zeros(),
            ways,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Accesses a byte address; returns `true` on a hit. Misses allocate
    /// (evicting LRU if the set is full). Reads only — see
    /// [`SetAssocCache::access_flagged`] for write-allocate with dirty
    /// tracking.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_flagged(addr, false).hit
    }

    /// Accesses a byte address, optionally as a write (write-allocate,
    /// write-back policy): writes mark the line dirty, and evicting a
    /// dirty line reports a write-back the caller must charge to the next
    /// tier.
    pub fn access_flagged(&mut self, addr: u64, write: bool) -> AccessResult {
        let tag = addr >> self.line_shift;
        let set_idx = ((addr >> self.set_shift) & self.set_mask) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            // Move to MRU position, accumulating dirtiness.
            let (t, dirty) = set.remove(pos);
            set.push((t, dirty || write));
            self.hits += 1;
            AccessResult {
                hit: true,
                evicted_dirty: false,
            }
        } else {
            let mut evicted_dirty = false;
            if set.len() == self.ways {
                let (_, dirty) = set.remove(0); // evict LRU
                if dirty {
                    evicted_dirty = true;
                    self.writebacks += 1;
                }
            }
            set.push((tag, write));
            self.misses += 1;
            AccessResult {
                hit: false,
                evicted_dirty,
            }
        }
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hits recorded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over all accesses so far (0 when unused).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_hot() {
        let mut c = SetAssocCache::new(4096, 4, 64);
        assert!(!c.access(128));
        assert!(c.access(128));
        assert!(c.access(129), "same line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_the_oldest() {
        // 1 set, 2 ways, 64B lines => capacity 128B.
        let mut c = SetAssocCache::new(128, 2, 64);
        assert_eq!(c.set_count(), 1);
        c.access(0); // A
        c.access(64); // B
        c.access(0); // touch A -> B is LRU
        c.access(128); // C evicts B
        assert!(c.access(0), "A survives");
        assert!(!c.access(64), "B was evicted");
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = SetAssocCache::new(64 * 1024, 8, 64);
        let lines: Vec<u64> = (0..512).map(|i| i * 64).collect(); // 32 KiB
        for &a in &lines {
            c.access(a);
        }
        for &a in &lines {
            assert!(c.access(a), "addr {a} should hit after warmup");
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_in_loop_order() {
        let mut c = SetAssocCache::new(4 * 1024, 4, 64); // 64 lines
        let lines: Vec<u64> = (0..256).map(|i| i * 64).collect(); // 16 KiB
        for _ in 0..3 {
            for &a in &lines {
                c.access(a);
            }
        }
        // Sequential sweep over 4x capacity with LRU: ~every access misses.
        assert!(c.miss_ratio() > 0.9, "miss ratio {}", c.miss_ratio());
    }

    #[test]
    fn dirty_lines_write_back_on_eviction() {
        // 1 set, 2 ways.
        let mut c = SetAssocCache::new(128, 2, 64);
        c.access_flagged(0, true); // A, dirty
        c.access_flagged(64, false); // B, clean
                                     // C evicts A (LRU, dirty) -> write-back.
        let r = c.access_flagged(128, false);
        assert!(!r.hit);
        assert!(r.evicted_dirty);
        assert_eq!(c.writebacks(), 1);
        // D evicts B (clean) -> no write-back.
        let r = c.access_flagged(192, false);
        assert!(!r.evicted_dirty);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn rewriting_a_resident_line_keeps_it_dirty() {
        let mut c = SetAssocCache::new(128, 2, 64);
        c.access_flagged(0, true);
        c.access_flagged(0, false); // read does not clean it
        c.access_flagged(64, false);
        // LRU order: A was last touched before B's insert, so A (dirty)
        // is the LRU victim when C arrives.
        let r = c.access_flagged(128, false);
        assert!(r.evicted_dirty, "the dirty line was LRU");
    }

    #[test]
    fn miss_ratio_of_fresh_cache_is_zero() {
        let c = SetAssocCache::new(1024, 2, 64);
        assert_eq!(c.miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_lines_rejected() {
        let _ = SetAssocCache::new(1024, 2, 48);
    }
}
