//! A row-buffer DRAM channel model (the host DDR4 DIMMs of §4.1).

use apim_device::Joules;

/// One DRAM channel with open-row policy: consecutive accesses to the same
/// row hit the row buffer (CAS-only); switching rows pays
/// precharge + activate.
#[derive(Debug, Clone, PartialEq)]
pub struct DramChannel {
    /// Row size, bytes (one row per bank spans this much of the address
    /// space in our simplified single-bank interleaving).
    pub row_bytes: u64,
    /// Row-buffer hit latency, ns (CAS + burst).
    pub t_hit_ns: f64,
    /// Row-buffer miss latency, ns (precharge + activate + CAS).
    pub t_miss_ns: f64,
    /// Energy per byte on a row hit.
    pub e_hit_per_byte: Joules,
    /// Extra energy per activation (row open).
    pub e_activate: Joules,
    open_row: Option<u64>,
    row_hits: u64,
    row_misses: u64,
}

impl DramChannel {
    /// DDR4-like defaults: 2 KiB rows, ~15 ns CAS, ~45 ns full
    /// precharge/activate/CAS, pJ-scale per-byte transfer energy. The
    /// per-byte energy matches the analytic model's 400 pJ/B system cost
    /// when row locality is poor.
    pub fn ddr4() -> Self {
        DramChannel {
            row_bytes: 2048,
            t_hit_ns: 15.0,
            t_miss_ns: 45.0,
            e_hit_per_byte: Joules::from_picojoules(150.0),
            e_activate: Joules::from_picojoules(15_000.0),
            open_row: None,
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// Accesses `bytes` at `addr`; returns `(latency_ns, energy)`.
    pub fn access(&mut self, addr: u64, bytes: u64) -> (f64, Joules) {
        let row = addr / self.row_bytes;
        let transfer = self.e_hit_per_byte * bytes as f64;
        if self.open_row == Some(row) {
            self.row_hits += 1;
            (self.t_hit_ns, transfer)
        } else {
            self.open_row = Some(row);
            self.row_misses += 1;
            (self.t_miss_ns, transfer + self.e_activate)
        }
    }

    /// Row-buffer hit ratio so far.
    pub fn row_hit_ratio(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

impl Default for DramChannel {
    fn default() -> Self {
        DramChannel::ddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_accesses_hit_the_open_row() {
        let mut d = DramChannel::ddr4();
        let (t0, _) = d.access(0, 64);
        let (t1, _) = d.access(64, 64);
        let (t2, _) = d.access(128, 64);
        assert!(t0 > t1, "first access opens the row");
        assert_eq!(t1, t2);
        assert!(d.row_hit_ratio() > 0.6);
    }

    #[test]
    fn row_switches_pay_activation() {
        let mut d = DramChannel::ddr4();
        let (_, e0) = d.access(0, 64);
        let (_, e1) = d.access(1 << 20, 64); // different row
        let (_, e2) = d.access(1 << 20, 64); // same row again
        assert!(e0.as_joules() > e2.as_joules());
        assert!(e1.as_joules() > e2.as_joules());
        assert_eq!(d.row_hit_ratio(), 1.0 / 3.0);
    }

    #[test]
    fn random_rows_never_hit() {
        let mut d = DramChannel::ddr4();
        for i in 0..100u64 {
            d.access(i * 4096 * 7919, 64);
        }
        assert!(d.row_hit_ratio() < 0.05);
    }

    #[test]
    fn energy_scales_with_transfer_size() {
        let mut d = DramChannel::ddr4();
        d.access(0, 64);
        let (_, e_small) = d.access(64, 64);
        let (_, e_big) = d.access(128, 256);
        assert!(e_big.as_joules() > 3.0 * e_small.as_joules());
    }
}
