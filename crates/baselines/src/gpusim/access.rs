//! Address-stream generators for the evaluation kernels.
//!
//! Each generator produces the byte-address sequence a GPU implementation
//! of the kernel issues over a resident dataset: convolutions sweep with
//! overlapping stencil reads, the FFT makes `log2 n` strided passes, and
//! the scan-style kernels stream. Streams are lazy iterators so GB-scale
//! address spaces cost nothing to describe.

/// The shape of a kernel's memory traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternKind {
    /// Linear sweeps over the dataset.
    Streaming,
    /// 2-D stencil of `(2·radius + 1)²` taps over a `row_pixels`-wide
    /// image of 4-byte samples.
    Stencil {
        /// Neighbourhood radius (1 for a 3×3 kernel).
        radius: usize,
        /// Image width in pixels.
        row_pixels: usize,
    },
    /// Power-of-two strided passes (butterfly exchanges).
    Strided,
}

/// A kernel's access pattern: a [`PatternKind`] repeated over `passes`
/// sweeps of the dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPattern {
    /// Traffic shape.
    pub kind: PatternKind,
    /// Number of full sweeps over the dataset.
    pub passes: u32,
}

impl AccessPattern {
    /// A streaming pattern with the given number of passes.
    pub fn streaming(passes: u32) -> Self {
        AccessPattern {
            kind: PatternKind::Streaming,
            passes: passes.max(1),
        }
    }

    /// A stencil pattern: `size × size` taps (`size` odd) over
    /// `row_pixels`-wide rows, two sweeps (e.g. gradient + magnitude).
    pub fn stencil(size: usize, row_pixels: usize) -> Self {
        AccessPattern {
            kind: PatternKind::Stencil {
                radius: size / 2,
                row_pixels: row_pixels.max(16),
            },
            passes: 2,
        }
    }

    /// Strided passes with doubling strides (an FFT of `passes` stages).
    pub fn strided_passes(passes: u32) -> Self {
        AccessPattern {
            kind: PatternKind::Strided,
            passes: passes.max(1),
        }
    }

    /// The natural pattern for one of the six evaluation apps (by profile
    /// name).
    pub fn for_app(name: &str) -> Self {
        match name {
            "Sobel" | "Sharpen" => AccessPattern::stencil(3, 4096),
            "Robert" => AccessPattern::stencil(2, 4096),
            "FFT" => AccessPattern::strided_passes(10),
            _ => AccessPattern::streaming(2),
        }
    }

    /// Total accesses this pattern's [`AccessPattern::stream`] issues over
    /// `bytes` (same granularity as the stream: lines for streaming,
    /// elements for strided/stencil traffic).
    pub fn accesses(&self, bytes: u64, line_bytes: u64) -> u64 {
        match &self.kind {
            PatternKind::Streaming => (bytes / line_bytes).max(1) * u64::from(self.passes),
            PatternKind::Strided => (bytes / 4).max(1) * u64::from(self.passes),
            PatternKind::Stencil { radius, .. } => {
                let pixels = (bytes / 4).max(1);
                let taps = (2 * radius + 1).pow(2) as u64;
                pixels * taps * u64::from(self.passes)
            }
        }
    }

    /// The lazy byte-address stream over a dataset of `bytes`.
    pub fn stream(&self, bytes: u64, line_bytes: u64) -> Box<dyn Iterator<Item = u64>> {
        let bytes = bytes.max(line_bytes);
        match self.kind {
            PatternKind::Streaming => {
                let lines = bytes / line_bytes;
                let passes = u64::from(self.passes);
                Box::new((0..passes).flat_map(move |_| (0..lines).map(move |l| l * line_bytes)))
            }
            PatternKind::Strided => {
                let elems = bytes / 4;
                let passes = self.passes;
                Box::new((0..passes).flat_map(move |p| {
                    let stride = 1u64 << p.min(30);
                    // Visit every element once per pass, in stride order:
                    // for each offset within the stride group, walk the
                    // strided chain — the classic butterfly footprint.
                    (0..stride.min(elems)).flat_map(move |offset| {
                        (0..elems.div_ceil(stride).max(1))
                            .map(move |i| ((offset + i * stride) % elems.max(1)) * 4)
                    })
                }))
            }
            PatternKind::Stencil { radius, row_pixels } => {
                let pixels = (bytes / 4).max(1);
                let width = row_pixels as u64;
                let height = (pixels / width).max(1);
                let r = radius as i64;
                let passes = u64::from(self.passes);
                Box::new((0..passes).flat_map(move |_| {
                    (0..height).flat_map(move |y| {
                        (0..width).flat_map(move |x| {
                            (-r..=r).flat_map(move |dy| {
                                (-r..=r).map(move |dx| {
                                    let xx = (x as i64 + dx).clamp(0, width as i64 - 1) as u64;
                                    let yy = (y as i64 + dy).clamp(0, height as i64 - 1) as u64;
                                    (yy * width + xx) * 4
                                })
                            })
                        })
                    })
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_visits_every_line_in_order() {
        let p = AccessPattern::streaming(1);
        let addrs: Vec<u64> = p.stream(256, 64).collect();
        assert_eq!(addrs, vec![0, 64, 128, 192]);
    }

    #[test]
    fn streaming_passes_repeat() {
        let p = AccessPattern::streaming(3);
        let addrs: Vec<u64> = p.stream(128, 64).collect();
        assert_eq!(addrs, vec![0, 64, 0, 64, 0, 64]);
        assert_eq!(p.accesses(128, 64), 6);
    }

    #[test]
    fn stencil_covers_the_neighbourhood() {
        let p = AccessPattern::stencil(3, 16);
        let addrs: Vec<u64> = p.stream(16 * 16 * 4, 64).take(9).collect();
        assert_eq!(addrs.len(), 9);
        // First output (0,0) with clamped borders: addresses within the
        // first two rows.
        assert!(addrs.iter().all(|&a| a < 2 * 16 * 4));
    }

    #[test]
    fn stencil_access_count_matches_formula() {
        let p = AccessPattern::stencil(3, 16);
        let bytes = 16 * 8 * 4; // 16x8 pixels
        let n = p.stream(bytes, 64).count() as u64;
        assert_eq!(n, p.accesses(bytes, 64));
    }

    #[test]
    fn strided_visits_every_element_per_pass() {
        let p = AccessPattern::strided_passes(3);
        let bytes = 64 * 4;
        let n = p.stream(bytes, 64).count() as u64;
        assert_eq!(n, p.accesses(bytes, 64));
        assert_eq!(n, 3 * 64);
    }

    #[test]
    fn strided_pass_two_jumps() {
        let p = AccessPattern::strided_passes(2);
        let addrs: Vec<u64> = p.stream(16 * 4, 64).collect();
        // Pass 0: sequential; pass 1: stride-2 chains.
        assert_eq!(&addrs[..4], &[0, 4, 8, 12]);
        let second_pass = &addrs[16..20];
        assert_eq!(second_pass, &[0, 8, 16, 24]);
    }

    #[test]
    fn for_app_maps_all_six() {
        for name in ["Sobel", "Robert", "FFT", "DwtHaar1D", "Sharpen", "QuasiR"] {
            let p = AccessPattern::for_app(name);
            assert!(p.accesses(1 << 20, 64) > 0, "{name}");
        }
        assert_eq!(AccessPattern::for_app("FFT").kind, PatternKind::Strided);
    }
}
