//! A trace-driven GPU memory-hierarchy simulator — the repo's stand-in for
//! the paper's modified multi2sim (§4.1).
//!
//! The analytic [`crate::gpu::GpuModel`] costs workloads with closed-form
//! compute/movement terms; this module *derives* the same behaviour from
//! first principles: per-application address streams
//! ([`access::AccessPattern`]) run through a set-associative LRU cache
//! hierarchy ([`cache::SetAssocCache`]) backed by a row-buffer DRAM model
//! ([`dram::DramChannel`]). Datasets are simulated by sampling a window of
//! the stream and scaling (standard sampled-simulation methodology — a
//! full 1 GB trace would be billions of accesses).
//!
//! Tests cross-validate the two models: the trace-driven miss curve shows
//! the same capacity cliff the analytic model postulates, streaming beats
//! strided access, and the movement-bound regime appears at the same
//! dataset scale.

pub mod access;
pub mod cache;
pub mod dram;

use crate::gpu::CostReport;
use crate::profiles::AppProfile;
use access::{AccessPattern, PatternKind};
use apim_device::{Joules, Seconds};
use cache::SetAssocCache;
use dram::DramChannel;

/// One in `write_period` accesses is a store (write-allocate, write-back):
/// stencils write one output per pixel's tap reads; streaming and strided
/// kernels read-modify-write.
fn write_period(pattern: &AccessPattern) -> usize {
    match &pattern.kind {
        PatternKind::Stencil { radius, .. } => (2 * radius + 1).pow(2),
        PatternKind::Streaming | PatternKind::Strided => 2,
    }
}

/// Configuration of the trace-driven simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSimConfig {
    /// On-chip L2 capacity, bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Device-side buffer capacity, bytes (the staging tier between the
    /// GPU and the host DIMMs holding the resident dataset).
    pub buffer_bytes: u64,
    /// Buffer associativity.
    pub buffer_ways: usize,
    /// Cache line size, bytes.
    pub line_bytes: u64,
    /// L2 hit latency, ns.
    pub t_l2_ns: f64,
    /// Buffer hit latency, ns.
    pub t_buffer_ns: f64,
    /// Arithmetic throughput, ops/s.
    pub compute_ops_per_sec: f64,
    /// Energy per arithmetic op.
    pub energy_per_op: Joules,
    /// Energy per byte served from L2.
    pub energy_per_l2_byte: Joules,
    /// Energy per byte served from the buffer.
    pub energy_per_buffer_byte: Joules,
    /// Maximum sampled accesses per run (the rest is scaled).
    pub sample_limit: usize,
    /// Memory-level parallelism for on-chip tiers: a GPU overlaps this many
    /// L2/buffer accesses, so per-access latency amortizes by this factor.
    pub mlp_on_chip: f64,
    /// Memory-level parallelism toward host DRAM (PCIe/host channels
    /// serialize far more than on-chip SRAM).
    pub mlp_host: f64,
}

impl Default for GpuSimConfig {
    fn default() -> Self {
        GpuSimConfig {
            l2_bytes: 4 << 20,
            l2_ways: 16,
            buffer_bytes: 160 << 20,
            buffer_ways: 16,
            line_bytes: 64,
            t_l2_ns: 0.5,
            t_buffer_ns: 2.0,
            compute_ops_per_sec: 1.0e12,
            energy_per_op: Joules::from_picojoules(60.0),
            energy_per_l2_byte: Joules::from_picojoules(2.0),
            energy_per_buffer_byte: Joules::from_picojoules(20.0),
            sample_limit: 400_000,
            mlp_on_chip: 64.0,
            mlp_host: 4.0,
        }
    }
}

/// Outcome of one trace-driven run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Time/energy (comparable with the analytic model's
    /// [`crate::gpu::CostReport`]).
    pub cost: CostReport,
    /// Fraction of line requests that missed all the way to host DRAM.
    pub host_miss_ratio: f64,
    /// Fraction of line requests that hit in L2.
    pub l2_hit_ratio: f64,
    /// Fraction of line requests served by the device-side buffer.
    pub buffer_hit_ratio: f64,
    /// Dirty write-backs from the buffer to host DRAM, as a fraction of
    /// sampled accesses.
    pub writeback_ratio: f64,
    /// Accesses actually simulated before scaling.
    pub sampled_accesses: usize,
    /// Scale factor applied to the sampled window.
    pub scale: f64,
}

/// The trace-driven simulator.
#[derive(Debug, Clone)]
pub struct GpuSim {
    config: GpuSimConfig,
}

impl GpuSim {
    /// Builds a simulator.
    pub fn new(config: GpuSimConfig) -> Self {
        GpuSim { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GpuSimConfig {
        &self.config
    }

    /// Runs an application's access pattern over a resident dataset.
    pub fn run(
        &self,
        pattern: &AccessPattern,
        profile: &AppProfile,
        dataset_bytes: u64,
    ) -> SimOutcome {
        let cfg = &self.config;
        // Sampled, scaled-system simulation: simulate a slice of the
        // dataset small enough to trace fully, with *both* capacity-
        // sensitive tiers scaled by the same shrink factor so the
        // slice-to-capacity ratios (and hence miss behaviour) are
        // representative. Costs then scale back up by the access-count
        // ratio.
        let total_accesses = pattern.accesses(dataset_bytes, cfg.line_bytes).max(1);
        let sim_bytes = if total_accesses <= cfg.sample_limit as u64 {
            dataset_bytes
        } else {
            ((dataset_bytes as f64 * cfg.sample_limit as f64 / total_accesses as f64) as u64)
                .max(cfg.line_bytes * 64)
        };
        let shrink = (dataset_bytes as f64 / sim_bytes as f64).max(1.0);
        let min_cache = cfg.line_bytes * cfg.buffer_ways as u64 * 4;
        let l2_capacity = ((cfg.l2_bytes as f64 / shrink) as u64).max(min_cache);
        let buffer_capacity = ((cfg.buffer_bytes as f64 / shrink) as u64).max(min_cache);

        let mut l2 = SetAssocCache::new(l2_capacity, cfg.l2_ways, cfg.line_bytes);
        let mut buffer = SetAssocCache::new(buffer_capacity, cfg.buffer_ways, cfg.line_bytes);
        let mut dram = DramChannel::default();

        let total_refs = total_accesses as f64;
        let period = write_period(pattern);
        let mut stream = pattern.stream(sim_bytes, cfg.line_bytes);
        let mut sampled = 0usize;
        let mut l2_hits = 0u64;
        let mut buffer_hits = 0u64;
        let mut host_misses = 0u64;
        let mut writebacks = 0u64;
        let mut time_ns = 0.0f64;
        let mut energy = Joules::ZERO;

        for line_addr in stream.by_ref() {
            if sampled >= cfg.sample_limit {
                break;
            }
            sampled += 1;
            let is_write = sampled.is_multiple_of(period);
            let l2_result = l2.access_flagged(line_addr, is_write);
            if l2_result.hit {
                l2_hits += 1;
                time_ns += cfg.t_l2_ns / cfg.mlp_on_chip;
                energy += cfg.energy_per_l2_byte * cfg.line_bytes as f64;
                continue;
            }
            // An L2 dirty eviction lands in the buffer (cheap, on-device).
            let buf_result = buffer.access_flagged(line_addr, l2_result.evicted_dirty || is_write);
            if buf_result.hit {
                buffer_hits += 1;
                time_ns += cfg.t_buffer_ns / cfg.mlp_on_chip;
                energy += cfg.energy_per_buffer_byte * cfg.line_bytes as f64;
            } else {
                host_misses += 1;
                let (t, e) = dram.access(line_addr, cfg.line_bytes);
                time_ns += t / cfg.mlp_host;
                energy += e;
            }
            if buf_result.evicted_dirty {
                // Dirty buffer eviction: a full write-back to host DRAM.
                writebacks += 1;
                let (t, e) = dram.access(line_addr ^ 0x8000_0000_0000, cfg.line_bytes);
                time_ns += t / cfg.mlp_host;
                energy += e;
            }
        }

        let scale = if sampled == 0 {
            0.0
        } else {
            total_refs / sampled as f64
        };
        let mem_time = Seconds::from_nanos(time_ns * scale);
        let mem_energy = energy * scale;
        let ops = profile.total_ops(dataset_bytes);
        let compute_time = Seconds::new(ops / cfg.compute_ops_per_sec);
        let compute_energy = cfg.energy_per_op * ops;
        SimOutcome {
            cost: CostReport {
                time: mem_time + compute_time,
                energy: mem_energy + compute_energy,
            },
            host_miss_ratio: host_misses as f64 / sampled.max(1) as f64,
            l2_hit_ratio: l2_hits as f64 / sampled.max(1) as f64,
            buffer_hit_ratio: buffer_hits as f64 / sampled.max(1) as f64,
            writeback_ratio: writebacks as f64 / sampled.max(1) as f64,
            sampled_accesses: sampled,
            scale,
        }
    }
}

impl Default for GpuSim {
    fn default() -> Self {
        GpuSim::new(GpuSimConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{GpuModel, GpuParams};

    fn sim() -> GpuSim {
        GpuSim::default()
    }

    #[test]
    fn miss_ratio_shows_the_capacity_cliff() {
        // Streaming with 2 passes: below the buffer capacity only the cold
        // pass misses to host (~50 %); beyond it both passes miss.
        let s = sim();
        let profile = AppProfile::dwt_haar1d();
        let pattern = AccessPattern::streaming(2);
        let small = s.run(&pattern, &profile, 32 << 20);
        let large = s.run(&pattern, &profile, 1 << 30);
        assert!(
            small.host_miss_ratio < 0.6,
            "32 MB: only the cold pass misses: {}",
            small.host_miss_ratio
        );
        assert!(
            large.host_miss_ratio > 0.9,
            "1 GB thrashes both passes: {}",
            large.host_miss_ratio
        );
    }

    #[test]
    fn fft_cliff_is_dramatic() {
        let s = sim();
        let pattern = AccessPattern::strided_passes(10);
        let small = s.run(&pattern, &AppProfile::fft(), 32 << 20);
        let large = s.run(&pattern, &AppProfile::fft(), 1 << 30);
        assert!(small.host_miss_ratio < 0.05, "{}", small.host_miss_ratio);
        assert!(large.host_miss_ratio > 0.5, "{}", large.host_miss_ratio);
    }

    #[test]
    fn stencil_reuse_hits_l2() {
        let s = sim();
        let out = s.run(
            &AccessPattern::stencil(3, 4096),
            &AppProfile::sobel(),
            256 << 20,
        );
        // A 3x3 stencil re-reads 8 of 9 neighbours: strong L2 locality.
        assert!(out.l2_hit_ratio > 0.5, "l2 hits {}", out.l2_hit_ratio);
    }

    #[test]
    fn strided_cliff_is_sharper_than_streaming() {
        // Crossing the capacity cliff multiplies the strided pattern's
        // host misses far more than the streaming pattern's (the FFT's
        // later passes lose *all* locality at once).
        let s = sim();
        let growth = |pattern: &AccessPattern, profile: &AppProfile| {
            let small = s.run(pattern, profile, 32 << 20).host_miss_ratio.max(1e-4);
            let large = s.run(pattern, profile, 1 << 30).host_miss_ratio;
            large / small
        };
        let strided = growth(&AccessPattern::strided_passes(10), &AppProfile::fft());
        let streaming = growth(&AccessPattern::streaming(2), &AppProfile::quasi_random());
        assert!(
            strided > 5.0 * streaming,
            "strided growth {strided} vs streaming {streaming}"
        );
    }

    #[test]
    fn trace_driven_agrees_with_analytic_trends() {
        // The analytic model is the trace-driven one's closed form; their
        // per-byte cost ratios across the cliff must agree in direction
        // and rough magnitude.
        let s = sim();
        let analytic = GpuModel::new(GpuParams::r9_390());
        let profile = AppProfile::sobel();
        let pattern = AccessPattern::stencil(3, 4096);
        let (small, large) = (64u64 << 20, 1u64 << 30);
        let t_small = s.run(&pattern, &profile, small).cost;
        let t_large = s.run(&pattern, &profile, large).cost;
        let a_small = analytic.run(&profile, small);
        let a_large = analytic.run(&profile, large);
        let sim_growth =
            (t_large.time.as_secs() / large as f64) / (t_small.time.as_secs() / small as f64);
        let ana_growth =
            (a_large.time.as_secs() / large as f64) / (a_small.time.as_secs() / small as f64);
        assert!(sim_growth > 1.5, "trace-driven cliff: {sim_growth}");
        assert!(ana_growth > 1.5, "analytic cliff: {ana_growth}");
    }

    #[test]
    fn sampling_scales_costs_linearly() {
        let s = sim();
        let profile = AppProfile::dwt_haar1d();
        let pattern = AccessPattern::streaming(1);
        let a = s.run(&pattern, &profile, 512 << 20);
        let b = s.run(&pattern, &profile, 1 << 30);
        let ratio = b.cost.energy.as_joules() / a.cost.energy.as_joules();
        assert!((1.5..3.0).contains(&ratio), "energy scaling {ratio}");
    }

    #[test]
    fn writes_generate_writebacks_beyond_capacity() {
        let s = sim();
        let small = s.run(
            &AccessPattern::streaming(2),
            &AppProfile::dwt_haar1d(),
            16 << 20,
        );
        let large = s.run(
            &AccessPattern::streaming(2),
            &AppProfile::dwt_haar1d(),
            1 << 30,
        );
        assert!(
            large.writeback_ratio > small.writeback_ratio,
            "thrashing must evict dirty lines: {} vs {}",
            large.writeback_ratio,
            small.writeback_ratio
        );
        assert!(large.writeback_ratio > 0.1);
    }

    #[test]
    fn outcome_fields_are_consistent() {
        let s = sim();
        let out = s.run(
            &AccessPattern::streaming(1),
            &AppProfile::robert(),
            64 << 20,
        );
        assert!(out.sampled_accesses > 0);
        assert!(out.scale >= 1.0 || out.sampled_accesses < s.config().sample_limit);
        let total = out.l2_hit_ratio + out.buffer_hit_ratio + out.host_miss_ratio;
        assert!(
            (total - 1.0).abs() < 1e-9,
            "hit ratios must partition: {total}"
        );
        assert!(out.cost.time.as_secs() > 0.0);
    }
}
