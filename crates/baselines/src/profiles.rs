//! Per-application compute/traffic profiles.
//!
//! Both cost models (GPU baseline and APIM executor) need to know how much
//! arithmetic and how much memory traffic an application generates per byte
//! of input. The numbers below are derived from the kernel structures in
//! `apim-workloads` (operation counts per element are exact; traffic
//! amplification reflects each kernel's access pattern: convolutions re-read
//! neighbourhoods, the FFT strides cache-hostilely, the quasi-random
//! generator streams).

use std::fmt;

/// Quality-of-service metric an application is judged by (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosMetric {
    /// Peak signal-to-noise ratio, accepted at ≥ 30 dB (image apps).
    PsnrDb,
    /// Mean relative error, accepted at < 10 %.
    RelativeError,
}

/// Static cost profile of one evaluation application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Human-readable name as used in the paper's tables.
    pub name: &'static str,
    /// Arithmetic operations per input byte.
    pub ops_per_byte: f64,
    /// Fraction of those operations that are multiplications.
    pub mul_fraction: f64,
    /// Bytes of memory references generated per input byte on a traditional
    /// core (neighbourhood re-reads, strided passes, write-backs).
    pub traffic_amplification: f64,
    /// The QoS metric the paper applies to this application.
    pub qos: QosMetric,
    /// Products accumulated per output value: APIM fuses these into one
    /// Wallace tree + one final stage (§3.2), e.g. the taps of a
    /// convolution window.
    pub mac_group: u32,
}

impl AppProfile {
    /// Sobel 3×3 edge detection: two convolutions + gradient magnitude.
    pub fn sobel() -> Self {
        AppProfile {
            name: "Sobel",
            ops_per_byte: 4.5,
            mul_fraction: 0.45,
            traffic_amplification: 13.3,
            qos: QosMetric::PsnrDb,
            mac_group: 12,
        }
    }

    /// Roberts cross 2×2 edge detection.
    pub fn robert() -> Self {
        AppProfile {
            name: "Robert",
            ops_per_byte: 2.0,
            mul_fraction: 0.40,
            traffic_amplification: 12.6,
            qos: QosMetric::PsnrDb,
            mac_group: 2,
        }
    }

    /// Radix-2 fast Fourier transform (fixed point).
    pub fn fft() -> Self {
        AppProfile {
            name: "FFT",
            ops_per_byte: 12.0,
            mul_fraction: 0.50,
            traffic_amplification: 82.0,
            qos: QosMetric::RelativeError,
            mac_group: 2,
        }
    }

    /// One-dimensional Haar discrete wavelet transform.
    pub fn dwt_haar1d() -> Self {
        AppProfile {
            name: "DwtHaar1D",
            ops_per_byte: 1.5,
            mul_fraction: 0.50,
            traffic_amplification: 9.8,
            qos: QosMetric::RelativeError,
            mac_group: 1,
        }
    }

    /// 3×3 sharpening convolution.
    pub fn sharpen() -> Self {
        AppProfile {
            name: "Sharpen",
            ops_per_byte: 2.8,
            mul_fraction: 0.55,
            traffic_amplification: 7.6,
            qos: QosMetric::PsnrDb,
            mac_group: 5,
        }
    }

    /// Quasi-random (low-discrepancy) sequence generation.
    pub fn quasi_random() -> Self {
        AppProfile {
            name: "QuasiR",
            ops_per_byte: 2.2,
            mul_fraction: 0.60,
            traffic_amplification: 13.7,
            qos: QosMetric::RelativeError,
            mac_group: 1,
        }
    }

    /// All six evaluation applications, in the paper's table order.
    pub fn all() -> Vec<AppProfile> {
        vec![
            AppProfile::sobel(),
            AppProfile::robert(),
            AppProfile::fft(),
            AppProfile::dwt_haar1d(),
            AppProfile::sharpen(),
            AppProfile::quasi_random(),
        ]
    }

    /// Total arithmetic operations for a dataset of `bytes` bytes.
    pub fn total_ops(&self, bytes: u64) -> f64 {
        self.ops_per_byte * bytes as f64
    }

    /// Multiplications among [`AppProfile::total_ops`].
    pub fn mul_ops(&self, bytes: u64) -> f64 {
        self.total_ops(bytes) * self.mul_fraction
    }

    /// Additions among [`AppProfile::total_ops`].
    pub fn add_ops(&self, bytes: u64) -> f64 {
        self.total_ops(bytes) * (1.0 - self.mul_fraction)
    }
}

impl fmt::Display for AppProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_distinct_profiles() {
        let all = AppProfile::all();
        assert_eq!(all.len(), 6);
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn fractions_are_sane() {
        for p in AppProfile::all() {
            assert!(p.mul_fraction > 0.0 && p.mul_fraction < 1.0, "{}", p.name);
            assert!(p.ops_per_byte > 0.0, "{}", p.name);
            assert!(p.traffic_amplification >= 1.0, "{}", p.name);
        }
    }

    #[test]
    fn image_apps_use_psnr() {
        for p in [
            AppProfile::sobel(),
            AppProfile::robert(),
            AppProfile::sharpen(),
        ] {
            assert_eq!(p.qos, QosMetric::PsnrDb);
        }
        for p in [
            AppProfile::fft(),
            AppProfile::dwt_haar1d(),
            AppProfile::quasi_random(),
        ] {
            assert_eq!(p.qos, QosMetric::RelativeError);
        }
    }

    #[test]
    fn op_splits_add_up() {
        let p = AppProfile::fft();
        let bytes = 1 << 20;
        let total = p.total_ops(bytes);
        assert!((p.mul_ops(bytes) + p.add_ops(bytes) - total).abs() < 1e-6);
    }
}
