//! Cost model of the CRS parallel-chain adder of Siemon et al. \[25\] —
//! the "PC-Adder" series of Figure 6.
//!
//! \[25\] is closed-source; this model reconstructs its published scaling
//! behaviour (a substitution documented in `DESIGN.md` §2): a two-operand
//! `N`-bit addition in a complementary-resistive-switch crossbar takes a
//! short constant sequence per bit (≈6 cycles: CRS write, read-out, carry
//! transfer) plus pipeline fill, and multi-operand sums are computed by a
//! binary tree of *arrayed* adders. Each array has its own wordline and
//! bitline controllers, which is the area overhead the paper calls out:
//! "the PC-Adder uses multiple arrays each having different wordline and
//! bitline controllers, introducing a lot of area overhead".

use apim_device::Cycles;
use apim_logic::model::ceil_log2;

/// Cycles per bit of one CRS addition step (write, verify, carry transfer
/// and the destructive-read restore CRS cells need).
const CYCLES_PER_BIT: u32 = 8;
/// Pipeline fill / configuration constant per addition.
const FILL_CYCLES: u32 = 40;

/// Cycles for \[25\] to add two `n`-bit numbers.
pub fn add_two_cycles(n: u32) -> Cycles {
    Cycles::new(u64::from(CYCLES_PER_BIT * n + FILL_CYCLES))
}

/// Cycles for \[25\] to reduce `m` operands of `n` bits with its binary
/// adder tree: `ceil(log2 m)` sequential levels, operand width growing one
/// bit per level. Levels execute in parallel across their arrays.
///
/// ```
/// use apim_baselines::pc_adder::sum_cycles;
/// assert_eq!(sum_cycles(2, 8).get(), (8 * 9 + 40) as u64);
/// ```
pub fn sum_cycles(m: u32, n: u32) -> Cycles {
    if m < 2 {
        return Cycles::ZERO;
    }
    (1..=ceil_log2(m))
        .map(|level| Cycles::new(u64::from(CYCLES_PER_BIT * (n + level) + FILL_CYCLES)))
        .sum()
}

/// Relative area of the \[25\] design versus APIM (= 1.0): the binary tree
/// needs `m − 1` adder arrays, each with private controllers, while APIM's
/// blocks share one controller pair.
pub fn relative_area(m: u32) -> f64 {
    if m < 2 {
        return 1.0;
    }
    // One baseline array plus controller overhead per additional array.
    1.0 + 0.8 * (m - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::magic_serial;

    #[test]
    fn degenerate_counts() {
        assert_eq!(sum_cycles(0, 16), Cycles::ZERO);
        assert_eq!(sum_cycles(1, 16), Cycles::ZERO);
    }

    #[test]
    fn faster_than_serial_magic() {
        // [25] is the stronger prior — the paper's Figure 6 shows it well
        // below [24].
        for n in [8u32, 16, 32] {
            assert!(
                sum_cycles(n, n).get() < magic_serial::sum_cycles(n, n).get(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn logarithmic_level_count() {
        // Doubling the operand count adds one level, not double the time.
        let c8 = sum_cycles(8, 16).get();
        let c16 = sum_cycles(16, 16).get();
        assert!(c16 <= c8 + 220);
        assert!(c16 > c8);
    }

    #[test]
    fn area_overhead_grows_with_operands() {
        assert_eq!(relative_area(1), 1.0);
        assert!(relative_area(9) > 5.0);
        assert!(relative_area(32) > relative_area(9));
    }

    #[test]
    fn two_operand_formula() {
        assert_eq!(add_two_cycles(32).get(), (8 * 32 + 40) as u64);
        assert_eq!(sum_cycles(2, 32), add_two_cycles(33));
    }
}
