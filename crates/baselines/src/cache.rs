//! Capacity-driven cache/reuse model for the GPU baseline.
//!
//! §4.2's explanation of Figure 5: "this data movement is due to small
//! cache size of traditional core which increases the number of cache
//! miss". We model the effective on-chip reuse window (caches + DRAM
//! row-buffer locality) as a single LRU-like capacity `C`: a working set of
//! `D` bytes re-reads the fraction `C/D` from on-chip storage and misses on
//! the rest, so
//!
//! ```text
//! miss(D) = max(0, 1 − C/D)
//! ```
//!
//! This is the classic cold/capacity miss curve; it is deliberately sharp
//! (no misses until the working set exceeds capacity) because that is what
//! produces the paper's observation that APIM only wins beyond ≈200 MB.

/// Effective reuse-capacity model.
///
/// ```
/// use apim_baselines::cache::CapacityModel;
/// let cache = CapacityModel::new(160 << 20); // 160 MiB effective window
/// assert_eq!(cache.miss_ratio(32 << 20), 0.0); // fits: no capacity misses
/// assert!(cache.miss_ratio(1 << 30) > 0.8);    // 1 GiB: movement-bound
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityModel {
    capacity_bytes: u64,
}

impl CapacityModel {
    /// A model with the given effective on-chip capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        CapacityModel { capacity_bytes }
    }

    /// The effective capacity, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Fraction of the working set's traffic that misses to DRAM.
    pub fn miss_ratio(&self, working_set_bytes: u64) -> f64 {
        if working_set_bytes == 0 {
            return 0.0;
        }
        (1.0 - self.capacity_bytes as f64 / working_set_bytes as f64).max(0.0)
    }

    /// Bytes that must be fetched from DRAM when `traffic_bytes` of
    /// references hit a `working_set_bytes` working set.
    pub fn dram_bytes(&self, traffic_bytes: f64, working_set_bytes: u64) -> f64 {
        traffic_bytes * self.miss_ratio(working_set_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_sets_never_miss() {
        let c = CapacityModel::new(100);
        assert_eq!(c.miss_ratio(50), 0.0);
        assert_eq!(c.miss_ratio(100), 0.0);
        assert_eq!(c.miss_ratio(0), 0.0);
    }

    #[test]
    fn miss_ratio_monotonically_increases() {
        let c = CapacityModel::new(160 << 20);
        let sizes: Vec<u64> = [32u64, 64, 128, 256, 512, 1024]
            .iter()
            .map(|m| m << 20)
            .collect();
        let ratios: Vec<f64> = sizes.iter().map(|&d| c.miss_ratio(d)).collect();
        for pair in ratios.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        assert!(ratios[5] > 0.8);
    }

    #[test]
    fn miss_ratio_asymptotes_to_one() {
        let c = CapacityModel::new(1 << 20);
        assert!(c.miss_ratio(u64::MAX / 2) > 0.999_999);
        assert!(c.miss_ratio(u64::MAX / 2) <= 1.0);
    }

    #[test]
    fn dram_bytes_scale_with_traffic() {
        let c = CapacityModel::new(100);
        let d = 400; // miss ratio 0.75
        assert!((c.dram_bytes(1000.0, d) - 750.0).abs() < 1e-9);
        assert_eq!(c.dram_bytes(1000.0, 50), 0.0);
    }
}
