//! Cost model of stateful IMPLY logic (Borghetti et al. \[21\], Kvatinsky
//! et al. \[22\]) — the other in-crossbar logic family the paper's §2
//! surveys before settling on MAGIC.
//!
//! Material implication computes `q ← p IMP q` in one step but needs an
//! initialization per gate evaluation and keeps all literals in one row;
//! the published serial full adder built from IMPLY (Kvatinsky TVLSI'14)
//! costs 29 steps per bit — more than twice MAGIC's 12 — and, unlike
//! MAGIC, the result overwrites one of its operands, forcing extra copies
//! in multi-operand reductions. This module quantifies why the paper
//! chose MAGIC: same crossbar, same cycle time, different netlist economy.

use apim_device::Cycles;
use apim_logic::model::ceil_log2;

/// IMPLY steps (cycles) per full-adder bit, per Kvatinsky et al.,
/// "Memristor-based material implication (IMPLY) logic", TVLSI 22(10).
pub const STEPS_PER_BIT: u32 = 29;

/// Cycles for an IMPLY serial adder over two `n`-bit numbers.
pub fn add_two_cycles(n: u32) -> Cycles {
    Cycles::new(u64::from(STEPS_PER_BIT * n + 2))
}

/// Cycles for reducing `m` operands of `n` bits by serial IMPLY
/// accumulation (accumulator width grows like the \[24\] model).
pub fn sum_cycles(m: u32, n: u32) -> Cycles {
    if m < 2 {
        return Cycles::ZERO;
    }
    (1..m)
        .map(|i| {
            let width = n + ceil_log2(i);
            Cycles::new(u64::from(STEPS_PER_BIT * width + 2))
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::magic_serial;

    #[test]
    fn two_operand_formula() {
        assert_eq!(add_two_cycles(32).get(), (29 * 32 + 2) as u64);
        assert_eq!(sum_cycles(2, 32), add_two_cycles(32));
    }

    #[test]
    fn degenerate_counts() {
        assert_eq!(sum_cycles(0, 8), Cycles::ZERO);
        assert_eq!(sum_cycles(1, 8), Cycles::ZERO);
    }

    #[test]
    fn imply_is_slower_than_magic_serial() {
        // The §2 motivation: MAGIC's 12 steps/bit beat IMPLY's 29.
        for n in [8u32, 16, 32] {
            assert!(
                sum_cycles(n, n).get() > magic_serial::sum_cycles(n, n).get(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn ratio_is_roughly_29_over_12() {
        let imply = sum_cycles(16, 16).get() as f64;
        let magic = magic_serial::sum_cycles(16, 16).get() as f64;
        let ratio = imply / magic;
        assert!((2.0..3.0).contains(&ratio), "ratio {ratio}");
    }
}
