//! End-to-end lint tests: hazards seeded through *real* crossbar execution
//! (recording captures the request even when the runtime rejects it), plus
//! a property test that legal microprograms never produce findings.

use apim_crossbar::{
    AllocEvent, BlockedCrossbar, CrossbarConfig, OpTrace, RowAllocator, RowRef, TraceOp,
};
use apim_verify::{verify_trace, Pass, Severity};
use proptest::prelude::*;

fn relaxed_crossbar() -> BlockedCrossbar {
    BlockedCrossbar::new(CrossbarConfig {
        strict_init: false, // let the seeded hazard execute; the lint must still catch it
        ..CrossbarConfig::default()
    })
    .unwrap()
}

#[test]
fn skipped_init_is_caught_statically() {
    let mut xbar = relaxed_crossbar();
    let blk = xbar.block(1).unwrap();
    xbar.start_recording();
    xbar.preload_word(blk, 0, 0, &[true, false, true, false])
        .unwrap();
    // Evaluate a NOR into row 1 without initializing it first: the relaxed
    // runtime executes this happily.
    xbar.nor_rows_shifted(&[RowRef::new(blk, 0)], RowRef::new(blk, 1), 0..4, 0)
        .unwrap();
    let trace = xbar.stop_recording();
    let report = verify_trace(&trace, &[], None);
    assert_eq!(report.findings().len(), 1, "{report}");
    assert_eq!(report.findings()[0].pass, Pass::InitDiscipline);
    assert_eq!(report.findings()[0].severity, Severity::Error);
    assert_eq!(report.findings()[0].op_index, Some(1));
}

#[test]
fn aliased_destination_is_caught() {
    let mut xbar = relaxed_crossbar();
    let blk = xbar.block(0).unwrap();
    xbar.start_recording();
    xbar.init_cells(blk, &[(2, 3)]).unwrap();
    // The output cell doubles as an input: executes on the simulator, but
    // is electrically undefined on the device.
    xbar.nor_cells(blk, &[(0, 3), (2, 3)], (2, 3)).unwrap();
    let trace = xbar.stop_recording();
    let report = verify_trace(&trace, &[], None);
    assert_eq!(report.findings().len(), 1, "{report}");
    assert_eq!(report.findings()[0].pass, Pass::Aliasing);
}

#[test]
fn out_of_range_shift_is_caught_even_when_runtime_rejects_it() {
    let mut xbar = relaxed_crossbar();
    let a = xbar.block(0).unwrap();
    let b = xbar.block(1).unwrap();
    let cols = xbar.cols();
    xbar.start_recording();
    xbar.init_rows(b, &[0], cols - 4..cols).unwrap();
    // Shift the window past the last bitline. The runtime refuses to
    // execute it, but the *request* is recorded either way.
    let result = xbar.nor_rows_shifted(&[RowRef::new(a, 0)], RowRef::new(b, 0), cols - 4..cols, 3);
    assert!(result.is_err(), "runtime should reject the shift");
    let trace = xbar.stop_recording();
    assert_eq!(trace.len(), 2, "rejected request still recorded");
    let report = verify_trace(&trace, &[], None);
    let shift_findings: Vec<_> = report
        .findings()
        .iter()
        .filter(|f| f.pass == Pass::ShiftBounds)
        .collect();
    assert_eq!(shift_findings.len(), 1, "{report}");
    assert!(shift_findings[0].message.contains("outside the array"));
}

#[test]
fn double_free_is_caught_from_the_event_log() {
    let mut alloc = RowAllocator::with_tracing(8);
    let row = alloc.alloc().unwrap();
    alloc.free(row).unwrap();
    assert!(alloc.free(row).is_err(), "allocator rejects at runtime too");
    let events = alloc.take_events();
    let report = verify_trace(&OpTrace::default(), &events, None);
    assert_eq!(report.findings().len(), 1, "{report}");
    assert_eq!(report.findings()[0].pass, Pass::ScratchLifetime);
    assert!(report.findings()[0].message.contains("freed twice"));
}

#[test]
fn cycle_mismatch_is_caught() {
    let mut xbar = relaxed_crossbar();
    let blk = xbar.block(0).unwrap();
    xbar.start_recording();
    xbar.init_rows(blk, &[1], 0..8).unwrap();
    xbar.nor_rows_shifted(&[RowRef::new(blk, 0)], RowRef::new(blk, 1), 0..8, 0)
        .unwrap();
    // A stray stall the cost model knows nothing about.
    xbar.advance_cycles(apim_device::Cycles::new(2));
    let trace = xbar.stop_recording();
    let report = verify_trace(&trace, &[], Some(1));
    assert_eq!(report.findings().len(), 1, "{report}");
    assert_eq!(report.findings()[0].pass, Pass::CycleAccounting);
    assert!(report.findings()[0].message.contains("3 cycles"));
}

/// Deterministic xorshift so each proptest case derives its own program.
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

proptest! {
    /// Any well-formed microprogram — init before every NOR, disjoint
    /// src/dst, in-bounds windows, paired alloc/free — lints clean, and the
    /// trace accounts for exactly one cycle per NOR.
    #[test]
    fn random_legal_traces_lint_clean(
        seed in 0u64..u64::MAX,
        steps in 1usize..48,
        width in 1usize..32,
    ) {
        let rows = 8usize;
        let mut state = seed | 1;
        let mut ops = Vec::new();
        for _ in 0..steps {
            let dst = (next(&mut state) as usize) % rows;
            let mut src_a = (next(&mut state) as usize) % rows;
            let mut src_b = (next(&mut state) as usize) % rows;
            if src_a == dst {
                src_a = (src_a + 1) % rows;
            }
            if src_b == dst {
                src_b = (src_b + 1) % rows;
            }
            ops.push(TraceOp::InitRows { block: 1, rows: vec![dst], cols: 0..width });
            ops.push(TraceOp::NorRowsShifted {
                inputs: vec![(1, src_a), (1, src_b)],
                out: (1, dst),
                cols: 0..width,
                shift: 0,
            });
        }
        let trace = OpTrace { blocks: 2, rows, cols: 32, ops };
        let mut alloc = RowAllocator::with_tracing(rows);
        let claimed = alloc.alloc_many(1 + (next(&mut state) as usize) % rows).unwrap();
        alloc.free_many(claimed).unwrap();
        let events = alloc.take_events();
        let report = verify_trace(&trace, &events, Some(steps as u64));
        prop_assert!(report.is_clean(), "{}", report);
    }

    /// The lifetime pass accepts any sequence of paired claims and returns.
    #[test]
    fn balanced_alloc_free_sequences_lint_clean(rounds in 1usize..20, seed in 0u64..u64::MAX) {
        let mut state = seed | 1;
        let mut alloc = RowAllocator::with_tracing(16);
        for _ in 0..rounds {
            let n = 1 + (next(&mut state) as usize) % 8;
            let claimed = alloc.alloc_many(n).unwrap();
            alloc.free_many(claimed).unwrap();
        }
        let events = alloc.take_events();
        let report = verify_trace(&OpTrace::default(), &events, None);
        prop_assert!(report.is_clean(), "{}", report);
    }
}

#[test]
fn events_alone_never_trip_trace_passes() {
    // A trace-free report over a leaky log: exactly the leak warnings.
    let events = [AllocEvent::Alloc { row: 1 }, AllocEvent::Alloc { row: 2 }];
    let report = verify_trace(&OpTrace::default(), &events, None);
    assert_eq!(report.error_count(), 0);
    assert_eq!(report.warning_count(), 2);
}
