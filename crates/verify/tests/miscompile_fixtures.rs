//! Five deliberately-miscompiled microprograms, each the kind of bug the
//! hazard passes cannot see (every fixture is hazard-clean: cells are
//! initialized, shifts are in bounds, lifetimes pair up) but the symbolic
//! equivalence checker must: it computes *the wrong function*.
//!
//! Fixtures 1–4 mutate a recorded 4-bit serial-adder trace; fixture 5
//! hand-records a shifted copy with the shift dropped. Every check ends
//! with a concrete counterexample that is then replayed: the reported
//! input assignment is substituted into the trace's preloads and the
//! single-assignment re-check reproduces the exact expected/got pair.

use apim_crossbar::{BlockedCrossbar, CrossbarConfig, OpTrace, RowAllocator, RowRef, TraceOp};
use apim_logic::adder_serial::{add_words, SerialScratch};
use apim_logic::spec;
use apim_verify::{
    check_equiv, CheckMode, Counterexample, EquivReport, OperandBinding, OutputBinding,
};

const N: usize = 4;

fn bits(v: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (v >> i) & 1 == 1).collect()
}

/// A correct 4-bit serial-adder recording plus the layout facts the
/// mutations need.
struct Recorded {
    trace: OpTrace,
    block: usize,
    x_row: usize,
    y_row: usize,
    out_row: usize,
    scratch: SerialScratch,
}

fn record_adder4() -> Recorded {
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
    let blk = xbar.block(1).unwrap();
    let mut alloc = RowAllocator::new(xbar.rows());
    let rows = alloc.alloc_many(3).unwrap();
    let scratch = SerialScratch::alloc(&mut alloc).unwrap();
    xbar.start_recording();
    xbar.preload_word(blk, rows[0], 0, &bits(0b1011, N))
        .unwrap();
    xbar.preload_word(blk, rows[1], 0, &bits(0b0110, N))
        .unwrap();
    add_words(&mut xbar, blk, rows[0], rows[1], rows[2], 0..N, &scratch).unwrap();
    Recorded {
        trace: xbar.stop_recording(),
        block: blk.index(),
        x_row: rows[0],
        y_row: rows[1],
        out_row: rows[2],
        scratch,
    }
}

fn adder_bindings(r: &Recorded) -> [OperandBinding; 2] {
    [
        OperandBinding {
            name: "x".into(),
            block: r.block,
            row: r.x_row,
            col0: 0,
            width: N,
            col_step: 1,
        },
        OperandBinding {
            name: "y".into(),
            block: r.block,
            row: r.y_row,
            col0: 0,
            width: N,
            col_step: 1,
        },
    ]
}

fn adder_output(r: &Recorded) -> OutputBinding {
    OutputBinding {
        block: r.block,
        row: r.out_row,
        col0: 0,
        width: N,
        col_step: 1,
    }
}

fn check_adder(trace: &OpTrace, r: &Recorded) -> EquivReport {
    check_equiv(trace, &adder_bindings(r), &adder_output(r), |v| {
        spec::add(v[0], v[1], N)
    })
}

/// Substitutes the counterexample assignment into the trace's operand
/// preloads and re-checks the now fully-concrete program: the mismatch
/// must reproduce bit for bit under a single-assignment evaluation.
fn assert_replayable(
    trace: &OpTrace,
    operand_rows: &[(&str, usize)],
    block: usize,
    output: &OutputBinding,
    cx: &Counterexample,
) {
    let mut concrete = trace.clone();
    for op in &mut concrete.ops {
        if let TraceOp::PreloadWord {
            block: b,
            row,
            col0: 0,
            bits: stored,
        } = op
        {
            if *b != block {
                continue;
            }
            if let Some((name, _)) = operand_rows.iter().find(|&&(_, r)| r == *row) {
                let v = cx
                    .inputs
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, v)| v)
                    .expect("counterexample names every bound operand");
                *stored = bits(v, stored.len());
            }
        }
    }
    let expected = cx.expected;
    let replay = check_equiv(&concrete, &[], output, move |_| expected);
    assert_eq!(
        replay.mode,
        CheckMode::Exhaustive { assignments: 1 },
        "concrete replay is a single-assignment evaluation"
    );
    assert!(!replay.equivalent, "replay must reproduce the mismatch");
    let rcx = replay.counterexample.expect("replay counterexample");
    assert_eq!(rcx.got, cx.got, "replayed value matches the report");
    assert_eq!(rcx.expected, cx.expected);
}

/// Checks a mutated adder trace: not equivalent, exhaustive over all 256
/// assignments, and the counterexample replays concretely.
fn assert_adder_counterexample(trace: &OpTrace, r: &Recorded) -> Counterexample {
    let report = check_adder(trace, r);
    assert!(!report.equivalent, "miscompile must be caught");
    assert_eq!(
        report.mode,
        CheckMode::Exhaustive { assignments: 256 },
        "4+4 input bits are checked exhaustively"
    );
    let cx = report.counterexample.expect("a concrete counterexample");
    assert_ne!(cx.got, cx.expected);
    assert_replayable(
        trace,
        &[("x", r.x_row), ("y", r.y_row)],
        r.block,
        &adder_output(r),
        &cx,
    );
    cx
}

#[test]
fn fixture_1_wrong_operand_row() {
    let r = record_adder4();
    let mut t = r.trace.clone();
    // The bit-0 n1 gate reads the x wordline twice instead of (x, y): the
    // compiler bound the wrong operand row.
    let inputs = t
        .ops
        .iter_mut()
        .find_map(|op| match op {
            TraceOp::NorCells { inputs, .. }
                if inputs.contains(&(r.x_row, 0)) && inputs.contains(&(r.y_row, 0)) =>
            {
                Some(inputs)
            }
            _ => None,
        })
        .expect("the netlist opens with n1 = NOR(x, y)");
    for cell in inputs.iter_mut() {
        if *cell == (r.y_row, 0) {
            *cell = (r.x_row, 0);
        }
    }
    assert_adder_counterexample(&t, &r);
}

#[test]
fn fixture_2_dropped_carry() {
    let r = record_adder4();
    let mut t = r.trace.clone();
    // Every read of a ripple carry (columns >= 1) is redirected to the
    // seeded bit-0 cell: the carry chain is severed and the program
    // degenerates to XOR. Writes stay put, so nothing is uninitialized.
    for op in &mut t.ops {
        if let TraceOp::NorCells { inputs, .. } = op {
            for cell in inputs.iter_mut() {
                if cell.0 == r.scratch.carry && cell.1 >= 1 {
                    cell.1 = 0;
                }
            }
        }
    }
    let cx = assert_adder_counterexample(&t, &r);
    // The severed chain computes exactly XOR, so the counterexample's
    // wrong value must be the XOR of its inputs.
    let lookup = |name: &str| cx.inputs.iter().find(|(n, _)| n == name).unwrap().1;
    assert_eq!(cx.got, lookup("x") ^ lookup("y"));
}

#[test]
fn fixture_3_swapped_output_cells() {
    let r = record_adder4();
    let mut t = r.trace.clone();
    // Every sum-bit store (and its matching init) lands in the adjacent
    // column: the output word comes back with bit pairs transposed.
    for op in &mut t.ops {
        match op {
            TraceOp::InitCells { cells, .. } => {
                for cell in cells.iter_mut() {
                    if cell.0 == r.out_row {
                        cell.1 ^= 1;
                    }
                }
            }
            TraceOp::NorCells { out, .. } if out.0 == r.out_row => out.1 ^= 1,
            _ => {}
        }
    }
    assert_adder_counterexample(&t, &r);
}

#[test]
fn fixture_4_stale_scratch_read() {
    let r = record_adder4();
    let mut t = r.trace.clone();
    // The first bit-1 gate whose operands are all scratch rows (n4 =
    // NOR(n2, n3)) reads one operand from bit 0's column — a stale value
    // the previous iteration left behind, so perfectly initialized and
    // invisible to the hazard passes.
    let netlist = r.scratch.netlist;
    let inputs = t
        .ops
        .iter_mut()
        .find_map(|op| match op {
            TraceOp::NorCells { inputs, out, .. }
                if out.1 == 1 && inputs.iter().all(|c| netlist.contains(&c.0) && c.1 == 1) =>
            {
                Some(inputs)
            }
            _ => None,
        })
        .expect("bit 1 has an all-scratch gate");
    inputs[0].1 = 0;
    assert_adder_counterexample(&t, &r);
}

#[test]
fn fixture_5_off_by_one_shift() {
    // A two-NOT shifted copy whose spec is `y << 1`; the miscompiled
    // variant drops the interconnect shift and copies in place.
    // Interconnect shifts only apply on cross-block hops, so the copy
    // stages its complement through block 1, as the compiler backend does.
    let record = |shift: isize| {
        let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let b0 = xbar.block(0).unwrap();
        let b1 = xbar.block(1).unwrap();
        xbar.start_recording();
        xbar.preload_word(b0, 0, 0, &bits(0b1010, N)).unwrap();
        xbar.init_rows(b1, &[1], 0..N + 1).unwrap();
        xbar.nor_rows_shifted(&[RowRef::new(b0, 0)], RowRef::new(b1, 1), 0..N, shift)
            .unwrap();
        xbar.init_rows(b0, &[2], 0..N + 1).unwrap();
        xbar.nor_rows_shifted(&[RowRef::new(b1, 1)], RowRef::new(b0, 2), 0..N + 1, 0)
            .unwrap();
        xbar.stop_recording()
    };
    let operands = [OperandBinding {
        name: "y".into(),
        block: 0,
        row: 0,
        col0: 0,
        width: N,
        col_step: 1,
    }];
    let output = OutputBinding {
        block: 0,
        row: 2,
        col0: 0,
        width: N + 1,
        col_step: 1,
    };
    let spec = |v: &[u64]| (v[0] << 1) & spec::mask(N + 1);

    let good = check_equiv(&record(1), &operands, &output, spec);
    assert!(
        good.equivalent,
        "the correctly-shifted copy proves: {:?}",
        good
    );

    let report = check_equiv(&record(0), &operands, &output, spec);
    assert!(!report.equivalent, "the dropped shift must be caught");
    assert_eq!(report.mode, CheckMode::Exhaustive { assignments: 16 });
    let cx = report.counterexample.expect("a concrete counterexample");
    let y = cx.inputs.iter().find(|(n, _)| n == "y").unwrap().1;
    assert_eq!(cx.expected, (y << 1) & spec::mask(N + 1));
    assert_eq!(cx.got, y, "the unshifted copy returns y itself");
    assert_replayable(&record(0), &[("y", 0)], 0, &output, &cx);
}

/// The unmutated recording is equivalent — the fixtures fail because of
/// their injected bugs, not the harness.
#[test]
fn baseline_adder_recording_is_equivalent() {
    let r = record_adder4();
    let report = check_adder(&r.trace, &r);
    assert!(report.equivalent, "{:?}", report.counterexample);
    assert_eq!(report.mode, CheckMode::Exhaustive { assignments: 256 });
}
