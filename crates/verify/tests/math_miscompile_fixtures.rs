//! Miscompile fixtures for the transcendental microkernels: compiled
//! `sin`, `cos` and `sqrt` programs each get a deliberate bug injected
//! into their recorded microprograms, and the symbolic equivalence
//! checker must catch it with a counterexample that replays concretely.
//!
//! The traces come from real `apim-compile` output
//! ([`apim_compile::CompiledProgram::record`]) — thousands of MAGIC ops
//! per kernel — so these fixtures exercise the checker at compiled-CORDIC
//! scale, not toy-adder scale. Compiled programs steer partial-product
//! placement through sense-amplifier reads, so operands stay concrete and
//! each check covers the recorded specialization (one assignment, full
//! X-propagation and write-back cross-checking).
//!
//! Mutations are injected *after the last host read/write-back* in the
//! trace: corruption upstream of host logic is caught even earlier, by
//! the write-back divergence cross-check (see
//! `write_back_divergence_is_caught_even_earlier`), so the interesting
//! fixtures live in the final all-in-crossbar serial adder where only the
//! output comparison can see them.

use std::collections::HashMap;

use apim_compile::{compile, CompileOptions, Dag};
use apim_crossbar::{OpTrace, TraceOp};
use apim_math::consts::half_pi_q;
use apim_math::{default_spec, to_pattern, MathFn};
use apim_verify::{check_equiv, CheckMode, Counterexample, OutputBinding};

const WIDTH: u32 = 12;

/// Compiles `func(x)` at width 12 with its default spec and records one
/// gate-level run at `input`.
fn record_math(func: MathFn, input: i64) -> (OpTrace, OutputBinding, u64) {
    let mut dag = Dag::new(WIDTH).unwrap();
    let x = dag.input("x").unwrap();
    let m = dag.math(x, default_spec(func, WIDTH)).unwrap();
    dag.set_root(m).unwrap();
    let program = compile(&dag, &CompileOptions::default()).unwrap();
    let inputs: HashMap<String, u64> = [("x".to_string(), to_pattern(input, WIDTH))].into();
    program.record(&inputs).unwrap()
}

/// For each output column, the index of the LAST single-cell NOR gate
/// writing that cell of the output row — the final serial adder's sum-bit
/// stores, which nothing reads afterwards (so corrupting one is invisible
/// to every detection tier except the output comparison). Sorted by
/// column.
fn final_root_gates(trace: &OpTrace, output: &OutputBinding) -> Vec<usize> {
    let mut last: HashMap<usize, usize> = HashMap::new();
    for (i, op) in trace.ops.iter().enumerate() {
        if let TraceOp::NorCells { block, out, .. } = op {
            if *block == output.block && out.0 == output.row {
                last.insert(out.1, i);
            }
        }
    }
    let mut cols: Vec<usize> = last.keys().copied().collect();
    cols.sort_unstable();
    cols.into_iter().map(|c| last[&c]).collect()
}

/// The checker proves the recorded (unmutated) trace computes its
/// reference, then the mutated trace must fail with a counterexample
/// whose concrete replay reproduces the same expected/got pair.
fn assert_caught_and_replayable(
    good: &OpTrace,
    bad: &OpTrace,
    output: &OutputBinding,
    reference: u64,
) -> Counterexample {
    let baseline = check_equiv(good, &[], output, move |_| reference);
    assert!(
        baseline.equivalent,
        "unmutated compiler output must verify: {:?}",
        baseline.counterexample
    );

    let report = check_equiv(bad, &[], output, move |_| reference);
    assert!(!report.equivalent, "the injected miscompile must be caught");
    assert_eq!(
        report.mode,
        CheckMode::Exhaustive { assignments: 1 },
        "concrete operands: the one recorded assignment is covered\nlint: {}",
        report.lint
    );
    let cx = report.counterexample.expect("a concrete counterexample");
    assert_ne!(cx.got, cx.expected);
    assert_eq!(cx.expected, reference);

    // Replay: re-check the same concrete trace against the reported
    // expectation — the mismatch must reproduce bit for bit.
    let expected = cx.expected;
    let replay = check_equiv(bad, &[], output, move |_| expected);
    assert!(!replay.equivalent, "replay must reproduce the mismatch");
    let rcx = replay.counterexample.expect("replay counterexample");
    assert_eq!(rcx.got, cx.got, "replayed value matches the report");
    assert_eq!(rcx.expected, cx.expected);
    cx
}

#[test]
fn sin_duplicated_nor_operand_is_caught() {
    // π/6 in Q9: sin = 0.5 → 257 in the fixed-point kernel.
    let (trace, output, reference) = record_math(MathFn::Sin, half_pi_q(9) / 3);
    // One of the final sum-bit gates reads a wordline twice instead of its
    // two distinct operands — a wrong operand binding, perfectly
    // hazard-clean. NOR(a, a) = NOR(a, b) whenever the recorded b equals
    // a, so probe the gates newest-first for one where the bug bites.
    let caught = final_root_gates(&trace, &output)
        .into_iter()
        .rev()
        .find_map(|i| {
            let mut bad = trace.clone();
            let TraceOp::NorCells { inputs, .. } = &mut bad.ops[i] else {
                unreachable!("final_root_gates only returns NorCells");
            };
            if inputs.len() < 2 || inputs[0] == inputs[1] {
                return None;
            }
            inputs[1] = inputs[0];
            let r = check_equiv(&bad, &[], &output, move |_| reference);
            (!r.equivalent && r.counterexample.is_some()).then_some(bad)
        })
        .expect("at least one duplicated-operand gate must change the sum");
    let cx = assert_caught_and_replayable(&trace, &caught, &output, reference);
    assert_eq!(cx.expected, 257);
}

#[test]
fn cos_swapped_output_cells_are_caught() {
    // π/10 in Q9: cos ≈ 0.951 → 487 = 0b0111100111.
    let (trace, output, reference) = record_math(MathFn::Cos, half_pi_q(9) / 5);
    assert_eq!(reference, 487);
    let mut bad = trace.clone();
    // Two sum-bit stores (and their matching pre-write inits) land in each
    // other's columns. Picking columns whose reference bits differ makes
    // the transposition guaranteed-visible.
    let gates = final_root_gates(&bad, &output);
    let col_of = |t: &OpTrace, i: usize| match &t.ops[i] {
        TraceOp::NorCells { out, .. } => out.1,
        _ => unreachable!(),
    };
    let (gi, gj) = {
        let mut pick = None;
        'outer: for (a, &i) in gates.iter().enumerate() {
            for &j in &gates[a + 1..] {
                let (ci, cj) = (col_of(&bad, i), col_of(&bad, j));
                if (reference >> ci) & 1 != (reference >> cj) & 1 {
                    pick = Some((i, j));
                    break 'outer;
                }
            }
        }
        pick.expect("two sum bits with differing values exist")
    };
    let (ci, cj) = (col_of(&bad, gi), col_of(&bad, gj));
    let row = output.row;
    // Swap the two gates' output cells and their immediately-preceding
    // single-cell inits (the init/write pair must move together, or the
    // mutation would trade one bug for an uninitialized-write hazard).
    for g in [gi, gj] {
        let (from, to) = if g == gi { (ci, cj) } else { (cj, ci) };
        let TraceOp::NorCells { out, .. } = &mut bad.ops[g] else {
            unreachable!("final_root_gates only returns NorCells");
        };
        assert_eq!(*out, (row, from));
        *out = (row, to);
        let init = (g.saturating_sub(5)..g)
            .rev()
            .find(|&j| {
                matches!(&bad.ops[j], TraceOp::InitCells { block, cells }
                    if *block == output.block && cells.contains(&(row, from)))
            })
            .expect("each sum-bit store is preceded by its init");
        let TraceOp::InitCells { cells, .. } = &mut bad.ops[init] else {
            unreachable!("found above");
        };
        for cell in cells.iter_mut() {
            if *cell == (row, from) {
                *cell = (row, to);
            }
        }
    }
    let cx = assert_caught_and_replayable(&trace, &bad, &output, reference);
    // The transposition swaps exactly the two chosen bits.
    let swap_mask = (1u64 << ci) | (1u64 << cj);
    assert_eq!(cx.got, reference ^ swap_mask);
}

#[test]
fn sqrt_stale_scratch_read_is_caught() {
    // 1521 = 39²: the reference is exact, every result bit is meaningful.
    let (trace, output, reference) = record_math(MathFn::Sqrt, 1521);
    assert_eq!(reference, 39);
    // A sum-bit gate reads one operand from the previous bit's column — a
    // stale value the earlier iteration left behind, so perfectly
    // initialized and invisible to the hazard passes. Probe newest-first
    // for a gate where the stale bit differs from the live one.
    let caught = final_root_gates(&trace, &output)
        .into_iter()
        .rev()
        .find_map(|i| {
            let mut bad = trace.clone();
            let TraceOp::NorCells { inputs, .. } = &mut bad.ops[i] else {
                unreachable!("final_root_gates only returns NorCells");
            };
            let cell = inputs.iter_mut().find(|c| c.1 >= 1)?;
            cell.1 -= 1;
            let r = check_equiv(&bad, &[], &output, move |_| reference);
            (!r.equivalent && r.counterexample.is_some()).then_some(bad)
        })
        .expect("at least one stale-column read must change the sum");
    assert_caught_and_replayable(&trace, &caught, &output, reference);
}

/// Corruption *upstream* of host logic does not need the output
/// comparison at all: the write-back divergence cross-check aborts the
/// proof with an error finding. Kept as a fixture so the two detection
/// tiers stay distinguishable.
#[test]
fn write_back_divergence_is_caught_even_earlier() {
    let (trace, output, reference) = record_math(MathFn::Sqrt, 1521);
    let mut bad = trace.clone();
    let bits = bad
        .ops
        .iter_mut()
        .find_map(|op| match op {
            TraceOp::PreloadWord { bits, .. } => Some(bits),
            _ => None,
        })
        .expect("compiled programs stage operands via preload_word");
    bits[0] = !bits[0];
    let report = check_equiv(&bad, &[], &output, move |_| reference);
    assert!(!report.equivalent);
    assert_eq!(report.mode, CheckMode::Aborted);
    assert!(
        report.lint.error_count() > 0,
        "divergence findings carry error severity"
    );
    assert!(report.lint.to_string().contains("write-back"));
}
