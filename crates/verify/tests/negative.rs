//! Negative-path lint tests: one deliberately hazardous microprogram per
//! pass, seeded through *real kernel code* rather than hand-built traces —
//! each the exact bug class the compiler's post-condition check must stop.

use apim_crossbar::{BlockedCrossbar, CrossbarConfig, RowAllocator, RowRef};
use apim_device::DeviceParams;
use apim_logic::adder_serial::{add_words, SerialScratch};
use apim_logic::CostModel;
use apim_verify::{verify_trace, Pass, Severity};

fn relaxed_crossbar() -> BlockedCrossbar {
    BlockedCrossbar::new(CrossbarConfig {
        strict_init: false, // the runtime executes the hazard; the lint must still catch it
        ..CrossbarConfig::default()
    })
    .unwrap()
}

fn to_bits(v: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (v >> i) & 1 == 1).collect()
}

/// Pass 1 — stale init. A two-stage copy pipeline that arms its staging row
/// once and then keeps NOR-ing into it, the classic "hoisted the init out of
/// the loop" bug.
#[test]
fn copy_loop_with_hoisted_init_fires_init_discipline() {
    let mut xbar = relaxed_crossbar();
    let blk = xbar.block(0).unwrap();
    xbar.start_recording();
    xbar.preload_word(blk, 0, 0, &to_bits(0b1010, 4)).unwrap();
    xbar.preload_word(blk, 1, 0, &to_bits(0b0110, 4)).unwrap();
    xbar.init_rows(blk, &[2], 0..4).unwrap();
    for src in [0usize, 1] {
        // Only the first iteration finds row 2 armed.
        xbar.nor_rows_shifted(&[RowRef::new(blk, src)], RowRef::new(blk, 2), 0..4, 0)
            .unwrap();
    }
    let trace = xbar.stop_recording();
    let report = verify_trace(&trace, &[], None);
    let findings: Vec<_> = report
        .findings()
        .iter()
        .filter(|f| f.pass == Pass::InitDiscipline)
        .collect();
    assert_eq!(findings.len(), 1, "{report}");
    assert_eq!(findings[0].severity, Severity::Error);
    assert_eq!(findings[0].op_index, Some(4), "the second loop iteration");
}

/// Pass 2 — aliased NOR, row form. An in-place "accumulate" that names the
/// accumulator row as both input and output of one evaluation.
#[test]
fn in_place_accumulator_row_fires_aliasing() {
    let mut xbar = relaxed_crossbar();
    let blk = xbar.block(1).unwrap();
    xbar.start_recording();
    xbar.preload_word(blk, 0, 0, &to_bits(0b0011, 4)).unwrap();
    xbar.init_rows(blk, &[3], 0..4).unwrap();
    let result = xbar.nor_rows_shifted(
        &[RowRef::new(blk, 0), RowRef::new(blk, 3)],
        RowRef::new(blk, 3),
        0..4,
        0,
    );
    // Recording captures the request whether or not the runtime refuses it.
    let _ = result;
    let trace = xbar.stop_recording();
    let report = verify_trace(&trace, &[], None);
    let findings: Vec<_> = report
        .findings()
        .iter()
        .filter(|f| f.pass == Pass::Aliasing)
        .collect();
    assert_eq!(findings.len(), 1, "{report}");
    assert!(findings[0].message.contains("also the output row"));
}

/// Pass 3 — out-of-window shift, underflow side. A cross-block copy whose
/// negative shift pushes the column window below bitline zero.
#[test]
fn negative_shift_below_column_zero_fires_shift_bounds() {
    let mut xbar = relaxed_crossbar();
    let a = xbar.block(0).unwrap();
    let b = xbar.block(1).unwrap();
    xbar.start_recording();
    xbar.preload_word(a, 0, 0, &to_bits(0b1111, 4)).unwrap();
    xbar.init_rows(b, &[0], 0..4).unwrap();
    let result = xbar.nor_rows_shifted(&[RowRef::new(a, 0)], RowRef::new(b, 0), 0..4, -2);
    assert!(result.is_err(), "runtime rejects the underflow");
    let trace = xbar.stop_recording();
    let report = verify_trace(&trace, &[], None);
    let findings: Vec<_> = report
        .findings()
        .iter()
        .filter(|f| f.pass == Pass::ShiftBounds)
        .collect();
    assert_eq!(findings.len(), 1, "{report}");
    assert!(findings[0].message.contains("outside the array"));
}

/// Pass 4 — leaked scratch rows. A real serial addition whose epilogue
/// forgets `SerialScratch::release`: every scratch row is still live at
/// kernel exit and each leak is reported.
#[test]
fn forgotten_scratch_release_fires_lifetime_leaks() {
    let n = 8usize;
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
    let blk = xbar.block(1).unwrap();
    let mut alloc = RowAllocator::with_tracing(xbar.rows());
    let rows = alloc.alloc_many(3).unwrap();
    xbar.start_recording();
    xbar.preload_word(blk, rows[0], 0, &to_bits(0x5A, n))
        .unwrap();
    xbar.preload_word(blk, rows[1], 0, &to_bits(0xC3, n))
        .unwrap();
    let scratch = SerialScratch::alloc(&mut alloc).unwrap();
    let scratch_rows = scratch.netlist.len() + 2; // netlist + carry + zero
    add_words(&mut xbar, blk, rows[0], rows[1], rows[2], 0..n, &scratch).unwrap();
    let trace = xbar.stop_recording();
    // Operands are returned; the scratch release is "forgotten".
    alloc.free_many(rows).unwrap();
    let events = alloc.take_events();
    let report = verify_trace(&trace, &events, None);
    assert_eq!(report.error_count(), 0, "{report}");
    let leaks: Vec<_> = report
        .findings()
        .iter()
        .filter(|f| f.pass == Pass::ScratchLifetime)
        .collect();
    assert_eq!(
        leaks.len(),
        scratch_rows,
        "one leak per scratch row: {report}"
    );
    assert!(leaks.iter().all(|f| f.severity == Severity::Warning));
    assert!(leaks[0].message.contains("leak"));
}

/// Pass 5 — miscounted cycles. A correct serial addition checked against an
/// off-by-one analytic expectation: the accounting pass must flag the
/// divergence rather than trust either side.
#[test]
fn off_by_one_cost_expectation_fires_cycle_accounting() {
    let n = 8usize;
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
    let blk = xbar.block(1).unwrap();
    let mut alloc = RowAllocator::with_tracing(xbar.rows());
    let rows = alloc.alloc_many(3).unwrap();
    xbar.start_recording();
    xbar.preload_word(blk, rows[0], 0, &to_bits(0x11, n))
        .unwrap();
    xbar.preload_word(blk, rows[1], 0, &to_bits(0x2F, n))
        .unwrap();
    let scratch = SerialScratch::alloc(&mut alloc).unwrap();
    add_words(&mut xbar, blk, rows[0], rows[1], rows[2], 0..n, &scratch).unwrap();
    let trace = xbar.stop_recording();
    scratch.release(&mut alloc).unwrap();
    alloc.free_many(rows).unwrap();
    let events = alloc.take_events();

    let model = CostModel::new(&DeviceParams::default());
    let correct = model.serial_add(n as u32).cycles.get();
    assert!(
        verify_trace(&trace, &events, Some(correct)).is_clean(),
        "the kernel itself is clean"
    );
    let report = verify_trace(&trace, &events, Some(correct - 1));
    let findings: Vec<_> = report
        .findings()
        .iter()
        .filter(|f| f.pass == Pass::CycleAccounting)
        .collect();
    assert_eq!(findings.len(), 1, "{report}");
    assert!(findings[0].message.contains(&format!("{correct} cycles")));
}
