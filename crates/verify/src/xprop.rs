//! Three-valued unknown propagation over the symbolic NOR graph.
//!
//! Every crossbar cell the symbolic interpreter tracks holds either a
//! [`NorGraph`] node (a Boolean function of the bound input variables) or
//! the lattice value **X** — "never written, contents unknown". X is not a
//! third Boolean: it is the statement that the microprogram read a cell the
//! recorded trace never gave a value, so no claim about the computed
//! function can be made through it.
//!
//! X propagates through MAGIC NOR with one asymmetry that makes the
//! analysis precise instead of merely conservative: `NOR(TRUE, X) = FALSE`,
//! because a single ON input pins the shared output bitline low regardless
//! of what the unknown cell holds. Only when no input is constant-TRUE does
//! an X input poison the result.
//!
//! The accumulator below threads that rule through the *same*
//! [`semantics::nor_with`] fold the concrete scalar and packed backends
//! use, so the symbolic domain cannot drift from the simulator's NOR.

use crate::equiv::{NodeId, NorGraph, FALSE, TRUE};
use apim_crossbar::semantics;

/// A cell's symbolic value: a NOR-graph node or the unknown X.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// Unknown: the cell was read before anything wrote it.
    X,
    /// A Boolean function of the bound input variables.
    Node(NodeId),
}

impl Sym {
    /// Whether this is the unknown lattice value.
    pub fn is_x(self) -> bool {
        matches!(self, Sym::X)
    }

    /// The node's constant Boolean value, if it is one of the two constant
    /// nodes (X and non-constant functions return `None`).
    pub fn as_const(self) -> Option<bool> {
        match self {
            Sym::Node(TRUE) => Some(true),
            Sym::Node(FALSE) => Some(false),
            _ => None,
        }
    }
}

/// OR-fold state of one symbolic NOR evaluation.
///
/// [`semantics::nor_with`] folds the inputs with OR and complements once at
/// the end; this is the `T` it folds over. The three states mirror the
/// X-lattice OR: a constant-TRUE input decides the fold outright, an X
/// input (absent TRUE) makes it unknown, and otherwise the defined input
/// nodes accumulate for one hash-consed `Nor` node at the complement step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NorAcc {
    /// A constant-TRUE input was seen: the OR is TRUE, the NOR is FALSE.
    SawTrue,
    /// An X input was seen and no TRUE: the OR (and the NOR) is unknown.
    SawX,
    /// Only defined inputs so far: their node ids.
    Ids(Vec<NodeId>),
}

impl NorAcc {
    /// The fold's zero: no inputs seen (an empty NOR is constant TRUE).
    pub fn empty() -> Self {
        NorAcc::Ids(Vec::new())
    }

    /// Lifts one input cell into the fold domain.
    pub fn lift(sym: Sym) -> Self {
        match sym {
            Sym::X => NorAcc::SawX,
            Sym::Node(TRUE) => NorAcc::SawTrue,
            Sym::Node(id) => NorAcc::Ids(vec![id]),
        }
    }

    /// The X-lattice OR: `TRUE` absorbs everything, X absorbs everything
    /// defined, and defined inputs concatenate.
    pub fn join(self, other: NorAcc) -> NorAcc {
        match (self, other) {
            (NorAcc::SawTrue, _) | (_, NorAcc::SawTrue) => NorAcc::SawTrue,
            (NorAcc::SawX, _) | (_, NorAcc::SawX) => NorAcc::SawX,
            (NorAcc::Ids(mut a), NorAcc::Ids(b)) => {
                a.extend(b);
                NorAcc::Ids(a)
            }
        }
    }

    /// The final complement: `OR = TRUE` becomes the FALSE node, X stays
    /// X, and defined inputs become one hash-consed `Nor` node.
    fn complement(self, graph: &mut NorGraph) -> NorAcc {
        match self {
            NorAcc::SawTrue => NorAcc::Ids(vec![FALSE]),
            NorAcc::SawX => NorAcc::SawX,
            NorAcc::Ids(ids) => NorAcc::Ids(vec![graph.nor(&ids)]),
        }
    }

    fn into_sym(self) -> Sym {
        match self {
            NorAcc::SawX => Sym::X,
            NorAcc::Ids(ids) => {
                debug_assert_eq!(ids.len(), 1, "complement leaves one node");
                Sym::Node(ids[0])
            }
            NorAcc::SawTrue => unreachable!("complement eliminates SawTrue"),
        }
    }
}

/// Symbolic multi-input NOR, threaded through the shared
/// [`semantics::nor_with`] fold.
pub fn nor_sym(graph: &mut NorGraph, inputs: impl IntoIterator<Item = Sym>) -> Sym {
    semantics::nor_with(
        NorAcc::empty(),
        inputs.into_iter().map(NorAcc::lift),
        NorAcc::join,
        |acc| acc.complement(graph),
    )
    .into_sym()
}

/// Symbolic NOT: a one-input NOR.
pub fn not_sym(graph: &mut NorGraph, a: Sym) -> Sym {
    nor_sym(graph, [a])
}

/// Symbolic OR: `NOT(NOR(inputs))`.
pub fn or_sym(graph: &mut NorGraph, inputs: impl IntoIterator<Item = Sym>) -> Sym {
    let n = nor_sym(graph, inputs);
    not_sym(graph, n)
}

/// Symbolic AND: `NOR(NOT a, NOT b)`.
pub fn and_sym(graph: &mut NorGraph, a: Sym, b: Sym) -> Sym {
    let na = not_sym(graph, a);
    let nb = not_sym(graph, b);
    nor_sym(graph, [na, nb])
}

/// Symbolic majority-of-three, mirroring the modified sense amplifier:
/// `MAJ(a,b,c) = ab + bc + ca`.
pub fn maj_sym(graph: &mut NorGraph, a: Sym, b: Sym, c: Sym) -> Sym {
    let ab = and_sym(graph, a, b);
    let bc = and_sym(graph, b, c);
    let ca = and_sym(graph, c, a);
    or_sym(graph, [ab, bc, ca])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Sym {
        Sym::Node(TRUE)
    }

    fn f() -> Sym {
        Sym::Node(FALSE)
    }

    #[test]
    fn constant_nor_matches_the_truth_table() {
        let mut g = NorGraph::new();
        assert_eq!(nor_sym(&mut g, [f(), f()]), t());
        assert_eq!(nor_sym(&mut g, [t(), f()]), f());
        assert_eq!(nor_sym(&mut g, [t(), t()]), f());
        assert_eq!(nor_sym(&mut g, []), t());
    }

    #[test]
    fn x_poisons_unless_a_true_input_decides() {
        let mut g = NorGraph::new();
        assert_eq!(nor_sym(&mut g, [Sym::X, f()]), Sym::X);
        assert_eq!(nor_sym(&mut g, [Sym::X]), Sym::X);
        // A single ON input pins the output low no matter what X holds.
        assert_eq!(nor_sym(&mut g, [Sym::X, t()]), f());
        let v = Sym::Node(g.var(false));
        assert_eq!(nor_sym(&mut g, [Sym::X, v]), Sym::X);
    }

    #[test]
    fn symbolic_inputs_hash_cons() {
        let mut g = NorGraph::new();
        let a = Sym::Node(g.var(false));
        let b = Sym::Node(g.var(true));
        let n1 = nor_sym(&mut g, [a, b]);
        let n2 = nor_sym(&mut g, [b, a]);
        assert_eq!(n1, n2, "commutativity via sorted hash-consing");
        let na = not_sym(&mut g, a);
        assert_eq!(not_sym(&mut g, na), a, "double negation");
    }

    #[test]
    fn derived_gates_match_boolean_algebra() {
        let mut g = NorGraph::new();
        let v = Sym::Node(g.var(false));
        assert_eq!(and_sym(&mut g, t(), v), v);
        assert_eq!(and_sym(&mut g, f(), Sym::X), f(), "0 AND X = 0");
        assert_eq!(or_sym(&mut g, [t(), Sym::X]), t(), "1 OR X = 1");
        assert_eq!(maj_sym(&mut g, t(), t(), Sym::X), t(), "MAJ(1,1,X) = 1");
        assert_eq!(maj_sym(&mut g, f(), f(), Sym::X), f(), "MAJ(0,0,X) = 0");
        assert_eq!(maj_sym(&mut g, t(), f(), Sym::X), Sym::X);
        assert_eq!(maj_sym(&mut g, t(), v, f()), v);
    }
}
