//! Symbolic equivalence checking: prove a recorded microprogram computes
//! its specification, not merely that it avoids hazards.
//!
//! The hazard passes of this crate answer "is the trace well-formed?"; this
//! module answers the stronger question "does it compute the right
//! function?". It re-executes a recorded [`OpTrace`] over a **hash-consed
//! NOR graph**: selected operand cells are bound to fresh Boolean
//! variables, every other preloaded cell stays a constant, and each MAGIC
//! NOR builds (or re-finds) one structurally-hashed graph node. Cells the
//! trace never wrote hold the three-valued unknown **X** (see
//! [`crate::xprop`]); an X that reaches host logic or an output bit is an
//! error, because nothing can be proven through it.
//!
//! Equivalence against the spec — a pure-integer closure, completely
//! independent of the crossbar simulator — is decided SAT-free by **64-lane
//! packed cofactor evaluation**: each `u64` word carries 64 input
//! assignments, the graph is evaluated once per node in construction
//! (= topological) order, and the outputs are compared lane-wise against
//! the spec. Up to [`MAX_EXHAUSTIVE_BITS`] input bits the sweep is
//! exhaustive and the verdict is a proof; above that a seeded deterministic
//! sample is drawn (structural hashing still collapses equal subfunctions,
//! so syntactically identical output bits cost one evaluation, not two).
//! Any mismatch is reported as a **concrete counterexample** — operand
//! values that replay on the real simulator to the wrong answer.

use crate::report::{Finding, LintReport, Pass, Severity};
use apim_crossbar::semantics;
use apim_crossbar::{OpTrace, TraceOp};
use apim_logic::error_analysis::SplitMix64;
use std::collections::HashMap;

use crate::xprop::{maj_sym, nor_sym, Sym};

/// Input-bit budget under which the cofactor sweep is exhaustive (and the
/// equivalence verdict a proof): `2^20` assignments, 16384 packed words.
pub const MAX_EXHAUSTIVE_BITS: u32 = 20;

/// Packed 64-assignment chunks drawn in sampled mode, on top of the
/// all-zeros and all-ones corner chunks.
const SAMPLE_CHUNKS: u64 = 64;

/// Seed of the deterministic sampling stream.
const SAMPLE_SEED: u64 = 0x5EED_CAB1_E5A1_7A9Bu64;

/// Index of a node in a [`NorGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// The constant-FALSE node, present in every graph.
pub const FALSE: NodeId = NodeId(0);
/// The constant-TRUE node, present in every graph.
pub const TRUE: NodeId = NodeId(1);

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum NodeKind {
    False,
    True,
    Var(u32),
    Nor(Box<[NodeId]>),
}

/// A structurally-hashed DAG of multi-input NOR nodes over Boolean
/// variables — the symbolic domain of the equivalence checker.
///
/// Construction is canonicalizing: inputs are sorted and deduplicated,
/// constants fold (`NOR(…,1,…) = 0`, FALSE inputs drop, the empty NOR is
/// TRUE), double negation collapses (`NOR(NOR(x)) = x`), and a
/// complementary input pair folds to FALSE. Structurally equal functions
/// therefore share one node id, making id equality a sound (incomplete)
/// equivalence test and deduplicating all downstream evaluation.
///
/// Each node also carries its **base value** — its value under the
/// recorded concrete assignment — so the interpreter can cross-check
/// host-computed write-backs against the re-derived symbolic value for
/// free.
#[derive(Debug, Clone, Default)]
pub struct NorGraph {
    nodes: Vec<NodeKind>,
    base: Vec<bool>,
    dedup: HashMap<NodeKind, NodeId>,
    num_vars: u32,
}

impl NorGraph {
    /// An empty graph holding only the two constant nodes.
    pub fn new() -> Self {
        let mut g = NorGraph {
            nodes: Vec::new(),
            base: Vec::new(),
            dedup: HashMap::new(),
            num_vars: 0,
        };
        g.push(NodeKind::False, false);
        g.push(NodeKind::True, true);
        g
    }

    fn push(&mut self, kind: NodeKind, base: bool) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count fits u32"));
        self.dedup.insert(kind.clone(), id);
        self.nodes.push(kind);
        self.base.push(base);
        id
    }

    /// The constant node for `value`.
    pub fn constant(value: bool) -> NodeId {
        if value {
            TRUE
        } else {
            FALSE
        }
    }

    /// A fresh input variable whose recorded (baseline) value is `base`.
    pub fn var(&mut self, base: bool) -> NodeId {
        let v = self.num_vars;
        self.num_vars += 1;
        self.push(NodeKind::Var(v), base)
    }

    /// Number of input variables created so far.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of nodes (constants and variables included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph holds only the two constants.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// The node's value under the recorded baseline assignment.
    pub fn base(&self, id: NodeId) -> bool {
        self.base[id.0 as usize]
    }

    /// The canonicalizing multi-input NOR constructor.
    pub fn nor(&mut self, inputs: &[NodeId]) -> NodeId {
        let mut ids = Vec::with_capacity(inputs.len());
        for &id in inputs {
            if id == TRUE {
                return FALSE;
            }
            if id != FALSE {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        if ids.is_empty() {
            return TRUE;
        }
        // A complementary pair (x and NOR(x)) makes the OR true.
        for &id in &ids {
            if let NodeKind::Nor(inner) = &self.nodes[id.0 as usize] {
                if inner.len() == 1 && ids.binary_search(&inner[0]).is_ok() {
                    return FALSE;
                }
            }
        }
        // Double negation: NOR of exactly one single-input NOR.
        if ids.len() == 1 {
            if let NodeKind::Nor(inner) = &self.nodes[ids[0].0 as usize] {
                if inner.len() == 1 {
                    return inner[0];
                }
            }
        }
        let kind = NodeKind::Nor(ids.into_boxed_slice());
        if let Some(&id) = self.dedup.get(&kind) {
            return id;
        }
        let base = match &kind {
            NodeKind::Nor(ids) => semantics::nor_bits(ids.iter().map(|id| self.base(*id))),
            _ => unreachable!("only Nor reaches interning"),
        };
        self.push(kind, base)
    }

    /// Evaluates every node over 64 packed assignments: `var_words[v]`
    /// carries variable `v`'s value in each of the 64 lanes, and on return
    /// `vals[id]` carries each node's value the same way. Construction
    /// order is topological, so one forward sweep suffices; the NOR itself
    /// is the shared [`semantics::nor_words`].
    pub fn eval_words(&self, var_words: &[u64], vals: &mut Vec<u64>) {
        vals.clear();
        vals.resize(self.nodes.len(), 0);
        for (i, kind) in self.nodes.iter().enumerate() {
            let w = match kind {
                NodeKind::False => 0,
                NodeKind::True => !0,
                NodeKind::Var(v) => var_words[*v as usize],
                NodeKind::Nor(ids) => {
                    semantics::nor_words(ids.iter().map(|id| vals[id.0 as usize]))
                }
            };
            vals[i] = w;
        }
    }
}

/// Declares one operand window to bind symbolically: bit `b` of the
/// operand lives at bitline `col0 + b * col_step` of `(block, row)`, and
/// the first recorded `preload_word` covering that cell has it replaced by
/// a fresh variable; the recorded bits become the baseline assignment. A
/// strided operand may be assembled from several preloads (lane-batched
/// layouts preload one word per *bit position*, not per operand).
#[derive(Debug, Clone)]
pub struct OperandBinding {
    /// Operand name used in counterexamples.
    pub name: String,
    /// Block of the operand row.
    pub block: usize,
    /// Wordline holding the operand.
    pub row: usize,
    /// First bitline (LSB).
    pub col0: usize,
    /// Number of bits to bind (0 keeps the operand fully concrete).
    pub width: usize,
    /// Column stride between consecutive bits: 1 for a contiguous word,
    /// `lanes` for lane `j` of a lane-batched operand (whose LSB sits at
    /// `base + j`).
    pub col_step: usize,
}

/// Where the microprogram's result lives after the trace ran: `width` bits,
/// bit `b` at `(block, row, col0 + b * col_step)`.
#[derive(Debug, Clone, Copy)]
pub struct OutputBinding {
    /// Block of the output row.
    pub block: usize,
    /// Wordline holding the result.
    pub row: usize,
    /// First bitline (LSB).
    pub col0: usize,
    /// Result width in bits.
    pub width: usize,
    /// Column stride between consecutive bits (1 = contiguous word).
    pub col_step: usize,
}

/// A concrete input assignment on which the microprogram and its spec
/// disagree — replayable on the real simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Bound operand values, in binding order.
    pub inputs: Vec<(String, u64)>,
    /// What the spec computes for those inputs.
    pub expected: u64,
    /// What the microprogram computes.
    pub got: u64,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (name, v)) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}=0x{v:X}")?;
        }
        if self.inputs.is_empty() {
            write!(f, "(recorded inputs)")?;
        }
        write!(
            f,
            " -> expected 0x{:X}, got 0x{:X}",
            self.expected, self.got
        )
    }
}

/// How the verdict was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Every assignment of the bound input bits was evaluated: the verdict
    /// is a proof.
    Exhaustive {
        /// Assignments covered (`2^input_bits`).
        assignments: u64,
    },
    /// A seeded deterministic sample plus the all-zeros/all-ones corners.
    Sampled {
        /// Assignments covered.
        assignments: u64,
    },
    /// Interpretation failed (X reached an output, a binding never
    /// matched, …) — no evaluation ran.
    Aborted,
}

impl std::fmt::Display for CheckMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckMode::Exhaustive { assignments } => write!(f, "exhaustive({assignments})"),
            CheckMode::Sampled { assignments } => write!(f, "sampled({assignments})"),
            CheckMode::Aborted => write!(f, "aborted"),
        }
    }
}

/// Outcome of one equivalence check.
#[derive(Debug, Clone)]
pub struct EquivReport {
    /// Whether the microprogram matched the spec on every evaluated
    /// assignment (a proof in [`CheckMode::Exhaustive`]).
    pub equivalent: bool,
    /// How the verdict was reached.
    pub mode: CheckMode,
    /// Bound input bits (symbolic variables).
    pub input_bits: u32,
    /// NOR-graph nodes the trace compiled to.
    pub nodes: usize,
    /// First mismatching assignment, if any.
    pub counterexample: Option<Counterexample>,
    /// X-propagation / equivalence findings gathered along the way.
    pub lint: LintReport,
}

struct BoundOperand {
    /// Counterexample name, copied from the binding.
    name: String,
    /// Variable index of each operand bit, LSB first; `None` until a
    /// preload covers that bit's cell. Bits may be bound by different
    /// preloads (strided operands are preloaded per bit position).
    var_indices: Vec<Option<u32>>,
}

/// The symbolic interpreter: replays a trace over the NOR graph.
struct Interpreter<'a> {
    trace: &'a OpTrace,
    graph: NorGraph,
    cells: HashMap<(usize, usize, usize), Sym>,
    last_sense: Option<Sym>,
    findings: Vec<Finding>,
    /// `(op index, node)` pairs: NOR output cells whose pre-NOR value was
    /// symbolic — strict init demands the node be constant-TRUE over every
    /// assignment, checked during the packed sweep.
    obligations: Vec<(usize, NodeId)>,
}

impl<'a> Interpreter<'a> {
    fn new(trace: &'a OpTrace) -> Self {
        Interpreter {
            trace,
            graph: NorGraph::new(),
            cells: HashMap::new(),
            last_sense: None,
            findings: Vec::new(),
            obligations: Vec::new(),
        }
    }

    fn cell(&self, block: usize, row: usize, col: usize) -> Sym {
        *self.cells.get(&(block, row, col)).unwrap_or(&Sym::X)
    }

    fn set(&mut self, block: usize, row: usize, col: usize, sym: Sym) {
        self.cells.insert((block, row, col), sym);
    }

    fn flag(&mut self, pass: Pass, severity: Severity, op: usize, message: String) {
        self.findings.push(Finding {
            pass,
            severity,
            op_index: Some(op),
            message,
        });
    }

    /// Strict-init discipline on a NOR destination, symbolically: constant
    /// TRUE passes, constant FALSE and X fail now, anything else becomes a
    /// proof obligation for the packed sweep.
    fn check_init(&mut self, op: usize, block: usize, row: usize, col: usize) {
        match self.cell(block, row, col) {
            Sym::Node(TRUE) => {}
            Sym::Node(FALSE) => self.flag(
                Pass::Equiv,
                Severity::Error,
                op,
                format!("NOR output cell (block {block}, row {row}, col {col}) is OFF, not initialized ON"),
            ),
            Sym::X => self.flag(
                Pass::XProp,
                Severity::Error,
                op,
                format!("NOR output cell (block {block}, row {row}, col {col}) was never written"),
            ),
            Sym::Node(id) => self.obligations.push((op, id)),
        }
    }

    fn preload_word(
        &mut self,
        op: usize,
        bound: &mut [(OperandBinding, BoundOperand)],
        block: usize,
        row: usize,
        col0: usize,
        bits: &[bool],
    ) {
        // Default: every preloaded bit is a constant.
        let mut syms: Vec<Sym> = bits
            .iter()
            .map(|&b| Sym::Node(NorGraph::constant(b)))
            .collect();
        for (binding, state) in bound.iter_mut() {
            if binding.block != block || binding.row != row {
                continue;
            }
            for bit in 0..binding.width {
                if state.var_indices[bit].is_some() {
                    continue; // first covering preload wins, per bit
                }
                let col = binding.col0 + bit * binding.col_step;
                if col < col0 || col >= col0 + bits.len() {
                    continue;
                }
                let idx = col - col0;
                let var_index = self.graph.num_vars();
                let node = self.graph.var(bits[idx]);
                state.var_indices[bit] = Some(var_index);
                syms[idx] = Sym::Node(node);
            }
        }
        let _ = op;
        for (i, sym) in syms.into_iter().enumerate() {
            self.set(block, row, col0 + i, sym);
        }
    }

    fn run(mut self, operands: &[OperandBinding], output: &OutputBinding) -> SymbolicOutcome {
        let mut bound: Vec<(OperandBinding, BoundOperand)> = operands
            .iter()
            .map(|b| {
                (
                    b.clone(),
                    BoundOperand {
                        name: b.name.clone(),
                        var_indices: vec![None; b.width],
                    },
                )
            })
            .collect();
        let ops: Vec<TraceOp> = self.trace.ops.clone();
        for (i, op) in ops.iter().enumerate() {
            self.step(i, op, &mut bound);
        }
        for (binding, state) in &bound {
            let unbound = state.var_indices.iter().filter(|v| v.is_none()).count();
            if binding.width > 0 && unbound > 0 {
                self.findings.push(Finding {
                    pass: Pass::Equiv,
                    severity: Severity::Error,
                    op_index: None,
                    message: format!(
                        "operand binding '{}' (block {}, row {}, cols {}..{} step {}) never matched a preload on {unbound} bit(s)",
                        binding.name,
                        binding.block,
                        binding.row,
                        binding.col0,
                        binding.col0 + binding.width * binding.col_step,
                        binding.col_step
                    ),
                });
            }
        }
        let mut outputs = Vec::with_capacity(output.width);
        for bit in 0..output.width {
            let sym = self.cell(
                output.block,
                output.row,
                output.col0 + bit * output.col_step,
            );
            if sym.is_x() {
                self.findings.push(Finding {
                    pass: Pass::XProp,
                    severity: Severity::Error,
                    op_index: None,
                    message: format!(
                        "output bit {bit} (block {}, row {}, col {}) was never written",
                        output.block,
                        output.row,
                        output.col0 + bit * output.col_step
                    ),
                });
            }
            outputs.push(sym);
        }
        SymbolicOutcome {
            graph: self.graph,
            outputs,
            bound: bound.into_iter().map(|(_, s)| s).collect(),
            obligations: self.obligations,
            findings: self.findings,
        }
    }

    fn step(&mut self, i: usize, op: &TraceOp, bound: &mut [(OperandBinding, BoundOperand)]) {
        match op {
            TraceOp::PreloadBit {
                block,
                row,
                col,
                value,
            } => self.set(*block, *row, *col, Sym::Node(NorGraph::constant(*value))),
            TraceOp::PreloadWord {
                block,
                row,
                col0,
                bits,
            } => self.preload_word(i, bound, *block, *row, *col0, bits),
            TraceOp::ReadBit { block, row, col } => {
                let sym = self.cell(*block, *row, *col);
                match sym {
                    Sym::X => self.flag(
                        Pass::XProp,
                        Severity::Error,
                        i,
                        format!("sense read of never-written cell (block {block}, row {row}, col {col})"),
                    ),
                    Sym::Node(_) if sym.as_const().is_none() => {
                        self.flag(
                            Pass::Equiv,
                            Severity::Info,
                            i,
                            format!(
                                "sense read of a symbolic cell (block {block}, row {row}, col {col}): host control flow is checked for the recorded specialization only"
                            ),
                        );
                    }
                    _ => {}
                }
                self.last_sense = Some(sym);
            }
            TraceOp::MajRead { block, cells } => {
                let [a, b, c] = cells.map(|(r, col)| self.cell(*block, r, col));
                let m = maj_sym(&mut self.graph, a, b, c);
                if m.is_x() {
                    self.flag(
                        Pass::XProp,
                        Severity::Error,
                        i,
                        format!(
                            "MAJ read over never-written cells (block {block}, cells {cells:?})"
                        ),
                    );
                }
                self.last_sense = Some(m);
            }
            TraceOp::WriteBackBit {
                block,
                row,
                col,
                value,
            } => {
                // The host computed `value` from earlier sense reads; the
                // symbolic value is the most recent sense result. Under
                // the recorded baseline both must agree.
                let sym = self
                    .last_sense
                    .unwrap_or(Sym::Node(NorGraph::constant(*value)));
                if let Sym::Node(id) = sym {
                    if self.graph.base(id) != *value {
                        self.flag(
                            Pass::Equiv,
                            Severity::Error,
                            i,
                            format!(
                                "write-back to (block {block}, row {row}, col {col}) stores {} but the re-derived sense value is {} under the recorded inputs",
                                u8::from(*value),
                                u8::from(self.graph.base(id)),
                            ),
                        );
                    }
                }
                self.set(*block, *row, *col, sym);
            }
            TraceOp::InitRows { block, rows, cols } => {
                for &r in rows {
                    for c in cols.clone() {
                        self.set(*block, r, c, Sym::Node(TRUE));
                    }
                }
            }
            TraceOp::InitCells { block, cells } => {
                for &(r, c) in cells {
                    self.set(*block, r, c, Sym::Node(TRUE));
                }
            }
            TraceOp::InitCols { block, cols, rows } => {
                for &c in cols {
                    for r in rows.clone() {
                        self.set(*block, r, c, Sym::Node(TRUE));
                    }
                }
            }
            TraceOp::NorRowsShifted {
                inputs,
                out,
                cols,
                shift,
            } => {
                let mut writes = Vec::with_capacity(cols.len());
                for c in cols.clone() {
                    let Some(out_col) = c.checked_add_signed(*shift) else {
                        continue; // shift-bounds pass flags this
                    };
                    if out_col >= self.trace.cols {
                        continue;
                    }
                    self.check_init(i, out.0, out.1, out_col);
                    let in_syms: Vec<Sym> =
                        inputs.iter().map(|&(b, r)| self.cell(b, r, c)).collect();
                    let value = nor_sym(&mut self.graph, in_syms);
                    writes.push((out_col, value));
                }
                // Commit after computing every column: the hardware NOR is
                // column-parallel and reads the pre-op state.
                for (out_col, value) in writes {
                    self.set(out.0, out.1, out_col, value);
                }
            }
            TraceOp::NorCols {
                block,
                input_cols,
                out_col,
                rows,
            } => {
                let mut writes = Vec::with_capacity(rows.len());
                for r in rows.clone() {
                    self.check_init(i, *block, r, *out_col);
                    let in_syms: Vec<Sym> = input_cols
                        .iter()
                        .map(|&c| self.cell(*block, r, c))
                        .collect();
                    let value = nor_sym(&mut self.graph, in_syms);
                    writes.push((r, value));
                }
                for (r, value) in writes {
                    self.set(*block, r, *out_col, value);
                }
            }
            TraceOp::NorCells { block, inputs, out } => {
                self.check_init(i, *block, out.0, out.1);
                let in_syms: Vec<Sym> = inputs
                    .iter()
                    .map(|&(r, c)| self.cell(*block, r, c))
                    .collect();
                let value = nor_sym(&mut self.graph, in_syms);
                self.set(*block, out.0, out.1, value);
            }
            TraceOp::NorLanes {
                block,
                inputs,
                out,
                lanes,
            } => {
                let mut writes = Vec::with_capacity(*lanes);
                for j in 0..*lanes {
                    self.check_init(i, *block, out.0, out.1 + j);
                    let in_syms: Vec<Sym> = inputs
                        .iter()
                        .map(|&(r, c)| self.cell(*block, r, c + j))
                        .collect();
                    let value = nor_sym(&mut self.graph, in_syms);
                    writes.push((out.1 + j, value));
                }
                // All lanes share one voltage application and read the
                // pre-op state; commit only after every lane is computed.
                for (c, value) in writes {
                    self.set(*block, out.0, c, value);
                }
            }
            TraceOp::AdvanceCycles { .. } | TraceOp::RewindCycles { .. } => {}
        }
    }
}

struct SymbolicOutcome {
    graph: NorGraph,
    outputs: Vec<Sym>,
    bound: Vec<BoundOperand>,
    obligations: Vec<(usize, NodeId)>,
    findings: Vec<Finding>,
}

/// Checks that `trace` computes `spec` over the bound operand windows.
///
/// `spec` receives the bound operand values in binding order and returns
/// the expected output (masked to the output width). Operands left
/// concrete — a multiplier chosen per specialization, a divisor steering
/// host control flow — are simply not bound; the spec closure captures
/// them instead.
pub fn check_equiv(
    trace: &OpTrace,
    operands: &[OperandBinding],
    output: &OutputBinding,
    spec: impl Fn(&[u64]) -> u64,
) -> EquivReport {
    let outcome = Interpreter::new(trace).run(operands, output);
    let nodes = outcome.graph.len();
    let input_bits = outcome.graph.num_vars();
    let has_errors = outcome
        .findings
        .iter()
        .any(|f| f.severity == Severity::Error);
    if has_errors {
        return EquivReport {
            equivalent: false,
            mode: CheckMode::Aborted,
            input_bits,
            nodes,
            counterexample: None,
            lint: LintReport::from_findings(outcome.findings),
        };
    }
    decide(outcome, output, spec)
}

/// Exhaustive lane patterns for the six in-word variables: variable `v`
/// toggles with period `2^v` lanes.
const LANE_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

fn decide(
    outcome: SymbolicOutcome,
    output: &OutputBinding,
    spec: impl Fn(&[u64]) -> u64,
) -> EquivReport {
    let SymbolicOutcome {
        graph,
        outputs,
        bound,
        obligations,
        mut findings,
    } = outcome;
    let v = graph.num_vars();
    let exhaustive = v <= MAX_EXHAUSTIVE_BITS;
    let chunks: u64 = if exhaustive {
        if v >= 6 {
            1u64 << (v - 6)
        } else {
            1
        }
    } else {
        SAMPLE_CHUNKS + 2
    };
    let valid: u64 = if !exhaustive || v >= 6 {
        !0
    } else {
        (1u64 << (1u32 << v)) - 1
    };
    let out_mask = if output.width >= 64 {
        u64::MAX
    } else {
        (1u64 << output.width) - 1
    };
    let mut rng = SplitMix64::new(SAMPLE_SEED);
    let mut var_words = vec![0u64; v as usize];
    let mut vals: Vec<u64> = Vec::new();
    let mut exp_words = vec![0u64; outputs.len()];
    let mut counterexample = None;

    // Reads one operand's value out of lane `lane`. Unbound bits (already
    // reported as errors before the sweep runs) read as zero.
    let operand_at = |var_words: &[u64], op: &BoundOperand, lane: u32| -> u64 {
        op.var_indices
            .iter()
            .enumerate()
            .fold(0u64, |acc, (bit, vi)| match vi {
                Some(vi) => acc | ((var_words[*vi as usize] >> lane) & 1) << bit,
                None => acc,
            })
    };
    let inputs_at = |var_words: &[u64], lane: u32| -> Vec<u64> {
        bound
            .iter()
            .map(|op| operand_at(var_words, op, lane))
            .collect()
    };

    'sweep: for chunk in 0..chunks {
        for (i, w) in var_words.iter_mut().enumerate() {
            *w = if exhaustive {
                if i < 6 {
                    LANE_PATTERNS[i]
                } else {
                    0u64.wrapping_sub((chunk >> (i - 6)) & 1)
                }
            } else {
                match chunk {
                    0 => 0,
                    1 => !0,
                    _ => rng.next_u64(),
                }
            };
        }
        graph.eval_words(&var_words, &mut vals);

        // Init obligations: the pre-NOR cell value must be ON everywhere.
        for &(op, id) in &obligations {
            let w = vals[id.0 as usize];
            if w & valid != valid {
                let lane = (!w & valid).trailing_zeros();
                let inputs = inputs_at(&var_words, lane);
                findings.push(Finding {
                    pass: Pass::Equiv,
                    severity: Severity::Error,
                    op_index: Some(op),
                    message: format!(
                        "NOR output cell is not provably initialized ON (OFF under inputs {inputs:?})"
                    ),
                });
                break 'sweep;
            }
        }

        // Expected output, lane-wise from the pure-integer spec.
        for w in exp_words.iter_mut() {
            *w = 0;
        }
        for lane in 0..64u32 {
            if valid & (1 << lane) == 0 {
                continue;
            }
            let inputs = inputs_at(&var_words, lane);
            let expected = spec(&inputs) & out_mask;
            for (bit, w) in exp_words.iter_mut().enumerate() {
                *w |= ((expected >> bit) & 1) << lane;
            }
        }
        for (bit, sym) in outputs.iter().enumerate() {
            let Sym::Node(id) = sym else {
                unreachable!("X outputs abort before the sweep")
            };
            let got_word = vals[id.0 as usize];
            let diff = (exp_words[bit] ^ got_word) & valid;
            if diff != 0 {
                let lane = diff.trailing_zeros();
                let inputs_vals = inputs_at(&var_words, lane);
                let expected = spec(&inputs_vals) & out_mask;
                let got = outputs
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (b, s)| match s {
                        Sym::Node(id) => acc | ((vals[id.0 as usize] >> lane) & 1) << b,
                        Sym::X => acc,
                    });
                counterexample = Some(Counterexample {
                    inputs: bound
                        .iter()
                        .map(|op| (op.name.clone(), operand_at(&var_words, op, lane)))
                        .collect(),
                    expected,
                    got,
                });
                break 'sweep;
            }
        }
    }

    let assignments = if exhaustive {
        1u64 << v.min(63)
    } else {
        chunks * 64
    };
    let mode = if exhaustive {
        CheckMode::Exhaustive { assignments }
    } else {
        CheckMode::Sampled { assignments }
    };
    let failed = counterexample.is_some() || findings.iter().any(|f| f.severity == Severity::Error);
    EquivReport {
        equivalent: !failed,
        mode,
        input_bits: v,
        nodes: graph.len(),
        counterexample,
        lint: LintReport::from_findings(findings),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_rewrites_canonicalize() {
        let mut g = NorGraph::new();
        let a = g.var(false);
        let b = g.var(true);
        assert_eq!(g.nor(&[]), TRUE, "empty NOR");
        assert_eq!(g.nor(&[a, TRUE]), FALSE, "TRUE input decides");
        assert_eq!(g.nor(&[a, FALSE]), g.nor(&[a]), "FALSE inputs drop");
        assert_eq!(g.nor(&[a, b]), g.nor(&[b, a, b]), "sorted + deduped");
        let na = g.nor(&[a]);
        assert_eq!(g.nor(&[na]), a, "double negation");
        assert_eq!(g.nor(&[a, na]), FALSE, "complementary pair");
        let n1 = g.nor(&[a, b]);
        let n2 = g.nor(&[a, b]);
        assert_eq!(n1, n2, "hash-consing");
        assert!(!g.base(n1), "base: NOR(0, 1) = 0");
    }

    /// A 1-bit XOR netlist as a hand-written trace: n1 = NOR(a,b),
    /// n2 = NOR(a,n1), n3 = NOR(b,n1), n4 = NOR(n2,n3), out = NOR(n4).
    fn xor_trace() -> OpTrace {
        let mut ops = vec![
            TraceOp::PreloadWord {
                block: 0,
                row: 0,
                col0: 0,
                bits: vec![true],
            },
            TraceOp::PreloadWord {
                block: 0,
                row: 1,
                col0: 0,
                bits: vec![false],
            },
        ];
        let gates: [(&[(usize, usize)], usize); 5] = [
            (&[(0, 0), (1, 0)], 2),
            (&[(0, 0), (2, 0)], 3),
            (&[(1, 0), (2, 0)], 4),
            (&[(3, 0), (4, 0)], 5),
            (&[(5, 0)], 6),
        ];
        for (inputs, out_row) in gates {
            ops.push(TraceOp::InitCells {
                block: 0,
                cells: vec![(out_row, 0)],
            });
            ops.push(TraceOp::NorCells {
                block: 0,
                inputs: inputs.to_vec(),
                out: (out_row, 0),
            });
        }
        OpTrace {
            blocks: 1,
            rows: 8,
            cols: 2,
            ops,
        }
    }

    fn bit_bindings() -> Vec<OperandBinding> {
        vec![
            OperandBinding {
                name: "a".into(),
                block: 0,
                row: 0,
                col0: 0,
                width: 1,
                col_step: 1,
            },
            OperandBinding {
                name: "b".into(),
                block: 0,
                row: 1,
                col0: 0,
                width: 1,
                col_step: 1,
            },
        ]
    }

    const XOR_OUT: OutputBinding = OutputBinding {
        block: 0,
        row: 6,
        col0: 0,
        width: 1,
        col_step: 1,
    };

    #[test]
    fn xor_netlist_proves_equivalent() {
        let report = check_equiv(&xor_trace(), &bit_bindings(), &XOR_OUT, |v| v[0] ^ v[1]);
        assert!(report.equivalent, "{}", report.lint);
        assert_eq!(report.mode, CheckMode::Exhaustive { assignments: 4 });
        assert_eq!(report.input_bits, 2);
        assert!(report.counterexample.is_none());
    }

    #[test]
    fn wrong_spec_yields_a_replayable_counterexample() {
        let report = check_equiv(&xor_trace(), &bit_bindings(), &XOR_OUT, |v| v[0] & v[1]);
        assert!(!report.equivalent);
        let cx = report.counterexample.expect("must find a mismatch");
        let (a, b) = (cx.inputs[0].1, cx.inputs[1].1);
        assert_eq!(cx.inputs[0].0, "a");
        assert_eq!(cx.got, a ^ b, "the netlist really computes XOR");
        assert_eq!(cx.expected, a & b, "the (wrong) spec wanted AND");
        assert_ne!(cx.expected, cx.got);
    }

    #[test]
    fn never_written_output_aborts_with_xprop_error() {
        let out = OutputBinding {
            block: 0,
            row: 7,
            col0: 0,
            width: 1,
            col_step: 1,
        };
        let report = check_equiv(&xor_trace(), &bit_bindings(), &out, |v| v[0] ^ v[1]);
        assert!(!report.equivalent);
        assert_eq!(report.mode, CheckMode::Aborted);
        assert!(report
            .lint
            .findings()
            .iter()
            .any(|f| f.pass == Pass::XProp && f.severity == Severity::Error));
    }

    #[test]
    fn uninitialized_nor_destination_is_flagged() {
        let trace = OpTrace {
            blocks: 1,
            rows: 4,
            cols: 2,
            ops: vec![
                TraceOp::PreloadWord {
                    block: 0,
                    row: 0,
                    col0: 0,
                    bits: vec![true],
                },
                // No InitCells: the destination was never written.
                TraceOp::NorCells {
                    block: 0,
                    inputs: vec![(0, 0)],
                    out: (1, 0),
                },
            ],
        };
        let out = OutputBinding {
            block: 0,
            row: 1,
            col0: 0,
            width: 1,
            col_step: 1,
        };
        let report = check_equiv(&trace, &[], &out, |_| 0);
        assert!(!report.equivalent);
        assert!(report
            .lint
            .findings()
            .iter()
            .any(|f| f.pass == Pass::XProp && f.message.contains("never written")));
    }

    #[test]
    fn diverging_write_back_is_caught() {
        let trace = OpTrace {
            blocks: 1,
            rows: 4,
            cols: 2,
            ops: vec![
                TraceOp::PreloadBit {
                    block: 0,
                    row: 0,
                    col: 0,
                    value: true,
                },
                TraceOp::ReadBit {
                    block: 0,
                    row: 0,
                    col: 0,
                },
                // Host claims it read 0 — contradicts the cell.
                TraceOp::WriteBackBit {
                    block: 0,
                    row: 1,
                    col: 0,
                    value: false,
                },
            ],
        };
        let out = OutputBinding {
            block: 0,
            row: 1,
            col0: 0,
            width: 1,
            col_step: 1,
        };
        let report = check_equiv(&trace, &[], &out, |_| 1);
        assert!(!report.equivalent);
        assert_eq!(report.mode, CheckMode::Aborted);
        assert!(report
            .lint
            .findings()
            .iter()
            .any(|f| f.pass == Pass::Equiv && f.message.contains("write-back")));
    }

    #[test]
    fn symbolic_init_obligation_fails_with_assignment() {
        // NOR into the symbolic operand cell itself: strict init can only
        // hold if the operand bit is constant 1, which it is not.
        let trace = OpTrace {
            blocks: 1,
            rows: 4,
            cols: 2,
            ops: vec![
                TraceOp::PreloadWord {
                    block: 0,
                    row: 0,
                    col0: 0,
                    bits: vec![true],
                },
                TraceOp::PreloadBit {
                    block: 0,
                    row: 1,
                    col: 0,
                    value: false,
                },
                TraceOp::NorCells {
                    block: 0,
                    inputs: vec![(1, 0)],
                    out: (0, 0),
                },
            ],
        };
        let bindings = [OperandBinding {
            name: "a".into(),
            block: 0,
            row: 0,
            col0: 0,
            width: 1,
            col_step: 1,
        }];
        let out = OutputBinding {
            block: 0,
            row: 0,
            col0: 0,
            width: 1,
            col_step: 1,
        };
        let report = check_equiv(&trace, &bindings, &out, |_| 1);
        assert!(!report.equivalent);
        assert!(report
            .lint
            .findings()
            .iter()
            .any(|f| f.message.contains("not provably initialized")));
    }

    #[test]
    fn unmatched_binding_is_an_error() {
        let bindings = [OperandBinding {
            name: "ghost".into(),
            block: 3,
            row: 9,
            col0: 0,
            width: 4,
            col_step: 1,
        }];
        let report = check_equiv(&xor_trace(), &bindings, &XOR_OUT, |_| 0);
        assert!(!report.equivalent);
        assert_eq!(report.mode, CheckMode::Aborted);
        assert!(report
            .lint
            .findings()
            .iter()
            .any(|f| f.message.contains("never matched a preload")));
    }

    /// A lane-batched 2-bit NOT over two lanes: logical column `c` of lane
    /// `j` lives at bitline `c * 2 + j`, each bit position is preloaded by
    /// its own `PreloadWord` (the lane-batched layout preloads across
    /// lanes, not across bits), and one `NorLanes` per bit position
    /// computes both lanes at once.
    fn lane_batched_not_trace() -> OpTrace {
        OpTrace {
            blocks: 1,
            rows: 4,
            cols: 4,
            ops: vec![
                // Bit 0 of both lanes: lane 0 holds 0b10, lane 1 holds 0b01.
                TraceOp::PreloadWord {
                    block: 0,
                    row: 0,
                    col0: 0,
                    bits: vec![false, true],
                },
                // Bit 1 of both lanes.
                TraceOp::PreloadWord {
                    block: 0,
                    row: 0,
                    col0: 2,
                    bits: vec![true, false],
                },
                TraceOp::InitRows {
                    block: 0,
                    rows: vec![1],
                    cols: 0..4,
                },
                TraceOp::NorLanes {
                    block: 0,
                    inputs: vec![(0, 0)],
                    out: (1, 0),
                    lanes: 2,
                },
                TraceOp::NorLanes {
                    block: 0,
                    inputs: vec![(0, 2)],
                    out: (1, 2),
                    lanes: 2,
                },
            ],
        }
    }

    #[test]
    fn strided_lane_bindings_prove_each_lane_independently() {
        for lane in 0..2 {
            let bindings = [OperandBinding {
                name: format!("a{lane}"),
                block: 0,
                row: 0,
                col0: lane,
                width: 2,
                col_step: 2,
            }];
            let out = OutputBinding {
                block: 0,
                row: 1,
                col0: lane,
                width: 2,
                col_step: 2,
            };
            let report = check_equiv(&lane_batched_not_trace(), &bindings, &out, |v| !v[0] & 0b11);
            assert!(report.equivalent, "lane {lane}: {}", report.lint);
            assert_eq!(report.mode, CheckMode::Exhaustive { assignments: 4 });
            assert_eq!(
                report.input_bits, 2,
                "both bits bound across two separate preloads"
            );
        }
    }

    #[test]
    fn partially_covered_strided_binding_reports_unbound_bits() {
        let mut trace = lane_batched_not_trace();
        trace.ops.remove(1); // drop the bit-1 preload
        let bindings = [OperandBinding {
            name: "a0".into(),
            block: 0,
            row: 0,
            col0: 0,
            width: 2,
            col_step: 2,
        }];
        let out = OutputBinding {
            block: 0,
            row: 1,
            col0: 0,
            width: 2,
            col_step: 2,
        };
        let report = check_equiv(&trace, &bindings, &out, |v| !v[0] & 0b11);
        assert!(!report.equivalent);
        assert_eq!(report.mode, CheckMode::Aborted);
        assert!(report
            .lint
            .findings()
            .iter()
            .any(|f| f.message.contains("never matched a preload on 1 bit(s)")));
    }

    #[test]
    fn nor_lanes_reads_pre_op_state_across_all_lanes() {
        // Out span equals the input span: every lane must read the pre-op
        // value, so the result is the lane-wise NOT of the original row.
        let trace = OpTrace {
            blocks: 1,
            rows: 2,
            cols: 2,
            ops: vec![
                TraceOp::PreloadWord {
                    block: 0,
                    row: 0,
                    col0: 0,
                    bits: vec![true, true],
                },
                TraceOp::InitRows {
                    block: 0,
                    rows: vec![1],
                    cols: 0..2,
                },
                TraceOp::NorLanes {
                    block: 0,
                    inputs: vec![(0, 0)],
                    out: (1, 0),
                    lanes: 2,
                },
                // Second evaluation NORs the fresh result with the operand;
                // lanes share one voltage application, so lane 1 must not
                // observe lane 0's write from the same op.
                TraceOp::InitRows {
                    block: 0,
                    rows: vec![1],
                    cols: 0..2,
                },
                TraceOp::NorLanes {
                    block: 0,
                    inputs: vec![(0, 0)],
                    out: (1, 0),
                    lanes: 2,
                },
            ],
        };
        let bindings = [OperandBinding {
            name: "a".into(),
            block: 0,
            row: 0,
            col0: 0,
            width: 2,
            col_step: 1,
        }];
        let out = OutputBinding {
            block: 0,
            row: 1,
            col0: 0,
            width: 2,
            col_step: 1,
        };
        let report = check_equiv(&trace, &bindings, &out, |v| !v[0] & 0b11);
        assert!(report.equivalent, "{}", report.lint);
    }

    #[test]
    fn concrete_traces_check_as_a_single_assignment() {
        // No bindings: the graph is all constants and the sweep degenerates
        // to one lane — still an independent re-execution of the trace.
        let report = check_equiv(&xor_trace(), &[], &XOR_OUT, |_| 1);
        assert!(report.equivalent, "recorded a=1, b=0 -> XOR = 1");
        assert_eq!(report.input_bits, 0);
        assert_eq!(report.mode, CheckMode::Exhaustive { assignments: 1 });
    }
}
