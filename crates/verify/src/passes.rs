//! The five static dataflow passes over a recorded microprogram.
//!
//! Each pass walks the [`OpTrace`] (or the allocator event log) once and
//! emits [`Finding`]s; [`verify_trace`] bundles them into one ranked
//! [`LintReport`]. The passes are deliberately *value-independent*: they
//! reject any microprogram whose correctness depends on the data it happens
//! to run on (e.g. a skipped re-initialization that the runtime's
//! `strict_init` check only catches when the stale bit is OFF).

use std::collections::{BTreeSet, HashSet};

use apim_crossbar::{AllocEvent, OpTrace, TraceOp};

use crate::report::{Finding, LintReport, Pass, Severity};

/// Runs every pass and ranks the combined findings.
///
/// `expected_cycles` is the analytic cost-model prediction for the recorded
/// kernel; pass `None` when no closed form applies (the cycle-accounting
/// pass is then skipped).
pub fn verify_trace(
    trace: &OpTrace,
    events: &[AllocEvent],
    expected_cycles: Option<u64>,
) -> LintReport {
    let mut findings = pass_init_discipline(trace);
    findings.extend(pass_aliasing(trace));
    findings.extend(pass_shift_bounds(trace));
    findings.extend(pass_scratch_lifetime(events));
    if let Some(expected) = expected_cycles {
        findings.extend(pass_cycle_accounting(trace, expected));
    }
    LintReport::from_findings(findings)
}

/// The cells a NOR evaluation writes, as `(block, row, col)` triples.
/// Columns the shift pushes below zero are skipped here — the shift-bounds
/// pass owns that diagnosis.
fn nor_outputs(op: &TraceOp) -> Vec<(usize, usize, usize)> {
    match op {
        TraceOp::NorRowsShifted {
            out, cols, shift, ..
        } => cols
            .clone()
            .filter_map(|c| {
                let target = c as isize + shift;
                (target >= 0).then_some((out.0, out.1, target as usize))
            })
            .collect(),
        TraceOp::NorCols {
            block,
            out_col,
            rows,
            ..
        } => rows.clone().map(|r| (*block, r, *out_col)).collect(),
        TraceOp::NorCells { block, out, .. } => vec![(*block, out.0, out.1)],
        TraceOp::NorLanes {
            block, out, lanes, ..
        } => (0..*lanes).map(|j| (*block, out.0, out.1 + j)).collect(),
        _ => Vec::new(),
    }
}

/// Pass 1: init-before-NOR discipline.
///
/// MAGIC NOR can only switch its output cell OFF, so every destination cell
/// must be driven to the ON state *after* its previous write and *before*
/// the evaluation. This pass tracks, per cell, whether the most recent
/// touch was an initialization; a NOR whose destination is not in that
/// state is an error regardless of the data values involved.
pub fn pass_init_discipline(trace: &OpTrace) -> Vec<Finding> {
    let mut armed: HashSet<(usize, usize, usize)> = HashSet::new();
    let mut findings = Vec::new();
    for (i, op) in trace.ops.iter().enumerate() {
        match op {
            TraceOp::InitRows { block, rows, cols } => {
                for &r in rows {
                    for c in cols.clone() {
                        armed.insert((*block, r, c));
                    }
                }
            }
            TraceOp::InitCells { block, cells } => {
                for &(r, c) in cells {
                    armed.insert((*block, r, c));
                }
            }
            TraceOp::InitCols { block, cols, rows } => {
                for &c in cols {
                    for r in rows.clone() {
                        armed.insert((*block, r, c));
                    }
                }
            }
            TraceOp::PreloadBit {
                block, row, col, ..
            } => {
                armed.remove(&(*block, *row, *col));
            }
            TraceOp::PreloadWord {
                block,
                row,
                col0,
                bits,
            } => {
                for c in *col0..col0 + bits.len() {
                    armed.remove(&(*block, *row, c));
                }
            }
            TraceOp::WriteBackBit {
                block, row, col, ..
            } => {
                armed.remove(&(*block, *row, *col));
            }
            TraceOp::NorRowsShifted { .. }
            | TraceOp::NorCols { .. }
            | TraceOp::NorCells { .. }
            | TraceOp::NorLanes { .. } => {
                let outputs = nor_outputs(op);
                let stale: Vec<_> = outputs.iter().filter(|c| !armed.contains(c)).collect();
                if let Some(&&(b, r, c)) = stale.first() {
                    findings.push(Finding {
                        pass: Pass::InitDiscipline,
                        severity: Severity::Error,
                        op_index: Some(i),
                        message: format!(
                            "NOR evaluates into {} uninitialized cell(s), first at \
                             (block {b}, row {r}, col {c})",
                            stale.len()
                        ),
                    });
                }
                // Evaluation consumes the initialization.
                for cell in outputs {
                    armed.remove(&cell);
                }
            }
            TraceOp::ReadBit { .. }
            | TraceOp::MajRead { .. }
            | TraceOp::AdvanceCycles { .. }
            | TraceOp::RewindCycles { .. } => {}
        }
    }
    findings
}

/// Pass 2: src/dst aliasing.
///
/// A NOR that names one of its own input cells as the destination reads and
/// overwrites the same device in one evaluation — electrically undefined on
/// the crossbar, and a bug in any netlist.
pub fn pass_aliasing(trace: &OpTrace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, op) in trace.ops.iter().enumerate() {
        let aliased: Option<String> = match op {
            TraceOp::NorRowsShifted {
                inputs,
                out,
                cols,
                shift,
            } => inputs
                .iter()
                .find(|&&(b, r)| {
                    // Output columns are `cols + shift`; with equal block and
                    // row the ranges overlap unless the shift moves the
                    // window entirely past itself.
                    (b, r) == *out && shift.unsigned_abs() < cols.len()
                })
                .map(|&(b, r)| format!("input row (block {b}, row {r}) is also the output row")),
            TraceOp::NorCols {
                input_cols,
                out_col,
                ..
            } => input_cols
                .contains(out_col)
                .then(|| format!("input column {out_col} is also the output column")),
            TraceOp::NorCells { inputs, out, .. } => inputs.contains(out).then(|| {
                format!(
                    "input cell (row {}, col {}) is also the output",
                    out.0, out.1
                )
            }),
            TraceOp::NorLanes {
                inputs, out, lanes, ..
            } => inputs
                .iter()
                .find(|&&(r, c)| r == out.0 && c.abs_diff(out.1) < *lanes)
                .map(|&(r, c)| format!("input span (row {r}, col {c}..) overlaps the output span")),
            _ => None,
        };
        if let Some(message) = aliased {
            findings.push(Finding {
                pass: Pass::Aliasing,
                severity: Severity::Error,
                op_index: Some(i),
                message,
            });
        }
    }
    findings
}

/// Pass 3: interconnect shift bounds.
///
/// A shifted NOR whose target column range leaves `0..trace.cols` would be
/// silently truncated (or rejected at runtime, depending on the sign); a
/// nonzero shift with all operands in the output's own block asks for a
/// barrel-shifter path that does not exist within a block. Both are
/// microprogram bugs independent of data.
pub fn pass_shift_bounds(trace: &OpTrace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, op) in trace.ops.iter().enumerate() {
        let TraceOp::NorRowsShifted {
            inputs,
            out,
            cols,
            shift,
        } = op
        else {
            continue;
        };
        let start = cols.start as isize + shift;
        let end = cols.end as isize + shift;
        if start < 0 || end > trace.cols as isize {
            findings.push(Finding {
                pass: Pass::ShiftBounds,
                severity: Severity::Error,
                op_index: Some(i),
                message: format!(
                    "shift {shift} moves column range {}..{} to {start}..{end}, \
                     outside the array's 0..{}",
                    cols.start, cols.end, trace.cols
                ),
            });
        }
        if *shift != 0 && inputs.iter().all(|&(b, _)| b == out.0) {
            findings.push(Finding {
                pass: Pass::ShiftBounds,
                severity: Severity::Error,
                op_index: Some(i),
                message: format!(
                    "shift {shift} stays within block {}: only the inter-block \
                     interconnect can shift",
                    out.0
                ),
            });
        }
    }
    findings
}

/// Pass 4: scratch-row lifetime.
///
/// Checks alloc/free pairing over the recorded allocator events: a row freed
/// twice or freed without ever being allocated is an error (the allocator
/// itself also rejects these at runtime — the pass sees the recorded
/// *attempt*); rows still live when the kernel exits are flagged as leaks.
pub fn pass_scratch_lifetime(events: &[AllocEvent]) -> Vec<Finding> {
    let mut live: BTreeSet<usize> = BTreeSet::new();
    let mut ever: HashSet<usize> = HashSet::new();
    let mut findings = Vec::new();
    for event in events {
        match *event {
            AllocEvent::Alloc { row } => {
                if !live.insert(row) {
                    findings.push(Finding {
                        pass: Pass::ScratchLifetime,
                        severity: Severity::Error,
                        op_index: None,
                        message: format!(
                            "scratch row {row} handed out twice without an intervening free"
                        ),
                    });
                }
                ever.insert(row);
            }
            AllocEvent::Free { row } => {
                if live.remove(&row) {
                    continue;
                }
                let message = if ever.contains(&row) {
                    format!("scratch row {row} freed twice")
                } else {
                    format!("scratch row {row} freed but never allocated")
                };
                findings.push(Finding {
                    pass: Pass::ScratchLifetime,
                    severity: Severity::Error,
                    op_index: None,
                    message,
                });
            }
        }
    }
    for row in live {
        findings.push(Finding {
            pass: Pass::ScratchLifetime,
            severity: Severity::Warning,
            op_index: None,
            message: format!("scratch row {row} still allocated at kernel exit (leak)"),
        });
    }
    findings
}

/// Pass 5: cycle-accounting consistency.
///
/// The recorded trace must account for exactly the cycles the analytic
/// [`apim_logic::CostModel`] predicts for the kernel — the paper's headline
/// numbers come from those closed forms, so a divergence means either the
/// netlist or the model is wrong.
pub fn pass_cycle_accounting(trace: &OpTrace, expected: u64) -> Vec<Finding> {
    let recorded = trace.cycles();
    if recorded == expected {
        return Vec::new();
    }
    vec![Finding {
        pass: Pass::CycleAccounting,
        severity: Severity::Error,
        op_index: None,
        message: format!(
            "trace accounts for {recorded} cycles but the cost model predicts {expected}"
        ),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(ops: Vec<TraceOp>) -> OpTrace {
        OpTrace {
            blocks: 4,
            rows: 16,
            cols: 16,
            ops,
        }
    }

    #[test]
    fn init_then_nor_is_clean_and_reuse_is_not() {
        let t = trace(vec![
            TraceOp::InitRows {
                block: 1,
                rows: vec![2],
                cols: 0..8,
            },
            TraceOp::NorRowsShifted {
                inputs: vec![(1, 0)],
                out: (1, 2),
                cols: 0..8,
                shift: 0,
            },
            // Second NOR into the same row without re-initializing.
            TraceOp::NorRowsShifted {
                inputs: vec![(1, 1)],
                out: (1, 2),
                cols: 0..8,
                shift: 0,
            },
        ]);
        let findings = pass_init_discipline(&t);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].op_index, Some(2));
    }

    #[test]
    fn preload_invalidates_initialization() {
        let t = trace(vec![
            TraceOp::InitCells {
                block: 0,
                cells: vec![(3, 3)],
            },
            TraceOp::PreloadBit {
                block: 0,
                row: 3,
                col: 3,
                value: false,
            },
            TraceOp::NorCells {
                block: 0,
                inputs: vec![(0, 0)],
                out: (3, 3),
            },
        ]);
        assert_eq!(pass_init_discipline(&t).len(), 1);
    }

    #[test]
    fn aliasing_detected_in_all_three_nor_forms() {
        let t = trace(vec![
            TraceOp::NorRowsShifted {
                inputs: vec![(0, 1), (0, 2)],
                out: (0, 2),
                cols: 0..4,
                shift: 0,
            },
            TraceOp::NorCols {
                block: 0,
                input_cols: vec![1, 5],
                out_col: 5,
                rows: 0..4,
            },
            TraceOp::NorCells {
                block: 0,
                inputs: vec![(1, 1)],
                out: (1, 1),
            },
        ]);
        assert_eq!(pass_aliasing(&t).len(), 3);
    }

    #[test]
    fn nor_lanes_tracks_init_and_aliasing_per_lane() {
        let t = trace(vec![
            TraceOp::InitRows {
                block: 0,
                rows: vec![4],
                cols: 0..4,
            },
            // Clean: all four output lanes armed, input spans disjoint.
            TraceOp::NorLanes {
                block: 0,
                inputs: vec![(0, 0), (1, 0)],
                out: (4, 0),
                lanes: 4,
            },
            // Init consumed: re-evaluating the same span is stale.
            TraceOp::NorLanes {
                block: 0,
                inputs: vec![(0, 0)],
                out: (4, 0),
                lanes: 4,
            },
        ]);
        let findings = pass_init_discipline(&t);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].op_index, Some(2));
        assert!(findings[0].message.contains("4 uninitialized"));

        // Same-row overlapping spans alias; same row disjoint spans do not.
        let t = trace(vec![
            TraceOp::NorLanes {
                block: 0,
                inputs: vec![(2, 2)],
                out: (2, 0),
                lanes: 4,
            },
            TraceOp::NorLanes {
                block: 0,
                inputs: vec![(2, 4)],
                out: (2, 0),
                lanes: 4,
            },
        ]);
        let findings = pass_aliasing(&t);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].op_index, Some(0));
        assert!(findings[0].message.contains("overlaps the output span"));
    }

    #[test]
    fn cross_block_same_row_is_not_aliasing() {
        let t = trace(vec![TraceOp::NorRowsShifted {
            inputs: vec![(0, 2)],
            out: (1, 2),
            cols: 0..4,
            shift: 0,
        }]);
        assert!(pass_aliasing(&t).is_empty());
    }

    #[test]
    fn shift_bounds_flags_underflow_overflow_and_intra_block() {
        let t = trace(vec![
            TraceOp::NorRowsShifted {
                inputs: vec![(0, 0)],
                out: (1, 1),
                cols: 0..4,
                shift: -1,
            },
            TraceOp::NorRowsShifted {
                inputs: vec![(0, 0)],
                out: (1, 1),
                cols: 12..16,
                shift: 2,
            },
            TraceOp::NorRowsShifted {
                inputs: vec![(1, 0)],
                out: (1, 1),
                cols: 0..4,
                shift: 1,
            },
        ]);
        let findings = pass_shift_bounds(&t);
        assert_eq!(findings.len(), 3);
        assert!(findings[2].message.contains("within block"));
    }

    #[test]
    fn lifetime_distinguishes_double_free_from_unallocated() {
        let events = [
            AllocEvent::Alloc { row: 3 },
            AllocEvent::Free { row: 3 },
            AllocEvent::Free { row: 3 },  // double free
            AllocEvent::Free { row: 9 },  // never allocated
            AllocEvent::Alloc { row: 4 }, // leaked
        ];
        let findings = pass_scratch_lifetime(&events);
        assert_eq!(findings.len(), 3);
        assert!(findings[0].message.contains("freed twice"));
        assert!(findings[1].message.contains("never allocated"));
        assert!(findings[2].message.contains("leak"));
        assert_eq!(findings[2].severity, Severity::Warning);
    }

    #[test]
    fn free_then_realloc_is_clean() {
        let events = [
            AllocEvent::Alloc { row: 0 },
            AllocEvent::Free { row: 0 },
            AllocEvent::Alloc { row: 0 },
            AllocEvent::Free { row: 0 },
        ];
        assert!(pass_scratch_lifetime(&events).is_empty());
    }

    #[test]
    fn cycle_accounting_compares_against_expectation() {
        let t = trace(vec![
            TraceOp::NorCells {
                block: 0,
                inputs: vec![(0, 0)],
                out: (1, 0),
            },
            TraceOp::AdvanceCycles { cycles: 4 },
        ]);
        assert!(pass_cycle_accounting(&t, 5).is_empty());
        let findings = pass_cycle_accounting(&t, 6);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("5 cycles"));
    }

    #[test]
    fn verify_trace_bundles_and_ranks() {
        let t = trace(vec![TraceOp::NorCells {
            block: 0,
            inputs: vec![(1, 1)],
            out: (1, 1),
        }]);
        let events = [AllocEvent::Alloc { row: 2 }];
        let report = verify_trace(&t, &events, Some(1));
        // aliasing error + init error + leak warning; cycles match.
        assert_eq!(report.error_count(), 2);
        assert_eq!(report.warning_count(), 1);
        assert_eq!(
            report.findings().last().unwrap().pass,
            Pass::ScratchLifetime
        );
    }
}
