//! Recording harnesses: run each shipped kernel with recording armed and
//! lint the captured microprogram.
//!
//! Every harness plays the same shape: build a crossbar, arm
//! [`BlockedCrossbar::start_recording`], drive the kernel exactly the way
//! its production callers do, then hand the [`OpTrace`] (plus the traced
//! scratch-allocator events and the analytic cycle prediction) to
//! [`verify_trace`].

use apim_crossbar::{
    AllocEvent, BlockedCrossbar, CrossbarConfig, OpTrace, Result, RowAllocator, RowRef,
};
use apim_device::DeviceParams;
use apim_logic::adder_csa::{csa_group, CSA_SCRATCH_ROWS};
use apim_logic::adder_serial::{add_words, SerialScratch};
use apim_logic::gates;
use apim_logic::mac::CrossbarMac;
use apim_logic::multiplier::CrossbarMultiplier;
use apim_logic::wallace::reduce_rows_to_two;
use apim_logic::{CostModel, PrecisionMode};

use crate::passes::verify_trace;
use crate::report::LintReport;

/// The operand widths `apim verify` sweeps by default.
pub const DEFAULT_WIDTHS: [u32; 3] = [8, 16, 32];

/// A verifiable kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// The elementary gate set (NOT/NOR/OR/AND/NAND/XNOR/XOR rows).
    Gates,
    /// The `12N + 1`-cycle serial adder.
    SerialAdder,
    /// One 13-cycle carry-save 3:2 group.
    CsaGroup,
    /// Wallace-tree 9:2 reduction across two blocks.
    WallaceTree,
    /// The full three-stage multiplier (exact mode).
    Multiplier,
    /// The fused multiply-accumulate over three terms.
    Mac,
}

impl Kernel {
    /// Every kernel, in sweep order.
    pub const ALL: [Kernel; 6] = [
        Kernel::Gates,
        Kernel::SerialAdder,
        Kernel::CsaGroup,
        Kernel::WallaceTree,
        Kernel::Multiplier,
        Kernel::Mac,
    ];

    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Gates => "gates",
            Kernel::SerialAdder => "adder",
            Kernel::CsaGroup => "csa",
            Kernel::WallaceTree => "wallace",
            Kernel::Multiplier => "multiplier",
            Kernel::Mac => "mac",
        }
    }

    /// Parses a CLI name (a few aliases accepted).
    pub fn from_name(name: &str) -> Option<Kernel> {
        match name.to_ascii_lowercase().as_str() {
            "gates" | "gate" => Some(Kernel::Gates),
            "adder" | "serial" | "serial-adder" => Some(Kernel::SerialAdder),
            "csa" => Some(Kernel::CsaGroup),
            "wallace" | "tree" => Some(Kernel::WallaceTree),
            "multiplier" | "multiply" | "mul" => Some(Kernel::Multiplier),
            "mac" => Some(Kernel::Mac),
            _ => None,
        }
    }
}

/// Outcome of linting one kernel at one width.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// The kernel.
    pub kernel: Kernel,
    /// Operand width in bits.
    pub width: u32,
    /// Number of recorded primitives.
    pub ops: usize,
    /// Cycles the trace accounts for.
    pub cycles: u64,
    /// The cost model's prediction for the same kernel.
    pub expected_cycles: u64,
    /// The ranked findings.
    pub report: LintReport,
}

fn to_bits(v: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (v >> i) & 1 == 1).collect()
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

struct Recorded {
    trace: OpTrace,
    events: Vec<AllocEvent>,
    expected_cycles: u64,
}

/// The gate set: one of each elementary gate over a `width`-bit window.
/// 1 + 1 + 2 + 3 + 4 + 4 + 5 = 20 NOR cycles.
fn record_gates(width: u32) -> Result<Recorded> {
    let n = width as usize;
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let blk = xbar.block(0)?;
    let mut alloc = RowAllocator::with_tracing(xbar.rows());
    let operands = alloc.alloc_many(2)?;
    xbar.start_recording();
    xbar.preload_word(blk, operands[0], 0, &to_bits(0xA5A5_A5A5 & mask(width), n))?;
    xbar.preload_word(blk, operands[1], 0, &to_bits(0x3C5A_96F0 & mask(width), n))?;
    let work = alloc.alloc_many(5)?;
    let r = |row: usize| RowRef::new(blk, row);
    let (a, b, dst) = (r(operands[0]), r(operands[1]), r(work[0]));
    let s = [r(work[1]), r(work[2]), r(work[3]), r(work[4])];
    let cols = 0..n;
    gates::not_row(&mut xbar, a, dst, cols.clone(), 0)?;
    gates::nor_row(&mut xbar, a, b, dst, cols.clone())?;
    gates::or_row(&mut xbar, a, b, dst, s[0], cols.clone())?;
    gates::and_row(&mut xbar, a, b, dst, [s[0], s[1]], cols.clone())?;
    gates::nand_row(&mut xbar, a, b, dst, [s[0], s[1], s[2]], cols.clone())?;
    gates::xnor_row(&mut xbar, a, b, dst, [s[0], s[1], s[2]], cols.clone())?;
    gates::xor_row(&mut xbar, a, b, dst, s, cols)?;
    let trace = xbar.stop_recording();
    alloc.free_many(work)?;
    alloc.free_many(operands)?;
    Ok(Recorded {
        trace,
        events: alloc.take_events(),
        expected_cycles: 20,
    })
}

/// The serial ripple adder over `width` bits: `12N + 1` cycles.
fn record_serial_adder(width: u32) -> Result<Recorded> {
    let n = width as usize;
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let blk = xbar.block(1)?;
    let mut alloc = RowAllocator::with_tracing(xbar.rows());
    let rows = alloc.alloc_many(3)?; // x, y, out
    xbar.start_recording();
    xbar.preload_word(blk, rows[0], 0, &to_bits(0x1234_5677 & mask(width), n))?;
    xbar.preload_word(blk, rows[1], 0, &to_bits(0x0FED_CBA9 & mask(width), n))?;
    let scratch = SerialScratch::alloc(&mut alloc)?;
    add_words(&mut xbar, blk, rows[0], rows[1], rows[2], 0..n, &scratch)?;
    let trace = xbar.stop_recording();
    scratch.release(&mut alloc)?;
    alloc.free_many(rows)?;
    let model = CostModel::new(&DeviceParams::default());
    Ok(Recorded {
        trace,
        events: alloc.take_events(),
        expected_cycles: model.serial_add(width).cycles.get(),
    })
}

/// One carry-save 3:2 group: 13 cycles at any width.
fn record_csa_group(width: u32) -> Result<Recorded> {
    let n = width as usize;
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let src = xbar.block(1)?;
    let dst = xbar.block(2)?;
    let mut alloc = RowAllocator::with_tracing(xbar.rows());
    let operands = alloc.alloc_many(3)?;
    let scratch_rows = alloc.alloc_many(CSA_SCRATCH_ROWS)?;
    let scratch: [usize; CSA_SCRATCH_ROWS] = scratch_rows.clone().try_into().expect("eleven rows");
    xbar.start_recording();
    for (i, v) in [0x0F0Fu64, 0x3333, 0x5555].into_iter().enumerate() {
        xbar.preload_word(src, operands[i], 0, &to_bits(v & mask(width), n))?;
    }
    // Destination rows live in the other block; zero them over the operand
    // window plus the carry-drift margin, as the Wallace caller does.
    xbar.preload_word(dst, 0, 0, &vec![false; n + 2])?;
    xbar.preload_word(dst, 1, 0, &vec![false; n + 2])?;
    csa_group(
        &mut xbar,
        RowRef::new(src, operands[0]),
        RowRef::new(src, operands[1]),
        RowRef::new(src, operands[2]),
        RowRef::new(dst, 0),
        RowRef::new(dst, 1),
        0..n,
        &scratch,
    )?;
    let trace = xbar.stop_recording();
    alloc.free_many(scratch_rows)?;
    alloc.free_many(operands)?;
    Ok(Recorded {
        trace,
        events: alloc.take_events(),
        expected_cycles: 13,
    })
}

/// Wallace 9:2 reduction: `13 · stages(9)` cycles.
fn record_wallace(width: u32) -> Result<Recorded> {
    const COUNT: usize = 9;
    let n = width as usize;
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let src = xbar.block(1)?;
    let dst = xbar.block(2)?;
    // Mirror the region the reduction occupies (operands + stage scratch)
    // through a traced allocator so the lifetime pass sees the claim.
    let mut alloc = RowAllocator::with_tracing(xbar.rows());
    let region = alloc.alloc_many(COUNT + CSA_SCRATCH_ROWS)?;
    xbar.start_recording();
    for (i, row) in region.iter().take(COUNT).enumerate() {
        let v = (37 * i as u64 + 11) & mask(width);
        xbar.preload_word(src, *row, 0, &to_bits(v, n))?;
    }
    reduce_rows_to_two(&mut xbar, src, dst, COUNT, 0..n)?;
    let trace = xbar.stop_recording();
    alloc.free_many(region)?;
    Ok(Recorded {
        trace,
        events: alloc.take_events(),
        expected_cycles: 13 * u64::from(CostModel::stages(COUNT as u32)),
    })
}

/// The full exact multiplier; prediction from [`CostModel::multiply`].
fn record_multiplier(width: u32) -> Result<Recorded> {
    let a = 0x9E37_79B9 & mask(width);
    let b = 0x6A09_E667 & mask(width);
    let mut mul = CrossbarMultiplier::new(width, &DeviceParams::default())?;
    mul.crossbar_mut().start_recording();
    mul.multiply(a, b, PrecisionMode::Exact)?;
    let trace = mul.crossbar_mut().stop_recording();
    let model = CostModel::new(&DeviceParams::default());
    Ok(Recorded {
        trace,
        events: Vec::new(),
        expected_cycles: model.multiply(width, b, PrecisionMode::Exact).cycles.get(),
    })
}

/// The fused MAC over three terms; prediction from
/// [`CostModel::mac_group_value`].
fn record_mac(width: u32) -> Result<Recorded> {
    let m = mask(width);
    let terms = [
        (0x0000_0C3Au64 & m, 0x0000_0055u64 & m),
        (0x0000_00B7 & m, 0x0000_0091 & m),
        (0x0000_0D05 & m, 0x0000_0036 & m),
    ];
    let mut mac = CrossbarMac::new(width, 4, &DeviceParams::default())?;
    mac.crossbar_mut().start_recording();
    mac.mac(&terms, PrecisionMode::Exact)?;
    let trace = mac.crossbar_mut().stop_recording();
    let model = CostModel::new(&DeviceParams::default());
    let multipliers: Vec<u64> = terms.iter().map(|&(_, b)| b).collect();
    Ok(Recorded {
        trace,
        events: Vec::new(),
        expected_cycles: model
            .mac_group_value(width, &multipliers, PrecisionMode::Exact)
            .cycles
            .get(),
    })
}

/// Records `kernel` at `width` and lints the captured microprogram.
///
/// # Errors
///
/// Propagates crossbar errors from *running* the kernel (the lint findings
/// themselves are data, not errors — see [`KernelRun::report`]).
pub fn verify_kernel(kernel: Kernel, width: u32) -> Result<KernelRun> {
    let recorded = match kernel {
        Kernel::Gates => record_gates(width)?,
        Kernel::SerialAdder => record_serial_adder(width)?,
        Kernel::CsaGroup => record_csa_group(width)?,
        Kernel::WallaceTree => record_wallace(width)?,
        Kernel::Multiplier => record_multiplier(width)?,
        Kernel::Mac => record_mac(width)?,
    };
    let report = verify_trace(
        &recorded.trace,
        &recorded.events,
        Some(recorded.expected_cycles),
    );
    Ok(KernelRun {
        kernel,
        width,
        ops: recorded.trace.len(),
        cycles: recorded.trace.cycles(),
        expected_cycles: recorded.expected_cycles,
        report,
    })
}

/// Sweeps every kernel at every width.
///
/// # Errors
///
/// Propagates the first kernel-execution error.
pub fn verify_all(widths: &[u32]) -> Result<Vec<KernelRun>> {
    let mut runs = Vec::with_capacity(Kernel::ALL.len() * widths.len());
    for kernel in Kernel::ALL {
        for &width in widths {
            runs.push(verify_kernel(kernel, width)?);
        }
    }
    Ok(runs)
}

/// Renders a sweep as a fixed-width table plus any findings.
pub fn render(runs: &[KernelRun]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>6} {:>8} {:>9}  verdict",
        "kernel", "width", "ops", "cycles", "predicted"
    );
    for run in runs {
        let verdict = if run.report.is_clean() {
            "clean".to_string()
        } else {
            format!(
                "{} error(s), {} warning(s)",
                run.report.error_count(),
                run.report.warning_count()
            )
        };
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>6} {:>8} {:>9}  {verdict}",
            run.kernel.name(),
            run.width,
            run.ops,
            run.cycles,
            run.expected_cycles
        );
    }
    for run in runs.iter().filter(|r| !r.report.is_clean()) {
        let _ = writeln!(out, "\n{} @ {} bits:", run.kernel.name(), run.width);
        for finding in run.report.findings() {
            let _ = writeln!(out, "  {finding}");
        }
    }
    out.pop();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_is_clean_at_every_default_width() {
        for run in verify_all(&DEFAULT_WIDTHS).unwrap() {
            assert!(
                run.report.is_clean(),
                "{} @ {} bits:\n{}",
                run.kernel.name(),
                run.width,
                run.report
            );
            assert_eq!(
                run.cycles,
                run.expected_cycles,
                "{} @ {} bits",
                run.kernel.name(),
                run.width
            );
            assert!(run.ops > 0);
        }
    }

    #[test]
    fn kernel_names_round_trip() {
        for kernel in Kernel::ALL {
            assert_eq!(Kernel::from_name(kernel.name()), Some(kernel));
        }
        assert_eq!(Kernel::from_name("mul"), Some(Kernel::Multiplier));
        assert_eq!(Kernel::from_name("nosuch"), None);
    }

    #[test]
    fn render_produces_one_row_per_run() {
        let runs = verify_all(&[8]).unwrap();
        let table = render(&runs);
        assert_eq!(table.lines().count(), 1 + runs.len(), "{table}");
        assert!(table.contains("clean"));
    }
}
