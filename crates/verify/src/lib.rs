//! Static hazard analysis for MAGIC NOR microprograms.
//!
//! The gate-level crates execute kernels against simulated memristive
//! cells, which catches *value-dependent* symptoms of scheduling bugs
//! (e.g. `strict_init` fires only when the stale bit happens to be OFF).
//! This crate catches the bugs themselves, statically: a kernel is run once
//! with operation recording armed (see
//! [`apim_crossbar::BlockedCrossbar::start_recording`]), and the captured
//! [`apim_crossbar::OpTrace`] — the sequence of primitives the kernel
//! *requested*, before any runtime validation — is replayed through five
//! dataflow passes:
//!
//! 1. **init-discipline** — every NOR destination cell is initialized to
//!    the ON state after its last write and before evaluation.
//! 2. **aliasing** — no NOR names one of its own input cells as output.
//! 3. **shift-bounds** — interconnect shifts keep the column window inside
//!    the array, and never ask a single block to shift against itself.
//! 4. **scratch-lifetime** — alloc/free pairing over
//!    [`apim_crossbar::RowAllocator::with_tracing`] event logs:
//!    double-frees, frees of never-allocated rows, leaks at kernel exit.
//! 5. **cycle-accounting** — the trace accounts for exactly the cycles the
//!    analytic [`apim_logic::CostModel`] predicts (13-cycle CSA stage,
//!    `12N + 1` serial addition, `ones + 1` partial products, …).
//!
//! [`verify_kernel`]/[`verify_all`] bundle the recording harnesses for the
//! shipped kernels (gates, serial adder, CSA group, Wallace tree,
//! multiplier, MAC); `apim-cli verify` and the CI lint gate sit on top of
//! them.
//!
//! On top of the hazard passes, the [`equiv`] module proves microprograms
//! *compute their specification*: the trace is re-executed over a
//! hash-consed symbolic NOR graph ([`xprop`] supplies the three-valued
//! unknown lattice) and compared against a pure-integer spec by 64-lane
//! packed cofactor evaluation — exhaustive up to
//! [`equiv::MAX_EXHAUSTIVE_BITS`] input bits, seeded-sampled beyond, with
//! concrete counterexamples on mismatch. [`verify_equiv_kernel`] /
//! [`verify_equiv_all`] bundle the recording harnesses; `apim-cli verify
//! --equiv` sits on top.
//!
//! ```
//! use apim_verify::{verify_kernel, Kernel};
//!
//! # fn main() -> Result<(), apim_crossbar::CrossbarError> {
//! let run = verify_kernel(Kernel::SerialAdder, 16)?;
//! assert!(run.report.is_clean());
//! assert_eq!(run.cycles, 12 * 16 + 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod equiv;
pub mod equiv_kernels;
pub mod kernels;
pub mod passes;
pub mod report;
pub mod xprop;

pub use equiv::{
    check_equiv, CheckMode, Counterexample, EquivReport, NorGraph, OperandBinding, OutputBinding,
};
pub use equiv_kernels::{
    render_equiv, verify_equiv_all, verify_equiv_kernel, EquivKernelRun, EquivTarget,
};
pub use kernels::{render, verify_all, verify_kernel, Kernel, KernelRun, DEFAULT_WIDTHS};
pub use passes::{
    pass_aliasing, pass_cycle_accounting, pass_init_discipline, pass_scratch_lifetime,
    pass_shift_bounds, verify_trace,
};
pub use report::{Finding, LintReport, Pass, Severity};
