//! Finding and report types shared by all passes.

use std::fmt;

/// How bad a finding is.
///
/// Ordered so that `Error > Warning > Info`, letting reports sort
/// worst-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational observation; never fails a gate.
    Info,
    /// Suspicious but survivable — e.g. scratch rows leaked at exit.
    Warning,
    /// A hazard that corrupts results or cost accounting.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which analysis produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Every NOR destination cell must be initialized (set ON) after its
    /// last write and before evaluation.
    InitDiscipline,
    /// A NOR output cell must not overlap any of its input cells.
    Aliasing,
    /// Interconnect shifts must keep the column range inside the array.
    ShiftBounds,
    /// Scratch-row alloc/free pairing: double-frees, frees of rows never
    /// handed out, rows still live at kernel exit.
    ScratchLifetime,
    /// Recorded cycles must equal the analytic cost-model prediction.
    CycleAccounting,
    /// Three-valued unknown propagation: reads of never-written cells must
    /// not reach host logic or kernel outputs.
    XProp,
    /// Symbolic equivalence: the microprogram must compute its
    /// specification, not merely avoid hazards.
    Equiv,
}

impl Pass {
    /// Stable kebab-case name used in rendered reports.
    pub fn name(self) -> &'static str {
        match self {
            Pass::InitDiscipline => "init-discipline",
            Pass::Aliasing => "aliasing",
            Pass::ShiftBounds => "shift-bounds",
            Pass::ScratchLifetime => "scratch-lifetime",
            Pass::CycleAccounting => "cycle-accounting",
            Pass::XProp => "x-prop",
            Pass::Equiv => "equiv",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnosed hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The pass that produced it.
    pub pass: Pass,
    /// Severity.
    pub severity: Severity,
    /// Index of the offending [`apim_crossbar::TraceOp`] in the trace, if
    /// the finding anchors to one (lifetime findings anchor to allocator
    /// events instead).
    pub op_index: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.pass)?;
        if let Some(i) = self.op_index {
            write!(f, " op #{i}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// A severity-ranked collection of findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    findings: Vec<Finding>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Builds a report from raw findings, ranking them worst-first (ties
    /// keep trace order).
    pub fn from_findings(mut findings: Vec<Finding>) -> Self {
        findings.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.op_index.cmp(&b.op_index))
        });
        LintReport { findings }
    }

    /// The ranked findings.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Whether no findings were produced at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of error-severity findings (the ones a gate fails on).
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean: no findings");
        }
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: Pass, severity: Severity, op: Option<usize>) -> Finding {
        Finding {
            pass,
            severity,
            op_index: op,
            message: "x".into(),
        }
    }

    #[test]
    fn report_ranks_worst_first() {
        let report = LintReport::from_findings(vec![
            finding(Pass::ScratchLifetime, Severity::Warning, None),
            finding(Pass::InitDiscipline, Severity::Error, Some(7)),
            finding(Pass::Aliasing, Severity::Error, Some(2)),
        ]);
        let severities: Vec<_> = report.findings().iter().map(|f| f.severity).collect();
        assert_eq!(
            severities,
            vec![Severity::Error, Severity::Error, Severity::Warning]
        );
        assert_eq!(
            report.findings()[0].op_index,
            Some(2),
            "trace order in ties"
        );
        assert_eq!(report.error_count(), 2);
        assert_eq!(report.warning_count(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn display_formats_are_stable() {
        let f = finding(Pass::ShiftBounds, Severity::Error, Some(3));
        assert_eq!(f.to_string(), "error[shift-bounds] op #3: x");
        assert_eq!(LintReport::new().to_string(), "clean: no findings");
        let report = LintReport::from_findings(vec![f]);
        assert!(report.to_string().ends_with("1 error(s), 0 warning(s)"));
    }
}
