//! Recording harnesses binding the shipped kernels to their closed-form
//! specs ([`apim_logic::spec`]) for symbolic equivalence checking.
//!
//! Each harness records one kernel run exactly the way production callers
//! drive it, declares which operand windows are symbolic, where the result
//! lives, and what pure-integer function the kernel promises — then hands
//! everything to [`check_equiv`].
//!
//! Kernels whose *op sequence* depends on operand data (the multiplier
//! reads its multiplier bit-wise to place partial products, the divider
//! branches on in-memory comparisons) are checked **per specialization**:
//! the steering operand stays concrete — captured by the spec closure —
//! and several concrete choices are swept, while the data-path operands
//! stay fully symbolic. Kernels with data-independent schedules (adder,
//! subtractor, Wallace sum) are checked with every operand bit symbolic.

use apim_crossbar::{BlockedCrossbar, CrossbarConfig, OpTrace, Result, RowAllocator, TraceOp};
use apim_device::DeviceParams;
use apim_logic::adder_serial::{add_words, SerialScratch};
use apim_logic::divider::divide;
use apim_logic::mac::CrossbarMac;
use apim_logic::multiplier::CrossbarMultiplier;
use apim_logic::spec;
use apim_logic::subtractor::sub_words;
use apim_logic::wallace::sum_rows;
use apim_logic::PrecisionMode;

use crate::equiv::{check_equiv, EquivReport, OperandBinding, OutputBinding};
use crate::kernels::DEFAULT_WIDTHS;

/// A kernel with a closed-form spec the equivalence checker can prove.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EquivTarget {
    /// Serial ripple adder: `x + y mod 2^n`.
    SerialAdder,
    /// Two's-complement subtractor: `x − y mod 2^n`.
    Subtractor,
    /// Wallace multi-operand sum: `Σ xᵢ mod 2^(n+4)` over nine operands.
    WallaceTree,
    /// Full multiplier: `a · b mod 2^2n`, per multiplier specialization.
    Multiplier,
    /// Fused MAC: `Σ aᵢ·bᵢ mod 2^n`, per multiplier specialization.
    Mac,
    /// Restoring divider fast path: `x mod y`, fully concrete replay.
    Divider,
}

impl EquivTarget {
    /// Every target, in display order.
    pub const ALL: [EquivTarget; 6] = [
        EquivTarget::SerialAdder,
        EquivTarget::Subtractor,
        EquivTarget::WallaceTree,
        EquivTarget::Multiplier,
        EquivTarget::Mac,
        EquivTarget::Divider,
    ];

    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            EquivTarget::SerialAdder => "adder",
            EquivTarget::Subtractor => "subtractor",
            EquivTarget::WallaceTree => "wallace",
            EquivTarget::Multiplier => "multiplier",
            EquivTarget::Mac => "mac",
            EquivTarget::Divider => "divider",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        EquivTarget::ALL.into_iter().find(|t| t.name() == name)
    }
}

/// One equivalence-checked kernel recording.
#[derive(Debug, Clone)]
pub struct EquivKernelRun {
    /// The kernel checked.
    pub target: EquivTarget,
    /// Operand width in bits.
    pub width: u32,
    /// Which specialization (concrete steering operands), if any.
    pub detail: String,
    /// Number of recorded ops.
    pub ops: usize,
    /// The checker's verdict.
    pub report: EquivReport,
}

fn to_bits(v: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (v >> i) & 1 == 1).collect()
}

fn binding(name: &str, block: usize, row: usize, width: usize) -> OperandBinding {
    OperandBinding {
        name: name.into(),
        block,
        row,
        col0: 0,
        width,
        col_step: 1,
    }
}

/// The block whose `row` received the last single-cell NOR write — how the
/// harnesses locate a result whose block is decided mid-run by the
/// Wallace tree's ping-ponging.
fn block_writing_row(trace: &OpTrace, row: usize) -> Option<usize> {
    trace.ops.iter().rev().find_map(|op| match op {
        TraceOp::NorCells { block, out, .. } if out.0 == row => Some(*block),
        _ => None,
    })
}

fn adder_run(width: u32) -> Result<EquivKernelRun> {
    let n = width as usize;
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let blk = xbar.block(1)?;
    let mut alloc = RowAllocator::new(xbar.rows());
    let rows = alloc.alloc_many(3)?; // x, y, out
    let scratch = SerialScratch::alloc(&mut alloc)?;
    xbar.start_recording();
    xbar.preload_word(blk, rows[0], 0, &to_bits(0x1234_5677 & spec::mask(n), n))?;
    xbar.preload_word(blk, rows[1], 0, &to_bits(0x0FED_CBA9 & spec::mask(n), n))?;
    add_words(&mut xbar, blk, rows[0], rows[1], rows[2], 0..n, &scratch)?;
    let trace = xbar.stop_recording();
    let operands = [
        binding("x", blk.index(), rows[0], n),
        binding("y", blk.index(), rows[1], n),
    ];
    let output = OutputBinding {
        block: blk.index(),
        row: rows[2],
        col0: 0,
        width: n,
        col_step: 1,
    };
    let report = check_equiv(&trace, &operands, &output, |v| spec::add(v[0], v[1], n));
    Ok(EquivKernelRun {
        target: EquivTarget::SerialAdder,
        width,
        detail: String::new(),
        ops: trace.len(),
        report,
    })
}

fn subtractor_run(width: u32) -> Result<EquivKernelRun> {
    let n = width as usize;
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let blk = xbar.block(1)?;
    let mut alloc = RowAllocator::new(xbar.rows());
    let rows = alloc.alloc_many(4)?; // x, y, !y, out
    let scratch = SerialScratch::alloc(&mut alloc)?;
    xbar.start_recording();
    xbar.preload_word(blk, rows[0], 0, &to_bits(0x0F1E_2D3C & spec::mask(n), n))?;
    xbar.preload_word(blk, rows[1], 0, &to_bits(0x5A69_7887 & spec::mask(n), n))?;
    sub_words(
        &mut xbar,
        blk,
        rows[0],
        rows[1],
        rows[2],
        rows[3],
        0..n,
        &scratch,
    )?;
    let trace = xbar.stop_recording();
    let operands = [
        binding("x", blk.index(), rows[0], n),
        binding("y", blk.index(), rows[1], n),
    ];
    let output = OutputBinding {
        block: blk.index(),
        row: rows[3],
        col0: 0,
        width: n,
        col_step: 1,
    };
    let report = check_equiv(&trace, &operands, &output, |v| spec::sub(v[0], v[1], n));
    Ok(EquivKernelRun {
        target: EquivTarget::Subtractor,
        width,
        detail: String::new(),
        ops: trace.len(),
        report,
    })
}

const WALLACE_OPERANDS: usize = 9;

fn wallace_run(width: u32) -> Result<EquivKernelRun> {
    let n = width as usize;
    // Nine n-bit operands summed exactly into an (n + 4)-bit window.
    let window = n + 4;
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let src = xbar.block(1)?;
    let dst = xbar.block(2)?;
    xbar.start_recording();
    for i in 0..WALLACE_OPERANDS {
        let v = (37 * i as u64 + 11) & spec::mask(n);
        xbar.preload_word(src, i, 0, &to_bits(v, window))?;
    }
    let (block, row) = sum_rows(&mut xbar, src, dst, WALLACE_OPERANDS, window)?;
    let trace = xbar.stop_recording();
    let operands: Vec<OperandBinding> = (0..WALLACE_OPERANDS)
        .map(|i| binding(&format!("x{i}"), src.index(), i, n))
        .collect();
    let output = OutputBinding {
        block: block.index(),
        row,
        col0: 0,
        width: window,
        col_step: 1,
    };
    let report = check_equiv(&trace, &operands, &output, |v| spec::sum(v, window));
    Ok(EquivKernelRun {
        target: EquivTarget::WallaceTree,
        width,
        detail: format!("{WALLACE_OPERANDS} operands"),
        ops: trace.len(),
        report,
    })
}

/// Multiplier specializations: the multiplicand is fully symbolic, the
/// multiplier (which steers partial-product placement through sense reads)
/// is swept over concrete values on the main pipeline path.
fn multiplier_specializations(width: u32) -> [u64; 2] {
    let m = spec::mask(width as usize);
    [0x6A09_E667 & m, 0b1011_0101 & m]
}

fn multiplier_run(width: u32, b: u64) -> Result<EquivKernelRun> {
    let n = width as usize;
    let w = 2 * n;
    let a_base = 0x9E37_79B9 & spec::mask(n);
    let mut mul = CrossbarMultiplier::new(width, &DeviceParams::default())?;
    mul.crossbar_mut().start_recording();
    mul.multiply(a_base, b, PrecisionMode::Exact)?;
    let trace = mul.crossbar_mut().stop_recording();
    // Exact mode ends in a serial addition into row 2 of whichever block
    // the reduction landed in.
    let out_block = block_writing_row(&trace, 2).expect("exact multiply ends in a serial add");
    let operands = [binding("a", 0, 0, n)];
    let output = OutputBinding {
        block: out_block,
        row: 2,
        col0: 0,
        width: w,
        col_step: 1,
    };
    let report = check_equiv(&trace, &operands, &output, |v| spec::mul(v[0], b, w));
    Ok(EquivKernelRun {
        target: EquivTarget::Multiplier,
        width,
        detail: format!("b=0x{b:X}"),
        ops: trace.len(),
        report,
    })
}

fn mac_multipliers(width: u32) -> [u64; 3] {
    let m = spec::mask(width as usize);
    [0x65 & m, 0xB3 & m, 0x2F & m]
}

fn mac_run(width: u32) -> Result<EquivKernelRun> {
    let n = width as usize;
    let bs = mac_multipliers(width);
    let a_bases = [
        0x9E37_79B9 & spec::mask(n),
        0x3C6E_F372 & spec::mask(n),
        0x1B87_3593 & spec::mask(n),
    ];
    let terms: Vec<(u64, u64)> = a_bases.iter().zip(bs).map(|(&a, b)| (a, b)).collect();
    let mut mac = CrossbarMac::new(width, terms.len(), &DeviceParams::default())?;
    mac.crossbar_mut().start_recording();
    mac.mac(&terms, PrecisionMode::Exact)?;
    let trace = mac.crossbar_mut().stop_recording();
    let out_block = block_writing_row(&trace, 2).expect("exact MAC ends in a serial add");
    let operands: Vec<OperandBinding> = (0..terms.len())
        .map(|i| binding(&format!("a{i}"), 0, 2 * i, n))
        .collect();
    let output = OutputBinding {
        block: out_block,
        row: 2,
        col0: 0,
        width: n,
        col_step: 1,
    };
    let report = check_equiv(&trace, &operands, &output, |v| {
        let terms: Vec<(u64, u64)> = v.iter().zip(bs).map(|(&a, b)| (a, b)).collect();
        spec::mac(&terms, n)
    });
    Ok(EquivKernelRun {
        target: EquivTarget::Mac,
        width,
        detail: format!("b={bs:?}"),
        ops: trace.len(),
        report,
    })
}

/// Divider specializations: host control flow branches on the in-memory
/// comparison every step, so both operands stay concrete and the checker
/// replays the exact recorded path (the divider's fast path).
fn divider_specializations(width: u32) -> [(u64, u64); 2] {
    let m = spec::mask(width as usize);
    [(0xDEAD_BEEF & m, 7), (0x1234_5678 & m, 0x1D & m | 1)]
}

fn divider_run(width: u32, x: u64, y: u64) -> Result<EquivKernelRun> {
    let n = width as usize;
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let blk = xbar.block(1)?;
    xbar.start_recording();
    divide(&mut xbar, blk, x, y, n)?;
    let trace = xbar.stop_recording();
    // The remainder register is the first allocated row.
    let output = OutputBinding {
        block: blk.index(),
        row: 0,
        col0: 0,
        width: n,
        col_step: 1,
    };
    let report = check_equiv(&trace, &[], &output, |_| spec::rem(x, y));
    Ok(EquivKernelRun {
        target: EquivTarget::Divider,
        width,
        detail: format!("x=0x{x:X} y=0x{y:X}"),
        ops: trace.len(),
        report,
    })
}

/// Checks one target at one width, possibly over several specializations.
///
/// # Errors
///
/// Propagates crossbar errors from the recording run itself; checker
/// verdicts (including failures) land in the returned reports.
pub fn verify_equiv_kernel(target: EquivTarget, width: u32) -> Result<Vec<EquivKernelRun>> {
    match target {
        EquivTarget::SerialAdder => Ok(vec![adder_run(width)?]),
        EquivTarget::Subtractor => Ok(vec![subtractor_run(width)?]),
        EquivTarget::WallaceTree => Ok(vec![wallace_run(width)?]),
        EquivTarget::Multiplier => multiplier_specializations(width)
            .into_iter()
            .map(|b| multiplier_run(width, b))
            .collect(),
        EquivTarget::Mac => Ok(vec![mac_run(width)?]),
        EquivTarget::Divider => divider_specializations(width)
            .into_iter()
            .map(|(x, y)| divider_run(width, x, y))
            .collect(),
    }
}

/// Sweeps every target over the default widths.
///
/// # Errors
///
/// Propagates crossbar errors from the recording runs.
pub fn verify_equiv_all() -> Result<Vec<EquivKernelRun>> {
    let mut runs = Vec::new();
    for target in EquivTarget::ALL {
        for width in DEFAULT_WIDTHS {
            runs.extend(verify_equiv_kernel(target, width)?);
        }
    }
    Ok(runs)
}

/// Renders runs as a fixed-width table.
pub fn render_equiv(runs: &[EquivKernelRun]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>5} {:<20} {:>6} {:>7} {:<18} verdict\n",
        "kernel", "width", "detail", "ops", "nodes", "mode"
    ));
    for run in runs {
        let verdict = if run.report.equivalent {
            "equivalent".to_string()
        } else if let Some(cx) = &run.report.counterexample {
            format!("MISMATCH {cx}")
        } else {
            format!("FAILED ({})", run.report.lint)
        };
        out.push_str(&format!(
            "{:<12} {:>5} {:<20} {:>6} {:>7} {:<18} {}\n",
            run.target.name(),
            run.width,
            run.detail,
            run.ops,
            run.report.nodes,
            run.report.mode.to_string(),
            verdict
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::CheckMode;

    #[test]
    fn adder_is_proven_equivalent_at_8_bits() {
        let run = adder_run(8).unwrap();
        assert!(run.report.equivalent, "{}", render_equiv(&[run]));
        assert_eq!(
            run.report.mode,
            CheckMode::Exhaustive {
                assignments: 1 << 16
            }
        );
    }

    #[test]
    fn subtractor_is_proven_equivalent_at_8_bits() {
        let run = subtractor_run(8).unwrap();
        assert!(run.report.equivalent, "{}", render_equiv(&[run]));
    }

    #[test]
    fn wallace_sum_is_equivalent_at_8_bits() {
        let run = wallace_run(8).unwrap();
        assert!(run.report.equivalent, "{}", render_equiv(&[run]));
        assert_eq!(run.report.input_bits, 72, "nine 8-bit operands");
    }

    #[test]
    fn multiplier_is_proven_equivalent_at_8_bits() {
        for b in multiplier_specializations(8) {
            let run = multiplier_run(8, b).unwrap();
            assert!(run.report.equivalent, "{}", render_equiv(&[run]));
            assert_eq!(run.report.input_bits, 8, "multiplicand fully symbolic");
        }
    }

    #[test]
    fn mac_is_equivalent_at_8_bits() {
        let run = mac_run(8).unwrap();
        assert!(run.report.equivalent, "{}", render_equiv(&[run]));
        assert_eq!(run.report.input_bits, 24);
    }

    #[test]
    fn divider_fast_path_replays_exactly() {
        for (x, y) in divider_specializations(8) {
            let run = divider_run(8, x, y).unwrap();
            assert!(run.report.equivalent, "{}", render_equiv(&[run]));
            assert_eq!(run.report.input_bits, 0, "fully concrete specialization");
        }
    }

    #[test]
    fn target_names_round_trip() {
        for t in EquivTarget::ALL {
            assert_eq!(EquivTarget::from_name(t.name()), Some(t));
        }
        assert_eq!(EquivTarget::from_name("nope"), None);
    }
}
