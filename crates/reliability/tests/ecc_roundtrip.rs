//! Property suite for the in-crossbar SEC-DED layer.
//!
//! The properties hold for *every* stored content and fault position, not
//! just the handful of fixtures in the unit tests:
//!
//! * any single genuinely-flipping stuck-at fault anywhere in the 13-row
//!   group decodes back to the exact stored words;
//! * any two flips in one column are detected and **not** miscorrected —
//!   no third bit gets flipped by a bogus syndrome match;
//! * benign faults (stuck at the stored value) are invisible;
//! * Packed and Scalar backends agree bit for bit under seeded fault sets.
//!
//! Fault positions and contents are derived from one proptest-driven seed
//! through SplitMix64, so shrinking stays meaningful and the vendored
//! proptest stub only needs `any::<u64>()`.

use apim_crossbar::{Backend, BlockedCrossbar, CrossbarConfig, Fault, RowAllocator};
use apim_reliability::ecc::{DecodeReport, EccGroup, DATA_ROWS, GROUP_ROWS};
use apim_reliability::FaultPlan;
use proptest::prelude::*;

const W: usize = 32;
const MASK: u64 = (1 << W) - 1;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn words_from(seed: u64) -> [u64; DATA_ROWS] {
    let mut s = seed;
    std::array::from_fn(|_| splitmix(&mut s) & MASK)
}

/// Host-side reference codeword: bit planes for all 13 group rows, in the
/// group-row-index order used by `EccGroup::rows()` (data, parity,
/// overall). Mirrors the (13,8) Hamming layout: data at codeword positions
/// 3,5,6,7,9..=12, parity at 1,2,4,8.
fn host_planes(words: &[u64; DATA_ROWS]) -> [u64; GROUP_ROWS] {
    const DATA_POS: [u8; DATA_ROWS] = [3, 5, 6, 7, 9, 10, 11, 12];
    let mut planes = [0u64; GROUP_ROWS];
    planes[..DATA_ROWS].copy_from_slice(words);
    for (i, &p) in [1u8, 2, 4, 8].iter().enumerate() {
        planes[DATA_ROWS + i] = DATA_POS
            .iter()
            .enumerate()
            .filter(|(_, &d)| d & p != 0)
            .fold(0, |acc, (j, _)| acc ^ words[j]);
    }
    planes[GROUP_ROWS - 1] = planes[..GROUP_ROWS - 1].iter().fold(0, |acc, &w| acc ^ w);
    planes
}

/// A stuck-at fault that flips the stored bit (the only kind the decoder
/// can observe).
fn flipping_fault(planes: &[u64; GROUP_ROWS], row_idx: usize, col: usize) -> Fault {
    if planes[row_idx] >> col & 1 == 1 {
        Fault::StuckAtZero
    } else {
        Fault::StuckAtOne
    }
}

fn store_decode(
    words: &[u64; DATA_ROWS],
    faults: &[(usize, usize, Fault)],
    backend: Backend,
) -> ([u64; DATA_ROWS], DecodeReport) {
    let mut xbar = BlockedCrossbar::new(CrossbarConfig {
        backend,
        ..CrossbarConfig::default()
    })
    .unwrap();
    let blk = xbar.block(0).unwrap();
    let mut alloc = RowAllocator::new(xbar.rows());
    let group = EccGroup::alloc(blk, &mut alloc).unwrap();
    for (j, &w) in words.iter().enumerate() {
        xbar.preload_u64(blk, group.data[j], 0, W, w).unwrap();
    }
    group.encode(&mut xbar, 0..W, &mut alloc).unwrap();
    let rows = group.rows();
    for &(row_idx, col, fault) in faults {
        xbar.inject_fault(blk, rows[row_idx], col, Some(fault))
            .unwrap();
    }
    let dst: [usize; DATA_ROWS] = alloc.alloc_many(DATA_ROWS).unwrap().try_into().unwrap();
    let report = group.decode(&mut xbar, &dst, 0..W, &mut alloc).unwrap();
    let mut out = [0u64; DATA_ROWS];
    for (j, &row) in dst.iter().enumerate() {
        out[j] = xbar.peek_u64(blk, row, 0, W).unwrap();
    }
    (out, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Encode → flip any one stored bit → decode recovers exactly.
    #[test]
    fn any_single_flip_is_corrected(seed in any::<u64>()) {
        let words = words_from(seed);
        let planes = host_planes(&words);
        let mut s = seed ^ 0xECC1;
        let row_idx = (splitmix(&mut s) % GROUP_ROWS as u64) as usize;
        let col = (splitmix(&mut s) % W as u64) as usize;
        let fault = flipping_fault(&planes, row_idx, col);
        let (out, report) = store_decode(&words, &[(row_idx, col, fault)], Backend::Packed);
        prop_assert_eq!(out, words, "row {} col {}", row_idx, col);
        prop_assert_eq!(report.corrected, vec![col]);
        prop_assert!(report.uncorrectable.is_empty());
        prop_assert!(report.all_recovered());
    }

    /// Two flips in one column: detected, never miscorrected — the output
    /// differs from the stored words at exactly the flipped data bits and
    /// nowhere else.
    #[test]
    fn any_double_flip_is_detected_not_miscorrected(seed in any::<u64>()) {
        let words = words_from(seed);
        let planes = host_planes(&words);
        let mut s = seed ^ 0xECC2;
        let r1 = (splitmix(&mut s) % GROUP_ROWS as u64) as usize;
        let mut r2 = (splitmix(&mut s) % (GROUP_ROWS as u64 - 1)) as usize;
        if r2 >= r1 {
            r2 += 1;
        }
        let col = (splitmix(&mut s) % W as u64) as usize;
        let faults = [
            (r1, col, flipping_fault(&planes, r1, col)),
            (r2, col, flipping_fault(&planes, r2, col)),
        ];
        let (out, report) = store_decode(&words, &faults, Backend::Packed);
        prop_assert_eq!(report.uncorrectable, vec![col], "rows {} {}", r1, r2);
        prop_assert!(report.corrected.is_empty());
        for (j, (&got, &want)) in out.iter().zip(words.iter()).enumerate() {
            let flipped = (j == r1 || j == r2) && j < DATA_ROWS;
            let expect_diff = if flipped { 1u64 << col } else { 0 };
            prop_assert_eq!(got ^ want, expect_diff, "row {}", j);
        }
    }

    /// Stuck-at faults agreeing with the stored bit change nothing.
    #[test]
    fn benign_faults_are_invisible(seed in any::<u64>()) {
        let words = words_from(seed);
        let planes = host_planes(&words);
        let mut s = seed ^ 0xECC3;
        let faults: Vec<(usize, usize, Fault)> = (0..6)
            .map(|_| {
                let row_idx = (splitmix(&mut s) % GROUP_ROWS as u64) as usize;
                let col = (splitmix(&mut s) % W as u64) as usize;
                let stuck_at_stored = if planes[row_idx] >> col & 1 == 1 {
                    Fault::StuckAtOne
                } else {
                    Fault::StuckAtZero
                };
                (row_idx, col, stuck_at_stored)
            })
            .collect();
        let (out, report) = store_decode(&words, &faults, Backend::Packed);
        prop_assert_eq!(out, words);
        prop_assert!(report.corrected.is_empty());
        prop_assert!(report.uncorrectable.is_empty());
    }

    /// Packed and Scalar decode identically under a seeded fault field
    /// spanning the whole group (including multi-error columns).
    #[test]
    fn backends_decode_identically_under_fault_fields(seed in any::<u64>()) {
        let words = words_from(seed);
        let plan = FaultPlan::new(seed, 0.02);
        let run = |backend| {
            let mut xbar = BlockedCrossbar::new(CrossbarConfig {
                backend,
                ..CrossbarConfig::default()
            })
            .unwrap();
            let blk = xbar.block(0).unwrap();
            let mut alloc = RowAllocator::new(xbar.rows());
            let group = EccGroup::alloc(blk, &mut alloc).unwrap();
            for (j, &w) in words.iter().enumerate() {
                xbar.preload_u64(blk, group.data[j], 0, W, w).unwrap();
            }
            group.encode(&mut xbar, 0..W, &mut alloc).unwrap();
            let injected = plan.inject_rows(&mut xbar, 0, &group.rows()).unwrap();
            let dst: [usize; DATA_ROWS] =
                alloc.alloc_many(DATA_ROWS).unwrap().try_into().unwrap();
            let report = group.decode(&mut xbar, &dst, 0..W, &mut alloc).unwrap();
            let mut out = [0u64; DATA_ROWS];
            for (j, &row) in dst.iter().enumerate() {
                out[j] = xbar.peek_u64(blk, row, 0, W).unwrap();
            }
            (out, report, injected, *xbar.stats())
        };
        prop_assert_eq!(run(Backend::Packed), run(Backend::Scalar));
    }
}
