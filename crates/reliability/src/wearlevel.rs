//! Endurance-aware placement: wear-leveling rotation and row remapping.
//!
//! Two complementary mechanisms extend crossbar lifetime:
//!
//! * **Rotation** ([`apim_crossbar::ReusePolicy::Rotate`]): scratch
//!   allocations walk the whole block instead of hammering the lowest rows.
//!   [`run_wear_demo`] quantifies the effect by running the identical XOR
//!   workload under both reuse policies and comparing the hottest cell.
//! * **Remapping** ([`RemapPlan`]): rows whose hottest cell has crossed an
//!   endurance budget are retired to spare wordlines. The plan rewrites a
//!   recorded microprogram ([`RemapPlan::remap_trace`]) and its allocator
//!   event log, so the remapped program can be re-checked by the full
//!   `apim-verify` pass stack *and* re-proved equivalent to its integer
//!   spec before anything trusts the new placement.

use std::collections::BTreeMap;

use apim_crossbar::{
    AllocEvent, Backend, BlockedCrossbar, CrossbarConfig, CrossbarError, OpTrace, Result,
    RowAllocator, RowRef, TraceOp,
};
use apim_logic::adder_serial::{add_words, SerialScratch};
use apim_logic::gates::xor_row;
use apim_logic::spec;
use apim_verify::{check_equiv, OperandBinding, OutputBinding};

/// Outcome of the Stack-vs-Rotate wear comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WearDemoReport {
    /// Rounds of the XOR workload executed under each policy.
    pub rounds: usize,
    /// Hottest-cell writes with the LIFO (Stack) allocator.
    pub stack_max_writes: u64,
    /// Hottest-cell writes with the wear-leveling (Rotate) allocator.
    pub rotate_max_writes: u64,
}

impl WearDemoReport {
    /// How many times cooler the hottest cell runs under rotation.
    pub fn reduction(&self) -> f64 {
        if self.rotate_max_writes == 0 {
            return f64::INFINITY;
        }
        self.stack_max_writes as f64 / self.rotate_max_writes as f64
    }
}

impl std::fmt::Display for WearDemoReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds: hottest cell {} writes (stack) vs {} (rotate), {:.1}x reduction",
            self.rounds,
            self.stack_max_writes,
            self.rotate_max_writes,
            self.reduction()
        )
    }
}

/// Runs the same XOR scratch workload under both reuse policies and
/// reports the hottest-cell writes of each.
///
/// Each round claims seven rows (two operands, a destination and the XOR
/// network's four scratch rows), evaluates one column-parallel XOR, checks
/// the result against the host and frees everything — the archetypal
/// "kernel in a loop" that pins write wear onto whichever rows the
/// allocator favours. Both runs are recorded and must replay hazard-clean.
///
/// # Errors
///
/// Propagates crossbar errors; fails if either run's trace trips a verify
/// pass or the XOR result diverges from the host reference.
pub fn run_wear_demo(rounds: usize) -> Result<WearDemoReport> {
    let stack_max = wear_workload(RowAllocator::with_tracing(64), rounds)?;
    let rotate_max = wear_workload(RowAllocator::round_robin_with_tracing(64), rounds)?;
    Ok(WearDemoReport {
        rounds,
        stack_max_writes: stack_max,
        rotate_max_writes: rotate_max,
    })
}

fn wear_workload(mut alloc: RowAllocator, rounds: usize) -> Result<u64> {
    let mut xbar = BlockedCrossbar::new(CrossbarConfig {
        backend: Backend::Packed,
        ..CrossbarConfig::default()
    })?;
    let blk = xbar.block(0)?;
    xbar.start_recording();
    for round in 0..rounds {
        let rows = alloc.alloc_many(7)?;
        let a = 0x9E37_79B9u64.wrapping_mul(round as u64 + 1) & 0xFFFF_FFFF;
        let b = 0x85EB_CA6Bu64.wrapping_mul(round as u64 + 3) & 0xFFFF_FFFF;
        xbar.preload_u64(blk, rows[0], 0, 32, a)?;
        xbar.preload_u64(blk, rows[1], 0, 32, b)?;
        let rr = |row| RowRef::new(blk, row);
        xor_row(
            &mut xbar,
            rr(rows[0]),
            rr(rows[1]),
            rr(rows[2]),
            [rr(rows[3]), rr(rows[4]), rr(rows[5]), rr(rows[6])],
            0..32,
        )?;
        let got = xbar.peek_u64(blk, rows[2], 0, 32)?;
        if got != a ^ b {
            return Err(CrossbarError::InvalidConfig(format!(
                "wear workload round {round}: xor mismatch {got:#x} != {:#x}",
                a ^ b
            )));
        }
        alloc.free_many(rows)?;
    }
    let trace = xbar.stop_recording();
    let report = apim_verify::verify_trace(&trace, &alloc.take_events(), None);
    if report.error_count() > 0 {
        return Err(CrossbarError::InvalidConfig(format!(
            "wear workload trace failed verification: {report}"
        )));
    }
    Ok(xbar.max_cell_writes())
}

/// A row-level remap for one block: worn wordlines retired to spares.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RemapPlan {
    /// Block the plan applies to.
    pub block: usize,
    /// `worn row → spare row` assignments.
    pub map: BTreeMap<usize, usize>,
}

impl RemapPlan {
    /// Builds a plan retiring every row of `block` whose hottest cell
    /// exceeds `budget` writes, assigning spares in order.
    ///
    /// # Errors
    ///
    /// [`CrossbarError::InvalidConfig`] when the worn rows outnumber the
    /// provided spares, or a spare is itself past the budget.
    pub fn from_wear(
        xbar: &BlockedCrossbar,
        block: usize,
        budget: u64,
        spares: &[usize],
    ) -> Result<RemapPlan> {
        let blk = xbar.block(block)?;
        let row_max = |row: usize| -> Result<u64> {
            let mut max = 0;
            for col in 0..xbar.cols() {
                max = max.max(xbar.cell_writes(blk, row, col)?);
            }
            Ok(max)
        };
        for &spare in spares {
            if row_max(spare)? > budget {
                return Err(CrossbarError::InvalidConfig(format!(
                    "spare row {spare} is already past the endurance budget"
                )));
            }
        }
        let mut map = BTreeMap::new();
        let mut next_spare = spares.iter().copied();
        for row in 0..xbar.rows() {
            if spares.contains(&row) {
                continue;
            }
            if row_max(row)? > budget {
                let Some(spare) = next_spare.next() else {
                    return Err(CrossbarError::InvalidConfig(format!(
                        "endurance budget {budget} retires more rows than the {} spares",
                        spares.len()
                    )));
                };
                map.insert(row, spare);
            }
        }
        Ok(RemapPlan { block, map })
    }

    /// Where `row` lives after remapping.
    pub fn target(&self, row: usize) -> usize {
        self.map.get(&row).copied().unwrap_or(row)
    }

    /// Rewrites every row coordinate of `trace` that touches this plan's
    /// block. The remapped trace drives the very same microprogram on the
    /// new placement, so it can be replayed, verified and equivalence-
    /// checked like the original.
    ///
    /// # Errors
    ///
    /// [`CrossbarError::InvalidConfig`] when
    ///
    /// * the trace references a spare row that is a remap *target* without
    ///   that row being remapped away first (the placements would collide),
    ///   or
    /// * a worn row appears inside a column-oriented row *range*
    ///   ([`TraceOp::InitCols`] / [`TraceOp::NorCols`]) — ranges cannot
    ///   express a scattered remap, so such programs must be regenerated
    ///   instead.
    pub fn remap_trace(&self, trace: &OpTrace) -> Result<OpTrace> {
        // Collision scan first: a target row already in use (and not
        // itself remapped) would end up aliased with the retired row's
        // traffic.
        let targets: Vec<usize> = self.map.values().copied().collect();
        for op in &trace.ops {
            for (block, row) in rows_touched(op) {
                if block == self.block && targets.contains(&row) && !self.map.contains_key(&row) {
                    return Err(CrossbarError::InvalidConfig(format!(
                        "remap target row {row} is still referenced by the trace"
                    )));
                }
            }
        }
        let mut ops = Vec::with_capacity(trace.ops.len());
        for op in &trace.ops {
            ops.push(self.remap_op(op)?);
        }
        Ok(OpTrace {
            blocks: trace.blocks,
            rows: trace.rows,
            cols: trace.cols,
            ops,
        })
    }

    /// Rewrites an allocator event log to match a remapped trace.
    pub fn remap_events(&self, events: &[AllocEvent]) -> Vec<AllocEvent> {
        events
            .iter()
            .map(|e| match *e {
                AllocEvent::Alloc { row } => AllocEvent::Alloc {
                    row: self.target(row),
                },
                AllocEvent::Free { row } => AllocEvent::Free {
                    row: self.target(row),
                },
            })
            .collect()
    }

    fn remap_op(&self, op: &TraceOp) -> Result<TraceOp> {
        let row_in = |block: usize, row: usize| {
            if block == self.block {
                self.target(row)
            } else {
                row
            }
        };
        let check_range = |block: usize, rows: &std::ops::Range<usize>| {
            if block == self.block && self.map.keys().any(|r| rows.contains(r)) {
                return Err(CrossbarError::InvalidConfig(
                    "a worn row lies inside a column-oriented row range; \
                     regenerate the microprogram instead of remapping it"
                        .into(),
                ));
            }
            Ok(())
        };
        Ok(match op {
            TraceOp::PreloadBit {
                block,
                row,
                col,
                value,
            } => TraceOp::PreloadBit {
                block: *block,
                row: row_in(*block, *row),
                col: *col,
                value: *value,
            },
            TraceOp::PreloadWord {
                block,
                row,
                col0,
                bits,
            } => TraceOp::PreloadWord {
                block: *block,
                row: row_in(*block, *row),
                col0: *col0,
                bits: bits.clone(),
            },
            TraceOp::ReadBit { block, row, col } => TraceOp::ReadBit {
                block: *block,
                row: row_in(*block, *row),
                col: *col,
            },
            TraceOp::MajRead { block, cells } => TraceOp::MajRead {
                block: *block,
                cells: cells.map(|(r, c)| (row_in(*block, r), c)),
            },
            TraceOp::WriteBackBit {
                block,
                row,
                col,
                value,
            } => TraceOp::WriteBackBit {
                block: *block,
                row: row_in(*block, *row),
                col: *col,
                value: *value,
            },
            TraceOp::InitRows { block, rows, cols } => TraceOp::InitRows {
                block: *block,
                rows: rows.iter().map(|&r| row_in(*block, r)).collect(),
                cols: cols.clone(),
            },
            TraceOp::InitCells { block, cells } => TraceOp::InitCells {
                block: *block,
                cells: cells.iter().map(|&(r, c)| (row_in(*block, r), c)).collect(),
            },
            TraceOp::InitCols { block, cols, rows } => {
                check_range(*block, rows)?;
                TraceOp::InitCols {
                    block: *block,
                    cols: cols.clone(),
                    rows: rows.clone(),
                }
            }
            TraceOp::NorRowsShifted {
                inputs,
                out,
                cols,
                shift,
            } => TraceOp::NorRowsShifted {
                inputs: inputs.iter().map(|&(b, r)| (b, row_in(b, r))).collect(),
                out: (out.0, row_in(out.0, out.1)),
                cols: cols.clone(),
                shift: *shift,
            },
            TraceOp::NorCols {
                block,
                input_cols,
                out_col,
                rows,
            } => {
                check_range(*block, rows)?;
                TraceOp::NorCols {
                    block: *block,
                    input_cols: input_cols.clone(),
                    out_col: *out_col,
                    rows: rows.clone(),
                }
            }
            TraceOp::NorCells { block, inputs, out } => TraceOp::NorCells {
                block: *block,
                inputs: inputs
                    .iter()
                    .map(|&(r, c)| (row_in(*block, r), c))
                    .collect(),
                out: (row_in(*block, out.0), out.1),
            },
            TraceOp::NorLanes {
                block,
                inputs,
                out,
                lanes,
            } => TraceOp::NorLanes {
                block: *block,
                inputs: inputs
                    .iter()
                    .map(|&(r, c)| (row_in(*block, r), c))
                    .collect(),
                out: (row_in(*block, out.0), out.1),
                lanes: *lanes,
            },
            TraceOp::AdvanceCycles { cycles } => TraceOp::AdvanceCycles { cycles: *cycles },
            TraceOp::RewindCycles { cycles } => TraceOp::RewindCycles { cycles: *cycles },
        })
    }
}

/// Every `(block, row)` coordinate an op references.
fn rows_touched(op: &TraceOp) -> Vec<(usize, usize)> {
    match op {
        TraceOp::PreloadBit { block, row, .. }
        | TraceOp::PreloadWord { block, row, .. }
        | TraceOp::ReadBit { block, row, .. }
        | TraceOp::WriteBackBit { block, row, .. } => vec![(*block, *row)],
        TraceOp::MajRead { block, cells } => cells.iter().map(|&(r, _)| (*block, r)).collect(),
        TraceOp::InitRows { block, rows, .. } => rows.iter().map(|&r| (*block, r)).collect(),
        TraceOp::InitCells { block, cells } => cells.iter().map(|&(r, _)| (*block, r)).collect(),
        TraceOp::InitCols { block, rows, .. } | TraceOp::NorCols { block, rows, .. } => {
            rows.clone().map(|r| (*block, r)).collect()
        }
        TraceOp::NorRowsShifted { inputs, out, .. } => {
            let mut v: Vec<(usize, usize)> = inputs.clone();
            v.push(*out);
            v
        }
        TraceOp::NorCells { block, inputs, out }
        | TraceOp::NorLanes {
            block, inputs, out, ..
        } => {
            let mut v: Vec<(usize, usize)> = inputs.iter().map(|&(r, _)| (*block, r)).collect();
            v.push((*block, out.0));
            v
        }
        TraceOp::AdvanceCycles { .. } | TraceOp::RewindCycles { .. } => Vec::new(),
    }
}

/// Outcome of [`remap_adder_demo`]: the remapped adder re-verified end to
/// end.
#[derive(Debug, Clone)]
pub struct RemapDemoReport {
    /// Rows the plan retired (`worn → spare`).
    pub remapped: Vec<(usize, usize)>,
    /// Verify-pass errors on the remapped trace (must be 0).
    pub verify_errors: usize,
    /// Whether the symbolic equivalence checker proved the remapped trace
    /// still computes `x + y mod 2^width`.
    pub equiv_ok: bool,
}

/// Records a serial-adder run, retires its hottest scratch rows past an
/// endurance budget to spare wordlines, and re-certifies the remapped
/// microprogram: all five hazard passes plus the symbolic equivalence
/// check against `spec::add`.
///
/// # Errors
///
/// Propagates crossbar errors and remap collisions.
pub fn remap_adder_demo(width: usize) -> Result<RemapDemoReport> {
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let blk = xbar.block(1)?;
    let mut alloc = RowAllocator::with_tracing(xbar.rows());
    let rows = alloc.alloc_many(3)?; // x, y, out
    let scratch = SerialScratch::alloc(&mut alloc)?;
    xbar.start_recording();
    let to_bits = |v: u64| (0..width).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
    xbar.preload_word(blk, rows[0], 0, &to_bits(0x1234_5677 & spec::mask(width)))?;
    xbar.preload_word(blk, rows[1], 0, &to_bits(0x0FED_CBA9 & spec::mask(width)))?;
    add_words(
        &mut xbar,
        blk,
        rows[0],
        rows[1],
        rows[2],
        0..width,
        &scratch,
    )?;
    let trace = xbar.stop_recording();
    let events = alloc.take_events();

    // Retire every row the run wore past half its hottest cell — on the
    // serial adder that catches the netlist rows the bit-serial loop
    // hammers `width` times — onto never-touched spare wordlines.
    let budget = xbar.max_cell_writes() / 2;
    let spares: Vec<usize> = (0..xbar.rows()).rev().take(16).collect();
    let plan = RemapPlan::from_wear(&xbar, blk.index(), budget, &spares)?;
    if plan.map.is_empty() {
        return Err(CrossbarError::InvalidConfig(
            "adder remap demo expected at least one row past the budget".into(),
        ));
    }
    let remapped_trace = plan.remap_trace(&trace)?;
    let remapped_events = plan.remap_events(&events);

    let lint = apim_verify::verify_trace(&remapped_trace, &remapped_events, Some(trace.cycles()));
    let operands = [
        OperandBinding {
            name: "x".into(),
            block: blk.index(),
            row: plan.target(rows[0]),
            col0: 0,
            width,
            col_step: 1,
        },
        OperandBinding {
            name: "y".into(),
            block: blk.index(),
            row: plan.target(rows[1]),
            col0: 0,
            width,
            col_step: 1,
        },
    ];
    let output = OutputBinding {
        block: blk.index(),
        row: plan.target(rows[2]),
        col0: 0,
        width,
        col_step: 1,
    };
    let equiv = check_equiv(&remapped_trace, &operands, &output, |v| {
        spec::add(v[0], v[1], width)
    });
    Ok(RemapDemoReport {
        remapped: plan.map.iter().map(|(&w, &s)| (w, s)).collect(),
        verify_errors: lint.error_count(),
        equiv_ok: equiv.equivalent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_cools_the_hottest_cell_by_2x() {
        let report = run_wear_demo(36).unwrap();
        assert!(
            report.reduction() >= 2.0,
            "wear-leveling gate missed: {report}"
        );
        assert!(report.stack_max_writes > report.rotate_max_writes);
    }

    #[test]
    fn wear_demo_report_displays_reduction() {
        let report = WearDemoReport {
            rounds: 4,
            stack_max_writes: 40,
            rotate_max_writes: 10,
        };
        assert!(report.to_string().contains("4.0x reduction"));
        assert_eq!(report.reduction(), 4.0);
    }

    #[test]
    fn remap_rewrites_every_row_shape() {
        let plan = RemapPlan {
            block: 0,
            map: BTreeMap::from([(1, 9)]),
        };
        let trace = OpTrace {
            blocks: 2,
            rows: 16,
            cols: 8,
            ops: vec![
                TraceOp::PreloadBit {
                    block: 0,
                    row: 1,
                    col: 0,
                    value: true,
                },
                TraceOp::InitRows {
                    block: 0,
                    rows: vec![1, 2],
                    cols: 0..4,
                },
                TraceOp::NorRowsShifted {
                    inputs: vec![(0, 1), (1, 1)],
                    out: (0, 2),
                    cols: 0..4,
                    shift: 0,
                },
                TraceOp::NorCells {
                    block: 0,
                    inputs: vec![(1, 0)],
                    out: (2, 3),
                },
                TraceOp::MajRead {
                    block: 0,
                    cells: [(1, 0), (2, 1), (3, 2)],
                },
            ],
        };
        let out = plan.remap_trace(&trace).unwrap();
        assert_eq!(
            out.ops[0],
            TraceOp::PreloadBit {
                block: 0,
                row: 9,
                col: 0,
                value: true
            }
        );
        assert_eq!(
            out.ops[1],
            TraceOp::InitRows {
                block: 0,
                rows: vec![9, 2],
                cols: 0..4
            }
        );
        // Row 1 of block 1 is untouched: the plan only covers block 0.
        assert_eq!(
            out.ops[2],
            TraceOp::NorRowsShifted {
                inputs: vec![(0, 9), (1, 1)],
                out: (0, 2),
                cols: 0..4,
                shift: 0
            }
        );
        assert_eq!(
            out.ops[3],
            TraceOp::NorCells {
                block: 0,
                inputs: vec![(9, 0)],
                out: (2, 3)
            }
        );
        assert_eq!(
            out.ops[4],
            TraceOp::MajRead {
                block: 0,
                cells: [(9, 0), (2, 1), (3, 2)]
            }
        );
    }

    #[test]
    fn remap_rejects_target_collisions() {
        let plan = RemapPlan {
            block: 0,
            map: BTreeMap::from([(1, 9)]),
        };
        let trace = OpTrace {
            blocks: 1,
            rows: 16,
            cols: 8,
            ops: vec![TraceOp::ReadBit {
                block: 0,
                row: 9,
                col: 0,
            }],
        };
        assert!(matches!(
            plan.remap_trace(&trace),
            Err(CrossbarError::InvalidConfig(_))
        ));
    }

    #[test]
    fn remap_rejects_row_ranges_covering_worn_rows() {
        let plan = RemapPlan {
            block: 0,
            map: BTreeMap::from([(2, 9)]),
        };
        let trace = OpTrace {
            blocks: 1,
            rows: 16,
            cols: 8,
            ops: vec![TraceOp::NorCols {
                block: 0,
                input_cols: vec![0, 1],
                out_col: 2,
                rows: 0..4,
            }],
        };
        assert!(plan.remap_trace(&trace).is_err());
        // A range that misses the worn row passes through untouched.
        let clear = OpTrace {
            blocks: 1,
            rows: 16,
            cols: 8,
            ops: vec![TraceOp::NorCols {
                block: 0,
                input_cols: vec![0, 1],
                out_col: 2,
                rows: 4..8,
            }],
        };
        assert_eq!(plan.remap_trace(&clear).unwrap(), clear);
    }

    #[test]
    fn remap_events_follow_the_plan() {
        let plan = RemapPlan {
            block: 0,
            map: BTreeMap::from([(3, 12)]),
        };
        let events = [
            AllocEvent::Alloc { row: 3 },
            AllocEvent::Alloc { row: 4 },
            AllocEvent::Free { row: 3 },
        ];
        assert_eq!(
            plan.remap_events(&events),
            vec![
                AllocEvent::Alloc { row: 12 },
                AllocEvent::Alloc { row: 4 },
                AllocEvent::Free { row: 12 },
            ]
        );
    }

    #[test]
    fn from_wear_retires_only_rows_past_budget() {
        let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let blk = xbar.block(0).unwrap();
        // Write row 2 five times, row 5 once.
        for _ in 0..5 {
            xbar.preload_bit(blk, 2, 0, true).unwrap();
        }
        xbar.preload_bit(blk, 5, 0, true).unwrap();
        let spares = [60, 61];
        let plan = RemapPlan::from_wear(&xbar, 0, 2, &spares).unwrap();
        assert_eq!(plan.map, BTreeMap::from([(2, 60)]));
        assert_eq!(plan.target(2), 60);
        assert_eq!(plan.target(5), 5);
        // Budget 0 retires both written rows; one spare is not enough.
        assert!(RemapPlan::from_wear(&xbar, 0, 0, &[60]).is_err());
        // A spare that is itself worn is rejected.
        assert!(RemapPlan::from_wear(&xbar, 0, 2, &[2]).is_err());
    }

    #[test]
    fn remapped_adder_passes_verify_and_equiv() {
        let report = remap_adder_demo(16).unwrap();
        assert!(!report.remapped.is_empty(), "demo must remap something");
        assert_eq!(report.verify_errors, 0);
        assert!(report.equiv_ok);
    }
}
