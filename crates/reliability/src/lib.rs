//! Reliability layer for the APIM simulator.
//!
//! RRAM crossbars trade density and in-memory compute for two hard device
//! problems: cells get **stuck** (fabrication defects, retention failures)
//! and cells **wear out** (bounded write endurance). This crate closes the
//! loop on both, building only on the public crossbar/logic/verify APIs:
//!
//! * [`ecc`] — Hamming SEC-DED computed *inside* the crossbar with MAGIC
//!   NOR sequences, column-parallel across bitlines: each bitline of a
//!   13-row group is an independent codeword, so one decode pass corrects
//!   any single stuck cell per column and detects double errors, costed in
//!   cycles and energy like every other kernel.
//! * [`wearlevel`] — endurance-aware placement: the wear-leveling
//!   allocation policy quantified against the default stack policy, plus
//!   row remapping that retires wordlines past an endurance budget and
//!   re-certifies the remapped microprogram (all hazard passes + symbolic
//!   equivalence).
//! * [`faults`] — deterministic, coordinate-keyed stuck-at fault injection
//!   that is order-independent and identical across backends.
//! * [`campaign`] — the fault-injection campaign runner sweeping the
//!   kernel and compiled-DAG suite under a seeded fault field, proving
//!   bit-exactness with ECC on and quantifying degradation with it off.

#![deny(missing_docs)]

pub mod campaign;
pub mod ecc;
pub mod faults;
pub mod wearlevel;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, KernelOutcome};
pub use ecc::{DecodeReport, EccGroup, DATA_ROWS, DECODE_CYCLES, ENCODE_CYCLES, GROUP_ROWS};
pub use faults::{FaultPlan, InjectedFault};
pub use wearlevel::{remap_adder_demo, run_wear_demo, RemapDemoReport, RemapPlan, WearDemoReport};
