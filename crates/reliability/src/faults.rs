//! Seeded stuck-at fault injection for reliability campaigns.
//!
//! A [`FaultPlan`] decides per *cell coordinate* whether that cell is
//! faulted, by hashing `(seed, block, row, col)` with SplitMix64 finalizers
//! and comparing against a density threshold. Keying on the coordinate
//! (rather than drawing from a sequential stream) makes injection
//! order-independent: any subset of rows can be swept in any order, on
//! either backend, and the same cells come out faulted — which is what lets
//! the campaign runner inject identical fault sets into Packed and Scalar
//! crossbars and demand bit-identical behaviour.

use apim_crossbar::{BlockedCrossbar, Fault, Result};

/// Mixes a 64-bit value through the SplitMix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One injected fault, for reporting and for replaying the same set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Block index the fault landed in.
    pub block: usize,
    /// Wordline of the faulted cell.
    pub row: usize,
    /// Bitline of the faulted cell.
    pub col: usize,
    /// Stuck-at polarity.
    pub fault: Fault,
}

/// A deterministic stuck-at fault distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed shared by every per-cell decision.
    pub seed: u64,
    /// Expected fraction of cells faulted, clamped to `[0, 1]`.
    pub density: f64,
}

impl FaultPlan {
    /// A plan injecting roughly `density` of all cells, keyed by `seed`.
    pub fn new(seed: u64, density: f64) -> Self {
        FaultPlan { seed, density }
    }

    fn threshold(&self) -> u64 {
        // `u64::MAX as f64` rounds up to 2^64, so a density of 1.0 would
        // overflow the cast; saturate explicitly.
        let scaled = self.density.clamp(0.0, 1.0) * (u64::MAX as f64);
        if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            scaled as u64
        }
    }

    /// The fault (if any) this plan assigns to one cell. Pure function of
    /// the plan and the coordinate.
    pub fn fault_at(&self, block: usize, row: usize, col: usize) -> Option<Fault> {
        let key = mix(self
            .seed
            .wrapping_add(mix((block as u64) << 40 ^ (row as u64) << 20 ^ col as u64)));
        if key >= self.threshold() {
            return None;
        }
        // An independent bit decides polarity so that threshold comparisons
        // never bias it.
        Some(if mix(key ^ 0xA5A5_A5A5_A5A5_A5A5) & 1 == 1 {
            Fault::StuckAtOne
        } else {
            Fault::StuckAtZero
        })
    }

    /// Injects this plan's faults into the given rows of one block
    /// (columns `0..xbar.cols()`), returning every fault placed.
    ///
    /// # Errors
    ///
    /// Propagates crossbar coordinate errors.
    pub fn inject_rows(
        &self,
        xbar: &mut BlockedCrossbar,
        block: usize,
        rows: &[usize],
    ) -> Result<Vec<InjectedFault>> {
        let blk = xbar.block(block)?;
        let cols = xbar.cols();
        let mut injected = Vec::new();
        for &row in rows {
            for col in 0..cols {
                if let Some(fault) = self.fault_at(block, row, col) {
                    xbar.inject_fault(blk, row, col, Some(fault))?;
                    injected.push(InjectedFault {
                        block,
                        row,
                        col,
                        fault,
                    });
                }
            }
        }
        Ok(injected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_crossbar::{Backend, BlockedCrossbar, CrossbarConfig};

    #[test]
    fn decisions_are_deterministic_and_coordinate_keyed() {
        let plan = FaultPlan::new(7, 0.05);
        for block in 0..3 {
            for row in 0..16 {
                for col in 0..64 {
                    assert_eq!(
                        plan.fault_at(block, row, col),
                        plan.fault_at(block, row, col)
                    );
                }
            }
        }
        // A different seed decorrelates the pattern.
        let other = FaultPlan::new(8, 0.05);
        let a: Vec<_> = (0..4096).map(|c| plan.fault_at(0, 0, c)).collect();
        let b: Vec<_> = (0..4096).map(|c| other.fault_at(0, 0, c)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn density_extremes_behave() {
        let none = FaultPlan::new(3, 0.0);
        let all = FaultPlan::new(3, 1.0);
        for col in 0..256 {
            assert_eq!(none.fault_at(0, 0, col), None);
            assert!(all.fault_at(0, 0, col).is_some());
        }
    }

    #[test]
    fn observed_density_tracks_requested_density() {
        let plan = FaultPlan::new(11, 0.1);
        let n = 100_000;
        let hits = (0..n).filter(|&c| plan.fault_at(1, 2, c).is_some()).count();
        let observed = hits as f64 / n as f64;
        assert!(
            (observed - 0.1).abs() < 0.01,
            "observed {observed} too far from 0.1"
        );
        // Polarity is roughly balanced.
        let ones = (0..n)
            .filter(|&c| plan.fault_at(1, 2, c) == Some(Fault::StuckAtOne))
            .count();
        let ratio = ones as f64 / hits as f64;
        assert!((ratio - 0.5).abs() < 0.05, "polarity ratio {ratio}");
    }

    #[test]
    fn injection_is_backend_identical_and_order_independent() {
        let plan = FaultPlan::new(42, 0.08);
        let cfg = |backend| CrossbarConfig {
            backend,
            ..CrossbarConfig::default()
        };
        let mut packed = BlockedCrossbar::new(cfg(Backend::Packed)).unwrap();
        let mut scalar = BlockedCrossbar::new(cfg(Backend::Scalar)).unwrap();
        let rows: Vec<usize> = (0..8).collect();
        let reversed: Vec<usize> = rows.iter().rev().copied().collect();
        let a = plan.inject_rows(&mut packed, 0, &rows).unwrap();
        let mut b = plan.inject_rows(&mut scalar, 0, &reversed).unwrap();
        b.sort_by_key(|f| (f.row, f.col));
        let mut a_sorted = a.clone();
        a_sorted.sort_by_key(|f| (f.row, f.col));
        assert_eq!(a_sorted, b);
        assert!(!a.is_empty());
        assert_eq!(packed.fault_count(), scalar.fault_count());
    }
}
