//! Deterministic fault-injection campaigns over the kernel suite.
//!
//! A campaign models the APIM storage/compute split: operands live in an
//! ECC-protected **storage** crossbar whose cells degrade (seeded stuck-at
//! faults from a [`FaultPlan`]), while kernels execute on a separate,
//! healthy **compute** fabric — faults corrupt *data at rest*, and the
//! question is whether the reliability layer stops that corruption from
//! reaching results.
//!
//! Per trial the runner stores fresh operands, encodes the SEC-DED check
//! rows in-crossbar, injects the plan's faults into the coded group, reads
//! the operands back — through [`EccGroup::decode`] when ECC is on, through
//! the raw (faulty) overlay when it is off — and runs the kernel on what it
//! read. Results are folded into an order-sensitive digest and compared
//! against a fault-free golden run of the same kernel:
//!
//! * **ECC on**: at single-error densities the digests must match bit for
//!   bit, and the report prices the protection (encode+decode cycles and
//!   energy from the storage fabric's own accounting).
//! * **ECC off**: corrupted operands flow straight into the kernels; the
//!   report quantifies the damage (relative error, PSNR for images)
//!   instead of hiding it.

use std::fmt;

use apim_crossbar::{BlockedCrossbar, CrossbarConfig, CrossbarError, Result, RowAllocator, Stats};
use apim_device::{DeviceParams, Joules};
use apim_logic::adder_serial::{add_words, SerialScratch};
use apim_logic::multiplier::CrossbarMultiplier;
use apim_logic::{spec, PrecisionMode};
use apim_workloads::image::{synthetic_image, Image};
use apim_workloads::quality::{image_quality_sized, mean_relative_error, psnr_u8};

use crate::ecc::{EccGroup, DATA_ROWS};
use crate::faults::FaultPlan;

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Seed for operand generation and the fault plan.
    pub seed: u64,
    /// Stuck-at fault density over the storage region.
    pub density: f64,
    /// Whether reads go through SEC-DED decode.
    pub ecc: bool,
    /// Trials per word-oriented kernel (adder, multiplier).
    pub trials: usize,
    /// Side length of the synthetic image for the sharpen DAG.
    pub image_dim: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 7,
            density: 1e-4,
            ecc: true,
            trials: 4,
            image_dim: 8,
        }
    }
}

/// Outcome of one kernel's sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelOutcome {
    /// Kernel name (`adder`, `multiplier`, `sharpen`).
    pub kernel: &'static str,
    /// Stuck-at faults injected into this kernel's storage groups.
    pub faults_injected: usize,
    /// Columns the decoder corrected (0 when ECC is off).
    pub corrected: usize,
    /// Columns the decoder flagged uncorrectable (0 when ECC is off).
    pub uncorrectable: usize,
    /// Order-sensitive FNV-1a digest of every result this kernel produced.
    pub digest: u64,
    /// Digest of the fault-free golden run.
    pub golden_digest: u64,
    /// Mean relative error of results against golden.
    pub mean_rel_err: f64,
    /// PSNR against the golden image (sharpen only).
    pub psnr_db: Option<f64>,
    /// Cycles the storage fabric charged for encode/decode.
    pub ecc_cycles: u64,
    /// Energy the storage fabric charged for encode/decode.
    pub ecc_energy: Joules,
}

impl KernelOutcome {
    /// Whether the kernel's results matched the fault-free run exactly.
    pub fn bit_exact(&self) -> bool {
        self.digest == self.golden_digest
    }
}

/// Full campaign verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The configuration swept.
    pub config: CampaignConfig,
    /// One outcome per kernel.
    pub kernels: Vec<KernelOutcome>,
}

impl CampaignReport {
    /// Whether every kernel reproduced its fault-free digest.
    pub fn all_bit_exact(&self) -> bool {
        self.kernels.iter().all(KernelOutcome::bit_exact)
    }

    /// Total faults injected across all kernels.
    pub fn faults_injected(&self) -> usize {
        self.kernels.iter().map(|k| k.faults_injected).sum()
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault campaign: seed {}, density {:.1e}, ecc {}",
            self.config.seed,
            self.config.density,
            if self.config.ecc { "on" } else { "off" }
        )?;
        for k in &self.kernels {
            write!(
                f,
                "  {:<10} faults {:>4}  corrected {:>3}  uncorrectable {:>2}  {}  rel_err {:.4}",
                k.kernel,
                k.faults_injected,
                k.corrected,
                k.uncorrectable,
                if k.bit_exact() {
                    "bit-exact"
                } else {
                    "DIVERGED "
                },
                k.mean_rel_err,
            )?;
            if let Some(psnr) = k.psnr_db {
                write!(f, "  psnr {psnr:.1} dB")?;
            }
            if k.ecc_cycles > 0 {
                write!(f, "  ecc {} cycles / {}", k.ecc_cycles, k.ecc_energy)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Order-sensitive FNV-1a fold.
fn fnv1a(digest: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *digest ^= u64::from(byte);
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// SplitMix64 operand stream.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// What one degraded-storage round-trip observed.
struct StorageReadback {
    words: Vec<u64>,
    faults: usize,
    corrected: usize,
    uncorrectable: usize,
    stats: Stats,
}

/// Stores up to [`DATA_ROWS`] words of `width` bits in a fresh ECC group,
/// encodes (when `ecc`), injects `plan`'s faults into the storage rows,
/// and reads the words back — decoded when `ecc`, raw otherwise.
///
/// Every call uses a fresh storage crossbar: trials are independent
/// storage regions, not survivors of each other's faults. With ECC off no
/// check rows exist, so the fault surface shrinks to the data rows and the
/// storage fabric charges zero compute cycles — the overhead comparison
/// between the two modes is exactly encode + decode.
fn store_and_read(
    words: &[u64],
    width: usize,
    plan: &FaultPlan,
    ecc: bool,
) -> Result<StorageReadback> {
    debug_assert!(words.len() <= DATA_ROWS && width <= 64);
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let blk = xbar.block(0)?;
    let mut alloc = RowAllocator::new(xbar.rows());
    let group = EccGroup::alloc(blk, &mut alloc)?;
    for (j, &w) in words.iter().enumerate() {
        xbar.preload_u64(blk, group.data[j], 0, width, w)?;
    }
    let (mut corrected, mut uncorrectable) = (0, 0);
    let mut out = Vec::with_capacity(words.len());
    let injected;
    if ecc {
        group.encode(&mut xbar, 0..width, &mut alloc)?;
        injected = plan.inject_rows(&mut xbar, 0, &group.rows())?;
        let dst: [usize; DATA_ROWS] = alloc.alloc_many(DATA_ROWS)?.try_into().expect("eight rows");
        let report = group.decode(&mut xbar, &dst, 0..width, &mut alloc)?;
        corrected = report.corrected.len();
        uncorrectable = report.uncorrectable.len();
        for &row in dst.iter().take(words.len()) {
            out.push(xbar.peek_u64(blk, row, 0, width)?);
        }
    } else {
        injected = plan.inject_rows(&mut xbar, 0, &group.data)?;
        for &row in group.data.iter().take(words.len()) {
            out.push(xbar.peek_u64(blk, row, 0, width)?);
        }
    }
    Ok(StorageReadback {
        words: out,
        faults: injected.len(),
        corrected,
        uncorrectable,
        stats: *xbar.stats(),
    })
}

/// Runs the full campaign: adder, multiplier and the compiled sharpen DAG.
///
/// # Errors
///
/// Propagates crossbar and compile errors; the campaign itself never fails
/// on digest mismatches — it *reports* them, and callers gate.
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignReport> {
    let kernels = vec![
        run_adder(config)?,
        run_multiplier(config)?,
        run_sharpen(config)?,
    ];
    Ok(CampaignReport {
        config: *config,
        kernels,
    })
}

/// Per-trial seeds decorrelate the fault fields of independent storage
/// regions while staying a pure function of the campaign seed.
fn trial_plan(config: &CampaignConfig, kernel: u64, trial: usize) -> FaultPlan {
    FaultPlan::new(
        config
            .seed
            .wrapping_add(kernel.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((trial as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)),
        config.density,
    )
}

fn run_adder(config: &CampaignConfig) -> Result<KernelOutcome> {
    const WIDTH: usize = 32;
    let mut gen = Gen(config.seed);
    let mut outcome = blank_outcome("adder");
    let mut golden_results = Vec::new();
    let mut results = Vec::new();
    for trial in 0..config.trials {
        let words: Vec<u64> = (0..DATA_ROWS)
            .map(|_| gen.next() & spec::mask(WIDTH))
            .collect();
        let readback = store_and_read(&words, WIDTH, &trial_plan(config, 1, trial), config.ecc)?;
        absorb(&mut outcome, &readback);
        for pair in 0..DATA_ROWS / 2 {
            golden_results.push(compute_sum(words[2 * pair], words[2 * pair + 1], WIDTH)? as i64);
            results.push(compute_sum(
                readback.words[2 * pair],
                readback.words[2 * pair + 1],
                WIDTH,
            )? as i64);
        }
    }
    finish_numeric(&mut outcome, &golden_results, &results);
    Ok(outcome)
}

/// One in-crossbar 32-bit addition on a healthy compute fabric.
fn compute_sum(x: u64, y: u64, width: usize) -> Result<u64> {
    let mut xbar = BlockedCrossbar::new(CrossbarConfig::default())?;
    let blk = xbar.block(1)?;
    let mut alloc = RowAllocator::new(xbar.rows());
    let rows = alloc.alloc_many(3)?;
    let scratch = SerialScratch::alloc(&mut alloc)?;
    xbar.preload_u64(blk, rows[0], 0, width, x)?;
    xbar.preload_u64(blk, rows[1], 0, width, y)?;
    add_words(
        &mut xbar,
        blk,
        rows[0],
        rows[1],
        rows[2],
        0..width,
        &scratch,
    )?;
    xbar.peek_u64(blk, rows[2], 0, width)
}

fn run_multiplier(config: &CampaignConfig) -> Result<KernelOutcome> {
    const WIDTH: usize = 16;
    let mut gen = Gen(config.seed ^ 0x6D1F);
    let mut outcome = blank_outcome("multiplier");
    let mut golden_results = Vec::new();
    let mut results = Vec::new();
    let params = DeviceParams::default();
    for trial in 0..config.trials {
        let words: Vec<u64> = (0..DATA_ROWS)
            .map(|_| gen.next() & spec::mask(WIDTH))
            .collect();
        let readback = store_and_read(&words, WIDTH, &trial_plan(config, 2, trial), config.ecc)?;
        absorb(&mut outcome, &readback);
        for pair in 0..DATA_ROWS / 2 {
            let mut mul = CrossbarMultiplier::new(WIDTH as u32, &params)?;
            let golden = mul
                .multiply(words[2 * pair], words[2 * pair + 1], PrecisionMode::Exact)?
                .product;
            let mut mul = CrossbarMultiplier::new(WIDTH as u32, &params)?;
            let got = mul
                .multiply(
                    readback.words[2 * pair],
                    readback.words[2 * pair + 1],
                    PrecisionMode::Exact,
                )?
                .product;
            golden_results.push(golden as i64);
            results.push(got as i64);
        }
    }
    finish_numeric(&mut outcome, &golden_results, &results);
    Ok(outcome)
}

fn run_sharpen(config: &CampaignConfig) -> Result<KernelOutcome> {
    let dim = config.image_dim.max(4);
    let image = synthetic_image(dim, dim, config.seed);
    let bytes = image.to_u8();
    let mut outcome = blank_outcome("sharpen");

    // Bit-plane storage: within each chunk of ≤ 64 bytes, data row `r` of
    // the ECC group holds bit `r` of every byte, one byte per bitline — so
    // each column is one pixel plus its SEC-DED check bits.
    let mut recovered = Vec::with_capacity(bytes.len());
    for (chunk_idx, chunk) in bytes.chunks(64).enumerate() {
        let mut planes = [0u64; DATA_ROWS];
        for (j, &byte) in chunk.iter().enumerate() {
            for (r, plane) in planes.iter_mut().enumerate() {
                *plane |= u64::from(byte >> r & 1) << j;
            }
        }
        let readback = store_and_read(
            &planes,
            chunk.len(),
            &trial_plan(config, 3, chunk_idx),
            config.ecc,
        )?;
        absorb(&mut outcome, &readback);
        for j in 0..chunk.len() {
            let mut byte = 0u8;
            for (r, &plane) in readback.words.iter().enumerate() {
                byte |= ((plane >> j & 1) as u8) << r;
            }
            recovered.push(byte);
        }
    }

    let golden_out = sharpen(&Image::from_u8(dim, dim, &bytes))?;
    let trial_out = sharpen(&Image::from_u8(dim, dim, &recovered))?;
    let mut golden_digest = FNV_OFFSET;
    let mut digest = FNV_OFFSET;
    for &b in &golden_out {
        fnv1a(&mut golden_digest, u64::from(b));
    }
    for &b in &trial_out {
        fnv1a(&mut digest, u64::from(b));
    }
    outcome.golden_digest = golden_digest;
    outcome.digest = digest;
    let quality = image_quality_sized(&golden_out, &trial_out, dim);
    outcome.mean_rel_err = quality.mean_rel_err;
    outcome.psnr_db = Some(psnr_u8(&golden_out, &trial_out));
    Ok(outcome)
}

fn sharpen(image: &Image) -> Result<Vec<u8>> {
    apim_workloads::dags::sharpen_via_dag(image)
        .map(|out| out.to_u8())
        .map_err(|e| CrossbarError::InvalidConfig(format!("sharpen DAG failed: {e}")))
}

fn blank_outcome(kernel: &'static str) -> KernelOutcome {
    KernelOutcome {
        kernel,
        faults_injected: 0,
        corrected: 0,
        uncorrectable: 0,
        digest: FNV_OFFSET,
        golden_digest: FNV_OFFSET,
        mean_rel_err: 0.0,
        psnr_db: None,
        ecc_cycles: 0,
        ecc_energy: Joules::default(),
    }
}

fn absorb(outcome: &mut KernelOutcome, readback: &StorageReadback) {
    outcome.faults_injected += readback.faults;
    outcome.corrected += readback.corrected;
    outcome.uncorrectable += readback.uncorrectable;
    outcome.ecc_cycles += readback.stats.cycles.get();
    outcome.ecc_energy += readback.stats.energy;
}

fn finish_numeric(outcome: &mut KernelOutcome, golden: &[i64], got: &[i64]) {
    for &v in golden {
        fnv1a(&mut outcome.golden_digest, v as u64);
    }
    for &v in got {
        fnv1a(&mut outcome.digest, v as u64);
    }
    outcome.mean_rel_err = mean_relative_error(golden, got);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic() {
        let config = CampaignConfig {
            trials: 2,
            image_dim: 6,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&config).unwrap();
        let b = run_campaign(&config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ecc_on_is_bit_exact_at_target_density() {
        let config = CampaignConfig {
            seed: 7,
            density: 1e-4,
            ecc: true,
            trials: 3,
            image_dim: 6,
        };
        let report = run_campaign(&config).unwrap();
        assert!(report.all_bit_exact(), "{report}");
        // The protection is priced, not free.
        for k in &report.kernels {
            assert!(
                k.ecc_cycles > 0,
                "{}: ECC overhead must be reported",
                k.kernel
            );
            assert!(k.ecc_energy > Joules::default());
        }
    }

    #[test]
    fn ecc_off_degrades_at_high_density_but_is_bounded() {
        let on = run_campaign(&CampaignConfig {
            seed: 11,
            density: 0.02,
            ecc: false,
            trials: 3,
            image_dim: 6,
        })
        .unwrap();
        // At 2% density some of the 13×width coded cells flip with
        // overwhelming probability; the digests must record the damage.
        assert!(!on.all_bit_exact(), "2% faults should corrupt something");
        assert!(on.faults_injected() > 0);
        // Degradation is measured and finite — the campaign quantifies the
        // loss instead of crashing.
        for k in &on.kernels {
            assert!(k.mean_rel_err.is_finite(), "{}: unbounded error", k.kernel);
            assert_eq!(k.ecc_cycles, 0, "ECC off must charge no decode cycles");
        }
    }

    #[test]
    fn zero_density_matches_golden_even_without_ecc() {
        let report = run_campaign(&CampaignConfig {
            seed: 3,
            density: 0.0,
            ecc: false,
            trials: 2,
            image_dim: 5,
        })
        .unwrap();
        assert!(report.all_bit_exact());
        assert_eq!(report.faults_injected(), 0);
        for k in &report.kernels {
            assert_eq!(k.mean_rel_err, 0.0);
        }
    }

    #[test]
    fn report_renders_every_kernel() {
        let report = run_campaign(&CampaignConfig {
            trials: 1,
            image_dim: 5,
            ..CampaignConfig::default()
        })
        .unwrap();
        let text = report.to_string();
        for name in ["adder", "multiplier", "sharpen"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("bit-exact"));
    }
}
