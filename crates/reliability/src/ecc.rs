//! In-crossbar Hamming SEC-DED across packed bitplanes.
//!
//! A protection **group** is thirteen wordlines of one block: eight data
//! rows, four Hamming parity rows and one overall-parity row. Every
//! *bitline* (column) of the group is an independent (13,8) SEC-DED
//! codeword, so one encode/decode pass protects up to `cols` codewords
//! column-parallel — the same word-level parallelism every other MAGIC
//! kernel in this repo exploits.
//!
//! Encode, check and correct are built exclusively from the
//! [`apim_logic::gates`] NOR networks (XOR = 5 NOR cycles, AND = 3, …), so
//! detection and correction run *inside* the simulated crossbar and are
//! costed in cycles and energy exactly like any other microprogram — and,
//! because they ride the recorded primitives, they are bit-identical across
//! the Packed and Scalar backends and replayable by `apim-verify`.
//!
//! Decode recovers the corrected data into **fresh destination rows**
//! rather than in place: the fault model is stuck-at cells, and writing a
//! corrected bit back into the cell that is stuck would simply re-corrupt
//! it on the next read.
//!
//! Correction protocol per column (classic SEC-DED):
//!
//! 1. Recompute each parity from the stored rows; the XOR with the stored
//!    parity row is the 4-bit syndrome `s`.
//! 2. Recompute the overall parity across all 13 rows → `odd` (1 iff an
//!    odd number of bits in the column flipped).
//! 3. For each data row at codeword position `p`: a flip mask
//!    `match(p) = AND_i (bit_i(p) ? s_i : !s_i) AND odd`, XORed into the
//!    data row on its way to the destination. Gating by `odd` is what makes
//!    a double error *detected-not-miscorrected*: with two flips the
//!    overall parity is even, every flip mask is forced to zero, and the
//!    column is reported uncorrectable instead of silently flipping a
//!    third bit.

use std::ops::Range;

use apim_crossbar::{BlockId, BlockedCrossbar, CrossbarError, Result, RowAllocator, RowRef};
use apim_logic::gates::{and_row, not_row, or_row, xor_row};

/// Data rows protected per group.
pub const DATA_ROWS: usize = 8;
/// Check rows per group (4 Hamming parity + 1 overall parity).
pub const CHECK_ROWS: usize = 5;
/// Total wordlines a group occupies.
pub const GROUP_ROWS: usize = DATA_ROWS + CHECK_ROWS;

/// Codeword positions (1-based Hamming numbering) of the data rows: every
/// non-power-of-two position in `1..=12`.
const DATA_POS: [u8; DATA_ROWS] = [3, 5, 6, 7, 9, 10, 11, 12];
/// Codeword positions of the Hamming parity rows (the powers of two).
const PARITY_POS: [u8; 4] = [1, 2, 4, 8];

/// Cycles one [`EccGroup::encode`] charges: 25 XOR gates × 5 cycles (14
/// XORs across the four parity folds, 11 for the overall fold).
pub const ENCODE_CYCLES: u64 = 25 * 5;
/// Cycles one [`EccGroup::decode`] charges: syndrome folds (18 XOR) +
/// overall recompute (12 XOR) + syndrome complements (4 NOT) + per-data-row
/// flip networks (8 × (4 AND + 1 XOR)) + detection (3 OR + 1 NOT + 1 AND).
pub const DECODE_CYCLES: u64 = 18 * 5 + 12 * 5 + 4 + 8 * (4 * 3 + 5) + (3 * 2 + 1 + 3);

/// One SEC-DED protection group: row assignments within a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EccGroup {
    /// Block holding every row of the group.
    pub block: BlockId,
    /// The eight protected data rows (codeword positions 3,5,6,7,9..=12).
    pub data: [usize; DATA_ROWS],
    /// The four Hamming parity rows (codeword positions 1,2,4,8).
    pub parity: [usize; 4],
    /// The overall-parity row (double-error detection).
    pub overall: usize,
}

/// Column-level verdict of one decode pass, read out through the sense
/// amplifiers after the in-crossbar correction network has run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodeReport {
    /// Columns where a single error was detected and corrected.
    pub corrected: Vec<usize>,
    /// Columns where a double error was detected (correction withheld).
    pub uncorrectable: Vec<usize>,
}

impl DecodeReport {
    /// Whether every column decoded cleanly or was repaired.
    pub fn all_recovered(&self) -> bool {
        self.uncorrectable.is_empty()
    }
}

/// Scratch rows shared by the gate networks: two XOR-chain accumulators,
/// two gate-internal rows and two flip-mask ping-pong rows.
struct Scratch {
    acc: [usize; 2],
    tmp: [usize; 2],
    flip: [usize; 2],
}

impl Scratch {
    fn alloc(alloc: &mut RowAllocator) -> Result<Self> {
        let rows = alloc.alloc_many(6)?;
        Ok(Scratch {
            acc: [rows[0], rows[1]],
            tmp: [rows[2], rows[3]],
            flip: [rows[4], rows[5]],
        })
    }

    fn free(self, alloc: &mut RowAllocator) -> Result<()> {
        alloc.free_many([
            self.acc[0],
            self.acc[1],
            self.tmp[0],
            self.tmp[1],
            self.flip[0],
            self.flip[1],
        ])
    }
}

impl EccGroup {
    /// Claims the thirteen rows of a fresh group from `alloc`, all inside
    /// `block`.
    ///
    /// # Errors
    ///
    /// Propagates allocator exhaustion.
    pub fn alloc(block: BlockId, alloc: &mut RowAllocator) -> Result<Self> {
        let rows = alloc.alloc_many(GROUP_ROWS)?;
        let mut data = [0usize; DATA_ROWS];
        data.copy_from_slice(&rows[..DATA_ROWS]);
        let mut parity = [0usize; 4];
        parity.copy_from_slice(&rows[DATA_ROWS..DATA_ROWS + 4]);
        Ok(EccGroup {
            block,
            data,
            parity,
            overall: rows[GROUP_ROWS - 1],
        })
    }

    /// Every wordline the group occupies (the storage region faults should
    /// be injected into), data rows first.
    pub fn rows(&self) -> Vec<usize> {
        let mut rows = self.data.to_vec();
        rows.extend_from_slice(&self.parity);
        rows.push(self.overall);
        rows
    }

    /// Indices into [`EccGroup::data`] covered by the Hamming parity at
    /// position `PARITY_POS[i]`.
    fn coverage(i: usize) -> Vec<usize> {
        DATA_POS
            .iter()
            .enumerate()
            .filter(|(_, &p)| p & PARITY_POS[i] != 0)
            .map(|(j, _)| j)
            .collect()
    }

    /// Computes the five check rows from the eight data rows, inside the
    /// crossbar ([`ENCODE_CYCLES`] cycles per group).
    ///
    /// Encode runs on trusted (freshly written) data: the standard model is
    /// that data is stored correctly and cells degrade afterwards, which is
    /// exactly what the fault-injection campaign simulates.
    ///
    /// # Errors
    ///
    /// Propagates crossbar/allocator errors.
    pub fn encode(
        &self,
        xbar: &mut BlockedCrossbar,
        cols: Range<usize>,
        alloc: &mut RowAllocator,
    ) -> Result<()> {
        let s = Scratch::alloc(alloc)?;
        for i in 0..4 {
            let inputs: Vec<usize> = Self::coverage(i).iter().map(|&j| self.data[j]).collect();
            self.xor_fold(xbar, &inputs, self.parity[i], cols.clone(), &s)?;
        }
        let mut all: Vec<usize> = self.data.to_vec();
        all.extend_from_slice(&self.parity);
        self.xor_fold(xbar, &all, self.overall, cols.clone(), &s)?;
        s.free(alloc)
    }

    /// XOR-reduces `inputs` (≥ 2 rows) into `dst` with ping-pong
    /// accumulators; `5 × (inputs − 1)` cycles, the last fold landing
    /// directly in `dst`.
    fn xor_fold(
        &self,
        xbar: &mut BlockedCrossbar,
        inputs: &[usize],
        dst: usize,
        cols: Range<usize>,
        s: &Scratch,
    ) -> Result<()> {
        if inputs.len() < 2 {
            return Err(CrossbarError::InvalidConfig(
                "xor_fold needs at least two inputs".into(),
            ));
        }
        let rr = |row| RowRef::new(self.block, row);
        let gs = [rr(s.tmp[0]), rr(s.tmp[1]), rr(s.flip[0]), rr(s.flip[1])];
        let mut acc = s.acc[0];
        let mut other = s.acc[1];
        let first_dst = if inputs.len() == 2 { dst } else { acc };
        xor_row(
            xbar,
            rr(inputs[0]),
            rr(inputs[1]),
            rr(first_dst),
            gs,
            cols.clone(),
        )?;
        for (k, &row) in inputs[2..].iter().enumerate() {
            let last = k == inputs.len() - 3;
            let out = if last { dst } else { other };
            xor_row(xbar, rr(acc), rr(row), rr(out), gs, cols.clone())?;
            std::mem::swap(&mut acc, &mut other);
        }
        Ok(())
    }

    /// Recomputes syndromes, corrects single-bit errors column-parallel and
    /// writes the recovered data into `dst` ([`DECODE_CYCLES`] cycles per
    /// group). Columns with detected double errors are reported and left
    /// *uncorrected* in `dst` (their faulty data bits pass through; no
    /// extra bit is flipped).
    ///
    /// # Errors
    ///
    /// Propagates crossbar/allocator errors. `dst` must name eight rows in
    /// the group's block, disjoint from the group and from each other.
    pub fn decode(
        &self,
        xbar: &mut BlockedCrossbar,
        dst: &[usize; DATA_ROWS],
        cols: Range<usize>,
        alloc: &mut RowAllocator,
    ) -> Result<DecodeReport> {
        let rr = |row| RowRef::new(self.block, row);
        let s = Scratch::alloc(alloc)?;
        // Syndromes s_i = stored parity XOR recomputed parity; the stored
        // parity row simply joins the XOR chain.
        let syn = alloc.alloc_many(4)?;
        for (i, &row) in syn.iter().enumerate() {
            let mut inputs = vec![self.parity[i]];
            inputs.extend(Self::coverage(i).iter().map(|&j| self.data[j]));
            self.xor_fold(xbar, &inputs, row, cols.clone(), &s)?;
        }
        // odd = stored overall XOR recomputed overall — the full 13-row XOR.
        let odd = alloc.alloc()?;
        self.xor_fold(xbar, &self.rows(), odd, cols.clone(), &s)?;
        // Complemented syndromes for the position-match networks.
        let nsyn = alloc.alloc_many(4)?;
        for i in 0..4 {
            not_row(xbar, rr(syn[i]), rr(nsyn[i]), cols.clone(), 0)?;
        }
        // Per data row: match the syndrome against the row's codeword
        // position, gate by `odd`, XOR into the destination.
        for (j, &p) in DATA_POS.iter().enumerate() {
            let lit = |i: usize| {
                if p & PARITY_POS[i] != 0 {
                    syn[i]
                } else {
                    nsyn[i]
                }
            };
            let and2 = [rr(s.tmp[0]), rr(s.tmp[1])];
            let mut cur = s.flip[0];
            let mut other = s.flip[1];
            and_row(xbar, rr(lit(0)), rr(lit(1)), rr(cur), and2, cols.clone())?;
            for i in 2..4 {
                and_row(xbar, rr(cur), rr(lit(i)), rr(other), and2, cols.clone())?;
                std::mem::swap(&mut cur, &mut other);
            }
            and_row(xbar, rr(cur), rr(odd), rr(other), and2, cols.clone())?;
            // The XOR network needs four scratch rows; `cur` has served its
            // purpose, so the accumulators and `cur` are all free here.
            let xs = [rr(s.tmp[0]), rr(s.tmp[1]), rr(s.acc[0]), rr(s.acc[1])];
            xor_row(
                xbar,
                rr(self.data[j]),
                rr(other),
                rr(dst[j]),
                xs,
                cols.clone(),
            )?;
        }
        // Detection rows: err = OR of the four syndromes;
        // uncorrectable = err AND NOT odd.
        let err = alloc.alloc()?;
        let unc = alloc.alloc()?;
        or_row(
            xbar,
            rr(syn[0]),
            rr(syn[1]),
            rr(s.acc[0]),
            rr(s.tmp[0]),
            cols.clone(),
        )?;
        or_row(
            xbar,
            rr(s.acc[0]),
            rr(syn[2]),
            rr(s.acc[1]),
            rr(s.tmp[0]),
            cols.clone(),
        )?;
        or_row(
            xbar,
            rr(s.acc[1]),
            rr(syn[3]),
            rr(err),
            rr(s.tmp[0]),
            cols.clone(),
        )?;
        not_row(xbar, rr(odd), rr(s.acc[0]), cols.clone(), 0)?;
        and_row(
            xbar,
            rr(err),
            rr(s.acc[0]),
            rr(unc),
            [rr(s.tmp[0]), rr(s.tmp[1])],
            cols.clone(),
        )?;
        // Read the verdict out through the sense amplifiers (free reads).
        // A set `err` with odd parity is a corrected data/parity error; a
        // clean syndrome with odd parity is a corrected overall-row error.
        let mut report = DecodeReport::default();
        for col in cols {
            if xbar.peek_bit(self.block, unc, col)? {
                report.uncorrectable.push(col);
            } else if xbar.peek_bit(self.block, err, col)? || xbar.peek_bit(self.block, odd, col)? {
                report.corrected.push(col);
            }
        }
        alloc.free_many([err, unc, odd])?;
        alloc.free_many(nsyn)?;
        alloc.free_many(syn)?;
        s.free(alloc)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_crossbar::{Backend, BlockedCrossbar, CrossbarConfig, Fault};

    const W: usize = 32;

    fn setup(backend: Backend) -> (BlockedCrossbar, BlockId) {
        let xbar = BlockedCrossbar::new(CrossbarConfig {
            backend,
            ..CrossbarConfig::default()
        })
        .unwrap();
        let blk = xbar.block(0).unwrap();
        (xbar, blk)
    }

    fn sample_words() -> [u64; DATA_ROWS] {
        [
            0xDEAD_BEEF,
            0x0123_4567,
            0,
            0xFFFF_FFFF,
            0x5555_5555,
            0xAAAA_AAAA,
            0x8000_0001,
            0x1357_9BDF,
        ]
    }

    /// Stores `words`, encodes, injects `faults` as `(group row index,
    /// col, fault)` into the coded group, decodes into fresh rows and
    /// returns the recovered words plus the decode report.
    fn store_decode(
        words: [u64; DATA_ROWS],
        faults: &[(usize, usize, Fault)],
        backend: Backend,
    ) -> ([u64; DATA_ROWS], DecodeReport) {
        let (mut xbar, blk) = setup(backend);
        let mut alloc = RowAllocator::new(xbar.rows());
        let group = EccGroup::alloc(blk, &mut alloc).unwrap();
        for (j, &w) in words.iter().enumerate() {
            xbar.preload_u64(blk, group.data[j], 0, W, w).unwrap();
        }
        group.encode(&mut xbar, 0..W, &mut alloc).unwrap();
        let encode_cycles = xbar.stats().cycles.get();
        assert_eq!(encode_cycles, ENCODE_CYCLES, "encode cost model");
        for &(row_idx, col, fault) in faults {
            let row = group.rows()[row_idx];
            xbar.inject_fault(blk, row, col, Some(fault)).unwrap();
        }
        let dst: [usize; DATA_ROWS] = alloc.alloc_many(DATA_ROWS).unwrap().try_into().unwrap();
        let report = group.decode(&mut xbar, &dst, 0..W, &mut alloc).unwrap();
        assert_eq!(
            xbar.stats().cycles.get() - encode_cycles,
            DECODE_CYCLES,
            "decode cost model"
        );
        let mut out = [0u64; DATA_ROWS];
        for (j, &row) in dst.iter().enumerate() {
            out[j] = xbar.peek_u64(blk, row, 0, W).unwrap();
        }
        (out, report)
    }

    #[test]
    fn clean_round_trip_is_identity() {
        let words = sample_words();
        let (out, report) = store_decode(words, &[], Backend::Packed);
        assert_eq!(out, words);
        assert!(report.corrected.is_empty());
        assert!(report.uncorrectable.is_empty());
    }

    #[test]
    fn single_data_fault_is_corrected() {
        let words = sample_words();
        // Row 0 stores 0xDEAD_BEEF; bit 0 is 1, so stuck-at-0 flips it.
        let (out, report) = store_decode(words, &[(0, 0, Fault::StuckAtZero)], Backend::Packed);
        assert_eq!(out, words, "decode must recover the stored word");
        assert_eq!(report.corrected, vec![0]);
        assert!(report.uncorrectable.is_empty());
    }

    #[test]
    fn single_parity_fault_leaves_data_intact() {
        let words = sample_words();
        // Group row index 8 = first Hamming parity row.
        let (out, report) = store_decode(words, &[(8, 3, Fault::StuckAtOne)], Backend::Packed);
        assert_eq!(out, words);
        assert!(report.uncorrectable.is_empty());
        // Whether the flip registers depends on the stored parity bit; if
        // it does, it must be attributed to the faulted column.
        assert!(report.corrected.is_empty() || report.corrected == vec![3]);
    }

    #[test]
    fn overall_row_fault_leaves_data_intact() {
        let words = sample_words();
        // Group row index 12 = overall-parity row: syndrome stays clean,
        // only the odd-parity plane lights up.
        let (out, report) = store_decode(words, &[(12, 9, Fault::StuckAtOne)], Backend::Packed);
        assert_eq!(out, words);
        assert!(report.uncorrectable.is_empty());
        assert!(report.corrected.is_empty() || report.corrected == vec![9]);
    }

    #[test]
    fn double_fault_detected_not_miscorrected() {
        let words = sample_words();
        // Two genuine flips in column 1: bit 1 of 0xDEAD_BEEF (row 0) and
        // bit 1 of 0xFFFF_FFFF (row 3) are both 1, so stuck-at-0 flips both.
        let (out, report) = store_decode(
            words,
            &[(0, 1, Fault::StuckAtZero), (3, 1, Fault::StuckAtZero)],
            Backend::Packed,
        );
        assert_eq!(report.uncorrectable, vec![1]);
        // Not miscorrected: exactly the two faulted bits differ, no third.
        for (j, (&got, &want)) in out.iter().zip(words.iter()).enumerate() {
            let diff = got ^ want;
            match j {
                0 | 3 => assert_eq!(diff, 0b10, "row {j} keeps only its own fault"),
                _ => assert_eq!(diff, 0, "row {j} untouched"),
            }
        }
    }

    #[test]
    fn faults_in_distinct_columns_all_corrected() {
        let words = sample_words();
        let (out, report) = store_decode(
            words,
            &[
                (0, 5, Fault::StuckAtZero),  // 0xDEAD_BEEF bit 5 = 1 → flips
                (4, 0, Fault::StuckAtZero),  // 0x5555_5555 bit 0 = 1 → flips
                (6, 31, Fault::StuckAtZero), // 0x8000_0001 bit 31 = 1 → flips
            ],
            Backend::Packed,
        );
        assert_eq!(out, words);
        assert_eq!(report.corrected, vec![0, 5, 31]);
        assert!(report.uncorrectable.is_empty());
    }

    #[test]
    fn benign_fault_matching_stored_bit_reports_nothing() {
        let words = sample_words();
        // Row 2 stores 0: stuck-at-0 anywhere in it is invisible.
        let (out, report) = store_decode(words, &[(2, 7, Fault::StuckAtZero)], Backend::Packed);
        assert_eq!(out, words);
        assert!(report.corrected.is_empty());
        assert!(report.uncorrectable.is_empty());
    }

    #[test]
    fn backends_are_bit_identical() {
        let words = sample_words();
        let faults = [
            (0, 3, Fault::StuckAtZero),
            (5, 3, Fault::StuckAtOne),
            (7, 17, Fault::StuckAtZero),
        ];
        let packed = store_decode(words, &faults, Backend::Packed);
        let scalar = store_decode(words, &faults, Backend::Scalar);
        assert_eq!(packed, scalar);
    }

    #[test]
    fn decode_trace_passes_hazard_passes() {
        let (mut xbar, blk) = setup(Backend::Packed);
        let mut alloc = RowAllocator::with_tracing(xbar.rows());
        let group = EccGroup::alloc(blk, &mut alloc).unwrap();
        xbar.start_recording();
        for (j, &w) in sample_words().iter().enumerate() {
            xbar.preload_u64(blk, group.data[j], 0, W, w).unwrap();
        }
        group.encode(&mut xbar, 0..W, &mut alloc).unwrap();
        let dst: [usize; DATA_ROWS] = alloc.alloc_many(DATA_ROWS).unwrap().try_into().unwrap();
        group.decode(&mut xbar, &dst, 0..W, &mut alloc).unwrap();
        let trace = xbar.stop_recording();
        let events = alloc.take_events();
        let report =
            apim_verify::verify_trace(&trace, &events, Some(ENCODE_CYCLES + DECODE_CYCLES));
        assert_eq!(report.error_count(), 0, "{report}");
    }
}
