//! Property-based tests for the APIM arithmetic stack.
//!
//! The repo's core invariant chain: native integer math == functional model
//! == gate-level crossbar simulation, for every precision mode, with cycle
//! counts matching the analytic cost model exactly.

use apim_device::DeviceParams;
use apim_logic::error_analysis::SplitMix64;
use apim_logic::functional::{
    approx_add_last_stage, csa, multiply, multiply_signed, reduce_to_two, tree_stages,
};
use apim_logic::multiplier::CrossbarMultiplier;
use apim_logic::{CostModel, PrecisionMode};
use proptest::prelude::*;

proptest! {
    #[test]
    fn csa_always_preserves_sum(a in 0u128..1 << 100, b in 0u128..1 << 100, c in 0u128..1 << 100) {
        let (s, cy) = csa(a, b, c);
        prop_assert_eq!(s + cy, a + b + c);
    }

    #[test]
    fn reduction_preserves_sum(ops in proptest::collection::vec(0u128..1 << 90, 0..40)) {
        let [s, c] = reduce_to_two(&ops);
        prop_assert_eq!(s + c, ops.iter().sum::<u128>());
    }

    #[test]
    fn tree_stage_count_is_logarithmic(k in 3usize..4096) {
        let stages = tree_stages(k);
        // 3:2 reduction shrinks by at most 2/3 per stage; stages is
        // Theta(log_{3/2} k).
        prop_assert!(stages >= 1);
        prop_assert!(stages <= 2 + (k as f64).log(1.5).ceil() as usize);
    }

    #[test]
    fn exact_multiply_equals_native(a: u32, b: u32) {
        prop_assert_eq!(
            multiply(u64::from(a), u64::from(b), 32, PrecisionMode::Exact),
            u128::from(a) * u128::from(b)
        );
    }

    #[test]
    fn first_stage_equals_masked_native(a: u32, b: u32, f in 0u8..=32) {
        let masked = if f >= 32 { 0 } else { u64::from(b) & (u64::MAX << f) };
        prop_assert_eq!(
            multiply(u64::from(a), u64::from(b), 32, PrecisionMode::FirstStage { masked_bits: f }),
            u128::from(a) * u128::from(masked)
        );
    }

    #[test]
    fn last_stage_error_bounded_and_high_bits_exact(a: u32, b: u32, m in 0u8..=64) {
        let approx = multiply(u64::from(a), u64::from(b), 32,
                              PrecisionMode::LastStage { relax_bits: m });
        let exact = u128::from(a) * u128::from(b);
        if a != 0 && b != 0 {
            // Operands with >= 2 partial products go through the final adder.
            prop_assert!(approx.abs_diff(exact) < 1u128 << m || approx == exact);
            if m < 64 {
                prop_assert_eq!(approx >> m, exact >> m);
            }
        } else {
            prop_assert_eq!(approx, 0);
        }
    }

    #[test]
    fn approx_add_m0_is_exact(x in 0u128..1 << 64, y in 0u128..1 << 64) {
        prop_assert_eq!(approx_add_last_stage(x, y, 66, 0), x + y);
    }

    #[test]
    fn approx_add_error_localized(x in 0u128..1 << 40, y in 0u128..1 << 40, m in 0u32..=41) {
        let approx = approx_add_last_stage(x, y, 42, m);
        let exact = (x + y) & ((1 << 42) - 1);
        prop_assert_eq!(approx >> m, exact >> m);
    }

    #[test]
    fn signed_multiply_sign_correct(a: i32, b: i32) {
        let r = multiply_signed(i64::from(a), i64::from(b), 32, PrecisionMode::Exact);
        prop_assert_eq!(r, i128::from(a) * i128::from(b));
    }

    #[test]
    fn relax_bits_monotonically_cheapen(m1 in 0u32..=63, delta in 1u32..=16) {
        let m2 = (m1 + delta).min(64);
        let model = CostModel::new(&DeviceParams::default());
        let c1 = model.final_stage(32, m1);
        let c2 = model.final_stage(32, m2);
        prop_assert!(c2.cycles < c1.cycles);
        prop_assert!(c2.energy.as_joules() < c1.energy.as_joules());
    }

    #[test]
    fn masking_monotonically_cheapens(f in 0u8..32) {
        let model = CostModel::new(&DeviceParams::default());
        let b = u64::from(u32::MAX);
        let c1 = model.multiply(32, b, PrecisionMode::FirstStage { masked_bits: f });
        let c2 = model.multiply(32, b, PrecisionMode::FirstStage { masked_bits: f + 1 });
        prop_assert!(c2.cycles <= c1.cycles);
    }
}

proptest! {
    #[test]
    fn trunc_multiply_wraps_exactly(a: u32, b: u32) {
        use apim_logic::functional::multiply_trunc;
        prop_assert_eq!(
            multiply_trunc(u64::from(a), u64::from(b), 32, PrecisionMode::Exact),
            u64::from(a.wrapping_mul(b))
        );
    }

    #[test]
    fn trunc_relaxed_high_bits_follow_exact_carries(a: u32, b: u32, m in 0u8..=32) {
        use apim_logic::functional::multiply_trunc;
        let mode = PrecisionMode::LastStage { relax_bits: m };
        let approx = multiply_trunc(u64::from(a), u64::from(b), 32, mode);
        let exact = u64::from(a.wrapping_mul(b));
        if m < 32 && a != 0 && b != 0 {
            // Carries are exact, so bits above m agree with the wrapped
            // exact product.
            prop_assert_eq!(approx >> m, exact >> m);
        }
    }

    #[test]
    fn mac_functional_sums_partial_products(
        terms in proptest::collection::vec((0u64..256, 0u64..256), 0..6)
    ) {
        use apim_logic::mac::mac_trunc_functional;
        let got = mac_trunc_functional(&terms, 8, PrecisionMode::Exact);
        let expect = terms.iter().fold(0u64, |acc, &(a, b)| acc.wrapping_add(a * b)) & 0xFF;
        prop_assert_eq!(got, expect);
    }
}

// Gate-level equivalence is the expensive property; keep the case count
// moderate and the operand width small.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gate_level_equals_functional(a in 0u64..256, b in 0u64..256, m in 0u8..=16, f in 0u8..=8) {
        let mut mul = CrossbarMultiplier::new(8, &DeviceParams::default()).unwrap();
        let model = CostModel::new(&DeviceParams::default());
        for mode in [
            PrecisionMode::Exact,
            PrecisionMode::FirstStage { masked_bits: f },
            PrecisionMode::LastStage { relax_bits: m },
        ] {
            let run = mul.multiply(a, b, mode).unwrap();
            prop_assert_eq!(run.product, multiply(a, b, 8, mode),
                "value mismatch: {} x {} {}", a, b, mode);
            let predicted = model.multiply(8, b, mode);
            prop_assert_eq!(run.stats.cycles, predicted.cycles,
                "cycle mismatch: {} x {} {}", a, b, mode);
            let rel = (run.stats.energy.as_joules() - predicted.energy.as_joules()).abs()
                / predicted.energy.as_joules().max(1e-30);
            prop_assert!(rel < 1e-9, "energy mismatch {} for {} x {} {}", rel, a, b, mode);
        }
    }

    #[test]
    fn gate_level_divider_matches_native(x in 0u64..256, y in 1u64..256) {
        use apim_crossbar::{BlockedCrossbar, CrossbarConfig};
        use apim_logic::divider::divide;
        let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let blk = xbar.block(1).unwrap();
        let run = divide(&mut xbar, blk, x, y, 8).unwrap();
        prop_assert_eq!(run.quotient, x / y);
        prop_assert_eq!(run.remainder, x % y);
    }

    #[test]
    fn gate_level_subtractor_matches_native(x: u16, y: u16) {
        use apim_crossbar::{BlockedCrossbar, CrossbarConfig};
        use apim_logic::subtractor::subtract;
        let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let blk = xbar.block(1).unwrap();
        let got = subtract(&mut xbar, blk, u64::from(x), u64::from(y), 16).unwrap();
        prop_assert_eq!(got, u64::from(x.wrapping_sub(y)));
    }

    #[test]
    fn gate_level_vector_add_matches_native(
        pairs in proptest::collection::vec((0u64..65536, 0u64..65536), 1..6)
    ) {
        use apim_logic::vector::VectorUnit;
        let mut vu = VectorUnit::new(16, 6, &DeviceParams::default()).unwrap();
        let run = vu.add(&pairs).unwrap();
        for (got, &(a, b)) in run.values.iter().zip(&pairs) {
            prop_assert_eq!(*got, (a + b) & 0xFFFF);
        }
        prop_assert_eq!(run.stats.cycles.get(), 12 * 16 + 1);
    }

    #[test]
    fn gate_level_16_bit_exact(seed: u64) {
        let mut rng = SplitMix64::new(seed);
        let a = rng.next_bits(16);
        let b = rng.next_bits(16);
        let mut mul = CrossbarMultiplier::new(16, &DeviceParams::default()).unwrap();
        let run = mul.multiply(a, b, PrecisionMode::Exact).unwrap();
        prop_assert_eq!(run.product, u128::from(a) * u128::from(b));
    }
}
