//! Kernel-level differential suite: every arithmetic kernel runs on the
//! bit-packed production backend and on the scalar reference oracle, and
//! must produce identical values, cycle/energy statistics, wear counters
//! and final cell state at widths 8/16/32/64.

use apim_crossbar::{Backend, BlockedCrossbar, CrossbarConfig};
use apim_device::DeviceParams;
use apim_logic::mac::CrossbarMac;
use apim_logic::multiplier::CrossbarMultiplier;
use apim_logic::vector::VectorUnit;
use apim_logic::{divider, subtractor, PrecisionMode};
use proptest::prelude::*;

const WIDTHS: [usize; 4] = [8, 16, 32, 64];

/// Full observable crossbar state: cell bits plus per-cell wear.
fn observe(x: &BlockedCrossbar) -> (Vec<bool>, Vec<u64>) {
    let mut bits = Vec::new();
    let mut wear = Vec::new();
    for blk in 0..x.block_count() {
        let b = x.block(blk).unwrap();
        for row in 0..x.rows() {
            for col in 0..x.cols() {
                bits.push(x.peek_bit(b, row, col).unwrap());
                wear.push(x.cell_writes(b, row, col).unwrap());
            }
        }
    }
    (bits, wear)
}

fn assert_same(packed: &BlockedCrossbar, scalar: &BlockedCrossbar, what: &str) {
    assert_eq!(packed.stats(), scalar.stats(), "{what}: stats diverged");
    assert_eq!(observe(packed), observe(scalar), "{what}: state diverged");
    assert_eq!(
        packed.wear_report(),
        scalar.wear_report(),
        "{what}: wear diverged"
    );
}

fn standalone_pair(backendless_rows: usize, cols: usize) -> (BlockedCrossbar, BlockedCrossbar) {
    let cfg = |backend| CrossbarConfig {
        blocks: 2,
        rows: backendless_rows,
        cols,
        backend,
        ..CrossbarConfig::default()
    };
    (
        BlockedCrossbar::new(cfg(Backend::Packed)).unwrap(),
        BlockedCrossbar::new(cfg(Backend::Scalar)).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn multiplier_is_backend_independent(a: u64, b: u64, relax in 0u32..16) {
        let params = DeviceParams::default();
        for n in WIDTHS {
            let n = n as u32;
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            let (a, b) = (a & mask, b & mask);
            let mut packed = CrossbarMultiplier::with_backend(n, &params, Backend::Packed).unwrap();
            let mut scalar = CrossbarMultiplier::with_backend(n, &params, Backend::Scalar).unwrap();
            for mode in [
                PrecisionMode::Exact,
                PrecisionMode::LastStage {
                    relax_bits: relax.min(n - 1) as u8,
                },
            ] {
                let rp = packed.multiply(a, b, mode).unwrap();
                let rs = scalar.multiply(a, b, mode).unwrap();
                prop_assert_eq!(rp.product, rs.product, "n={} mode={:?}", n, mode);
                prop_assert_eq!(rp.stats, rs.stats);
            }
            assert_same(packed.crossbar(), scalar.crossbar(), "multiplier");
        }
    }

    #[test]
    fn mac_is_backend_independent(terms in proptest::collection::vec((0u64.., 0u64..), 1..4)) {
        let params = DeviceParams::default();
        for n in [8u32, 16, 32] {
            let mask = (1u64 << n) - 1;
            let terms: Vec<(u64, u64)> =
                terms.iter().map(|&(a, b)| (a & mask, b & mask)).collect();
            let mut packed =
                CrossbarMac::with_backend(n, terms.len(), &params, Backend::Packed).unwrap();
            let mut scalar =
                CrossbarMac::with_backend(n, terms.len(), &params, Backend::Scalar).unwrap();
            let rp = packed.mac(&terms, PrecisionMode::Exact).unwrap();
            let rs = scalar.mac(&terms, PrecisionMode::Exact).unwrap();
            prop_assert_eq!(rp.value, rs.value, "n={}", n);
            prop_assert_eq!(rp.stats, rs.stats);
            assert_same(packed.crossbar(), scalar.crossbar(), "mac");
        }
    }

    #[test]
    fn vector_add_is_backend_independent(pairs in proptest::collection::vec((0u64.., 0u64..), 1..5)) {
        let params = DeviceParams::default();
        for n in WIDTHS {
            let n = n as u32;
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            let pairs: Vec<(u64, u64)> =
                pairs.iter().map(|&(a, b)| (a & mask, b & mask)).collect();
            let mut packed =
                VectorUnit::with_backend(n, pairs.len(), &params, Backend::Packed).unwrap();
            let mut scalar =
                VectorUnit::with_backend(n, pairs.len(), &params, Backend::Scalar).unwrap();
            let rp = packed.add(&pairs).unwrap();
            let rs = scalar.add(&pairs).unwrap();
            prop_assert_eq!(rp.values, rs.values, "n={}", n);
            prop_assert_eq!(rp.stats, rs.stats);
            assert_same(packed.crossbar(), scalar.crossbar(), "vector add");
        }
    }

    #[test]
    fn subtract_and_divide_are_backend_independent(x: u64, y: u64) {
        for n in WIDTHS {
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            let (x, y) = (x & mask, (y & mask).max(1));
            let (mut packed, mut scalar) = standalone_pair(24, 2 * n + 4);
            let bp = packed.block(0).unwrap();
            let bs = scalar.block(0).unwrap();
            let dp = subtractor::subtract(&mut packed, bp, x, y, n).unwrap();
            let ds = subtractor::subtract(&mut scalar, bs, x, y, n).unwrap();
            prop_assert_eq!(dp, ds, "subtract n={}", n);
            assert_same(&packed, &scalar, "subtract");
            // Restoring division on fresh crossbars (divider allocates its
            // own rows); skip 64-bit: the remainder window needs 2n cols.
            if n < 64 {
                let (mut packed, mut scalar) = standalone_pair(24, 2 * n + 4);
                let bp = packed.block(0).unwrap();
                let bs = scalar.block(0).unwrap();
                let qp = divider::divide(&mut packed, bp, x, y, n).unwrap();
                let qs = divider::divide(&mut scalar, bs, x, y, n).unwrap();
                prop_assert_eq!(qp.quotient, qs.quotient, "divide n={}", n);
                prop_assert_eq!(qp.remainder, qs.remainder);
                prop_assert_eq!(qp.cycles, qs.cycles);
                assert_same(&packed, &scalar, "divide");
            }
        }
    }
}
