//! In-memory division (extension).
//!
//! The paper's kernels avoid division ("approximated by [add and
//! multiply]"), but a general PIM library needs one. This is classic
//! restoring division realized from the primitives this crate already
//! validates gate-level: per quotient bit, one trial subtraction of the
//! shifted divisor (the [`crate::subtractor`] netlist) whose carry-out *is*
//! the comparison — restore is free because the remainder register is only
//! overwritten when the trial succeeds.
//!
//! Cost: `N` trial subtractions over a `2N`-bit window ⇒
//! `N · (12·2N + 2)` cycles — division is an order of magnitude more
//! expensive than multiplication in-memory, which is exactly why the
//! paper's workloads were formulated without it.

use apim_crossbar::{BlockId, BlockedCrossbar, CrossbarError, Result, RowAllocator};
use apim_device::Cycles;

use crate::adder_serial::SerialScratch;
use crate::subtractor::greater_equal;

/// Quotient and remainder of a gate-level division.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivRun {
    /// `x / y`.
    pub quotient: u64,
    /// `x mod y`.
    pub remainder: u64,
    /// Cycles charged.
    pub cycles: Cycles,
}

/// Divides `x` by `y` (`n`-bit operands) on the crossbar with restoring
/// division.
///
/// # Errors
///
/// Returns [`CrossbarError::InvalidConfig`] for a zero divisor or operands
/// exceeding `n` bits; crossbar errors propagate. The block needs
/// ~16 rows and `2n + 2` columns.
pub fn divide(
    xbar: &mut BlockedCrossbar,
    block: BlockId,
    x: u64,
    y: u64,
    n: usize,
) -> Result<DivRun> {
    if y == 0 {
        return Err(CrossbarError::InvalidConfig("division by zero".into()));
    }
    if n < 64 && (x >> n != 0 || y >> n != 0) {
        return Err(CrossbarError::InvalidConfig(format!(
            "operands must fit in {n} bits"
        )));
    }
    let w = 2 * n; // remainder window: remainder < y << n
    let mut alloc = RowAllocator::new(xbar.rows());
    let rows = alloc.alloc_many(4)?; // remainder, shifted divisor, !divisor, trial
    let scratch = SerialScratch::alloc(&mut alloc)?;
    // Word stores split a > 64-bit request into two accounting ops, so the
    // packed fast path only applies while the window fits one word.
    let preload_window = |xbar: &mut BlockedCrossbar, row: usize, v: u128| -> Result<()> {
        if w <= 64 {
            xbar.preload_u64(block, row, 0, w, v as u64)
        } else {
            let bits: Vec<bool> = (0..w).map(|i| (v >> i) & 1 == 1).collect();
            xbar.preload_word(block, row, 0, &bits)
        }
    };

    // Remainder register starts as the dividend over the full window.
    preload_window(xbar, rows[0], u128::from(x))?;
    let before = xbar.stats().cycles;
    let mut quotient = 0u64;
    for step in (0..n).rev() {
        // Trial: remainder - (y << step).
        let shifted = (y as u128) << step;
        preload_window(xbar, rows[1], shifted)?;
        let ge = greater_equal(
            xbar,
            block,
            rows[0],
            rows[1],
            rows[2],
            rows[3],
            0..w,
            &scratch,
        )?;
        if ge {
            quotient |= 1 << step;
            // Commit the difference as the new remainder: a shifted copy
            // through the block's own rows (2 NOTs, 2 cycles).
            xbar.init_rows(block, &[rows[2]], 0..w)?;
            xbar.nor_rows_shifted(
                &[apim_crossbar::RowRef::new(block, rows[3])],
                apim_crossbar::RowRef::new(block, rows[2]),
                0..w,
                0,
            )?;
            xbar.init_rows(block, &[rows[0]], 0..w)?;
            xbar.nor_rows_shifted(
                &[apim_crossbar::RowRef::new(block, rows[2])],
                apim_crossbar::RowRef::new(block, rows[0]),
                0..w,
                0,
            )?;
        }
        // Restoring is free: on failure the remainder row was never
        // touched (the trial wrote only the scratch output row).
    }
    let remainder = xbar.peek_u64(block, rows[0], 0, n)?;
    Ok(DivRun {
        quotient,
        remainder,
        cycles: xbar.stats().cycles - before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_crossbar::CrossbarConfig;

    fn xbar() -> BlockedCrossbar {
        BlockedCrossbar::new(CrossbarConfig::default()).unwrap()
    }

    #[test]
    fn divides_exactly() {
        let mut x = xbar();
        let b = x.block(1).unwrap();
        let run = divide(&mut x, b, 84, 7, 8).unwrap();
        assert_eq!(run.quotient, 12);
        assert_eq!(run.remainder, 0);
    }

    #[test]
    fn remainder_is_correct() {
        let mut x = xbar();
        let b = x.block(1).unwrap();
        let run = divide(&mut x, b, 100, 7, 8).unwrap();
        assert_eq!(run.quotient, 14);
        assert_eq!(run.remainder, 2);
    }

    #[test]
    fn exhaustive_5_bit() {
        let mut x = xbar();
        let b = x.block(1).unwrap();
        for dividend in 0u64..32 {
            for divisor in 1u64..32 {
                let run = divide(&mut x, b, dividend, divisor, 5).unwrap();
                assert_eq!(run.quotient, dividend / divisor, "{dividend}/{divisor}");
                assert_eq!(run.remainder, dividend % divisor, "{dividend}%{divisor}");
            }
        }
    }

    #[test]
    fn division_by_zero_rejected() {
        let mut x = xbar();
        let b = x.block(1).unwrap();
        assert!(divide(&mut x, b, 5, 0, 8).is_err());
    }

    #[test]
    fn oversized_operands_rejected() {
        let mut x = xbar();
        let b = x.block(1).unwrap();
        assert!(divide(&mut x, b, 256, 3, 8).is_err());
    }

    #[test]
    fn division_is_much_slower_than_multiplication() {
        // The extension quantifies the paper's implicit design rule:
        // division costs ~N trial subtractions over a 2N window.
        let mut x = xbar();
        let b = x.block(1).unwrap();
        let run = divide(&mut x, b, 255, 3, 8).unwrap();
        let floor = 8 * (12 * 16 + 2);
        assert!(
            run.cycles.get() >= floor as u64,
            "{} cycles < {floor}",
            run.cycles
        );
        use crate::model::CostModel;
        let mul = CostModel::new(&apim_device::DeviceParams::default())
            .multiply_trunc_expected(8, crate::PrecisionMode::Exact);
        assert!(run.cycles.get() > 5 * mul.cycles.get());
    }
}
