//! Analytic cost model: closed-form cycle and energy formulas.
//!
//! Every formula mirrors the corresponding crossbar routine **operation for
//! operation** — same NOR counts, same initialization writes, same
//! interconnect crossings — so the property tests in this crate can require
//! exact agreement between `model` and the gate-level simulation. The
//! architecture layer (`apim-arch`) then uses these formulas to cost
//! GB-scale workloads without simulating cells.

use apim_device::{
    Cycles, DeviceParams, EnergyDelayProduct, EnergyModel, Joules, Seconds, TimingModel,
};

use crate::functional::{partial_product_shifts, tree_stages};
use crate::precision::PrecisionMode;

/// Cycle + energy cost of an operation.
///
/// ```
/// use apim_logic::{CostModel, OpCost};
/// use apim_device::DeviceParams;
///
/// let model = CostModel::new(&DeviceParams::default());
/// let add = model.serial_add(32);
/// assert_eq!(add.cycles.get(), 12 * 32 + 1); // the paper's 12N + 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCost {
    /// MAGIC cycles.
    pub cycles: Cycles,
    /// Energy dissipated.
    pub energy: Joules,
}

impl OpCost {
    /// The zero cost.
    pub const ZERO: OpCost = OpCost {
        cycles: Cycles::ZERO,
        energy: Joules::ZERO,
    };

    /// Component-wise sum.
    pub fn plus(self, other: OpCost) -> OpCost {
        OpCost {
            cycles: self.cycles + other.cycles,
            energy: self.energy + other.energy,
        }
    }

    /// Scales the cost by an operation count (for workload-level totals).
    pub fn scale(self, count: u64) -> OpCost {
        OpCost {
            cycles: self.cycles * count,
            energy: self.energy * count as f64,
        }
    }
}

impl std::ops::Add for OpCost {
    type Output = OpCost;
    fn add(self, rhs: OpCost) -> OpCost {
        self.plus(rhs)
    }
}

impl std::ops::AddAssign for OpCost {
    fn add_assign(&mut self, rhs: OpCost) {
        *self = self.plus(rhs);
    }
}

/// The APIM analytic cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    em: EnergyModel,
    tm: TimingModel,
}

impl CostModel {
    /// Builds the model from device parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid.
    pub fn new(params: &DeviceParams) -> Self {
        CostModel {
            em: EnergyModel::new(params),
            tm: TimingModel::new(params),
        }
    }

    /// The timing model in force.
    pub fn timing(&self) -> &TimingModel {
        &self.tm
    }

    /// The energy model in force.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.em
    }

    /// Wall-clock latency of a cost.
    pub fn latency(&self, cost: OpCost) -> Seconds {
        self.tm.cycles_to_time(cost.cycles)
    }

    /// Energy-delay product of a cost.
    pub fn edp(&self, cost: OpCost) -> EnergyDelayProduct {
        cost.energy * self.latency(cost)
    }

    // -----------------------------------------------------------------
    // Adders
    // -----------------------------------------------------------------

    /// Serial in-memory addition of two `n`-bit numbers: `12N + 1` cycles
    /// (\[24\]'s count, reproduced by our 12-NOR-per-bit netlist plus one
    /// carry-complement initialization).
    pub fn serial_add(&self, n: u32) -> OpCost {
        let ops = u64::from(12 * n + 1);
        OpCost {
            cycles: Cycles::new(ops),
            // One zeroing write for the carry seed cell, then init + NOR
            // per netlist operation.
            energy: self.em.write_op(1) + (self.em.nor_op(1) + self.em.write_op(1)) * ops as f64,
        }
    }

    /// One carry-save group (3 operands → sum + carry) at `width` bits:
    /// 11 in-block netlist NORs plus the two cross-block output NORs.
    /// Cycles are charged per *stage*, not per group — see
    /// [`CostModel::tree_reduce`].
    fn csa_group_energy(&self, width: u32, zero_width: u32) -> Joules {
        let w = width as usize;
        let wz = zero_width as usize;
        (self.em.write_op(w) + self.em.nor_op(w)) * 11.0
            + (self.em.write_op(wz)
                + self.em.write_op(w)
                + self.em.nor_op(w)
                + self.em.interconnect_op(w))
                * 2.0
    }

    /// Moving one leftover operand row to the other block (a 2-NOT copy
    /// overlapped with the 13-cycle stage, so it charges no cycles).
    fn leftover_move_energy(&self, width: u32, zero_width: u32) -> Joules {
        let w = width as usize;
        let wz = zero_width as usize;
        self.em.write_op(wz)
            + (self.em.write_op(w) + self.em.nor_op(w))
            + (self.em.write_op(w) + self.em.nor_op(w) + self.em.interconnect_op(w))
    }

    /// Wallace-tree reduction of `k` operands to two at `width` bits:
    /// 13 cycles per stage (§3.2), block-toggling included.
    ///
    /// `zero_width` is the full row window that gets cleared when a fresh
    /// operand row is claimed (`width + 2` in the multiplier layout).
    pub fn tree_reduce(&self, k: u32, width: u32, zero_width: u32) -> OpCost {
        let mut remaining = k;
        let mut cost = OpCost::ZERO;
        while remaining > 2 {
            let groups = remaining / 3;
            let leftovers = remaining % 3;
            cost.cycles += Cycles::new(13);
            cost.energy += self.csa_group_energy(width, zero_width) * f64::from(groups);
            cost.energy += self.leftover_move_energy(width, zero_width) * f64::from(leftovers);
            remaining = 2 * groups + leftovers;
        }
        cost
    }

    // -----------------------------------------------------------------
    // Multiplier stages (§3.3–3.4)
    // -----------------------------------------------------------------

    /// Partial-product generation for an `n × n` multiplication whose
    /// multiplier has `ones` set bits after masking: bitwise sense-amp read
    /// of the multiplier, one shared NOT of the multiplicand, then one
    /// shift-copy NOR per set bit — `ones + 1` cycles, worst case `N + 1`.
    pub fn partial_products(&self, n: u32, ones: u32) -> OpCost {
        let nn = n as usize;
        let read_energy = self.em.read_op(1) * f64::from(n);
        if ones == 0 {
            return OpCost {
                cycles: Cycles::ZERO,
                energy: read_energy,
            };
        }
        let zero_width = (2 * n + 2) as usize;
        // The shared NOT crosses from the data block into the processing
        // block, so it pays the interconnect like every copy does.
        let first_not = self.em.write_op(nn) + self.em.nor_op(nn) + self.em.interconnect_op(nn);
        let per_pp = self.em.write_op(zero_width)
            + self.em.write_op(nn)
            + self.em.nor_op(nn)
            + self.em.interconnect_op(nn);
        OpCost {
            cycles: Cycles::new(u64::from(ones) + 1),
            energy: read_energy + first_not + per_pp * f64::from(ones),
        }
    }

    /// Final product generation over `w = 2n` bits with `m` relaxed LSBs
    /// (§3.4):
    ///
    /// * `m = 0` — fully serial: `12w + 1` cycles;
    /// * `m = w` — fully approximate: `2m + 1` cycles (MAJ + write-back per
    ///   bit, then one parallel inversion);
    /// * otherwise — `12k + 2m + 2` cycles with `k = w − m` (the extra
    ///   cycle re-complements the boundary carry for the serial netlist).
    pub fn final_stage(&self, n: u32, m: u32) -> OpCost {
        let w = 2 * n;
        debug_assert!(m <= w);
        let per_serial_bit = self.em.nor_op(1) + self.em.write_op(1);
        if m == 0 {
            let ops = u64::from(12 * w + 1);
            return OpCost {
                cycles: Cycles::new(ops),
                energy: self.em.write_op(1) + per_serial_bit * ops as f64,
            };
        }
        let mm = m as usize;
        // Approximate region: carry seed write, m MAJ + write-back pairs,
        // one parallel inversion into the other block.
        let approx_energy = self.em.write_op(1)
            + (self.em.maj_op(1) + self.em.write_op(1)) * f64::from(m)
            + (self.em.write_op(mm) + self.em.nor_op(mm) + self.em.interconnect_op(mm));
        if m == w {
            return OpCost {
                cycles: Cycles::new(u64::from(2 * m + 1)),
                energy: approx_energy,
            };
        }
        let k = w - m;
        let serial_ops = u64::from(12 * k);
        OpCost {
            cycles: Cycles::new(u64::from(2 * m) + 1 + 1 + serial_ops),
            energy: approx_energy
                + (self.em.write_op(1) + self.em.nor_op(1)) // boundary carry complement
                + per_serial_bit * serial_ops as f64,
        }
    }

    /// Cost of one `n × n` multiplication with the given multiplier value
    /// (the partial-product count depends on its set bits, §3.3).
    pub fn multiply(&self, n: u32, multiplier: u64, mode: PrecisionMode) -> OpCost {
        let shifts = partial_product_shifts(multiplier, mode.masked_multiplier_bits());
        self.multiply_with_ones(n, shifts.len() as u32, mode)
    }

    /// Cost of one `n × n` multiplication whose multiplier has `ones` set
    /// bits after masking.
    pub fn multiply_with_ones(&self, n: u32, ones: u32, mode: PrecisionMode) -> OpCost {
        let mut cost = self.partial_products(n, ones);
        if ones >= 2 {
            cost += self.tree_reduce(ones, 2 * n, 2 * n + 2);
            cost += self.final_stage(n, mode.relaxed_product_bits());
        }
        cost
    }

    /// Expected cost of an `n × n` multiplication on random data: on
    /// average half the unmasked multiplier bits are ones ("there would be
    /// only 16 additions on average for 32 × 32", §3.3).
    pub fn multiply_expected(&self, n: u32, mode: PrecisionMode) -> OpCost {
        let unmasked = n - mode.masked_multiplier_bits().min(n);
        self.multiply_with_ones(n, (unmasked / 2).max(1), mode)
    }

    /// Cost of summing `k` operands of `operand_bits` bits each — Wallace
    /// reduction followed by a final addition wide enough for the result
    /// (`operand_bits + ceil(log2 k)`), optionally relaxing `relax_bits`
    /// LSBs in that final addition (the "99.9 % accuracy" series of
    /// Figure 6).
    pub fn sum_reduce(&self, k: u32, operand_bits: u32, relax_bits: u32) -> OpCost {
        if k == 0 {
            return OpCost::ZERO;
        }
        let result_bits = operand_bits + ceil_log2(k);
        if k == 1 {
            return OpCost::ZERO;
        }
        let mut cost = self.tree_reduce(k, result_bits, result_bits + 2);
        cost += self.final_add_width(result_bits, relax_bits.min(result_bits));
        cost
    }

    /// Cost of one *truncated* `n × n → n` multiplication (C `int`
    /// semantics, which is what the evaluation's OpenCL kernels execute):
    /// identical partial-product and reduction stages, but the final
    /// product generation only produces the low `n` bits, so the paper's
    /// maximum approximation — 32 relax bits — relaxes the *entire* final
    /// stage.
    pub fn multiply_trunc_with_ones(&self, n: u32, ones: u32, mode: PrecisionMode) -> OpCost {
        let mut cost = self.partial_products(n, ones);
        if ones >= 2 {
            cost += self.tree_reduce(ones, n, n + 2);
            cost += self.final_add_width(n, mode.relaxed_product_bits().min(n));
        }
        cost
    }

    /// Expected truncated-multiplication cost on random data (half the
    /// unmasked multiplier bits set).
    pub fn multiply_trunc_expected(&self, n: u32, mode: PrecisionMode) -> OpCost {
        let unmasked = n - mode.masked_multiplier_bits().min(n);
        self.multiply_trunc_with_ones(n, (unmasked / 2).max(1), mode)
    }

    /// Exact cost of one truncated multiplication for a *known* multiplier
    /// value: partial products whose windows are clipped at bit `n` cost
    /// proportionally less, so this is cheaper (and more precise) than the
    /// conservative [`CostModel::multiply_trunc_with_ones`] estimate. This
    /// is the formula the gate-level simulator is validated against.
    pub fn multiply_trunc_value(&self, n: u32, multiplier: u64, mode: PrecisionMode) -> OpCost {
        let shifts = partial_product_shifts(multiplier, mode.masked_multiplier_bits());
        let ones = shifts.len() as u32;
        let mut cost = self.partial_products_trunc(n, &shifts);
        if ones >= 2 {
            cost += self.tree_reduce(ones, n, n + 2);
            cost += self.final_add_width(n, mode.relaxed_product_bits().min(n));
        }
        cost
    }

    /// Exact cost of a fused MAC over *known* multiplier values (the
    /// gate-level [`crate::mac::CrossbarMac`] is validated against this):
    /// per-term truncated partial products, one tree over the whole pile,
    /// one relaxed final addition.
    pub fn mac_group_value(&self, n: u32, multipliers: &[u64], mode: PrecisionMode) -> OpCost {
        let mut cost = OpCost::ZERO;
        let mut total_pps = 0u32;
        for &b in multipliers {
            let shifts = partial_product_shifts(b, mode.masked_multiplier_bits());
            total_pps += shifts.len() as u32;
            cost += self.partial_products_trunc(n, &shifts);
        }
        if total_pps >= 2 {
            cost += self.tree_reduce(total_pps, n, n + 2);
            cost += self.final_add_width(n, mode.relaxed_product_bits().min(n));
        }
        cost
    }

    /// Partial-product generation with the window clipped at bit `n`
    /// (truncated products): the copy of the pp shifted by `s` only spans
    /// `n − s` bitlines.
    pub fn partial_products_trunc(&self, n: u32, shifts: &[u32]) -> OpCost {
        let nn = n as usize;
        let read_energy = self.em.read_op(1) * f64::from(n);
        if shifts.is_empty() {
            return OpCost {
                cycles: Cycles::ZERO,
                energy: read_energy,
            };
        }
        let zero_width = (n + 2) as usize;
        let first_not = self.em.write_op(nn) + self.em.nor_op(nn) + self.em.interconnect_op(nn);
        let mut energy = read_energy + first_not;
        for &s in shifts {
            let width = (n - s.min(n)) as usize;
            energy += self.em.write_op(zero_width)
                + self.em.write_op(width)
                + self.em.nor_op(width)
                + self.em.interconnect_op(width);
        }
        OpCost {
            cycles: Cycles::new(shifts.len() as u64 + 1),
            energy,
        }
    }

    /// Cost of a fused multiply-accumulate group (§3.2-style): `group`
    /// truncated `n`-bit products whose sum/carry pairs all feed **one**
    /// Wallace tree and **one** final addition — the natural APIM mapping
    /// of convolution taps or butterfly terms. `ones` is the per-multiplier
    /// set-bit count.
    pub fn mac_group(&self, group: u32, n: u32, ones: u32, mode: PrecisionMode) -> OpCost {
        if group == 0 {
            return OpCost::ZERO;
        }
        let mut cost = self.partial_products(n, ones).scale(u64::from(group));
        let operands = group * ones.max(1);
        if operands >= 2 {
            cost += self.tree_reduce(operands, n, n + 2);
            cost += self.final_add_width(n, mode.relaxed_product_bits().min(n));
        }
        cost
    }

    /// Final two-operand addition at an explicit width with `m` relaxed
    /// LSBs (shared by [`CostModel::sum_reduce`] and the truncated
    /// multiplication path).
    pub fn final_add_width(&self, w: u32, m: u32) -> OpCost {
        // Same structure as `final_stage` but parameterized directly on w.
        let per_serial_bit = self.em.nor_op(1) + self.em.write_op(1);
        if m == 0 {
            let ops = u64::from(12 * w + 1);
            return OpCost {
                cycles: Cycles::new(ops),
                energy: self.em.write_op(1) + per_serial_bit * ops as f64,
            };
        }
        let mm = m as usize;
        let approx_energy = self.em.write_op(1)
            + (self.em.maj_op(1) + self.em.write_op(1)) * f64::from(m)
            + (self.em.write_op(mm) + self.em.nor_op(mm) + self.em.interconnect_op(mm));
        if m == w {
            return OpCost {
                cycles: Cycles::new(u64::from(2 * m + 1)),
                energy: approx_energy,
            };
        }
        let k = w - m;
        let serial_ops = u64::from(12 * k);
        OpCost {
            cycles: Cycles::new(u64::from(2 * m) + 2 + serial_ops),
            energy: approx_energy
                + (self.em.write_op(1) + self.em.nor_op(1))
                + per_serial_bit * serial_ops as f64,
        }
    }

    /// Serial in-memory subtraction of two `n`-bit numbers: the ripple
    /// netlist of [`CostModel::serial_add`] plus one row-wide NOT of the
    /// subtrahend and a seeded (rather than zero) carry complement —
    /// `12N + 2` cycles, mirroring [`crate::subtractor::sub_words`].
    pub fn serial_sub(&self, n: u32) -> OpCost {
        let nn = n as usize;
        let netlist_ops = u64::from(12 * n);
        let per_serial_bit = self.em.nor_op(1) + self.em.write_op(1);
        OpCost {
            cycles: Cycles::new(netlist_ops + 2),
            // NOT of the subtrahend row, the carry-seed preload, the seed
            // complement NOR, then init + NOR per netlist operation.
            energy: (self.em.write_op(nn) + self.em.nor_op(nn))
                + self.em.write_op(1)
                + per_serial_bit
                + per_serial_bit * netlist_ops as f64,
        }
    }

    /// Constant shift of an `n`-bit word through the interconnect: two
    /// NOT copies (the shift rides the cross-block NOR for free, §2), plus
    /// — for arithmetic right shifts (`amount < 0`) — one sense-amp read
    /// and `|amount|` serial write-backs that re-drive the sign bits.
    pub fn shift_copy(&self, n: u32, amount: i32) -> OpCost {
        let k = amount.unsigned_abs().min(n);
        let width = (n - k) as usize;
        let copy_energy = self.em.write_op(n as usize)
            + (self.em.write_op(width) + self.em.nor_op(width) + self.em.interconnect_op(width))
            + (self.em.write_op(width) + self.em.nor_op(width));
        if amount >= 0 {
            OpCost {
                cycles: Cycles::new(2),
                energy: copy_energy,
            }
        } else {
            OpCost {
                cycles: Cycles::new(2 + u64::from(k)),
                energy: copy_energy + self.em.read_op(1) + self.em.write_op(1) * f64::from(k),
            }
        }
    }

    /// Cycles of a gate-level restoring division of `n`-bit operands
    /// (extension; see [`crate::divider`]): `n` trial subtractions over a
    /// `2n`-bit window plus two commit NOTs per set quotient bit
    /// (`q_ones`, worst case `n`).
    pub fn divide_cycles(n: u32, q_ones: u32) -> Cycles {
        Cycles::new(u64::from(n) * u64::from(12 * 2 * n + 2) + 2 * u64::from(q_ones.min(n)))
    }

    /// The number of tree stages for `k` operands (re-exported convenience).
    pub fn stages(k: u32) -> u32 {
        tree_stages(k as usize) as u32
    }
}

/// Ceiling of log2 (0 and 1 map to 0).
pub fn ceil_log2(k: u32) -> u32 {
    if k <= 1 {
        0
    } else {
        32 - (k - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(&DeviceParams::default())
    }

    #[test]
    fn serial_add_matches_paper_formula() {
        let m = model();
        for n in [1u32, 8, 16, 32, 64] {
            assert_eq!(m.serial_add(n).cycles.get(), u64::from(12 * n + 1));
        }
    }

    #[test]
    fn csa_tree_uses_13_cycles_per_stage() {
        let m = model();
        // 9 operands: 4 stages (§3.2) -> 52 cycles.
        assert_eq!(m.tree_reduce(9, 32, 34).cycles.get(), 4 * 13);
        // <= 2 operands: no reduction needed.
        assert_eq!(m.tree_reduce(2, 32, 34).cycles, Cycles::ZERO);
        assert_eq!(m.tree_reduce(0, 32, 34), OpCost::ZERO);
    }

    #[test]
    fn fast_adder_beats_serial_by_paper_margin() {
        // §3.2: adding 3 N-bit numbers: 12N + 14 (tree) vs 24N - 22
        // (two serial passes). Our counts: 13 + 12(N+2) + 1 vs 2 serial
        // adds — check the crossover behaviour holds.
        let m = model();
        for n in [16u32, 32, 64] {
            let fast = m.sum_reduce(3, n, 0).cycles.get();
            let serial_twice = 2 * m.serial_add(n).cycles.get();
            assert!(
                fast < serial_twice,
                "n={n}: tree {fast} !< 2x serial {serial_twice}"
            );
        }
    }

    #[test]
    fn partial_products_cost_ones_plus_one() {
        let m = model();
        assert_eq!(m.partial_products(32, 16).cycles.get(), 17);
        assert_eq!(m.partial_products(32, 32).cycles.get(), 33); // worst: N+1
        assert_eq!(m.partial_products(32, 0).cycles, Cycles::ZERO);
        assert!(
            m.partial_products(32, 0).energy.as_joules() > 0.0,
            "reads still cost"
        );
    }

    #[test]
    fn final_stage_piecewise_formula() {
        let m = model();
        let n = 32;
        let w = 64;
        assert_eq!(m.final_stage(n, 0).cycles.get(), u64::from(12 * w + 1));
        assert_eq!(m.final_stage(n, w).cycles.get(), u64::from(2 * w + 1));
        let mm = 16;
        assert_eq!(
            m.final_stage(n, mm).cycles.get(),
            u64::from(12 * (w - mm) + 2 * mm + 2)
        );
    }

    #[test]
    fn approximation_strictly_reduces_final_cost() {
        let m = model();
        let mut last = u64::MAX;
        for relax in [0u32, 4, 8, 16, 24, 32, 48, 64] {
            let c = m.final_stage(32, relax).cycles.get();
            assert!(c < last, "relax={relax}: {c} !< {last}");
            last = c;
        }
    }

    #[test]
    fn multiply_costs_decrease_with_masking() {
        let m = model();
        let exact = m.multiply(32, u64::from(u32::MAX), PrecisionMode::Exact);
        let masked = m.multiply(
            32,
            u64::from(u32::MAX),
            PrecisionMode::FirstStage { masked_bits: 8 },
        );
        assert!(masked.cycles < exact.cycles);
        assert!(masked.energy.as_joules() < exact.energy.as_joules());
    }

    #[test]
    fn multiply_sparse_multiplier_is_cheap() {
        let m = model();
        let sparse = m.multiply(32, 0b1000, PrecisionMode::Exact);
        let dense = m.multiply(32, u64::from(u32::MAX), PrecisionMode::Exact);
        // One partial product: no tree, no final stage.
        assert_eq!(sparse.cycles.get(), 2);
        assert!(sparse.cycles.get() * 100 < dense.cycles.get());
    }

    #[test]
    fn multiply_zero_multiplier_costs_reads_only() {
        let m = model();
        let c = m.multiply(32, 0, PrecisionMode::Exact);
        assert_eq!(c.cycles, Cycles::ZERO);
    }

    #[test]
    fn expected_multiply_uses_half_density() {
        let m = model();
        let expected = m.multiply_expected(32, PrecisionMode::Exact);
        let with_16 = m.multiply_with_ones(32, 16, PrecisionMode::Exact);
        assert_eq!(expected, with_16);
    }

    #[test]
    fn reduction_time_independent_of_operand_size() {
        // §3.3: "N x 32 multiplication takes the same time in this stage
        // for any value of N" — tree cycles depend only on operand count.
        let m = model();
        let narrow = m.tree_reduce(16, 16, 18).cycles;
        let wide = m.tree_reduce(16, 128, 130).cycles;
        assert_eq!(narrow, wide);
    }

    #[test]
    fn edp_and_latency_are_consistent() {
        let m = model();
        let cost = m.multiply_expected(32, PrecisionMode::Exact);
        let latency = m.latency(cost);
        assert!((latency.as_nanos() - cost.cycles.get() as f64 * 1.1).abs() < 1e-6);
        let edp = m.edp(cost);
        assert!(
            (edp.as_joule_seconds() - cost.energy.as_joules() * latency.as_secs()).abs() < 1e-30
        );
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(32), 5);
        assert_eq!(ceil_log2(33), 6);
    }

    #[test]
    fn opcost_arithmetic() {
        let a = OpCost {
            cycles: Cycles::new(5),
            energy: Joules::from_picojoules(1.0),
        };
        let b = a.scale(3);
        assert_eq!(b.cycles.get(), 15);
        assert!((b.energy.as_picojoules() - 3.0).abs() < 1e-12);
        let mut c = a;
        c += a;
        assert_eq!(c.cycles.get(), 10);
        assert_eq!((a + a).cycles.get(), 10);
    }

    #[test]
    fn trunc_multiply_final_stage_shrinks_to_nothing() {
        let m = model();
        let exact = m.multiply_trunc_expected(32, PrecisionMode::Exact);
        let relaxed = m.multiply_trunc_expected(32, PrecisionMode::LastStage { relax_bits: 32 });
        // pp(16) + tree + 12*32+1 vs pp + tree + 2*32+1.
        assert_eq!(exact.cycles.get(), 17 + 13 * 6 + 385);
        assert_eq!(relaxed.cycles.get(), 17 + 13 * 6 + 65);
        let ratio = exact.cycles.get() as f64 / relaxed.cycles.get() as f64;
        assert!(ratio > 2.5, "max relaxation should cut ~3x: {ratio}");
    }

    #[test]
    fn trunc_costs_less_than_full_width() {
        let m = model();
        let full = m.multiply_expected(32, PrecisionMode::Exact);
        let trunc = m.multiply_trunc_expected(32, PrecisionMode::Exact);
        assert!(trunc.cycles < full.cycles);
        assert!(trunc.energy.as_joules() < full.energy.as_joules());
    }

    #[test]
    fn mac_group_shares_one_final_stage() {
        let m = model();
        let mode = PrecisionMode::Exact;
        let fused = m.mac_group(12, 32, 16, mode);
        let separate = m.multiply_trunc_with_ones(32, 16, mode).scale(12);
        // Fusing 12 products saves 11 final stages (minus the bigger tree).
        assert!(fused.cycles < separate.cycles);
        assert_eq!(m.mac_group(0, 32, 16, mode), OpCost::ZERO);
        // A single product degenerates to a plain truncated multiply.
        assert_eq!(
            m.mac_group(1, 32, 16, mode).cycles,
            m.multiply_trunc_with_ones(32, 16, mode).cycles
        );
    }

    #[test]
    fn mac_group_relaxation_has_leverage() {
        let m = model();
        let exact = m.mac_group(12, 32, 16, PrecisionMode::Exact);
        let relaxed = m.mac_group(12, 32, 16, PrecisionMode::LastStage { relax_bits: 32 });
        let ratio = exact.cycles.get() as f64 / relaxed.cycles.get() as f64;
        assert!(ratio > 1.5, "fused relaxation ratio {ratio}");
    }

    #[test]
    fn divide_formula_matches_gate_level() {
        use crate::divider::divide;
        use apim_crossbar::{BlockedCrossbar, CrossbarConfig};
        let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let blk = xbar.block(1).unwrap();
        for (x, y) in [(200u64, 7u64), (255, 1), (1, 255), (84, 84)] {
            let run = divide(&mut xbar, blk, x, y, 8).unwrap();
            let q_ones = (x / y).count_ones();
            assert_eq!(run.cycles, CostModel::divide_cycles(8, q_ones), "{x}/{y}");
        }
    }

    #[test]
    fn sum_reduce_matches_fig6_structure() {
        let m = model();
        // Adding N operands of N bits: 13*stages(N) + serial over
        // N + ceil_log2(N) bits.
        let n = 32;
        let expect = 13 * u64::from(CostModel::stages(n)) + u64::from(12 * (n + ceil_log2(n)) + 1);
        assert_eq!(m.sum_reduce(n, n, 0).cycles.get(), expect);
        // Relaxed final stage is cheaper.
        assert!(m.sum_reduce(n, n, 16).cycles < m.sum_reduce(n, n, 0).cycles);
        assert_eq!(m.sum_reduce(1, 32, 0), OpCost::ZERO);
        assert_eq!(m.sum_reduce(0, 32, 0), OpCost::ZERO);
    }
}
