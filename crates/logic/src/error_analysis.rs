//! Error estimation for approximate multiplication (Figure 4).
//!
//! Uses the bit-exact [`crate::functional`] semantics under a deterministic
//! internal PRNG (SplitMix64), so results are reproducible without external
//! dependencies.

use crate::functional::multiply;
use crate::precision::PrecisionMode;

/// Aggregate error statistics of an approximate-multiplication experiment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Mean of `|approx − exact| / exact` over samples with nonzero exact
    /// product.
    pub mean_relative: f64,
    /// Maximum relative error observed.
    pub max_relative: f64,
    /// Mean absolute error.
    pub mean_absolute: f64,
    /// Fraction of samples whose product was wrong at all.
    pub error_rate: f64,
}

/// Deterministic SplitMix64 PRNG (kept internal: `apim-logic` has no
/// runtime dependency on `rand`).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next value uniform in `[0, 2^bits)`.
    pub fn next_bits(&mut self, bits: u32) -> u64 {
        if bits >= 64 {
            self.next_u64()
        } else {
            self.next_u64() & ((1u64 << bits) - 1)
        }
    }
}

/// Monte-Carlo error statistics of `n × n` multiplication under `mode`,
/// over `samples` uniformly random operand pairs.
///
/// ```
/// use apim_logic::{error_analysis::multiplier_error, PrecisionMode};
/// let stats = multiplier_error(32, PrecisionMode::LastStage { relax_bits: 8 }, 200, 7);
/// assert!(stats.mean_relative < 1e-6); // 8 relaxed bits out of 64
/// ```
pub fn multiplier_error(n: u32, mode: PrecisionMode, samples: u32, seed: u64) -> ErrorStats {
    let mut rng = SplitMix64::new(seed);
    let mut sum_rel = 0.0f64;
    let mut max_rel = 0.0f64;
    let mut sum_abs = 0.0f64;
    let mut wrong = 0u32;
    let mut counted = 0u32;
    for _ in 0..samples {
        let a = rng.next_bits(n);
        let b = rng.next_bits(n);
        let exact = a as u128 * b as u128;
        let approx = multiply(a, b, n, mode);
        let abs = approx.abs_diff(exact) as f64;
        sum_abs += abs;
        if approx != exact {
            wrong += 1;
        }
        if exact != 0 {
            let rel = abs / exact as f64;
            sum_rel += rel;
            max_rel = max_rel.max(rel);
            counted += 1;
        }
    }
    ErrorStats {
        mean_relative: if counted > 0 {
            sum_rel / f64::from(counted)
        } else {
            0.0
        },
        max_relative: max_rel,
        mean_absolute: sum_abs / f64::from(samples.max(1)),
        error_rate: f64::from(wrong) / f64::from(samples.max(1)),
    }
}

/// Per-bit error probability of the §3.4 sum approximation on uniform
/// inputs: the approximated `S = NOT(Cout)` is wrong for exactly 2 of the 8
/// input combinations.
pub fn per_bit_error_probability() -> f64 {
    2.0 / 8.0
}

/// Analytic upper bound on the absolute error of a last-stage
/// approximation with `m` relaxed bits: only the low `m` product bits can
/// be wrong.
pub fn last_stage_error_bound(m: u32) -> f64 {
    (2f64).powi(m as i32)
}

/// Analytic RMS error of the §3.4 approximate addition over `m` relaxed
/// bits, for uniform independent operand bits.
///
/// Bit `i` errs by `+2^i` on `(0,0,0)` and `−2^i` on `(1,1,1)`; with the
/// carry approximately Bernoulli(½), each sign occurs with probability
/// 1/8, so per-bit `E[err²] = 2^{2i}/4` and
///
/// ```text
/// RMS(m) = sqrt( (4^m − 1)/3 · 1/4 )
/// ```
///
/// Cross-validated against Monte-Carlo in the tests (errors across bits
/// are weakly correlated through the carry, so agreement is within tens of
/// percent, not exact).
pub fn expected_rms_error_last_stage(m: u32) -> f64 {
    if m == 0 {
        return 0.0;
    }
    (((4f64).powi(m as i32) - 1.0) / 3.0 / 4.0).sqrt()
}

/// Monte-Carlo RMS absolute error of [`crate::functional::approx_add_last_stage`]
/// on uniform `width`-bit operands.
pub fn measured_rms_error_last_stage(width: u32, m: u32, samples: u32, seed: u64) -> f64 {
    use crate::functional::approx_add_last_stage;
    let mut rng = SplitMix64::new(seed);
    let mut sum_sq = 0.0f64;
    for _ in 0..samples {
        let x = u128::from(rng.next_bits(width.min(63)));
        let y = u128::from(rng.next_bits(width.min(63)));
        let approx = approx_add_last_stage(x, y, width + 1, m);
        let exact = x + y;
        let err = approx.abs_diff(exact) as f64;
        sum_sq += err * err;
    }
    (sum_sq / f64::from(samples.max(1))).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_bits_bounded() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            assert!(rng.next_bits(8) < 256);
            assert!(rng.next_bits(1) < 2);
        }
    }

    #[test]
    fn exact_mode_has_zero_error() {
        let stats = multiplier_error(16, PrecisionMode::Exact, 100, 3);
        assert_eq!(stats.mean_relative, 0.0);
        assert_eq!(stats.error_rate, 0.0);
        assert_eq!(stats.mean_absolute, 0.0);
    }

    #[test]
    fn error_grows_with_relax_bits() {
        let mut last = -1.0f64;
        for m in [4u8, 16, 32, 48] {
            let stats = multiplier_error(32, PrecisionMode::LastStage { relax_bits: m }, 300, 11);
            assert!(
                stats.mean_relative > last,
                "m={m}: {} !> {last}",
                stats.mean_relative
            );
            last = stats.mean_relative;
        }
    }

    #[test]
    fn last_stage_beats_first_stage_at_same_level() {
        // The paper's core claim (Figure 4): for comparable settings the
        // last-stage approach is orders of magnitude more accurate.
        let first = multiplier_error(32, PrecisionMode::FirstStage { masked_bits: 16 }, 300, 5);
        let last = multiplier_error(32, PrecisionMode::LastStage { relax_bits: 16 }, 300, 5);
        assert!(last.mean_relative < first.mean_relative / 100.0);
    }

    #[test]
    fn absolute_error_respects_bound() {
        let m = 12u8;
        let stats = multiplier_error(32, PrecisionMode::LastStage { relax_bits: m }, 500, 9);
        assert!(stats.mean_absolute < last_stage_error_bound(u32::from(m)));
    }

    #[test]
    fn per_bit_probability_is_25_percent() {
        assert!((per_bit_error_probability() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn analytic_rms_matches_monte_carlo() {
        for m in [4u32, 8, 12, 16] {
            let analytic = expected_rms_error_last_stage(m);
            let measured = measured_rms_error_last_stage(32, m, 4000, 0xD1CE);
            let ratio = measured / analytic;
            assert!(
                (0.6..1.6).contains(&ratio),
                "m={m}: measured {measured:.1} vs analytic {analytic:.1} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn analytic_rms_grows_fourfold_per_two_bits() {
        let r8 = expected_rms_error_last_stage(8);
        let r10 = expected_rms_error_last_stage(10);
        assert!((r10 / r8 - 4.0).abs() < 0.1);
        assert_eq!(expected_rms_error_last_stage(0), 0.0);
    }

    #[test]
    fn zero_samples_do_not_divide_by_zero() {
        let stats = multiplier_error(8, PrecisionMode::Exact, 0, 1);
        assert_eq!(stats.mean_relative, 0.0);
    }
}
