//! The width-independent 13-cycle carry-save (3:2) reduction of §3.2.
//!
//! All NOR evaluations run column-parallel over the whole operand window,
//! so the latency matches a 1-bit addition (13 cycles) for any width. The
//! two outputs are steered through the configurable interconnect into the
//! *other* processing block: the sum word unshifted, the carry word shifted
//! left by one bitline — which is exactly why the blocked memory of §3.1
//! makes the Wallace tree free of shifting overhead.
//!
//! Netlist (one cycle per line; `[src]` = operands' block, `[dst]` = other):
//!
//! ```text
//!  1. n1 = NOR(A,B)            [src]
//!  2. b2 = NOR(B,C)            [src]
//!  3. b3 = NOR(A,C)            [src]
//!  4. cl = NOR(n1,b2,b3)       [src]   # Cout = MAJ(A,B,C), kept locally
//!  5. carry = NOR(n1,b2,b3)    [dst, shift +1]
//!  6. t1 = NOR(A,B,C)          [src]
//!  7. t2 = NOR(t1,cl)          [src]   # (A+B+C)·Cout'
//!  8. a' = NOR(A)              [src]
//!  9. b' = NOR(B)              [src]
//! 10. c' = NOR(C)              [src]
//! 11. t3 = NOR(a',b',c')       [src]   # A·B·C
//! 12. s' = NOR(t2,t3)          [src]   # S'
//! 13. sum = NOR(s')            [dst, shift 0]
//! ```

use apim_crossbar::{BlockedCrossbar, Result, RowRef};
use std::ops::Range;

/// Number of scratch rows a CSA group needs in the source block.
pub const CSA_SCRATCH_ROWS: usize = 11;

/// Executes one 3:2 carry-save group.
///
/// Operands live in rows `a`, `b`, `c` of `a.block` (all three must share
/// it); the sum lands in `sum_row` and the carry (pre-shifted by one
/// bitline) in `carry_row`, both in the destination block. The carry's
/// target columns are `cols.start + 1 .. cols.end + 1`; callers must have
/// zeroed `carry_row[cols.start]`.
///
/// Charges exactly 13 cycles.
///
/// # Errors
///
/// Propagates crossbar errors; in particular the destination block must
/// differ from the source block (the shift crosses the interconnect).
#[allow(clippy::too_many_arguments)] // one parameter per netlist port
pub fn csa_group(
    xbar: &mut BlockedCrossbar,
    a: RowRef,
    b: RowRef,
    c: RowRef,
    sum: RowRef,
    carry: RowRef,
    cols: Range<usize>,
    scratch: &[usize; CSA_SCRATCH_ROWS],
) -> Result<()> {
    csa_group_lanes(xbar, a, b, c, sum, carry, cols, 1, scratch)
}

/// Lane-batched [`csa_group`]: `lanes` independent 3:2 reductions in the
/// same 13 cycles.
///
/// Operands use the interleaved layout of [`crate::lanes`]: logical column
/// `c` of lane `j` lives at bitline `c * lanes + j`. Because that maps the
/// contiguous logical window `cols` onto the contiguous physical window
/// `cols.start * lanes .. cols.end * lanes`, the whole netlist runs as the
/// same column-parallel NORs — only the carry steer changes, shifting by
/// `lanes` bitlines (one *logical* column) instead of one. Callers must
/// have zeroed the carry row's lane span at logical column `cols.start`.
///
/// `csa_group` is exactly the `lanes = 1` specialization.
///
/// # Errors
///
/// Propagates crossbar errors; the destination block must differ from the
/// source block (the carry shift crosses the interconnect).
#[allow(clippy::too_many_arguments)] // one parameter per netlist port
pub fn csa_group_lanes(
    xbar: &mut BlockedCrossbar,
    a: RowRef,
    b: RowRef,
    c: RowRef,
    sum: RowRef,
    carry: RowRef,
    cols: Range<usize>,
    lanes: usize,
    scratch: &[usize; CSA_SCRATCH_ROWS],
) -> Result<()> {
    let src = a.block;
    let [n1, b2, b3, cl, t1, t2, ap, bp, cp, t3, sp] = scratch.map(|r| RowRef::new(src, r));
    let span = cols.start * lanes..cols.end * lanes;

    let op =
        |xbar: &mut BlockedCrossbar, inputs: &[RowRef], out: RowRef, shift: isize| -> Result<()> {
            let target = crate::gates::shifted(&span, shift)?;
            xbar.init_rows(out.block, &[out.row], target)?;
            xbar.nor_rows_shifted(inputs, out, span.clone(), shift)
        };
    let carry_shift = lanes as isize;

    op(xbar, &[a, b], n1, 0)?;
    op(xbar, &[b, c], b2, 0)?;
    op(xbar, &[a, c], b3, 0)?;
    op(xbar, &[n1, b2, b3], cl, 0)?;
    op(xbar, &[n1, b2, b3], carry, carry_shift)?;
    op(xbar, &[a, b, c], t1, 0)?;
    op(xbar, &[t1, cl], t2, 0)?;
    op(xbar, &[a], ap, 0)?;
    op(xbar, &[b], bp, 0)?;
    op(xbar, &[c], cp, 0)?;
    op(xbar, &[ap, bp, cp], t3, 0)?;
    op(xbar, &[t2, t3], sp, 0)?;
    op(xbar, &[sp], sum, 0)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_crossbar::{BlockedCrossbar, CrossbarConfig};

    const W: usize = 16;

    fn to_bits(v: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn run_csa(a: u64, b: u64, c: u64) -> (u64, u64, u64) {
        let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let src = xbar.block(1).unwrap();
        let dst = xbar.block(2).unwrap();
        for (row, v) in [(0, a), (1, b), (2, c)] {
            xbar.preload_word(src, row, 0, &to_bits(v, W)).unwrap();
        }
        // Zero destination rows over the full window (incl. carry bit 0).
        xbar.preload_word(dst, 0, 0, &[false; W + 2]).unwrap();
        xbar.preload_word(dst, 1, 0, &[false; W + 2]).unwrap();
        let scratch: [usize; CSA_SCRATCH_ROWS] = core::array::from_fn(|i| 3 + i);
        let before = *xbar.stats();
        csa_group(
            &mut xbar,
            RowRef::new(src, 0),
            RowRef::new(src, 1),
            RowRef::new(src, 2),
            RowRef::new(dst, 0),
            RowRef::new(dst, 1),
            0..W,
            &scratch,
        )
        .unwrap();
        let cycles = (*xbar.stats() - before).cycles.get();
        let sum = from_bits(&xbar.peek_word(dst, 0, 0, W).unwrap());
        let carry = from_bits(&xbar.peek_word(dst, 1, 0, W + 1).unwrap());
        (sum, carry, cycles)
    }

    #[test]
    fn csa_preserves_sum() {
        for (a, b, c) in [
            (0, 0, 0),
            (1, 2, 3),
            (0xFFF, 0xABC, 0x123),
            (21845, 13107, 255),
        ] {
            let (s, cy, _) = run_csa(a, b, c);
            assert_eq!(s + cy, a + b + c, "csa({a},{b},{c})");
        }
    }

    #[test]
    fn csa_matches_functional_model() {
        for (a, b, c) in [(7u64, 11, 13), (0x5555, 0x3333, 0x0F0F)] {
            let (s, cy, _) = run_csa(a, b, c);
            let (fs, fc) = crate::functional::csa(a as u128, b as u128, c as u128);
            assert_eq!(s as u128, fs);
            assert_eq!(cy as u128, fc);
        }
    }

    #[test]
    fn csa_costs_exactly_13_cycles_any_width() {
        let (_, _, cycles) = run_csa(0x1234, 0x5678, 0x0FED);
        assert_eq!(cycles, 13);
    }

    #[test]
    fn csa_lanes_runs_64_reductions_in_13_cycles() {
        use crate::lanes::{preload_lanes, read_lanes};
        let lanes = 64;
        let n = 8;
        let mut xbar = BlockedCrossbar::new(CrossbarConfig {
            cols: 1024,
            ..CrossbarConfig::default()
        })
        .unwrap();
        let src = xbar.block(1).unwrap();
        let dst = xbar.block(2).unwrap();
        let a: Vec<u64> = (0..lanes as u64).map(|j| (j * 31 + 7) & 0xFF).collect();
        let b: Vec<u64> = (0..lanes as u64).map(|j| (j * 89 + 13) & 0xFF).collect();
        let c: Vec<u64> = (0..lanes as u64).map(|j| (j * 53 + 211) & 0xFF).collect();
        preload_lanes(&mut xbar, src, 0, 0, n, lanes, &a).unwrap();
        preload_lanes(&mut xbar, src, 1, 0, n, lanes, &b).unwrap();
        preload_lanes(&mut xbar, src, 2, 0, n, lanes, &c).unwrap();
        // Zero the destination rows over the full physical window,
        // including the carry's low lane span.
        xbar.preload_zeros(dst, 0, 0, (n + 2) * lanes).unwrap();
        xbar.preload_zeros(dst, 1, 0, (n + 2) * lanes).unwrap();
        let scratch: [usize; CSA_SCRATCH_ROWS] = core::array::from_fn(|i| 3 + i);
        let before = *xbar.stats();
        csa_group_lanes(
            &mut xbar,
            RowRef::new(src, 0),
            RowRef::new(src, 1),
            RowRef::new(src, 2),
            RowRef::new(dst, 0),
            RowRef::new(dst, 1),
            0..n,
            lanes,
            &scratch,
        )
        .unwrap();
        assert_eq!(
            (*xbar.stats() - before).cycles.get(),
            13,
            "13 cycles regardless of lane count"
        );
        let sums = read_lanes(&xbar, dst, 0, 0, n, lanes).unwrap();
        let carries = read_lanes(&xbar, dst, 1, 0, n + 1, lanes).unwrap();
        for j in 0..lanes {
            assert_eq!(
                sums[j] + carries[j],
                a[j] + b[j] + c[j],
                "lane {j}: csa({}, {}, {})",
                a[j],
                b[j],
                c[j]
            );
        }
    }

    #[test]
    fn csa_exhaustive_3_bit() {
        for a in 0u64..8 {
            for b in 0u64..8 {
                for c in 0u64..8 {
                    let (s, cy, _) = run_csa(a, b, c);
                    assert_eq!(s + cy, a + b + c, "csa({a},{b},{c})");
                }
            }
        }
    }
}
