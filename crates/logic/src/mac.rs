//! Gate-level fused multiply-accumulate (the §3.2 pattern, realized).
//!
//! A convolution tap sum `Σ aᵢ·bᵢ` does not need one final product
//! generation per multiplication: APIM generates *all* partial products of
//! *all* terms into the processing block, reduces the whole pile with one
//! Wallace tree, and pays one final addition for the entire output — the
//! very workload the paper's multi-operand fast adder exists for. This is
//! the mapping the cost executor charges for application kernels
//! ([`crate::CostModel::mac_group`]); this module realizes it on simulated
//! cells and the tests pin the two against each other.
//!
//! Products are truncated `n`-bit C `int` semantics; the accumulation wraps
//! modulo `2^n` exactly like the kernels it models.

use apim_crossbar::{
    Backend, BlockedCrossbar, CrossbarConfig, CrossbarError, Result, RowAllocator, Stats,
};
use apim_device::DeviceParams;

use crate::adder_csa::CSA_SCRATCH_ROWS;
use crate::adder_serial::{add_words, add_words_with_carry, SerialScratch};
use crate::functional::partial_product_shifts;
use crate::precision::PrecisionMode;
use crate::wallace::reduce_rows_to_two;

/// Outcome of one fused MAC evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacRun {
    /// `Σ aᵢ·bᵢ mod 2^n` under the configured precision.
    pub value: u64,
    /// Cost delta of this evaluation.
    pub stats: Stats,
}

/// A gate-level fused MAC unit for `n`-bit operands.
///
/// ```
/// use apim_logic::mac::CrossbarMac;
/// use apim_logic::PrecisionMode;
/// use apim_device::DeviceParams;
///
/// # fn main() -> Result<(), apim_crossbar::CrossbarError> {
/// let mut mac = CrossbarMac::new(8, 4, &DeviceParams::default())?;
/// let run = mac.mac(&[(3, 5), (7, 9), (2, 2)], PrecisionMode::Exact)?;
/// assert_eq!(run.value, (3 * 5 + 7 * 9 + 2 * 2) & 0xFF);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarMac {
    xbar: BlockedCrossbar,
    n: u32,
    max_terms: usize,
}

impl CrossbarMac {
    /// Builds a MAC unit accepting up to `max_terms` products of `n`-bit
    /// operands.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] for unsupported widths or a
    /// zero term budget.
    pub fn new(n: u32, max_terms: usize, params: &DeviceParams) -> Result<Self> {
        Self::with_backend(n, max_terms, params, Backend::default())
    }

    /// Like [`CrossbarMac::new`] on an explicit storage [`Backend`] — the
    /// differential suites run the same MAC on the packed path and the
    /// scalar oracle and compare bit-for-bit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CrossbarMac::new`].
    pub fn with_backend(
        n: u32,
        max_terms: usize,
        params: &DeviceParams,
        backend: Backend,
    ) -> Result<Self> {
        if !(4..=64).contains(&n) {
            return Err(CrossbarError::InvalidConfig(format!(
                "operand width {n} outside supported range 4..=64"
            )));
        }
        if max_terms == 0 {
            return Err(CrossbarError::InvalidConfig(
                "MAC needs at least one term".into(),
            ));
        }
        // Worst case: every multiplier bit set -> n partial products/term.
        let operand_rows = max_terms * n as usize;
        let rows = (operand_rows + CSA_SCRATCH_ROWS).max(17);
        let cols = n as usize + 4;
        let xbar = BlockedCrossbar::new(CrossbarConfig {
            blocks: 3,
            rows,
            cols,
            params: params.clone(),
            strict_init: true,
            backend,
        })?;
        Ok(CrossbarMac { xbar, n, max_terms })
    }

    /// Maximum number of product terms per evaluation.
    pub fn max_terms(&self) -> usize {
        self.max_terms
    }

    /// The underlying crossbar.
    pub fn crossbar(&self) -> &BlockedCrossbar {
        &self.xbar
    }

    /// Mutable access to the underlying crossbar — used by callers that
    /// arm operation recording (see `BlockedCrossbar::start_recording`)
    /// around a MAC evaluation.
    pub fn crossbar_mut(&mut self) -> &mut BlockedCrossbar {
        &mut self.xbar
    }

    /// Evaluates `Σ aᵢ·bᵢ mod 2^n` over the term list under `mode`:
    /// per-term partial products (shared first NOT per term), one Wallace
    /// reduction over the whole pile, one (optionally relaxed) final
    /// addition.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] if there are more terms
    /// than budgeted, operands exceed `n` bits, or the mode is invalid.
    pub fn mac(&mut self, terms: &[(u64, u64)], mode: PrecisionMode) -> Result<MacRun> {
        let n = self.n as usize;
        if terms.len() > self.max_terms {
            return Err(CrossbarError::InvalidConfig(format!(
                "{} terms exceed the budget of {}",
                terms.len(),
                self.max_terms
            )));
        }
        for &(a, b) in terms {
            if self.n < 64 && (a >> self.n != 0 || b >> self.n != 0) {
                return Err(CrossbarError::InvalidConfig(format!(
                    "operands must fit in {n} bits"
                )));
            }
        }
        mode.validate(self.n)
            .map_err(|e| CrossbarError::InvalidConfig(e.to_string()))?;

        let data = self.xbar.block(0)?;
        let p0 = self.xbar.block(1)?;
        let p1 = self.xbar.block(2)?;
        let w = n;

        // Resident data: term i occupies data rows 2i (multiplicand) and
        // 2i + 1 (multiplier); loading happens before the compute snapshot,
        // as in the multiplier.
        for (i, &(a, b)) in terms.iter().enumerate() {
            self.xbar.preload_u64(data, 2 * i, 0, n, a)?;
            self.xbar.preload_u64(data, 2 * i + 1, 0, n, b)?;
        }
        let snapshot = *self.xbar.stats();
        let mut pp_rows = 0usize;
        let not_row = self.xbar.rows() - 1;
        for (t, _) in terms.iter().enumerate() {
            let mut bits = 0u64;
            for i in 0..n {
                bits |= u64::from(self.xbar.read_bit(data, 2 * t + 1, i)?) << i;
            }
            let shifts = partial_product_shifts(bits, mode.masked_multiplier_bits());
            if shifts.is_empty() {
                continue;
            }
            // Shared first NOT for this term's copies.
            self.xbar.init_rows(p0, &[not_row], 0..n)?;
            self.xbar.nor_rows_shifted(
                &[apim_crossbar::RowRef::new(data, 2 * t)],
                apim_crossbar::RowRef::new(p0, not_row),
                0..n,
                0,
            )?;
            for &shift in &shifts {
                let lo = shift as usize;
                let hi = (lo + n).min(w);
                self.xbar.preload_zeros(p1, pp_rows, 0, w + 2)?;
                self.xbar.init_rows(p1, &[pp_rows], lo..hi)?;
                self.xbar.nor_rows_shifted(
                    &[apim_crossbar::RowRef::new(p0, not_row)],
                    apim_crossbar::RowRef::new(p1, pp_rows),
                    0..hi - lo,
                    shift as isize,
                )?;
                pp_rows += 1;
            }
        }

        let value = match pp_rows {
            0 => 0,
            1 => self.xbar.peek_u64(p1, 0, 0, w)?,
            _ => {
                let (block, survivors) = reduce_rows_to_two(&mut self.xbar, p1, p0, pp_rows, 0..w)?;
                debug_assert_eq!(survivors, 2);
                let other = if block == p0 { p1 } else { p0 };
                let m = (mode.relaxed_product_bits() as usize).min(w);
                self.final_add(block, other, w, m)?
            }
        };
        Ok(MacRun {
            value,
            stats: *self.xbar.stats() - snapshot,
        })
    }

    fn final_add(
        &mut self,
        block: apim_crossbar::BlockId,
        other: apim_crossbar::BlockId,
        w: usize,
        m: usize,
    ) -> Result<u64> {
        let mut alloc = RowAllocator::new(self.xbar.rows());
        alloc.alloc_many(3)?;
        let carry_row = alloc.alloc()?;
        let scratch = SerialScratch::alloc(&mut alloc)?;
        if m == 0 {
            add_words(&mut self.xbar, block, 0, 1, 2, 0..w, &scratch)?;
            return self.xbar.peek_u64(block, 2, 0, w);
        }
        self.xbar.preload_bit(block, carry_row, 0, false)?;
        for i in 0..m {
            let carry = self
                .xbar
                .maj_read(block, [(0, i), (1, i), (carry_row, i)])?;
            self.xbar.write_back_bit(block, carry_row, i + 1, carry)?;
        }
        self.xbar.init_rows(other, &[0], 0..m)?;
        self.xbar.nor_rows_shifted(
            &[apim_crossbar::RowRef::new(block, carry_row)],
            apim_crossbar::RowRef::new(other, 0),
            1..m + 1,
            -1,
        )?;
        let low = self.xbar.peek_u64(other, 0, 0, m)?;
        if m == w {
            return Ok(low);
        }
        self.xbar.init_cells(block, &[(scratch.carry, m)])?;
        self.xbar
            .nor_cells(block, &[(carry_row, m)], (scratch.carry, m))?;
        add_words_with_carry(&mut self.xbar, block, 0, 1, 2, m..w, &scratch)?;
        let high = self.xbar.peek_u64(block, 2, m, w - m)?;
        Ok(low | high << m)
    }
}

/// Functional reference of the fused MAC: all partial products of all
/// terms, reduced together, one relaxed final addition over `n` bits.
pub fn mac_trunc_functional(terms: &[(u64, u64)], n: u32, mode: PrecisionMode) -> u64 {
    use crate::functional::{approx_add_last_stage, reduce_step};
    let mask = if n == 64 { u128::MAX } else { (1u128 << n) - 1 };
    let mut pps = Vec::new();
    for &(a, b) in terms {
        for s in partial_product_shifts(b, mode.masked_multiplier_bits()) {
            pps.push(((a as u128) << s) & mask);
        }
    }
    match pps.len() {
        0 => 0,
        1 => pps[0] as u64,
        _ => {
            let mut ops = pps;
            while ops.len() > 2 {
                ops = reduce_step(&ops).into_iter().map(|v| v & mask).collect();
            }
            let m = mode.relaxed_product_bits().min(n);
            approx_add_last_stage(ops[0] & mask, ops[1] & mask, n, m) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_analysis::SplitMix64;

    fn mac_unit(n: u32, terms: usize) -> CrossbarMac {
        CrossbarMac::new(n, terms, &DeviceParams::default()).unwrap()
    }

    #[test]
    fn exact_mac_matches_native_mod_2n() {
        let mut mac = mac_unit(8, 4);
        let terms = [(3u64, 5u64), (7, 9), (2, 2), (100, 100)];
        let run = mac.mac(&terms, PrecisionMode::Exact).unwrap();
        let native: u64 = terms.iter().map(|&(a, b)| a * b).sum::<u64>() & 0xFF;
        assert_eq!(run.value, native);
    }

    #[test]
    fn matches_functional_reference_in_all_modes() {
        let mut rng = SplitMix64::new(77);
        let mut mac = mac_unit(8, 3);
        for _ in 0..5 {
            let terms: Vec<(u64, u64)> = (0..3)
                .map(|_| (rng.next_bits(8), rng.next_bits(8)))
                .collect();
            for mode in [
                PrecisionMode::Exact,
                PrecisionMode::FirstStage { masked_bits: 2 },
                PrecisionMode::LastStage { relax_bits: 4 },
                PrecisionMode::LastStage { relax_bits: 8 },
            ] {
                let run = mac.mac(&terms, mode).unwrap();
                assert_eq!(
                    run.value,
                    mac_trunc_functional(&terms, 8, mode),
                    "{terms:?} {mode}"
                );
            }
        }
    }

    #[test]
    fn gate_level_cost_matches_model_exactly() {
        use crate::model::CostModel;
        let model = CostModel::new(&DeviceParams::default());
        let mut mac = mac_unit(8, 3);
        for terms in [
            vec![(250u64, 101u64), (37, 201), (99, 77)],
            vec![(13, 240), (200, 15)],
            vec![(255, 255), (1, 1), (128, 129)],
        ] {
            for mode in [
                PrecisionMode::Exact,
                PrecisionMode::LastStage { relax_bits: 6 },
            ] {
                let run = mac.mac(&terms, mode).unwrap();
                let multipliers: Vec<u64> = terms.iter().map(|&(_, b)| b).collect();
                let predicted = model.mac_group_value(8, &multipliers, mode);
                assert_eq!(run.stats.cycles, predicted.cycles, "{terms:?} {mode}");
                let rel = (run.stats.energy.as_joules() - predicted.energy.as_joules()).abs()
                    / predicted.energy.as_joules();
                assert!(rel < 1e-9, "{terms:?} {mode}: energy rel err {rel}");
            }
        }
    }

    #[test]
    fn fused_mac_beats_separate_multiplies() {
        use crate::multiplier::CrossbarMultiplier;
        let terms = [(250u64, 101u64), (37, 201), (99, 77)];
        let mut mac = mac_unit(8, 3);
        let fused = mac.mac(&terms, PrecisionMode::Exact).unwrap();
        let mut mul = CrossbarMultiplier::new(8, &DeviceParams::default()).unwrap();
        let mut separate_cycles = 0;
        for &(a, b) in &terms {
            separate_cycles += mul
                .multiply_trunc(a, b, PrecisionMode::Exact)
                .unwrap()
                .stats
                .cycles
                .get();
        }
        // The fused version pays one final stage instead of three (plus the
        // two accumulation adds the separate path would still need).
        assert!(
            fused.stats.cycles.get() < separate_cycles,
            "fused {} vs separate {separate_cycles}",
            fused.stats.cycles
        );
    }

    #[test]
    fn relaxation_reduces_fused_cost() {
        let terms = [(250u64, 101u64), (37, 201), (99, 77), (11, 254)];
        let mut mac = mac_unit(8, 4);
        let exact = mac.mac(&terms, PrecisionMode::Exact).unwrap();
        let relaxed = mac
            .mac(&terms, PrecisionMode::LastStage { relax_bits: 8 })
            .unwrap();
        assert!(relaxed.stats.cycles < exact.stats.cycles);
        assert!(relaxed.stats.energy.as_joules() < exact.stats.energy.as_joules());
    }

    #[test]
    fn empty_and_degenerate_terms() {
        let mut mac = mac_unit(8, 4);
        assert_eq!(mac.mac(&[], PrecisionMode::Exact).unwrap().value, 0);
        assert_eq!(
            mac.mac(&[(0, 255), (255, 0)], PrecisionMode::Exact)
                .unwrap()
                .value,
            0
        );
        // A single one-bit multiplier: one pp, read out directly.
        let run = mac.mac(&[(77, 2)], PrecisionMode::Exact).unwrap();
        assert_eq!(run.value, 154);
    }

    #[test]
    fn term_budget_enforced() {
        let mut mac = mac_unit(8, 2);
        let err = mac
            .mac(&[(1, 1), (2, 2), (3, 3)], PrecisionMode::Exact)
            .unwrap_err();
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn oversized_operands_rejected() {
        let mut mac = mac_unit(8, 2);
        assert!(mac.mac(&[(256, 1)], PrecisionMode::Exact).is_err());
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(CrossbarMac::new(3, 4, &DeviceParams::default()).is_err());
        assert!(CrossbarMac::new(8, 0, &DeviceParams::default()).is_err());
    }

    #[test]
    fn wrapping_matches_c_int_semantics() {
        let mut mac = mac_unit(8, 2);
        // 200*200 = 40000 = 0x9C40 -> wraps to 0x40 per term; sum wraps too.
        let run = mac
            .mac(&[(200, 200), (200, 200)], PrecisionMode::Exact)
            .unwrap();
        let native = (200u64 * 200 + 200 * 200) & 0xFF;
        assert_eq!(run.value, native);
    }
}
