//! Serial in-memory addition: the `12N + 1`-cycle ripple adder.
//!
//! This is the adder style of Talati et al. \[24\], which APIM retains for
//! final carry propagation. Each bit position evaluates a 12-NOR full-adder
//! netlist that consumes the *complement* of the incoming carry and
//! produces the complement of the outgoing one, so no extra inversion is
//! needed between bits:
//!
//! ```text
//! inputs A, B, Cin'                      (Cin' = complemented carry-in)
//! n1 = NOR(A,B)    n2 = NOR(A,n1)   n3 = NOR(B,n1)
//! n4 = NOR(n2,n3)  # XNOR(A,B)      n5 = NOR(n4)      # XOR(A,B)
//! m1 = NOR(n5,Cin') m2 = NOR(n5,m1) m3 = NOR(Cin',m1)
//! S  = NOR(m2,m3)  # XOR(A,B,Cin)
//! q1 = NOR(n4,Cin') # XOR(A,B)·Cin  q2 = NOR(n1,n2,n3) # A·B
//! Cout' = NOR(q1,q2)
//! ```
//!
//! One initial NOR complements the (zero) carry seed, giving `12N + 1`
//! cycles total — exactly the count \[24\] and the paper quote.

use apim_crossbar::{BlockId, BlockedCrossbar, Result, RowAllocator};
use std::ops::Range;

/// Scratch layout for the serial adder: ten netlist rows, one carry row and
/// one all-zero seed row, all in the operands' block.
#[derive(Debug, Clone)]
pub struct SerialScratch {
    /// Ten rows for `n1,n2,n3,n4,n5,m1,m2,m3,q1,q2`.
    pub netlist: [usize; 10],
    /// Carry-complement chain: cell at column `c` holds `Cin'` of bit `c`.
    pub carry: usize,
    /// A row whose cell is forced to zero to seed the carry chain.
    pub zero: usize,
}

impl SerialScratch {
    /// Claims the 12 scratch rows from an allocator.
    ///
    /// # Errors
    ///
    /// Fails if the block does not have 12 free rows.
    pub fn alloc(alloc: &mut RowAllocator) -> Result<Self> {
        let rows = alloc.alloc_many(12)?;
        Ok(SerialScratch {
            netlist: rows[0..10].try_into().expect("ten rows"),
            carry: rows[10],
            zero: rows[11],
        })
    }

    /// Releases the scratch rows.
    ///
    /// # Errors
    ///
    /// Propagates the allocator's rejection if a row was already returned
    /// (see [`RowAllocator::free`]).
    pub fn release(self, alloc: &mut RowAllocator) -> Result<()> {
        alloc.free_many(self.netlist)?;
        alloc.free(self.carry)?;
        alloc.free(self.zero)
    }
}

/// Adds the words in `x_row` and `y_row` over `cols`, writing sum bits into
/// `out_row` (same columns). Carry-in is zero. Costs `12N + 1` cycles for
/// `N = cols.len()`.
///
/// The final carry-complement is left at `(scratch.carry, cols.end)` for
/// callers that need the carry-out.
///
/// # Errors
///
/// Propagates crossbar errors (bounds, initialization discipline).
pub fn add_words(
    xbar: &mut BlockedCrossbar,
    block: BlockId,
    x_row: usize,
    y_row: usize,
    out_row: usize,
    cols: Range<usize>,
    scratch: &SerialScratch,
) -> Result<()> {
    // Seed: zero the seed cell defensively, then Cin'(first bit) = NOR(0).
    xbar.preload_bit(block, scratch.zero, cols.start, false)?;
    xbar.init_cells(block, &[(scratch.carry, cols.start)])?;
    xbar.nor_cells(
        block,
        &[(scratch.zero, cols.start)],
        (scratch.carry, cols.start),
    )?;
    add_words_with_carry(xbar, block, x_row, y_row, out_row, cols, scratch)
}

/// Adds the words in `x_row` and `y_row` over `cols` with the carry chain
/// seeded from an existing complemented carry at
/// `(scratch.carry, cols.start)`. Costs `12N` cycles.
///
/// This is the entry point used by the mixed-precision final product stage
/// (§3.4), where the approximate region hands over its exactly-computed
/// boundary carry.
///
/// # Errors
///
/// Propagates crossbar errors.
pub fn add_words_with_carry(
    xbar: &mut BlockedCrossbar,
    block: BlockId,
    x_row: usize,
    y_row: usize,
    out_row: usize,
    cols: Range<usize>,
    scratch: &SerialScratch,
) -> Result<()> {
    let [n1, n2, n3, n4, n5, m1, m2, m3, q1, q2] = scratch.netlist;
    let carry = scratch.carry;
    for c in cols {
        let a = (x_row, c);
        let b = (y_row, c);
        let cin = (carry, c);
        // Each netlist op: initialize the output cell, then evaluate.
        let op = |xbar: &mut BlockedCrossbar,
                  inputs: &[(usize, usize)],
                  out: (usize, usize)|
         -> Result<()> {
            xbar.init_cells(block, &[out])?;
            xbar.nor_cells(block, inputs, out)
        };
        op(xbar, &[a, b], (n1, c))?;
        op(xbar, &[a, (n1, c)], (n2, c))?;
        op(xbar, &[b, (n1, c)], (n3, c))?;
        op(xbar, &[(n2, c), (n3, c)], (n4, c))?;
        op(xbar, &[(n4, c)], (n5, c))?;
        op(xbar, &[(n5, c), cin], (m1, c))?;
        op(xbar, &[(n5, c), (m1, c)], (m2, c))?;
        op(xbar, &[cin, (m1, c)], (m3, c))?;
        op(xbar, &[(m2, c), (m3, c)], (out_row, c))?;
        op(xbar, &[(n4, c), cin], (q1, c))?;
        op(xbar, &[(n1, c), (n2, c), (n3, c)], (q2, c))?;
        op(xbar, &[(q1, c), (q2, c)], (carry, c + 1))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_crossbar::CrossbarConfig;
    use apim_device::Cycles;

    fn to_bits(v: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn run_add(x: u64, y: u64, n: usize) -> (u64, bool, u64) {
        let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let blk = xbar.block(1).unwrap();
        xbar.preload_word(blk, 0, 0, &to_bits(x, n)).unwrap();
        xbar.preload_word(blk, 1, 0, &to_bits(y, n)).unwrap();
        let mut alloc = RowAllocator::new(xbar.rows());
        alloc.alloc_many(3).unwrap(); // operands + out
        let scratch = SerialScratch::alloc(&mut alloc).unwrap();
        let before = *xbar.stats();
        add_words(&mut xbar, blk, 0, 1, 2, 0..n, &scratch).unwrap();
        let cycles = (*xbar.stats() - before).cycles.get();
        let sum = from_bits(&xbar.peek_word(blk, 2, 0, n).unwrap());
        let carry_out = !xbar.peek_bit(blk, scratch.carry, n).unwrap();
        (sum, carry_out, cycles)
    }

    #[test]
    fn adds_small_numbers() {
        let (sum, carry, _) = run_add(5, 9, 8);
        assert_eq!(sum, 14);
        assert!(!carry);
    }

    #[test]
    fn carry_out_detected() {
        let (sum, carry, _) = run_add(0xFF, 0x01, 8);
        assert_eq!(sum, 0, "wraps within 8 bits");
        assert!(carry, "carry-out of the top bit");
    }

    #[test]
    fn cycle_count_is_12n_plus_1() {
        for n in [4usize, 8, 16, 32] {
            let (_, _, cycles) = run_add(3, 7, n);
            assert_eq!(cycles, (12 * n + 1) as u64, "n = {n}");
        }
    }

    #[test]
    fn exhaustive_4_bit() {
        for x in 0u64..16 {
            for y in 0u64..16 {
                let (sum, carry, _) = run_add(x, y, 4);
                assert_eq!(sum, (x + y) & 0xF, "{x}+{y}");
                assert_eq!(carry, x + y > 0xF, "{x}+{y} carry");
            }
        }
    }

    #[test]
    fn matches_model_energy_exactly() {
        use crate::model::CostModel;
        let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let blk = xbar.block(1).unwrap();
        let n = 16;
        xbar.preload_word(blk, 0, 0, &to_bits(1234, n)).unwrap();
        xbar.preload_word(blk, 1, 0, &to_bits(4321, n)).unwrap();
        let mut alloc = RowAllocator::new(xbar.rows());
        alloc.alloc_many(3).unwrap();
        let scratch = SerialScratch::alloc(&mut alloc).unwrap();
        let before = *xbar.stats();
        add_words(&mut xbar, blk, 0, 1, 2, 0..n, &scratch).unwrap();
        let delta = *xbar.stats() - before;
        let model = CostModel::new(&apim_device::DeviceParams::default());
        let predicted = model.serial_add(n as u32);
        assert_eq!(delta.cycles, predicted.cycles);
        let rel = (delta.energy.as_joules() - predicted.energy.as_joules()).abs()
            / predicted.energy.as_joules();
        assert!(rel < 1e-9, "energy mismatch: {rel}");
    }

    #[test]
    fn scratch_allocation_requires_twelve_rows() {
        let mut small = RowAllocator::new(5);
        assert!(SerialScratch::alloc(&mut small).is_err());
        let mut big = RowAllocator::new(12);
        let s = SerialScratch::alloc(&mut big).unwrap();
        assert_eq!(big.available(), 0);
        s.release(&mut big).unwrap();
        assert_eq!(big.available(), 12);
    }

    #[test]
    fn with_carry_seeds_from_existing_complement() {
        let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let blk = xbar.block(1).unwrap();
        let n = 8;
        xbar.preload_word(blk, 0, 0, &to_bits(10, n)).unwrap();
        xbar.preload_word(blk, 1, 0, &to_bits(20, n)).unwrap();
        let mut alloc = RowAllocator::new(xbar.rows());
        alloc.alloc_many(3).unwrap();
        let scratch = SerialScratch::alloc(&mut alloc).unwrap();
        // Carry-in = 1 -> complement = 0 at the seed cell.
        xbar.preload_bit(blk, scratch.carry, 0, false).unwrap();
        let before = *xbar.stats();
        add_words_with_carry(&mut xbar, blk, 0, 1, 2, 0..n, &scratch).unwrap();
        assert_eq!((*xbar.stats() - before).cycles, Cycles::new(12 * 8));
        let sum = from_bits(&xbar.peek_word(blk, 2, 0, n).unwrap());
        assert_eq!(sum, 31, "10 + 20 + carry-in 1");
    }
}
