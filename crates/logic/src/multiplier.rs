//! The full APIM multiplier (§3.3–3.4), gate-level.
//!
//! Three stages on a blocked crossbar with one data block and two
//! processing blocks — the paper's "3-level memory (with 2 processing
//! blocks per data block)" of §3.3, so resident data is never disturbed by
//! logic execution:
//!
//! 1. **Partial-product generation** — the multiplier is read bit-wise
//!    through the sense amplifiers; for every `1` bit the multiplicand is
//!    copied into the second processing block, *pre-shifted* by the
//!    configurable interconnect. The first NOT of the copy pair is computed
//!    once and reused, so the stage costs `ones + 1` cycles (worst case
//!    `N + 1`).
//! 2. **Fast reduction** — [`crate::wallace::reduce_rows_to_two`] brings the
//!    partial products down to two operands in `13 · stages` cycles.
//! 3. **Final product generation** — exact serial addition, the §3.4
//!    sense-amplifier MAJ approximation, or the mixed `k`-exact/`m`-relaxed
//!    split, per the configured [`PrecisionMode`].
//!
//! Two product windows are supported: the full `2N`-bit product
//! ([`CrossbarMultiplier::multiply`], §3.4's `k + m = 2N` framing) and the
//! truncated `N`-bit product of C `int` semantics
//! ([`CrossbarMultiplier::multiply_trunc`]), where the paper's maximum
//! approximation — 32 relax bits — spans the whole final stage.
//!
//! Produced values are bit-identical to [`crate::functional::multiply`] /
//! [`crate::functional::multiply_trunc`] for every mode, and the charged
//! cycles/energy match [`crate::CostModel`] exactly — both equivalences are
//! enforced by tests.

use apim_crossbar::{
    Backend, BlockId, BlockedCrossbar, CrossbarConfig, CrossbarError, Result, RowAllocator, Stats,
};
use apim_device::DeviceParams;

use crate::adder_csa::CSA_SCRATCH_ROWS;
use crate::adder_serial::{add_words, add_words_with_carry, SerialScratch};
use crate::functional::partial_product_shifts;
use crate::precision::PrecisionMode;
use crate::wallace::reduce_rows_to_two_at;

/// Per-stage cost split of one multiplication (the §3.2 remark that the
/// tree's speed is bought with extra writes/energy is visible here).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageBreakdown {
    /// Stage 1: sense-amp reads + shift-copies of the multiplicand.
    pub partial_products: Stats,
    /// Stage 2: Wallace-tree N:2 reduction.
    pub reduction: Stats,
    /// Stage 3: final product generation.
    pub final_stage: Stats,
}

/// Outcome of one gate-level multiplication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MulRun {
    /// The (possibly approximate) product.
    pub product: u128,
    /// Cycles/energy/op-count delta charged by this multiplication.
    pub stats: Stats,
    /// The same delta split by pipeline stage.
    pub breakdown: StageBreakdown,
}

/// A gate-level `n × n` multiplier on its own blocked crossbar.
///
/// ```
/// use apim_logic::multiplier::CrossbarMultiplier;
/// use apim_logic::PrecisionMode;
/// use apim_device::DeviceParams;
///
/// # fn main() -> Result<(), apim_crossbar::CrossbarError> {
/// let mut mul = CrossbarMultiplier::new(8, &DeviceParams::default())?;
/// let run = mul.multiply(200, 57, PrecisionMode::Exact)?;
/// assert_eq!(run.product, 200 * 57);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarMultiplier {
    xbar: BlockedCrossbar,
    n: u32,
    /// Wear-leveling: number of alternative scratch regions for the final
    /// stage (1 = fixed allocation).
    level_slots: usize,
    /// Rotation epoch, advanced once per multiplication.
    epoch: usize,
}

impl CrossbarMultiplier {
    /// Builds a multiplier for `n`-bit operands (`4 ..= 64`), sizing the
    /// crossbar automatically.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] for unsupported widths or
    /// invalid device parameters.
    pub fn new(n: u32, params: &DeviceParams) -> Result<Self> {
        if !(4..=64).contains(&n) {
            return Err(CrossbarError::InvalidConfig(format!(
                "operand width {n} outside supported range 4..=64"
            )));
        }
        Self::build(n, params, 1, Backend::default())
    }

    /// Like [`CrossbarMultiplier::new`] on an explicit storage [`Backend`]
    /// — the differential suites run the same multiplier on the packed
    /// path and the scalar oracle and compare bit-for-bit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CrossbarMultiplier::new`].
    pub fn with_backend(n: u32, params: &DeviceParams, backend: Backend) -> Result<Self> {
        Self::build(n, params, 1, backend)
    }

    /// Like [`CrossbarMultiplier::new`] but with wear leveling: the final
    /// stage's scratch rows — the wear hotspot of the whole pipeline, since
    /// every serial-adder bit rewrites them 12 times — rotate through
    /// `slots` disjoint regions across calls, spreading endurance wear at
    /// the cost of `slots × 13` extra wordlines per block.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CrossbarMultiplier::new`]; additionally rejects
    /// `slots == 0`.
    pub fn new_with_wear_leveling(n: u32, params: &DeviceParams, slots: usize) -> Result<Self> {
        if slots == 0 {
            return Err(CrossbarError::InvalidConfig(
                "wear leveling needs at least one slot".into(),
            ));
        }
        Self::build(n, params, slots, Backend::default())
    }

    fn build(n: u32, params: &DeviceParams, level_slots: usize, backend: Backend) -> Result<Self> {
        if !(4..=64).contains(&n) {
            return Err(CrossbarError::InvalidConfig(format!(
                "operand width {n} outside supported range 4..=64"
            )));
        }
        // One full working region (tree operands + scratch, final-stage
        // rows) per leveling slot, plus the shared NOT row at the top.
        let region = Self::region_rows(n);
        let rows = (region * level_slots + 1).max(17);
        let cols = 2 * n as usize + 4;
        let xbar = BlockedCrossbar::new(CrossbarConfig {
            blocks: 3,
            rows,
            cols,
            params: params.clone(),
            strict_init: true,
            backend,
        })?;
        Ok(CrossbarMultiplier {
            xbar,
            n,
            level_slots,
            epoch: 0,
        })
    }

    /// Wordlines of one rotation region: enough for the Wallace tree
    /// (`n` operands + scratch) and the final stage (operands, result,
    /// carry, serial netlist, seed).
    fn region_rows(n: u32) -> usize {
        (n as usize + CSA_SCRATCH_ROWS).max(16)
    }

    /// Operand width.
    pub fn operand_bits(&self) -> u32 {
        self.n
    }

    /// The underlying crossbar (cumulative statistics, fault injection…).
    pub fn crossbar(&self) -> &BlockedCrossbar {
        &self.xbar
    }

    /// Mutable access to the underlying crossbar, e.g. for fault injection.
    pub fn crossbar_mut(&mut self) -> &mut BlockedCrossbar {
        &mut self.xbar
    }

    /// Multiplies `a × b` under `mode`, producing the full `2N`-bit
    /// product.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::InvalidConfig`] if operands exceed `n` bits
    /// or the mode fails [`PrecisionMode::validate`]; crossbar errors
    /// propagate.
    pub fn multiply(&mut self, a: u64, b: u64, mode: PrecisionMode) -> Result<MulRun> {
        let w = 2 * self.n as usize;
        self.run_pipeline(a, b, mode, w)
    }

    /// Multiplies `a × b` under `mode`, producing the truncated `N`-bit
    /// product (C `int` semantics): partial products and the reduction
    /// window end at bit `N`, and `relax_bits` is clamped to `N`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CrossbarMultiplier::multiply`].
    pub fn multiply_trunc(&mut self, a: u64, b: u64, mode: PrecisionMode) -> Result<MulRun> {
        let w = self.n as usize;
        self.run_pipeline(a, b, mode, w)
    }

    fn run_pipeline(&mut self, a: u64, b: u64, mode: PrecisionMode, w: usize) -> Result<MulRun> {
        self.epoch = self.epoch.wrapping_add(1);
        let n = self.n as usize;
        if self.n < 64 && (a >> self.n != 0 || b >> self.n != 0) {
            return Err(CrossbarError::InvalidConfig(format!(
                "operands must fit in {n} bits"
            )));
        }
        mode.validate(self.n)
            .map_err(|e| CrossbarError::InvalidConfig(e.to_string()))?;

        let data = self.xbar.block(0)?;
        let p0 = self.xbar.block(1)?;
        let p1 = self.xbar.block(2)?;

        // Resident data (outside the compute accounting).
        self.xbar.preload_u64(data, 0, 0, n, a)?;
        self.xbar.preload_u64(data, 1, 0, n, b)?;
        let snapshot = *self.xbar.stats();
        let mut breakdown = StageBreakdown::default();

        // ---- Stage 1: partial products through the sense amplifiers ----
        let mut multiplier_bits = 0u64;
        for i in 0..n {
            let bit = self.xbar.read_bit(data, 1, i)?;
            multiplier_bits |= u64::from(bit) << i;
        }
        let shifts = partial_product_shifts(multiplier_bits, mode.masked_multiplier_bits());
        let ones = shifts.len();
        if ones == 0 {
            breakdown.partial_products = *self.xbar.stats() - snapshot;
            return Ok(MulRun {
                product: 0,
                stats: *self.xbar.stats() - snapshot,
                breakdown,
            });
        }
        // Wear leveling: rotate the whole working region through the slots.
        let base = (self.epoch % self.level_slots) * Self::region_rows(self.n);

        // Shared first NOT of the multiplicand (reused by every copy).
        let not_row = self.xbar.rows() - 1;
        self.xbar.init_rows(p0, &[not_row], 0..n)?;
        self.xbar.nor_rows_shifted(
            &[apim_crossbar::RowRef::new(data, 0)],
            apim_crossbar::RowRef::new(p0, not_row),
            0..n,
            0,
        )?;
        for (row, &shift) in shifts.iter().enumerate() {
            // Fresh operand row: clear the full product window.
            self.xbar.preload_zeros(p1, base + row, 0, w + 2)?;
            let lo = shift as usize;
            let hi = (lo + n).min(w);
            self.xbar.init_rows(p1, &[base + row], lo..hi)?;
            self.xbar.nor_rows_shifted(
                &[apim_crossbar::RowRef::new(p0, not_row)],
                apim_crossbar::RowRef::new(p1, base + row),
                0..hi - lo,
                shift as isize,
            )?;
        }
        breakdown.partial_products = *self.xbar.stats() - snapshot;
        if ones == 1 {
            let product = peek_wide(&self.xbar, p1, base, 0, w)?;
            return Ok(MulRun {
                product,
                stats: *self.xbar.stats() - snapshot,
                breakdown,
            });
        }

        // ---- Stage 2: Wallace reduction, toggling between the blocks ----
        let before_tree = *self.xbar.stats();
        let (block, survivors) = reduce_rows_to_two_at(&mut self.xbar, p1, p0, ones, 0..w, base)?;
        debug_assert_eq!(survivors, 2);
        let other = if block == p0 { p1 } else { p0 };
        breakdown.reduction = *self.xbar.stats() - before_tree;

        // ---- Stage 3: final product generation (§3.4) ----
        let before_final = *self.xbar.stats();
        let m = (mode.relaxed_product_bits() as usize).min(w);
        let product = self.final_stage(block, other, w, m, base)?;
        breakdown.final_stage = *self.xbar.stats() - before_final;
        Ok(MulRun {
            product,
            stats: *self.xbar.stats() - snapshot,
            breakdown,
        })
    }

    /// Final two-operand addition of rows 0 and 1 of `block` with `m`
    /// relaxed LSBs; returns the assembled product.
    fn final_stage(
        &mut self,
        block: BlockId,
        other: BlockId,
        w: usize,
        m: usize,
        base: usize,
    ) -> Result<u128> {
        // The tree left the two operands in rows base/base+1; the rest of
        // the region hosts the final stage's rows.
        let mut alloc = RowAllocator::new(self.xbar.rows());
        alloc.alloc_many(base + 2)?; // skip earlier regions + the operands
        let out_row = alloc.alloc()?;
        let exact_carry_row = alloc.alloc()?; // exact carries of the relaxed region
        let scratch = SerialScratch::alloc(&mut alloc)?;

        if m == 0 {
            add_words(
                &mut self.xbar,
                block,
                base,
                base + 1,
                out_row,
                0..w,
                &scratch,
            )?;
            return peek_wide(&self.xbar, block, out_row, 0, w);
        }

        // Relaxed region: exact carries via the MAJ sense amplifier
        // (1 cycle) + write-back (1 cycle) per bit.
        self.xbar.preload_bit(block, exact_carry_row, 0, false)?;
        for i in 0..m {
            let carry = self
                .xbar
                .maj_read(block, [(base, i), (base + 1, i), (exact_carry_row, i)])?;
            self.xbar
                .write_back_bit(block, exact_carry_row, i + 1, carry)?;
        }
        // All relaxed sum bits at once: S[i] = NOT(C[i+1]), one parallel
        // NOR through the interconnect (shift −1).
        self.xbar.init_rows(other, &[base], 0..m)?;
        self.xbar.nor_rows_shifted(
            &[apim_crossbar::RowRef::new(block, exact_carry_row)],
            apim_crossbar::RowRef::new(other, base),
            1..m + 1,
            -1,
        )?;
        let low = peek_wide(&self.xbar, other, base, 0, m)?;
        if m == w {
            return Ok(low);
        }

        // Exact region: complement the boundary carry, then ripple.
        self.xbar.init_cells(block, &[(scratch.carry, m)])?;
        self.xbar
            .nor_cells(block, &[(exact_carry_row, m)], (scratch.carry, m))?;
        add_words_with_carry(
            &mut self.xbar,
            block,
            base,
            base + 1,
            out_row,
            m..w,
            &scratch,
        )?;
        let high = peek_wide(&self.xbar, block, out_row, m, w - m)?;
        Ok(low | high << m)
    }
}

/// Debug read of up to 128 bits (the `2N`-bit product window) as ≤ 64-bit
/// packed chunks — peeks are unaccounted, so chunking changes nothing.
fn peek_wide(
    xbar: &BlockedCrossbar,
    block: BlockId,
    row: usize,
    col0: usize,
    width: usize,
) -> Result<u128> {
    let mut out = 0u128;
    let mut done = 0usize;
    while done < width {
        let chunk = (width - done).min(64);
        let v = xbar.peek_u64(block, row, col0 + done, chunk)?;
        out |= u128::from(v) << done;
        done += chunk;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional;
    use crate::model::CostModel;

    fn multiplier(n: u32) -> CrossbarMultiplier {
        CrossbarMultiplier::new(n, &DeviceParams::default()).unwrap()
    }

    #[test]
    fn exact_products_match_native() {
        let mut mul = multiplier(8);
        for (a, b) in [
            (0u64, 0u64),
            (1, 1),
            (255, 255),
            (200, 57),
            (13, 17),
            (128, 2),
        ] {
            let run = mul.multiply(a, b, PrecisionMode::Exact).unwrap();
            assert_eq!(run.product, a as u128 * b as u128, "{a}*{b}");
        }
    }

    #[test]
    fn exact_16_bit_spot_checks() {
        let mut mul = multiplier(16);
        for (a, b) in [(65535u64, 65535u64), (12345, 54321), (40000, 3)] {
            let run = mul.multiply(a, b, PrecisionMode::Exact).unwrap();
            assert_eq!(run.product, a as u128 * b as u128);
        }
    }

    #[test]
    fn gate_level_matches_functional_all_modes() {
        let mut mul = multiplier(8);
        let modes = [
            PrecisionMode::Exact,
            PrecisionMode::FirstStage { masked_bits: 3 },
            PrecisionMode::LastStage { relax_bits: 0 },
            PrecisionMode::LastStage { relax_bits: 5 },
            PrecisionMode::LastStage { relax_bits: 16 },
        ];
        for (a, b) in [(173u64, 89u64), (255, 254), (99, 1), (7, 255), (128, 128)] {
            for mode in modes {
                let run = mul.multiply(a, b, mode).unwrap();
                let expected = functional::multiply(a, b, 8, mode);
                assert_eq!(run.product, expected, "{a}*{b} {mode}");
            }
        }
    }

    #[test]
    fn trunc_gate_level_matches_functional() {
        let mut mul = multiplier(8);
        let modes = [
            PrecisionMode::Exact,
            PrecisionMode::FirstStage { masked_bits: 2 },
            PrecisionMode::LastStage { relax_bits: 4 },
            PrecisionMode::LastStage { relax_bits: 8 },
        ];
        for (a, b) in [(255u64, 255u64), (173, 89), (16, 16), (250, 3)] {
            for mode in modes {
                let run = mul.multiply_trunc(a, b, mode).unwrap();
                let expected = functional::multiply_trunc(a, b, 8, mode);
                assert_eq!(run.product, u128::from(expected), "{a}*{b} {mode}");
            }
        }
    }

    #[test]
    fn trunc_cycles_match_cost_model_exactly() {
        let model = CostModel::new(&DeviceParams::default());
        let mut mul = multiplier(8);
        for (a, b) in [(255u64, 255u64), (173, 89), (250, 3)] {
            for mode in [
                PrecisionMode::Exact,
                PrecisionMode::LastStage { relax_bits: 4 },
                PrecisionMode::LastStage { relax_bits: 8 },
            ] {
                let run = mul.multiply_trunc(a, b, mode).unwrap();
                let predicted = model.multiply_trunc_value(8, b, mode);
                assert_eq!(run.stats.cycles, predicted.cycles, "{a}*{b} {mode}");
                let rel = (run.stats.energy.as_joules() - predicted.energy.as_joules()).abs()
                    / predicted.energy.as_joules();
                assert!(rel < 1e-9, "{a}*{b} {mode}: energy rel err {rel}");
            }
        }
    }

    #[test]
    fn trunc_is_cheaper_than_full() {
        let mut mul = multiplier(16);
        let full = mul.multiply(0xBEEF, 0xF00D, PrecisionMode::Exact).unwrap();
        let trunc = mul
            .multiply_trunc(0xBEEF, 0xF00D, PrecisionMode::Exact)
            .unwrap();
        assert!(trunc.stats.cycles < full.stats.cycles);
        assert!(trunc.stats.energy.as_joules() < full.stats.energy.as_joules());
        assert_eq!(
            trunc.product,
            (0xBEEFu128 * 0xF00D) & 0xFFFF,
            "low half of the product"
        );
    }

    #[test]
    fn cycles_match_cost_model_exactly() {
        let model = CostModel::new(&DeviceParams::default());
        let mut mul = multiplier(8);
        for (a, b) in [(173u64, 89u64), (255, 255), (8, 8), (99, 0), (1, 170)] {
            for mode in [
                PrecisionMode::Exact,
                PrecisionMode::FirstStage { masked_bits: 4 },
                PrecisionMode::LastStage { relax_bits: 6 },
                PrecisionMode::LastStage { relax_bits: 16 },
            ] {
                let run = mul.multiply(a, b, mode).unwrap();
                let predicted = model.multiply(8, b, mode);
                assert_eq!(
                    run.stats.cycles, predicted.cycles,
                    "{a}*{b} {mode}: sim {} vs model {}",
                    run.stats.cycles, predicted.cycles
                );
            }
        }
    }

    #[test]
    fn energy_matches_cost_model_exactly() {
        let model = CostModel::new(&DeviceParams::default());
        let mut mul = multiplier(8);
        for (a, b) in [(173u64, 89u64), (255, 255), (12, 34)] {
            for mode in [
                PrecisionMode::Exact,
                PrecisionMode::LastStage { relax_bits: 6 },
            ] {
                let run = mul.multiply(a, b, mode).unwrap();
                let predicted = model.multiply(8, b, mode);
                let rel = (run.stats.energy.as_joules() - predicted.energy.as_joules()).abs()
                    / predicted.energy.as_joules();
                assert!(rel < 1e-9, "{a}*{b} {mode}: energy rel err {rel}");
            }
        }
    }

    #[test]
    fn energy_breakdown_partitions_the_total() {
        let mut mul = multiplier(8);
        let run = mul
            .multiply(173, 89, PrecisionMode::LastStage { relax_bits: 6 })
            .unwrap();
        let bd = run.stats.energy_breakdown;
        let rel = (bd.total().as_joules() - run.stats.energy.as_joules()).abs()
            / run.stats.energy.as_joules();
        assert!(rel < 1e-9, "breakdown must partition the energy: {rel}");
        assert!(bd.nor.as_joules() > 0.0);
        assert!(bd.write.as_joules() > 0.0);
        assert!(bd.read.as_joules() > 0.0);
        assert!(bd.maj.as_joules() > 0.0, "the relaxed region used MAJ");
        assert!(bd.interconnect.as_joules() > 0.0);
        // The init-then-evaluate discipline makes writes the biggest bill.
        assert!(bd.write.as_joules() > bd.nor.as_joules());
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut mul = multiplier(8);
        let run = mul.multiply(173, 89, PrecisionMode::Exact).unwrap();
        let mut sum = run.breakdown.partial_products;
        sum.merge(&run.breakdown.reduction);
        sum.merge(&run.breakdown.final_stage);
        assert_eq!(sum.cycles, run.stats.cycles);
        assert_eq!(sum.cell_writes, run.stats.cell_writes);
        assert!((sum.energy.as_joules() - run.stats.energy.as_joules()).abs() < 1e-20);
    }

    #[test]
    fn final_stage_dominates_exact_latency() {
        // §3.4: "This latency is dominant as compared to the previous
        // stages of multiplication, making the last stage a bottleneck".
        let mut mul = multiplier(16);
        let run = mul.multiply(0xBEEF, 0xCAFE, PrecisionMode::Exact).unwrap();
        let final_cycles = run.breakdown.final_stage.cycles.get();
        assert!(
            final_cycles * 2 > run.stats.cycles.get(),
            "final stage {final_cycles} of {}",
            run.stats.cycles
        );
    }

    #[test]
    fn tree_buys_speed_with_energy() {
        // §3.2: "this speed up comes at the cost of increased energy
        // consumption and number of writes" — the reduction stage's share
        // of writes exceeds its share of cycles.
        let mut mul = multiplier(16);
        let run = mul.multiply(0xBEEF, 0xCAFE, PrecisionMode::Exact).unwrap();
        let tree = &run.breakdown.reduction;
        let cycle_share = tree.cycles.get() as f64 / run.stats.cycles.get() as f64;
        let write_share = tree.cell_writes as f64 / run.stats.cell_writes as f64;
        assert!(
            write_share > 2.0 * cycle_share,
            "writes {write_share:.2} vs cycles {cycle_share:.2}"
        );
    }

    #[test]
    fn sparse_multiplier_is_cheap() {
        let mut mul = multiplier(8);
        let run = mul
            .multiply(201, 0b0001_0000, PrecisionMode::Exact)
            .unwrap();
        assert_eq!(run.product, 201 << 4);
        assert_eq!(run.stats.cycles.get(), 2, "one PP: shared NOT + one copy");
    }

    #[test]
    fn zero_multiplier_is_free() {
        let mut mul = multiplier(8);
        let run = mul.multiply(201, 0, PrecisionMode::Exact).unwrap();
        assert_eq!(run.product, 0);
        assert_eq!(run.stats.cycles.get(), 0);
        assert_eq!(run.stats.reads, 8, "the multiplier is still sensed");
    }

    #[test]
    fn first_stage_masking_reduces_cycles() {
        let mut mul = multiplier(8);
        let b = 0b1111_1111;
        let exact = mul.multiply(200, b, PrecisionMode::Exact).unwrap();
        let masked = mul
            .multiply(200, b, PrecisionMode::FirstStage { masked_bits: 4 })
            .unwrap();
        assert!(masked.stats.cycles < exact.stats.cycles);
        assert_eq!(masked.product, 200u128 * u128::from(b & 0xF0));
    }

    #[test]
    fn relaxing_bits_reduces_cycles_monotonically() {
        let mut mul = multiplier(8);
        let mut last = u64::MAX;
        for m in [0u8, 4, 8, 12, 16] {
            let run = mul
                .multiply(251, 173, PrecisionMode::LastStage { relax_bits: m })
                .unwrap();
            assert!(run.stats.cycles.get() < last, "m={m}");
            last = run.stats.cycles.get();
        }
    }

    #[test]
    fn relaxed_error_is_bounded() {
        let mut mul = multiplier(8);
        for m in [4u8, 8, 12] {
            let run = mul
                .multiply(251, 173, PrecisionMode::LastStage { relax_bits: m })
                .unwrap();
            let exact = 251u128 * 173;
            assert!(run.product.abs_diff(exact) < 1 << m, "m={m}");
            assert_eq!(run.product >> m, exact >> m, "high bits exact, m={m}");
        }
    }

    #[test]
    fn oversized_operands_rejected() {
        let mut mul = multiplier(8);
        assert!(mul.multiply(256, 1, PrecisionMode::Exact).is_err());
        assert!(mul.multiply(1, 1 << 20, PrecisionMode::Exact).is_err());
        assert!(mul.multiply_trunc(256, 1, PrecisionMode::Exact).is_err());
    }

    #[test]
    fn invalid_mode_rejected() {
        let mut mul = multiplier(8);
        assert!(mul
            .multiply(1, 1, PrecisionMode::LastStage { relax_bits: 17 })
            .is_err());
        assert!(mul
            .multiply(1, 1, PrecisionMode::FirstStage { masked_bits: 9 })
            .is_err());
    }

    #[test]
    fn unsupported_widths_rejected() {
        assert!(CrossbarMultiplier::new(3, &DeviceParams::default()).is_err());
        assert!(CrossbarMultiplier::new(65, &DeviceParams::default()).is_err());
    }

    #[test]
    fn repeated_multiplies_are_independent() {
        // Stale state from one run must never leak into the next.
        let mut mul = multiplier(8);
        mul.multiply(255, 255, PrecisionMode::Exact).unwrap();
        let run = mul.multiply(3, 5, PrecisionMode::Exact).unwrap();
        assert_eq!(run.product, 15);
        // Note the §3.4 quirk: with x = y = 0 every relaxed bit hits the
        // (0,0,0) error case and reads 1 — the approximation of 0 × 255 is
        // 0xFF, faithfully matching the functional model.
        let run = mul
            .multiply(0, 255, PrecisionMode::LastStage { relax_bits: 8 })
            .unwrap();
        assert_eq!(
            run.product,
            functional::multiply(0, 255, 8, PrecisionMode::LastStage { relax_bits: 8 })
        );
        assert_eq!(run.product, 0xFF);
    }

    #[test]
    fn full_and_trunc_interleave_cleanly() {
        let mut mul = multiplier(8);
        let full = mul.multiply(250, 250, PrecisionMode::Exact).unwrap();
        let trunc = mul.multiply_trunc(250, 250, PrecisionMode::Exact).unwrap();
        let full2 = mul.multiply(250, 250, PrecisionMode::Exact).unwrap();
        assert_eq!(full.product, 62500);
        assert_eq!(trunc.product, 62500 & 0xFF);
        assert_eq!(full2.product, 62500);
    }

    #[test]
    fn wear_leveling_spreads_the_hotspot() {
        let runs = 24;
        let mut fixed = CrossbarMultiplier::new(8, &DeviceParams::default()).unwrap();
        let mut leveled =
            CrossbarMultiplier::new_with_wear_leveling(8, &DeviceParams::default(), 4).unwrap();
        for i in 0..runs {
            let a = 100 + i as u64;
            fixed.multiply(a, 173, PrecisionMode::Exact).unwrap();
            leveled.multiply(a, 173, PrecisionMode::Exact).unwrap();
        }
        let hot_fixed = fixed.crossbar().max_cell_writes();
        let hot_leveled = leveled.crossbar().max_cell_writes();
        assert!(
            (hot_leveled as f64) < 0.6 * hot_fixed as f64,
            "leveling must spread wear: {hot_leveled} vs {hot_fixed}"
        );
        // Values stay correct while rotating.
        let run = leveled.multiply(251, 173, PrecisionMode::Exact).unwrap();
        assert_eq!(run.product, 251 * 173);
    }

    #[test]
    fn wear_leveling_rejects_zero_slots() {
        assert!(
            CrossbarMultiplier::new_with_wear_leveling(8, &DeviceParams::default(), 0).is_err()
        );
    }

    #[test]
    fn wear_accumulates_across_runs() {
        let mut mul = multiplier(8);
        for _ in 0..3 {
            mul.multiply(123, 231, PrecisionMode::Exact).unwrap();
        }
        assert!(mul.crossbar().max_cell_writes() > 3);
    }
}
