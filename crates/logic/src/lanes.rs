//! Lane-batched operand layout: 64 independent instances per microprogram
//! pass.
//!
//! The paper's column-parallel NOR costs one cycle regardless of how many
//! bitlines it spans, so a kernel whose netlist touches logical column `c`
//! can just as well touch a *span* of bitlines `c·L .. c·L + L` — running
//! `L` independent operand instances (lanes) through the identical gate
//! sequence for the cost of one. Lanes are data, not control: the recorded
//! microprogram is the same shape at every `L`, which is why the hazard
//! passes and the symbolic equivalence prover certify it once and the
//! verdict transfers across lanes.
//!
//! Layout: logical column `c` of lane `j` lives at bitline `c * lanes + j`.
//! [`preload_lanes`] / [`read_lanes`] are the bit transpose between `L`
//! ordinary operand words and that interleaved layout, built on the
//! existing `preload_u64` / `peek_u64` word APIs (one word per *bit
//! position*, carrying that bit of all `L` instances).
//!
//! [`add_lanes`] / [`sub_lanes`] are the lane-batched twins of
//! [`crate::adder_serial::add_words`] / [`crate::subtractor::sub_words`]:
//! identical netlists, identical cycle counts (`12N + 1` / `12N + 2`), with
//! every scattered single-cell NOR widened into a
//! [`BlockedCrossbar::nor_lanes`] over the lane span.

use apim_crossbar::{BlockId, BlockedCrossbar, CrossbarError, Result, RowRef, WORD_BITS};
use std::ops::Range;

use crate::adder_serial::SerialScratch;

/// Rejects lane counts outside `1..=64` (one u64 word of instances).
fn check_lanes(lanes: usize) -> Result<()> {
    if lanes == 0 || lanes > WORD_BITS {
        return Err(CrossbarError::InvalidConfig(format!(
            "lane count {lanes} outside 1..={WORD_BITS}"
        )));
    }
    Ok(())
}

/// Stores `values[j]` (each `width` bits) as lane `j` of the interleaved
/// layout rooted at `col0`: bit `i` of lane `j` lands at bitline
/// `col0 + i * lanes + j`. One `preload_u64` per bit position; free of
/// cycles, charged as writes.
///
/// # Errors
///
/// Rejects `values.len() != lanes`, lane counts outside `1..=64`, and
/// propagates crossbar bounds errors.
pub fn preload_lanes(
    xbar: &mut BlockedCrossbar,
    block: BlockId,
    row: usize,
    col0: usize,
    width: usize,
    lanes: usize,
    values: &[u64],
) -> Result<()> {
    check_lanes(lanes)?;
    if values.len() != lanes {
        return Err(CrossbarError::InvalidConfig(format!(
            "preload_lanes got {} values for {lanes} lanes",
            values.len()
        )));
    }
    for bit in 0..width {
        let mut word = 0u64;
        for (j, &v) in values.iter().enumerate() {
            word |= ((v >> bit) & 1) << j;
        }
        xbar.preload_u64(block, row, col0 + bit * lanes, lanes, word)?;
    }
    Ok(())
}

/// Reads back `lanes` operand words of `width` bits from the interleaved
/// layout rooted at `col0` — the inverse transpose of [`preload_lanes`].
///
/// # Errors
///
/// Rejects lane counts outside `1..=64`; propagates crossbar bounds errors.
pub fn read_lanes(
    xbar: &BlockedCrossbar,
    block: BlockId,
    row: usize,
    col0: usize,
    width: usize,
    lanes: usize,
) -> Result<Vec<u64>> {
    check_lanes(lanes)?;
    let mut values = vec![0u64; lanes];
    for bit in 0..width {
        let word = xbar.peek_u64(block, row, col0 + bit * lanes, lanes)?;
        for (j, v) in values.iter_mut().enumerate() {
            *v |= ((word >> j) & 1) << bit;
        }
    }
    Ok(values)
}

/// Lane-batched serial addition over logical columns `cols`: lane `j` of
/// `out_row` receives `x_j + y_j mod 2^N`. Carry-in is zero in every lane.
/// Costs `12N + 1` cycles for `N = cols.len()` — independent of `lanes`,
/// which is the whole point.
///
/// Layout as in [`preload_lanes`] with `col0 = 0`: logical column `c`
/// occupies bitlines `c * lanes .. (c + 1) * lanes`. The final complemented
/// carries are left in the lane span at logical column `cols.end` of
/// `scratch.carry`.
///
/// # Errors
///
/// Propagates crossbar errors; the block needs `(cols.end + 1) * lanes`
/// bitlines.
#[allow(clippy::too_many_arguments)] // one parameter per row of the layout
pub fn add_lanes(
    xbar: &mut BlockedCrossbar,
    block: BlockId,
    x_row: usize,
    y_row: usize,
    out_row: usize,
    cols: Range<usize>,
    lanes: usize,
    scratch: &SerialScratch,
) -> Result<()> {
    check_lanes(lanes)?;
    let p = cols.start * lanes;
    // Seed: zero the seed span, then Cin' = NOR(0) in every lane at once.
    xbar.preload_zeros(block, scratch.zero, p, lanes)?;
    xbar.init_rows(block, &[scratch.carry], p..p + lanes)?;
    xbar.nor_lanes(block, &[(scratch.zero, p)], (scratch.carry, p), lanes)?;
    add_lanes_with_carry(xbar, block, x_row, y_row, out_row, cols, lanes, scratch)
}

/// [`add_lanes`] with the carry chain seeded from existing complemented
/// carries in the lane span at logical column `cols.start` of
/// `scratch.carry`. Costs `12N` cycles.
///
/// # Errors
///
/// Propagates crossbar errors.
#[allow(clippy::too_many_arguments)] // one parameter per row of the layout
pub fn add_lanes_with_carry(
    xbar: &mut BlockedCrossbar,
    block: BlockId,
    x_row: usize,
    y_row: usize,
    out_row: usize,
    cols: Range<usize>,
    lanes: usize,
    scratch: &SerialScratch,
) -> Result<()> {
    check_lanes(lanes)?;
    let [n1, n2, n3, n4, n5, m1, m2, m3, q1, q2] = scratch.netlist;
    let carry = scratch.carry;
    for c in cols {
        let p = c * lanes;
        let a = (x_row, p);
        let b = (y_row, p);
        let cin = (carry, p);
        // Each netlist op: initialize the output span, then evaluate all
        // lanes in one cycle.
        let op = |xbar: &mut BlockedCrossbar,
                  inputs: &[(usize, usize)],
                  out: (usize, usize)|
         -> Result<()> {
            xbar.init_rows(block, &[out.0], out.1..out.1 + lanes)?;
            xbar.nor_lanes(block, inputs, out, lanes)
        };
        op(xbar, &[a, b], (n1, p))?;
        op(xbar, &[a, (n1, p)], (n2, p))?;
        op(xbar, &[b, (n1, p)], (n3, p))?;
        op(xbar, &[(n2, p), (n3, p)], (n4, p))?;
        op(xbar, &[(n4, p)], (n5, p))?;
        op(xbar, &[(n5, p), cin], (m1, p))?;
        op(xbar, &[(n5, p), (m1, p)], (m2, p))?;
        op(xbar, &[cin, (m1, p)], (m3, p))?;
        op(xbar, &[(m2, p), (m3, p)], (out_row, p))?;
        op(xbar, &[(n4, p), cin], (q1, p))?;
        op(xbar, &[(n1, p), (n2, p), (n3, p)], (q2, p))?;
        op(xbar, &[(q1, p), (q2, p)], (carry, p + lanes))?;
    }
    Ok(())
}

/// Lane-batched two's-complement subtraction: lane `j` of `out_row`
/// receives `x_j − y_j mod 2^N`. Costs `12N + 2` cycles, independent of
/// `lanes` — the complement is one column-parallel NOT over the whole
/// interleaved span (which is contiguous), and the `+1` rides the carry
/// seed exactly as in [`crate::subtractor::sub_words`].
///
/// # Errors
///
/// Propagates crossbar errors.
#[allow(clippy::too_many_arguments)] // one parameter per row of the layout
pub fn sub_lanes(
    xbar: &mut BlockedCrossbar,
    block: BlockId,
    x_row: usize,
    y_row: usize,
    not_y_row: usize,
    out_row: usize,
    cols: Range<usize>,
    lanes: usize,
    scratch: &SerialScratch,
) -> Result<()> {
    check_lanes(lanes)?;
    let span = cols.start * lanes..cols.end * lanes;
    // ȳ in every lane: the interleaved span is contiguous, so the plain
    // column-parallel NOT covers all lanes in one cycle.
    xbar.init_rows(block, &[not_y_row], span.clone())?;
    xbar.nor_rows_shifted(
        &[RowRef::new(block, y_row)],
        RowRef::new(block, not_y_row),
        span,
        0,
    )?;
    // Carry-in = 1 per lane: complement is 0 = NOR(1).
    let p = cols.start * lanes;
    xbar.preload_u64(block, scratch.zero, p, lanes, u64::MAX >> (64 - lanes))?;
    xbar.init_rows(block, &[scratch.carry], p..p + lanes)?;
    xbar.nor_lanes(block, &[(scratch.zero, p)], (scratch.carry, p), lanes)?;
    add_lanes_with_carry(xbar, block, x_row, not_y_row, out_row, cols, lanes, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use apim_crossbar::{Backend, CrossbarConfig, RowAllocator};

    /// A crossbar wide enough for 64 lanes of 8-bit operands plus carry.
    fn wide_xbar(backend: Backend) -> BlockedCrossbar {
        BlockedCrossbar::new(CrossbarConfig {
            cols: 1024,
            backend,
            ..CrossbarConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn preload_read_round_trips_the_transpose() {
        for backend in [Backend::Packed, Backend::Scalar] {
            let mut xbar = wide_xbar(backend);
            let blk = xbar.block(0).unwrap();
            let values: Vec<u64> = (0..64).map(|j| (j * 37 + 11) & 0xFF).collect();
            preload_lanes(&mut xbar, blk, 3, 0, 8, 64, &values).unwrap();
            assert_eq!(read_lanes(&xbar, blk, 3, 0, 8, 64).unwrap(), values);
        }
    }

    #[test]
    fn transpose_rejects_bad_lane_counts() {
        let mut xbar = wide_xbar(Backend::Packed);
        let blk = xbar.block(0).unwrap();
        assert!(preload_lanes(&mut xbar, blk, 0, 0, 8, 0, &[]).is_err());
        assert!(preload_lanes(&mut xbar, blk, 0, 0, 8, 65, &[0; 65]).is_err());
        assert!(preload_lanes(&mut xbar, blk, 0, 0, 8, 4, &[0; 3]).is_err());
        assert!(read_lanes(&xbar, blk, 0, 0, 8, 0).is_err());
    }

    fn run_add_lanes(backend: Backend, lanes: usize, n: usize) -> (Vec<u64>, Vec<u64>, u64) {
        let mut xbar = wide_xbar(backend);
        let blk = xbar.block(1).unwrap();
        let xs: Vec<u64> = (0..lanes as u64)
            .map(|j| (j * 73 + 5) & spec::mask(n))
            .collect();
        let ys: Vec<u64> = (0..lanes as u64)
            .map(|j| (j * 41 + 190) & spec::mask(n))
            .collect();
        preload_lanes(&mut xbar, blk, 0, 0, n, lanes, &xs).unwrap();
        preload_lanes(&mut xbar, blk, 1, 0, n, lanes, &ys).unwrap();
        let mut alloc = RowAllocator::new(xbar.rows());
        alloc.alloc_many(3).unwrap();
        let scratch = SerialScratch::alloc(&mut alloc).unwrap();
        let before = *xbar.stats();
        add_lanes(&mut xbar, blk, 0, 1, 2, 0..n, lanes, &scratch).unwrap();
        let cycles = (*xbar.stats() - before).cycles.get();
        let sums = read_lanes(&xbar, blk, 2, 0, n, lanes).unwrap();
        let expected: Vec<u64> = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| spec::add(x, y, n))
            .collect();
        (sums, expected, cycles)
    }

    #[test]
    fn add_lanes_matches_serial_spec_in_every_lane() {
        for backend in [Backend::Packed, Backend::Scalar] {
            let (sums, expected, _) = run_add_lanes(backend, 64, 8);
            assert_eq!(sums, expected, "{backend:?}");
        }
    }

    #[test]
    fn add_lanes_cycles_are_width_independent() {
        let n = 8;
        for lanes in [1, 2, 64] {
            let (_, _, cycles) = run_add_lanes(Backend::Packed, lanes, n);
            assert_eq!(cycles, (12 * n + 1) as u64, "lanes = {lanes}");
        }
    }

    #[test]
    fn sub_lanes_matches_serial_spec_in_every_lane() {
        let n = 8;
        let lanes = 64;
        for backend in [Backend::Packed, Backend::Scalar] {
            let mut xbar = wide_xbar(backend);
            let blk = xbar.block(1).unwrap();
            let xs: Vec<u64> = (0..lanes as u64)
                .map(|j| (j * 97 + 3) & spec::mask(n))
                .collect();
            let ys: Vec<u64> = (0..lanes as u64)
                .map(|j| (j * 59 + 77) & spec::mask(n))
                .collect();
            preload_lanes(&mut xbar, blk, 0, 0, n, lanes, &xs).unwrap();
            preload_lanes(&mut xbar, blk, 1, 0, n, lanes, &ys).unwrap();
            let mut alloc = RowAllocator::new(xbar.rows());
            alloc.alloc_many(4).unwrap();
            let scratch = SerialScratch::alloc(&mut alloc).unwrap();
            let before = *xbar.stats();
            sub_lanes(&mut xbar, blk, 0, 1, 2, 3, 0..n, lanes, &scratch).unwrap();
            assert_eq!(
                (*xbar.stats() - before).cycles.get(),
                (12 * n + 2) as u64,
                "{backend:?}"
            );
            let got = read_lanes(&xbar, blk, 3, 0, n, lanes).unwrap();
            let expected: Vec<u64> = xs
                .iter()
                .zip(&ys)
                .map(|(&x, &y)| spec::sub(x, y, n))
                .collect();
            assert_eq!(got, expected, "{backend:?}");
        }
    }

    #[test]
    fn one_lane_batch_is_bit_identical_to_the_serial_adder() {
        // The serial adder is the L = 1 specialization: same netlist, same
        // cycle count, same result.
        let n = 8;
        let (x, y) = (0xA7u64, 0x5C);
        let mut xbar = wide_xbar(Backend::Packed);
        let blk = xbar.block(1).unwrap();
        preload_lanes(&mut xbar, blk, 0, 0, n, 1, &[x]).unwrap();
        preload_lanes(&mut xbar, blk, 1, 0, n, 1, &[y]).unwrap();
        let mut alloc = RowAllocator::new(xbar.rows());
        alloc.alloc_many(3).unwrap();
        let scratch = SerialScratch::alloc(&mut alloc).unwrap();
        add_lanes(&mut xbar, blk, 0, 1, 2, 0..n, 1, &scratch).unwrap();
        let batched = read_lanes(&xbar, blk, 2, 0, n, 1).unwrap()[0];

        let mut serial = wide_xbar(Backend::Packed);
        let blk = serial.block(1).unwrap();
        serial.preload_u64(blk, 0, 0, n, x).unwrap();
        serial.preload_u64(blk, 1, 0, n, y).unwrap();
        let mut alloc = RowAllocator::new(serial.rows());
        alloc.alloc_many(3).unwrap();
        let scratch = SerialScratch::alloc(&mut alloc).unwrap();
        crate::adder_serial::add_words(&mut serial, blk, 0, 1, 2, 0..n, &scratch).unwrap();
        let reference = serial.peek_u64(blk, 2, 0, n).unwrap();

        assert_eq!(batched, reference);
        assert_eq!(batched, spec::add(x, y, n));
    }
}
