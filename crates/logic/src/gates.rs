//! Elementary in-memory gates built from MAGIC NOR.
//!
//! The paper composes everything from NOR (Eq. 2: `AND(A,B) =
//! NOR(NOR(A), NOR(B))`, three cycles). These helpers operate
//! column-parallel on whole row segments and follow the crate's init-then-
//! evaluate discipline, so they compose with the adders and multiplier.

use apim_crossbar::{BlockedCrossbar, CrossbarError, Result, RowRef};
use std::ops::Range;

/// Shifts a column range by `shift`.
///
/// # Errors
///
/// Returns [`CrossbarError::IllegalShift`] when the shifted range would
/// start before column zero. Clamping instead (as an earlier version did)
/// silently shrinks the range, so source and destination widths disagree
/// and the NOR writes fewer bits than the caller asked for.
pub(crate) fn shifted(cols: &Range<usize>, shift: isize) -> Result<Range<usize>> {
    let start = cols.start as isize + shift;
    let end = cols.end as isize + shift;
    if start < 0 || end < 0 {
        return Err(CrossbarError::IllegalShift {
            shift,
            start: cols.start,
            end: cols.end,
        });
    }
    Ok(start as usize..end as usize)
}

/// `dst = NOT(src)` over `cols`, optionally shifted across the
/// interconnect. One cycle (a single-input NOR).
///
/// # Errors
///
/// Propagates any [`apim_crossbar::CrossbarError`] from the underlying
/// primitives (bad coordinates, illegal shift, …).
pub fn not_row(
    xbar: &mut BlockedCrossbar,
    src: RowRef,
    dst: RowRef,
    cols: Range<usize>,
    shift: isize,
) -> Result<()> {
    xbar.init_rows(dst.block, &[dst.row], shifted(&cols, shift)?)?;
    xbar.nor_rows_shifted(&[src], dst, cols, shift)
}

/// `dst = NOR(a, b)` over `cols`. One cycle.
///
/// # Errors
///
/// Propagates crossbar errors; `a` and `b` must share a block.
pub fn nor_row(
    xbar: &mut BlockedCrossbar,
    a: RowRef,
    b: RowRef,
    dst: RowRef,
    cols: Range<usize>,
) -> Result<()> {
    xbar.init_rows(dst.block, &[dst.row], cols.clone())?;
    xbar.nor_rows_shifted(&[a, b], dst, cols, 0)
}

/// `dst = OR(a, b)` over `cols` via `NOT(NOR(a, b))`. Two cycles.
///
/// # Errors
///
/// Propagates crossbar errors.
pub fn or_row(
    xbar: &mut BlockedCrossbar,
    a: RowRef,
    b: RowRef,
    dst: RowRef,
    scratch: RowRef,
    cols: Range<usize>,
) -> Result<()> {
    nor_row(xbar, a, b, scratch, cols.clone())?;
    not_row(xbar, scratch, dst, cols, 0)
}

/// `dst = AND(a, b)` over `cols` via Eq. (2): `NOR(NOR(a), NOR(b))`.
/// Three cycles.
///
/// # Errors
///
/// Propagates crossbar errors.
pub fn and_row(
    xbar: &mut BlockedCrossbar,
    a: RowRef,
    b: RowRef,
    dst: RowRef,
    scratch: [RowRef; 2],
    cols: Range<usize>,
) -> Result<()> {
    not_row(xbar, a, scratch[0], cols.clone(), 0)?;
    not_row(xbar, b, scratch[1], cols.clone(), 0)?;
    nor_row(xbar, scratch[0], scratch[1], dst, cols)
}

/// `dst = NAND(a, b)` over `cols` via `NOT(AND(a, b))`. Four cycles.
///
/// # Errors
///
/// Propagates crossbar errors.
pub fn nand_row(
    xbar: &mut BlockedCrossbar,
    a: RowRef,
    b: RowRef,
    dst: RowRef,
    scratch: [RowRef; 3],
    cols: Range<usize>,
) -> Result<()> {
    and_row(
        xbar,
        a,
        b,
        scratch[2],
        [scratch[0], scratch[1]],
        cols.clone(),
    )?;
    not_row(xbar, scratch[2], dst, cols, 0)
}

/// `dst = XNOR(a, b)` over `cols` — the 4-NOR network the serial adder's
/// netlist is built around. Four cycles.
///
/// # Errors
///
/// Propagates crossbar errors.
pub fn xnor_row(
    xbar: &mut BlockedCrossbar,
    a: RowRef,
    b: RowRef,
    dst: RowRef,
    scratch: [RowRef; 3],
    cols: Range<usize>,
) -> Result<()> {
    let [n1, n2, n3] = scratch;
    nor_row(xbar, a, b, n1, cols.clone())?;
    nor_row(xbar, a, n1, n2, cols.clone())?;
    nor_row(xbar, b, n1, n3, cols.clone())?;
    nor_row(xbar, n2, n3, dst, cols)
}

/// `dst = XOR(a, b)` over `cols` using the 4-NOR XNOR network plus a final
/// inversion. Five cycles.
///
/// # Errors
///
/// Propagates crossbar errors.
pub fn xor_row(
    xbar: &mut BlockedCrossbar,
    a: RowRef,
    b: RowRef,
    dst: RowRef,
    scratch: [RowRef; 4],
    cols: Range<usize>,
) -> Result<()> {
    let [n1, n2, n3, n4] = scratch;
    nor_row(xbar, a, b, n1, cols.clone())?;
    nor_row(xbar, a, n1, n2, cols.clone())?;
    nor_row(xbar, b, n1, n3, cols.clone())?;
    nor_row(xbar, n2, n3, n4, cols.clone())?; // XNOR
    not_row(xbar, n4, dst, cols, 0)
}

/// Transposes a word from row orientation (bits along columns of `row`)
/// to column orientation (bits along rows of `col`): each bit is read
/// through the sense amplifier (free) and written back (one cycle), so the
/// cost is `N` cycles per word.
///
/// This is exactly the overhead §3.3 engineers around: "In order to avoid
/// the time and area overhead involved in transposing and creating
/// multiple copies of multiplier, we read-out the multiplier" — the
/// partial-product generator's per-set-bit copy (`ones + 1` cycles) beats
/// paying `N` cycles per transposed operand. The routine exists for
/// layouts that genuinely need column-oriented words (e.g. feeding
/// [`apim_crossbar::BlockedCrossbar::nor_cols`]).
///
/// # Errors
///
/// Propagates crossbar errors (bounds).
pub fn transpose_row_to_col(
    xbar: &mut BlockedCrossbar,
    block: apim_crossbar::BlockId,
    row: usize,
    col: usize,
    n: usize,
) -> Result<()> {
    for i in 0..n {
        let bit = xbar.read_bit(block, row, i)?;
        xbar.write_back_bit(block, i, col, bit)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_crossbar::{CrossbarConfig, RowAllocator};

    const W: usize = 8;

    fn setup(a: u8, b: u8) -> (BlockedCrossbar, apim_crossbar::BlockId, RowAllocator) {
        let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let blk = xbar.block(0).unwrap();
        let bits = |v: u8| (0..W).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
        xbar.preload_word(blk, 0, 0, &bits(a)).unwrap();
        xbar.preload_word(blk, 1, 0, &bits(b)).unwrap();
        let mut alloc = RowAllocator::new(xbar.rows());
        alloc.alloc_many(2).unwrap(); // rows 0,1 taken by operands
        (xbar, blk, alloc)
    }

    fn word(xbar: &BlockedCrossbar, blk: apim_crossbar::BlockId, row: usize) -> u8 {
        (0..W).fold(0u8, |acc, i| {
            acc | u8::from(xbar.peek_bit(blk, row, i).unwrap()) << i
        })
    }

    #[test]
    fn not_row_inverts() {
        let (mut x, blk, mut al) = setup(0b1010_0110, 0);
        let dst = al.alloc().unwrap();
        not_row(&mut x, RowRef::new(blk, 0), RowRef::new(blk, dst), 0..W, 0).unwrap();
        assert_eq!(word(&x, blk, dst), !0b1010_0110);
    }

    #[test]
    fn and_row_matches_bitwise_and() {
        let (mut x, blk, mut al) = setup(0b1100_1010, 0b1010_0110);
        let rows = al.alloc_many(3).unwrap();
        let before = x.stats().cycles;
        and_row(
            &mut x,
            RowRef::new(blk, 0),
            RowRef::new(blk, 1),
            RowRef::new(blk, rows[0]),
            [RowRef::new(blk, rows[1]), RowRef::new(blk, rows[2])],
            0..W,
        )
        .unwrap();
        assert_eq!(word(&x, blk, rows[0]), 0b1100_1010 & 0b1010_0110);
        // Eq. (2): AND is three NOR cycles.
        assert_eq!((x.stats().cycles - before).get(), 3);
    }

    #[test]
    fn or_row_matches_bitwise_or() {
        let (mut x, blk, mut al) = setup(0b0101_0101, 0b0011_0011);
        let rows = al.alloc_many(2).unwrap();
        or_row(
            &mut x,
            RowRef::new(blk, 0),
            RowRef::new(blk, 1),
            RowRef::new(blk, rows[0]),
            RowRef::new(blk, rows[1]),
            0..W,
        )
        .unwrap();
        assert_eq!(word(&x, blk, rows[0]), 0b0101_0101 | 0b0011_0011);
    }

    #[test]
    fn xor_row_matches_bitwise_xor() {
        let (mut x, blk, mut al) = setup(0b1110_0001, 0b1010_1010);
        let rows = al.alloc_many(5).unwrap();
        xor_row(
            &mut x,
            RowRef::new(blk, 0),
            RowRef::new(blk, 1),
            RowRef::new(blk, rows[0]),
            [
                RowRef::new(blk, rows[1]),
                RowRef::new(blk, rows[2]),
                RowRef::new(blk, rows[3]),
                RowRef::new(blk, rows[4]),
            ],
            0..W,
        )
        .unwrap();
        assert_eq!(word(&x, blk, rows[0]), 0b1110_0001 ^ 0b1010_1010);
    }

    #[test]
    fn nand_and_xnor_match_bitwise_reference() {
        let (mut x, blk, mut al) = setup(0b1100_0101, 0b1010_0011);
        let rows = al.alloc_many(4).unwrap();
        nand_row(
            &mut x,
            RowRef::new(blk, 0),
            RowRef::new(blk, 1),
            RowRef::new(blk, rows[0]),
            [
                RowRef::new(blk, rows[1]),
                RowRef::new(blk, rows[2]),
                RowRef::new(blk, rows[3]),
            ],
            0..W,
        )
        .unwrap();
        assert_eq!(word(&x, blk, rows[0]), !(0b1100_0101u8 & 0b1010_0011));
        xnor_row(
            &mut x,
            RowRef::new(blk, 0),
            RowRef::new(blk, 1),
            RowRef::new(blk, rows[0]),
            [
                RowRef::new(blk, rows[1]),
                RowRef::new(blk, rows[2]),
                RowRef::new(blk, rows[3]),
            ],
            0..W,
        )
        .unwrap();
        assert_eq!(word(&x, blk, rows[0]), !(0b1100_0101u8 ^ 0b1010_0011));
    }

    #[test]
    fn every_two_input_gate_matches_all_256_input_bytes() {
        // Exhaustive: one 8-bit word per operand covers all 4 input
        // combinations per column many times over; sweep all byte pairs
        // on a diagonal to keep runtime sane.
        for v in 0u16..=255 {
            let a = v as u8;
            let b = a.rotate_left(3) ^ 0x5A;
            let (mut x, blk, mut al) = setup(a, b);
            let rows = al.alloc_many(5).unwrap();
            let scratch2 = [RowRef::new(blk, rows[1]), RowRef::new(blk, rows[2])];
            and_row(
                &mut x,
                RowRef::new(blk, 0),
                RowRef::new(blk, 1),
                RowRef::new(blk, rows[0]),
                scratch2,
                0..W,
            )
            .unwrap();
            assert_eq!(word(&x, blk, rows[0]), a & b, "AND {a:#x} {b:#x}");
            or_row(
                &mut x,
                RowRef::new(blk, 0),
                RowRef::new(blk, 1),
                RowRef::new(blk, rows[0]),
                RowRef::new(blk, rows[1]),
                0..W,
            )
            .unwrap();
            assert_eq!(word(&x, blk, rows[0]), a | b, "OR {a:#x} {b:#x}");
        }
    }

    #[test]
    fn gates_work_across_the_interconnect() {
        let (mut x, blk, _) = setup(0b0000_1111, 0);
        let other = x.block(1).unwrap();
        not_row(&mut x, RowRef::new(blk, 0), RowRef::new(other, 0), 0..4, 2).unwrap();
        // in bits 0..4 = 1111, NOTed into cols 2..6 of the other block.
        assert_eq!(
            x.peek_word(other, 0, 2, 4).unwrap(),
            vec![false, false, false, false]
        );
    }

    #[test]
    fn transpose_round_trips_through_column_orientation() {
        let (mut x, blk, _) = setup(0b1011_0010, 0);
        let before = x.stats().cycles;
        transpose_row_to_col(&mut x, blk, 0, 10, W).unwrap();
        assert_eq!((x.stats().cycles - before).get(), W as u64, "N cycles");
        let got = (0..W).fold(0u8, |acc, i| {
            acc | (u8::from(x.peek_bit(blk, i, 10).unwrap()) << i)
        });
        assert_eq!(got, 0b1011_0010);
    }

    #[test]
    fn sense_amp_copies_beat_transposing_the_multiplier() {
        // Quantify §3.3's design argument: generating partial products via
        // the sense-amp read (ones + 1 cycles) vs transposing the
        // multiplier first (N cycles) before a column-oriented scheme
        // could even start.
        use crate::model::CostModel;
        use apim_device::DeviceParams;
        let model = CostModel::new(&DeviceParams::default());
        let n = 32;
        let transpose_cycles = n as u64; // this module's routine
        for ones in [4u32, 16, 31] {
            let pp = model.partial_products(n, ones).cycles.get();
            assert!(
                pp <= transpose_cycles + 1,
                "ones={ones}: pp {pp} should not exceed a transpose"
            );
        }
    }

    #[test]
    fn shifted_rejects_underflow_instead_of_clamping() {
        assert_eq!(
            shifted(&(0..4), -2),
            Err(apim_crossbar::CrossbarError::IllegalShift {
                shift: -2,
                start: 0,
                end: 4
            })
        );
        assert_eq!(shifted(&(4..8), -2).unwrap(), 2..6);
        assert_eq!(shifted(&(0..4), 3).unwrap(), 3..7);
    }
}
