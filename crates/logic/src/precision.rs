//! Precision configuration for APIM multiplication (§3.4).

use std::error::Error;
use std::fmt;

/// How an APIM multiplication trades accuracy for energy/latency.
///
/// The paper describes two approximation approaches and an exact mode:
///
/// * [`PrecisionMode::Exact`] — full-precision multiplication.
/// * [`PrecisionMode::FirstStage`] — mask the `masked_bits` least
///   significant bits of the multiplier before generating partial products.
///   Cheapest, but the error propagates through the whole pipeline.
/// * [`PrecisionMode::LastStage`] — compute everything exactly until the
///   final 2N-bit addition, then approximate the `relax_bits` low sum bits
///   as complements of their exactly-computed carries. Far more accurate at
///   similar EDP (Figure 4); this is the mode used for Table 1.
///
/// ```
/// use apim_logic::PrecisionMode;
/// let mode = PrecisionMode::LastStage { relax_bits: 8 };
/// assert!(mode.validate(32).is_ok());
/// assert_eq!(mode.relaxed_product_bits(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrecisionMode {
    /// Fully exact multiplication.
    #[default]
    Exact,
    /// Mask multiplier LSBs before partial-product generation.
    FirstStage {
        /// Number of multiplier LSBs forced to zero (`0 ..= N`).
        masked_bits: u8,
    },
    /// Approximate the low product bits in the final addition.
    LastStage {
        /// Number of product LSBs approximated (`0 ..= 2N`); the paper's
        /// "relax bits" (Table 1 sweeps 0, 4, 8, 16, 24, 32).
        relax_bits: u8,
    },
}

impl PrecisionMode {
    /// Checks that the mode is applicable to `n`-bit multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`PrecisionError`] if `masked_bits > n` or
    /// `relax_bits > 2n`.
    pub fn validate(self, n: u32) -> Result<(), PrecisionError> {
        match self {
            PrecisionMode::Exact => Ok(()),
            PrecisionMode::FirstStage { masked_bits } => {
                if u32::from(masked_bits) > n {
                    Err(PrecisionError {
                        mode: self,
                        operand_bits: n,
                    })
                } else {
                    Ok(())
                }
            }
            PrecisionMode::LastStage { relax_bits } => {
                if u32::from(relax_bits) > 2 * n {
                    Err(PrecisionError {
                        mode: self,
                        operand_bits: n,
                    })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Multiplier bits masked before partial-product generation.
    pub fn masked_multiplier_bits(self) -> u32 {
        match self {
            PrecisionMode::FirstStage { masked_bits } => u32::from(masked_bits),
            _ => 0,
        }
    }

    /// Product LSBs relaxed in the final stage.
    pub fn relaxed_product_bits(self) -> u32 {
        match self {
            PrecisionMode::LastStage { relax_bits } => u32::from(relax_bits),
            _ => 0,
        }
    }

    /// Whether any approximation is active.
    pub fn is_approximate(self) -> bool {
        match self {
            PrecisionMode::Exact => false,
            PrecisionMode::FirstStage { masked_bits } => masked_bits > 0,
            PrecisionMode::LastStage { relax_bits } => relax_bits > 0,
        }
    }
}

impl fmt::Display for PrecisionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrecisionMode::Exact => write!(f, "exact"),
            PrecisionMode::FirstStage { masked_bits } => {
                write!(f, "first-stage ({masked_bits} masked bits)")
            }
            PrecisionMode::LastStage { relax_bits } => {
                write!(f, "last-stage ({relax_bits} relax bits)")
            }
        }
    }
}

/// A precision mode was incompatible with the operand width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionError {
    /// The offending mode.
    pub mode: PrecisionMode,
    /// The operand width it was validated against.
    pub operand_bits: u32,
}

impl fmt::Display for PrecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precision mode `{}` invalid for {}-bit operands",
            self.mode, self.operand_bits
        )
    }
}

impl Error for PrecisionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_always_valid() {
        assert!(PrecisionMode::Exact.validate(1).is_ok());
        assert!(PrecisionMode::Exact.validate(64).is_ok());
        assert!(!PrecisionMode::Exact.is_approximate());
    }

    #[test]
    fn first_stage_bounds() {
        assert!(PrecisionMode::FirstStage { masked_bits: 32 }
            .validate(32)
            .is_ok());
        assert!(PrecisionMode::FirstStage { masked_bits: 33 }
            .validate(32)
            .is_err());
        assert_eq!(
            PrecisionMode::FirstStage { masked_bits: 8 }.masked_multiplier_bits(),
            8
        );
    }

    #[test]
    fn last_stage_bounds() {
        assert!(PrecisionMode::LastStage { relax_bits: 64 }
            .validate(32)
            .is_ok());
        assert!(PrecisionMode::LastStage { relax_bits: 65 }
            .validate(32)
            .is_err());
        assert_eq!(
            PrecisionMode::LastStage { relax_bits: 16 }.relaxed_product_bits(),
            16
        );
    }

    #[test]
    fn zero_approximation_counts_as_exact() {
        assert!(!PrecisionMode::FirstStage { masked_bits: 0 }.is_approximate());
        assert!(!PrecisionMode::LastStage { relax_bits: 0 }.is_approximate());
        assert!(PrecisionMode::LastStage { relax_bits: 4 }.is_approximate());
    }

    #[test]
    fn default_is_exact() {
        assert_eq!(PrecisionMode::default(), PrecisionMode::Exact);
    }

    #[test]
    fn display_and_error_messages() {
        assert_eq!(PrecisionMode::Exact.to_string(), "exact");
        let err = PrecisionMode::FirstStage { masked_bits: 40 }
            .validate(32)
            .unwrap_err();
        assert!(err.to_string().contains("32-bit"));
    }
}
