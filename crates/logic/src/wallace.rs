//! Wallace-tree N:2 reduction toggling between two processing blocks
//! (§3.2–3.3).
//!
//! At every stage the live operands are grouped in threes; each group is
//! compressed 3:2 by [`crate::adder_csa::csa_group`] with its outputs
//! steered into the *other* block (sum unshifted, carry shifted by one
//! bitline through the configurable interconnect). Leftover operands are
//! copied across so the next stage again finds everything in one block —
//! "N:2 reduction can be efficiently executed by utilising only 2 blocks of
//! the memory, toggling between them at every step".
//!
//! # Parallelism accounting
//!
//! Groups within a stage are independent and execute concurrently on the
//! hardware (they occupy disjoint rows); the simulator replays them
//! sequentially and then rewinds the serialization overhead so every stage
//! costs exactly 13 cycles, while all writes and energy remain charged.
//! Leftover copies (2 NOT cycles) hide under the same 13-cycle window.

use apim_crossbar::{BlockId, BlockedCrossbar, Result, RowRef};
use apim_device::Cycles;
use std::ops::Range;

use crate::adder_csa::{csa_group_lanes, CSA_SCRATCH_ROWS};
use crate::adder_serial::{add_words, SerialScratch};

/// Zeroes a row over the physical lane span of `cols` plus a two-logical-
/// column carry-drift margin (`2 * lanes` bitlines) — free of cycles,
/// charged as writes.
fn zero_row(
    xbar: &mut BlockedCrossbar,
    block: BlockId,
    row: usize,
    cols: &Range<usize>,
    lanes: usize,
) -> Result<()> {
    let width = (cols.len() + 2) * lanes;
    xbar.preload_zeros(block, row, cols.start * lanes, width)
}

/// Reduces the operands stored in rows `0..count` of `src` down to at most
/// two, ping-ponging between `src` and `dst`.
///
/// Returns the block holding the survivors and how many there are (rows
/// `0..returned_count` of that block, in the canonical order matching
/// [`crate::functional::reduce_step`]).
///
/// Each stage charges exactly 13 cycles (see the module docs); the total is
/// `13 · tree_stages(count)`.
///
/// # Errors
///
/// Propagates crossbar errors; each block needs at least
/// `count + CSA_SCRATCH_ROWS` rows and `cols.end + 2` columns.
pub fn reduce_rows_to_two(
    xbar: &mut BlockedCrossbar,
    src: BlockId,
    dst: BlockId,
    count: usize,
    cols: Range<usize>,
) -> Result<(BlockId, usize)> {
    reduce_rows_to_two_at(xbar, src, dst, count, cols, 0)
}

/// [`reduce_rows_to_two`] with the whole working region (operands, stage
/// outputs, scratch) offset by `base` wordlines — used by wear-leveling
/// callers that rotate regions across invocations. Operands must sit in
/// rows `base .. base + count`; survivors land in rows `base`/`base + 1`.
///
/// # Errors
///
/// Same conditions as [`reduce_rows_to_two`], with the row budget shifted
/// by `base`.
pub fn reduce_rows_to_two_at(
    xbar: &mut BlockedCrossbar,
    src: BlockId,
    dst: BlockId,
    count: usize,
    cols: Range<usize>,
    base: usize,
) -> Result<(BlockId, usize)> {
    reduce_rows_to_two_lanes(xbar, src, dst, count, cols, 1, base)
}

/// Lane-batched [`reduce_rows_to_two_at`]: every row holds `lanes`
/// independent operands in the interleaved layout of [`crate::lanes`]
/// (logical column `c` of lane `j` at bitline `c * lanes + j`), and each
/// 13-cycle stage compresses all of them at once via
/// [`crate::adder_csa::csa_group_lanes`].
///
/// `reduce_rows_to_two_at` is exactly the `lanes = 1` specialization; the
/// stage count — and so the cycle total — is identical at every lane
/// count, which is the batching win.
///
/// # Errors
///
/// Propagates crossbar errors; each block needs `base + count +
/// CSA_SCRATCH_ROWS` rows and `(cols.end + 2) * lanes` columns.
#[allow(clippy::too_many_arguments)] // mirrors reduce_rows_to_two_at + lanes
pub fn reduce_rows_to_two_lanes(
    xbar: &mut BlockedCrossbar,
    src: BlockId,
    dst: BlockId,
    count: usize,
    cols: Range<usize>,
    lanes: usize,
    base: usize,
) -> Result<(BlockId, usize)> {
    // The interleaved layout keeps the working window contiguous, so every
    // row-parallel op below just runs over the scaled physical span.
    let span = cols.start * lanes..cols.end * lanes;
    let mut cur = src;
    let mut oth = dst;
    let mut k = count;
    while k > 2 {
        let groups = k / 3;
        let leftovers = k % 3;
        let scratch: [usize; CSA_SCRATCH_ROWS] = core::array::from_fn(|i| base + k + i);
        let before = xbar.stats().cycles;
        for g in 0..groups {
            let sum_row = base + 2 * g;
            let carry_row = base + 2 * g + 1;
            zero_row(xbar, oth, sum_row, &cols, lanes)?;
            zero_row(xbar, oth, carry_row, &cols, lanes)?;
            csa_group_lanes(
                xbar,
                RowRef::new(cur, base + 3 * g),
                RowRef::new(cur, base + 3 * g + 1),
                RowRef::new(cur, base + 3 * g + 2),
                RowRef::new(oth, sum_row),
                RowRef::new(oth, carry_row),
                cols.clone(),
                lanes,
                &scratch,
            )?;
        }
        for l in 0..leftovers {
            let src_row = base + 3 * groups + l;
            let dst_row = base + 2 * groups + l;
            zero_row(xbar, oth, dst_row, &cols, lanes)?;
            // Copy = two NOTs; the intermediate complement reuses the first
            // scratch row.
            xbar.init_rows(cur, &[scratch[0]], span.clone())?;
            xbar.nor_rows_shifted(
                &[RowRef::new(cur, src_row)],
                RowRef::new(cur, scratch[0]),
                span.clone(),
                0,
            )?;
            xbar.init_rows(oth, &[dst_row], span.clone())?;
            xbar.nor_rows_shifted(
                &[RowRef::new(cur, scratch[0])],
                RowRef::new(oth, dst_row),
                span.clone(),
                0,
            )?;
        }
        // Rewind serialization: the hardware runs all groups (and hides the
        // leftover copies) within one 13-cycle stage.
        let charged = xbar.stats().cycles - before;
        xbar.rewind_cycles(charged.saturating_sub(Cycles::new(13)));
        k = 2 * groups + leftovers;
        std::mem::swap(&mut cur, &mut oth);
    }
    Ok((cur, k))
}

/// Sums the `count` operands stored in rows `0..count` of `src` (each
/// zero-padded over `0..result_bits`): Wallace reduction followed by a
/// final serial addition. Returns the block and row holding the
/// `result_bits`-bit sum.
///
/// This is the paper's fast multi-operand adder benchmarked in Figure 6;
/// its cost matches [`crate::CostModel::sum_reduce`] with zero relax bits.
///
/// # Errors
///
/// Propagates crossbar errors (row/column budget as in
/// [`reduce_rows_to_two`], plus 13 rows for the final serial adder).
pub fn sum_rows(
    xbar: &mut BlockedCrossbar,
    src: BlockId,
    dst: BlockId,
    count: usize,
    result_bits: usize,
) -> Result<(BlockId, usize)> {
    if count == 0 {
        return Ok((src, 0)); // row 0 untouched; caller sees its own zeros
    }
    let cols = 0..result_bits;
    let (block, survivors) = reduce_rows_to_two(xbar, src, dst, count, cols.clone())?;
    if survivors < 2 {
        return Ok((block, 0));
    }
    let out_row = 2;
    let mut alloc = apim_crossbar::RowAllocator::new(xbar.rows());
    alloc.alloc_many(3)?; // rows 0,1 operands; row 2 result
    let scratch = SerialScratch::alloc(&mut alloc)?;
    add_words(xbar, block, 0, 1, out_row, cols, &scratch)?;
    Ok((block, out_row))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional;
    use crate::model::{ceil_log2, CostModel};
    use apim_crossbar::{BlockedCrossbar, CrossbarConfig};
    use apim_device::DeviceParams;

    fn to_bits(v: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn setup(values: &[u64], window: usize) -> (BlockedCrossbar, BlockId, BlockId) {
        let mut xbar = BlockedCrossbar::new(CrossbarConfig::default()).unwrap();
        let src = xbar.block(1).unwrap();
        let dst = xbar.block(2).unwrap();
        for (row, &v) in values.iter().enumerate() {
            xbar.preload_word(src, row, 0, &to_bits(v, window)).unwrap();
        }
        xbar.reset_stats();
        (xbar, src, dst)
    }

    #[test]
    fn reduce_preserves_total() {
        let values: Vec<u64> = vec![11, 22, 33, 44, 55, 66, 77, 88, 99];
        let window = 12;
        let (mut xbar, src, dst) = setup(&values, window);
        let (block, k) = reduce_rows_to_two(&mut xbar, src, dst, values.len(), 0..window).unwrap();
        assert_eq!(k, 2);
        let a = from_bits(&xbar.peek_word(block, 0, 0, window + 1).unwrap());
        let b = from_bits(&xbar.peek_word(block, 1, 0, window + 1).unwrap());
        assert_eq!(a + b, values.iter().sum::<u64>());
    }

    #[test]
    fn reduce_matches_functional_order_bit_exactly() {
        let values: Vec<u64> = vec![0x3A, 0x15, 0x77, 0x01, 0xFF, 0x2C, 0x63];
        let window = 12;
        let (mut xbar, src, dst) = setup(&values, window);
        let (block, k) = reduce_rows_to_two(&mut xbar, src, dst, values.len(), 0..window).unwrap();
        assert_eq!(k, 2);
        let expected =
            functional::reduce_to_two(&values.iter().map(|&v| v as u128).collect::<Vec<_>>());
        let a = from_bits(&xbar.peek_word(block, 0, 0, window + 1).unwrap());
        let b = from_bits(&xbar.peek_word(block, 1, 0, window + 1).unwrap());
        assert_eq!(a as u128, expected[0], "sum word order");
        assert_eq!(b as u128, expected[1], "carry word order");
    }

    #[test]
    fn nine_operands_take_four_stages() {
        let values: Vec<u64> = (1..=9).collect();
        let (mut xbar, src, dst) = setup(&values, 8);
        reduce_rows_to_two(&mut xbar, src, dst, 9, 0..8).unwrap();
        assert_eq!(
            xbar.stats().cycles.get(),
            4 * 13,
            "9:2 in four 13-cycle stages"
        );
    }

    #[test]
    fn reduce_lanes_preserves_every_lane_total_at_serial_cycle_cost() {
        use crate::lanes::{preload_lanes, read_lanes};
        let lanes = 64;
        let window = 10;
        let count = 7;
        let mut xbar = BlockedCrossbar::new(CrossbarConfig {
            cols: 1024,
            ..CrossbarConfig::default()
        })
        .unwrap();
        let src = xbar.block(1).unwrap();
        let dst = xbar.block(2).unwrap();
        // Row r, lane j holds a distinct small operand.
        let operands: Vec<Vec<u64>> = (0..count)
            .map(|r| {
                (0..lanes as u64)
                    .map(|j| (j * 19 + r as u64 * 7 + 1) & 0x3F)
                    .collect()
            })
            .collect();
        for (r, vals) in operands.iter().enumerate() {
            preload_lanes(&mut xbar, src, r, 0, window, lanes, vals).unwrap();
        }
        xbar.reset_stats();
        let (block, k) =
            reduce_rows_to_two_lanes(&mut xbar, src, dst, count, 0..window, lanes, 0).unwrap();
        assert_eq!(k, 2);
        // Same stage count as the 1-lane reduction: 7 -> 5 -> 4 -> 3 -> 2.
        assert_eq!(xbar.stats().cycles.get(), 4 * 13);
        let a = read_lanes(&xbar, block, 0, 0, window + 1, lanes).unwrap();
        let b = read_lanes(&xbar, block, 1, 0, window + 1, lanes).unwrap();
        for j in 0..lanes {
            let total: u64 = operands.iter().map(|vals| vals[j]).sum();
            assert_eq!(a[j] + b[j], total, "lane {j}");
        }
    }

    #[test]
    fn small_counts_are_noops() {
        let (mut xbar, src, dst) = setup(&[5, 7], 8);
        let (block, k) = reduce_rows_to_two(&mut xbar, src, dst, 2, 0..8).unwrap();
        assert_eq!((block, k), (src, 2));
        assert_eq!(xbar.stats().cycles.get(), 0);
        let _ = dst;
    }

    #[test]
    fn sum_rows_computes_multi_operand_sum() {
        let values: Vec<u64> = vec![100, 200, 300, 400, 500, 600, 700];
        let operand_bits = 10;
        let result_bits = operand_bits + ceil_log2(values.len() as u32) as usize;
        let (mut xbar, src, dst) = setup(
            &values,
            result_bits, // zero-padded to the full window
        );
        let (block, row) = sum_rows(&mut xbar, src, dst, values.len(), result_bits).unwrap();
        let got = from_bits(&xbar.peek_word(block, row, 0, result_bits).unwrap());
        assert_eq!(got, 2800);
    }

    #[test]
    fn sum_rows_cycles_match_cost_model() {
        let values: Vec<u64> = (1..=16).map(|i| i * 37).collect();
        let operand_bits = 12u32;
        let result_bits = operand_bits + ceil_log2(values.len() as u32);
        let (mut xbar, src, dst) = setup(&values, result_bits as usize);
        sum_rows(&mut xbar, src, dst, values.len(), result_bits as usize).unwrap();
        let model = CostModel::new(&DeviceParams::default());
        let predicted = model.sum_reduce(values.len() as u32, operand_bits, 0);
        assert_eq!(xbar.stats().cycles, predicted.cycles);
    }

    #[test]
    fn sum_rows_energy_matches_cost_model() {
        let values: Vec<u64> = vec![9, 18, 27, 36, 45, 54];
        let operand_bits = 8u32;
        let result_bits = operand_bits + ceil_log2(values.len() as u32);
        let (mut xbar, src, dst) = setup(&values, result_bits as usize);
        sum_rows(&mut xbar, src, dst, values.len(), result_bits as usize).unwrap();
        let model = CostModel::new(&DeviceParams::default());
        let predicted = model.sum_reduce(values.len() as u32, operand_bits, 0);
        let rel = (xbar.stats().energy.as_joules() - predicted.energy.as_joules()).abs()
            / predicted.energy.as_joules();
        assert!(rel < 1e-9, "energy mismatch: {rel}");
    }

    #[test]
    fn single_operand_passes_through() {
        let (mut xbar, src, dst) = setup(&[42], 8);
        let (block, row) = sum_rows(&mut xbar, src, dst, 1, 8).unwrap();
        assert_eq!(from_bits(&xbar.peek_word(block, row, 0, 8).unwrap()), 42);
        assert_eq!(xbar.stats().cycles.get(), 0);
    }
}
