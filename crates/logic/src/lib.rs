//! In-memory arithmetic for APIM.
//!
//! This crate implements the paper's §3 — everything between raw MAGIC NOR
//! primitives and whole applications:
//!
//! * [`gates`] — elementary in-memory gates (NOT, AND, OR, XOR) built from
//!   MAGIC NOR, as in Eq. (2) of the paper.
//! * [`adder_serial`] — the `12N + 1`-cycle serial in-memory adder of
//!   Talati et al. \[24\], which APIM uses for final carry propagation.
//! * [`subtractor`] — two's-complement in-memory subtraction
//!   (`12N + 2` cycles).
//! * [`adder_csa`] — the width-independent 13-cycle 3:2 carry-save
//!   reduction (§3.2).
//! * [`lanes`] — the lane-batched operand layout: up to 64 independent
//!   instances interleaved across the bitlines so one microprogram pass
//!   computes all of them (SIMD across instances, not across bits).
//! * [`wallace`] — the Wallace-tree-style N:2 reduction toggling between
//!   two processing blocks (§3.2–3.3).
//! * [`multiplier`] — the full three-stage multiplier: partial-product
//!   generation through the sense amplifiers, fast reduction, and the
//!   (optionally approximate) final product generation (§3.3–3.4).
//! * [`functional`] — **pure-integer reference semantics** for every one of
//!   those circuits, bit-exact including approximation behaviour. The
//!   crossbar implementations are tested against these functions; the
//!   workload crate executes them at scale.
//! * [`spec`] — one-line closed-form specifications of what each kernel
//!   promises to compute; the `apim-verify` equivalence checker proves the
//!   recorded microprograms against exactly these.
//! * [`model`] — the **analytic cost model**: closed-form cycle/energy
//!   formulas, cross-validated against the crossbar simulation.
//! * [`error_analysis`] — Monte-Carlo and analytic error estimation used by
//!   Figure 4.
//!
//! # Cycle-accounting conventions
//!
//! The implementation is *netlist-faithful*: each documented NOR netlist
//! charges exactly one cycle per NOR. This reproduces the paper's
//! `12N + 1` serial adder and 13-cycle CSA stage exactly. One deliberate
//! deviation: the paper charges the exact portion of final product
//! generation at 13 cycles/bit (`13k + 2m + 1`); our netlist needs only 12
//! cycles/bit (the same count as its own `12N + 1` serial adder), so this
//! repo uses `12k + 2m + 2` (and `12W + 1` / `2m + 1` at the ends). The
//! discrepancy is internal to the paper and the shape of every result is
//! unaffected; see `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```
//! use apim_logic::{functional, PrecisionMode};
//!
//! // 32x32-bit multiplication with the paper's last-stage approximation,
//! // relaxing the 16 least-significant product bits.
//! let mode = PrecisionMode::LastStage { relax_bits: 16 };
//! let exact = functional::multiply(123_456, 987_654, 32, PrecisionMode::Exact);
//! let approx = functional::multiply(123_456, 987_654, 32, mode);
//! assert_eq!(exact, 123_456u128 * 987_654u128);
//! let rel_err = (approx as f64 - exact as f64).abs() / exact as f64;
//! assert!(rel_err < 1e-3);
//! ```

#![deny(missing_docs)]

pub mod adder_csa;
pub mod adder_serial;
pub mod divider;
pub mod error_analysis;
pub mod functional;
pub mod gates;
pub mod lanes;
pub mod mac;
pub mod model;
pub mod multiplier;
pub mod spec;
pub mod subtractor;
pub mod vector;
pub mod wallace;

mod precision;

pub use model::{CostModel, OpCost};
pub use precision::{PrecisionError, PrecisionMode};
