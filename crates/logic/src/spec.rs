//! Closed-form specifications of the hand kernels, for equivalence
//! checking.
//!
//! These are the *mathematical* definitions of what each kernel promises —
//! one pure integer expression per kernel, with no knowledge of netlists,
//! crossbars or cost accounting. The symbolic equivalence checker
//! (`apim-verify`'s `equiv` module) proves each recorded microprogram
//! computes exactly these functions; keeping them this small is the point,
//! because anything shared with the gate-level implementation would be a
//! common-mode failure.
//!
//! All word arithmetic wraps modulo `2^n` ([`mask`] truncates), matching
//! the C `int` semantics of the paper's workloads.

/// The low `n` bits set (`n = 64` saturates to all-ones).
pub fn mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// `x + y mod 2^n` — the serial ripple adder.
pub fn add(x: u64, y: u64, n: usize) -> u64 {
    x.wrapping_add(y) & mask(n)
}

/// `x − y mod 2^n` — two's-complement subtraction.
pub fn sub(x: u64, y: u64, n: usize) -> u64 {
    x.wrapping_sub(y) & mask(n)
}

/// `x · y mod 2^w` over a `w`-bit product window (`w = 2n` for the full
/// product, `w = n` for C `int` truncation).
pub fn mul(x: u64, y: u64, w: usize) -> u64 {
    x.wrapping_mul(y) & mask(w)
}

/// `Σ aᵢ·bᵢ mod 2^n` — the fused multiply-accumulate.
pub fn mac(terms: &[(u64, u64)], n: usize) -> u64 {
    terms
        .iter()
        .fold(0u64, |acc, &(a, b)| acc.wrapping_add(a.wrapping_mul(b)))
        & mask(n)
}

/// `Σ xᵢ mod 2^w` — the multi-operand fast adder over a `w`-bit window.
pub fn sum(values: &[u64], w: usize) -> u64 {
    values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v)) & mask(w)
}

/// `x mod y` — the remainder the restoring divider leaves in its register
/// (the divider's fast path; `y` must be nonzero).
pub fn rem(x: u64, y: u64) -> u64 {
    x % y
}

/// `x / y` — the quotient the restoring divider assembles bit-wise.
pub fn div(x: u64, y: u64) -> u64 {
    x / y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_matches_two_pow_n() {
        assert_eq!(add(0xFF, 0x01, 8), 0);
        assert_eq!(sub(5, 9, 8), 0xFC);
        assert_eq!(mul(200, 200, 8), 40_000 & 0xFF);
        assert_eq!(mul(0xFFFF_FFFF, 0xFFFF_FFFF, 64), 0xFFFF_FFFE_0000_0001);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn aggregate_specs_fold_term_wise() {
        assert_eq!(mac(&[(3, 5), (7, 9), (2, 2)], 8), (15 + 63 + 4) & 0xFF);
        assert_eq!(sum(&[100, 200, 300], 12), 600);
        assert_eq!((div(100, 7), rem(100, 7)), (14, 2));
    }
}
