//! Element-wise vector operations on resident word batches.
//!
//! A data-parallel kernel holds many words in one block; element-wise
//! operations run the same netlist on every word *simultaneously* — each
//! word's circuit occupies its own rows, and the MAGIC voltage pattern for
//! cycle `t` drives all of them at once (the same row-disjoint parallelism
//! as the Wallace tree's stage groups). A `k`-element vector addition
//! therefore costs the same `12N + 1` cycles as a single addition, with
//! `k×` the energy — the essence of why PIM throughput scales with
//! capacity.
//!
//! The simulator replays the lanes sequentially and rewinds the
//! serialization, exactly like [`crate::wallace`].

use apim_crossbar::{BlockedCrossbar, Result, RowAllocator, Stats};
use apim_device::Cycles;

use crate::adder_serial::{add_words, SerialScratch};

/// Outcome of a vector operation.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorRun {
    /// Per-lane results.
    pub values: Vec<u64>,
    /// Cost delta (cycles reflect the parallel execution).
    pub stats: Stats,
}

/// A vector engine over `lanes` independent `n`-bit lanes in one block.
///
/// ```
/// use apim_logic::vector::VectorUnit;
/// use apim_device::DeviceParams;
///
/// # fn main() -> Result<(), apim_crossbar::CrossbarError> {
/// let mut vu = VectorUnit::new(8, 4, &DeviceParams::default())?;
/// let run = vu.add(&[(1, 2), (250, 10), (77, 77), (0, 255)])?;
/// assert_eq!(run.values, vec![3, 4, 154, 255]); // wrapping at 8 bits
/// assert_eq!(run.stats.cycles.get(), 12 * 8 + 1); // one addition's latency
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VectorUnit {
    xbar: BlockedCrossbar,
    n: usize,
    lanes: usize,
}

/// Rows each lane needs: 2 operands + result + 12 serial-adder scratch.
const LANE_ROWS: usize = 15;

impl VectorUnit {
    /// Builds a vector engine for `lanes` lanes of `n`-bit words.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for zero lanes or unsupported widths.
    pub fn new(n: u32, lanes: usize, params: &apim_device::DeviceParams) -> Result<Self> {
        Self::with_backend(n, lanes, params, apim_crossbar::Backend::default())
    }

    /// Like [`VectorUnit::new`] on an explicit storage backend — the
    /// differential suites run the same lanes on the packed path and the
    /// scalar oracle and compare bit-for-bit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VectorUnit::new`].
    pub fn with_backend(
        n: u32,
        lanes: usize,
        params: &apim_device::DeviceParams,
        backend: apim_crossbar::Backend,
    ) -> Result<Self> {
        if !(4..=64).contains(&n) {
            return Err(apim_crossbar::CrossbarError::InvalidConfig(format!(
                "lane width {n} outside 4..=64"
            )));
        }
        if lanes == 0 {
            return Err(apim_crossbar::CrossbarError::InvalidConfig(
                "need at least one lane".into(),
            ));
        }
        let xbar = BlockedCrossbar::new(apim_crossbar::CrossbarConfig {
            blocks: 2,
            rows: lanes * LANE_ROWS,
            cols: n as usize + 4,
            params: params.clone(),
            strict_init: true,
            backend,
        })?;
        Ok(VectorUnit {
            xbar,
            n: n as usize,
            lanes,
        })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The underlying crossbar.
    pub fn crossbar(&self) -> &BlockedCrossbar {
        &self.xbar
    }

    /// Adds each pair element-wise (wrapping at `n` bits). All lanes run
    /// concurrently: the charged latency is one `12N + 1` addition.
    ///
    /// # Errors
    ///
    /// Returns a configuration error if more pairs than lanes are given;
    /// crossbar errors propagate.
    pub fn add(&mut self, pairs: &[(u64, u64)]) -> Result<VectorRun> {
        if pairs.len() > self.lanes {
            return Err(apim_crossbar::CrossbarError::InvalidConfig(format!(
                "{} pairs exceed {} lanes",
                pairs.len(),
                self.lanes
            )));
        }
        let block = self.xbar.block(1)?;
        let n = self.n;
        // Preload all lanes (resident data).
        for (lane, &(a, b)) in pairs.iter().enumerate() {
            let base = lane * LANE_ROWS;
            self.xbar.preload_u64(block, base, 0, n, a)?;
            self.xbar.preload_u64(block, base + 1, 0, n, b)?;
        }
        let snapshot = *self.xbar.stats();
        let before = snapshot.cycles;
        for lane in 0..pairs.len() {
            let base = lane * LANE_ROWS;
            let mut alloc = RowAllocator::new(self.xbar.rows());
            alloc.alloc_many(base + 3)?; // skip earlier lanes + operands + out
            let scratch = SerialScratch::alloc(&mut alloc)?;
            add_words(
                &mut self.xbar,
                block,
                base,
                base + 1,
                base + 2,
                0..n,
                &scratch,
            )?;
        }
        // Lanes are row-disjoint and execute concurrently: rewind the
        // sequential replay down to one addition's latency.
        let single = Cycles::new((12 * n + 1) as u64);
        let charged = self.xbar.stats().cycles - before;
        self.xbar.rewind_cycles(charged.saturating_sub(single));

        let mut values = Vec::with_capacity(pairs.len());
        for lane in 0..pairs.len() {
            let base = lane * LANE_ROWS;
            values.push(self.xbar.peek_u64(block, base + 2, 0, n)?);
        }
        Ok(VectorRun {
            values,
            stats: *self.xbar.stats() - snapshot,
        })
    }

    /// Element-wise NOT of each word — one cycle for the whole vector
    /// (every lane's NOT is one more row pair under the same voltage
    /// pattern).
    ///
    /// # Errors
    ///
    /// Returns a configuration error for too many inputs; crossbar errors
    /// propagate.
    pub fn not(&mut self, words: &[u64]) -> Result<VectorRun> {
        if words.len() > self.lanes {
            return Err(apim_crossbar::CrossbarError::InvalidConfig(format!(
                "{} words exceed {} lanes",
                words.len(),
                self.lanes
            )));
        }
        let block = self.xbar.block(1)?;
        let n = self.n;
        for (lane, &w) in words.iter().enumerate() {
            let base = lane * LANE_ROWS;
            self.xbar.preload_u64(block, base, 0, n, w)?;
        }
        let snapshot = *self.xbar.stats();
        let before = snapshot.cycles;
        for lane in 0..words.len() {
            let base = lane * LANE_ROWS;
            self.xbar.init_rows(block, &[base + 1], 0..n)?;
            self.xbar.nor_rows_shifted(
                &[apim_crossbar::RowRef::new(block, base)],
                apim_crossbar::RowRef::new(block, base + 1),
                0..n,
                0,
            )?;
        }
        let charged = self.xbar.stats().cycles - before;
        self.xbar
            .rewind_cycles(charged.saturating_sub(Cycles::new(1)));
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut values = Vec::with_capacity(words.len());
        for lane in 0..words.len() {
            let base = lane * LANE_ROWS;
            values.push(self.xbar.peek_u64(block, base + 1, 0, n)? & mask);
        }
        Ok(VectorRun {
            values,
            stats: *self.xbar.stats() - snapshot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_device::DeviceParams;

    fn unit(n: u32, lanes: usize) -> VectorUnit {
        VectorUnit::new(n, lanes, &DeviceParams::default()).unwrap()
    }

    #[test]
    fn vector_add_matches_scalar_wrapping() {
        let mut vu = unit(8, 8);
        let pairs: Vec<(u64, u64)> = vec![(1, 2), (255, 1), (128, 128), (99, 201)];
        let run = vu.add(&pairs).unwrap();
        let expect: Vec<u64> = pairs.iter().map(|&(a, b)| (a + b) & 0xFF).collect();
        assert_eq!(run.values, expect);
    }

    #[test]
    fn latency_is_independent_of_lane_count() {
        for lanes in [1usize, 2, 6] {
            let mut vu = unit(8, 6);
            let pairs: Vec<(u64, u64)> = (0..lanes as u64).map(|i| (i, i * 3)).collect();
            let run = vu.add(&pairs).unwrap();
            assert_eq!(run.stats.cycles.get(), 97, "{lanes} lanes");
        }
    }

    #[test]
    fn energy_scales_with_lane_count() {
        let mut vu = unit(8, 8);
        let one = vu.add(&[(3, 4)]).unwrap().stats.energy.as_joules();
        let mut vu = unit(8, 8);
        let four = vu
            .add(&[(3, 4), (5, 6), (7, 8), (9, 10)])
            .unwrap()
            .stats
            .energy
            .as_joules();
        let ratio = four / one;
        assert!((3.5..4.5).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn vector_not_is_one_cycle() {
        let mut vu = unit(16, 4);
        let run = vu.not(&[0x0F0F, 0xFFFF, 0x0000]).unwrap();
        assert_eq!(run.values, vec![0xF0F0, 0x0000, 0xFFFF]);
        assert_eq!(run.stats.cycles.get(), 1);
    }

    #[test]
    fn lane_budget_enforced() {
        let mut vu = unit(8, 2);
        assert!(vu.add(&[(1, 1), (2, 2), (3, 3)]).is_err());
        assert!(vu.not(&[1, 2, 3]).is_err());
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(VectorUnit::new(2, 4, &DeviceParams::default()).is_err());
        assert!(VectorUnit::new(8, 0, &DeviceParams::default()).is_err());
    }

    #[test]
    fn repeated_use_is_stateless() {
        let mut vu = unit(8, 4);
        vu.add(&[(200, 200), (1, 1)]).unwrap();
        let run = vu.add(&[(7, 3)]).unwrap();
        assert_eq!(run.values, vec![10]);
    }
}
