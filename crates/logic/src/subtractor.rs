//! In-memory subtraction.
//!
//! The kernels' difference terms (`p00 − p11` in Roberts, the butterfly's
//! `a − t` in the FFT) run in-memory as two's-complement addition:
//! `x − y = x + ȳ + 1`. The complement is one column-parallel NOT (one
//! cycle) and the `+1` rides the serial adder's carry seed for free — the
//! seed cell is simply *not* complemented. Total: `12N + 2` cycles.

use apim_crossbar::{BlockId, BlockedCrossbar, Result, RowAllocator, RowRef};
use std::ops::Range;

use crate::adder_serial::{add_words_with_carry, SerialScratch};

/// Subtracts the word in `y_row` from the word in `x_row` over `cols`
/// (two's complement, wrapping at the word width), writing the difference
/// into `out_row`. Needs one extra scratch row for `ȳ` on top of the
/// serial adder's [`SerialScratch`].
///
/// Costs `12N + 2` cycles: one NOT for the complement, one NOR seeding the
/// carry chain with 1, then the `12N` ripple.
///
/// # Errors
///
/// Propagates crossbar errors (bounds, initialization discipline).
#[allow(clippy::too_many_arguments)] // one parameter per row of the layout
pub fn sub_words(
    xbar: &mut BlockedCrossbar,
    block: BlockId,
    x_row: usize,
    y_row: usize,
    not_y_row: usize,
    out_row: usize,
    cols: Range<usize>,
    scratch: &SerialScratch,
) -> Result<()> {
    // ȳ, column-parallel (one cycle).
    xbar.init_rows(block, &[not_y_row], cols.clone())?;
    xbar.nor_rows_shifted(
        &[RowRef::new(block, y_row)],
        RowRef::new(block, not_y_row),
        cols.clone(),
        0,
    )?;
    // Carry-in = 1: its complement is 0 — produced by NORing the (ON)
    // initialized seed cell with itself... simpler: NOR of a cell holding 1.
    // The freshly complemented ȳ row is handy only if y had a 1 there; use
    // the always-initialized seed: init the carry cell then NOR an ON cell.
    xbar.preload_bit(block, scratch.zero, cols.start, true)?;
    xbar.init_cells(block, &[(scratch.carry, cols.start)])?;
    xbar.nor_cells(
        block,
        &[(scratch.zero, cols.start)],
        (scratch.carry, cols.start),
    )?;
    add_words_with_carry(xbar, block, x_row, not_y_row, out_row, cols, scratch)
}

/// Convenience: builds the scratch, runs [`sub_words`] and reads the
/// result back (helper for tests and examples; production layouts manage
/// their own rows).
///
/// # Errors
///
/// Propagates crossbar errors; the block needs ~16 free rows.
pub fn subtract(
    xbar: &mut BlockedCrossbar,
    block: BlockId,
    x: u64,
    y: u64,
    n: usize,
) -> Result<u64> {
    let mut alloc = RowAllocator::new(xbar.rows());
    let rows = alloc.alloc_many(4)?; // x, y, !y, out
    let scratch = SerialScratch::alloc(&mut alloc)?;
    xbar.preload_u64(block, rows[0], 0, n, x)?;
    xbar.preload_u64(block, rows[1], 0, n, y)?;
    sub_words(
        xbar,
        block,
        rows[0],
        rows[1],
        rows[2],
        rows[3],
        0..n,
        &scratch,
    )?;
    xbar.peek_u64(block, rows[3], 0, n)
}

/// In-memory unsigned comparison: `x ≥ y`, read from the subtraction's
/// carry-out (`x + ȳ + 1` carries out of bit `n−1` exactly when `x ≥ y`).
/// Same cycle cost as [`sub_words`]; the difference lands in `out_row` as
/// a by-product (`x − y` when `x ≥ y`, the wrapped value otherwise) —
/// exposing the intermediate per C-INTERMEDIATE.
///
/// # Errors
///
/// Propagates crossbar errors.
#[allow(clippy::too_many_arguments)] // one parameter per row of the layout
pub fn greater_equal(
    xbar: &mut BlockedCrossbar,
    block: BlockId,
    x_row: usize,
    y_row: usize,
    not_y_row: usize,
    out_row: usize,
    cols: Range<usize>,
    scratch: &SerialScratch,
) -> Result<bool> {
    let end = cols.end;
    sub_words(xbar, block, x_row, y_row, not_y_row, out_row, cols, scratch)?;
    // The ripple leaves the *complemented* carry at (carry row, end);
    // reading it through the sense amplifier costs no cycles.
    let carry_comp = xbar.read_bit(block, scratch.carry, end)?;
    Ok(!carry_comp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_crossbar::CrossbarConfig;

    fn xbar() -> BlockedCrossbar {
        BlockedCrossbar::new(CrossbarConfig::default()).unwrap()
    }

    #[test]
    fn subtracts_small_numbers() {
        let mut x = xbar();
        let b = x.block(1).unwrap();
        assert_eq!(subtract(&mut x, b, 100, 58, 8).unwrap(), 42);
    }

    #[test]
    fn wraps_like_twos_complement() {
        let mut x = xbar();
        let b = x.block(1).unwrap();
        // 5 - 9 = -4 = 0xFC in 8 bits.
        assert_eq!(subtract(&mut x, b, 5, 9, 8).unwrap(), 0xFC);
    }

    #[test]
    fn exhaustive_4_bit() {
        let mut x = xbar();
        let b = x.block(1).unwrap();
        for a in 0u64..16 {
            for c in 0u64..16 {
                let got = subtract(&mut x, b, a, c, 4).unwrap();
                assert_eq!(got, a.wrapping_sub(c) & 0xF, "{a}-{c}");
            }
        }
    }

    #[test]
    fn costs_12n_plus_2_cycles() {
        let mut x = xbar();
        let b = x.block(1).unwrap();
        let n = 16;
        // Account only the subtraction, not the operand preloads.
        let mut alloc = RowAllocator::new(x.rows());
        let rows = alloc.alloc_many(4).unwrap();
        let scratch = SerialScratch::alloc(&mut alloc).unwrap();
        let bits = |v: u64| (0..n).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
        x.preload_word(b, rows[0], 0, &bits(50_000)).unwrap();
        x.preload_word(b, rows[1], 0, &bits(12_345)).unwrap();
        let before = x.stats().cycles;
        sub_words(
            &mut x,
            b,
            rows[0],
            rows[1],
            rows[2],
            rows[3],
            0..n,
            &scratch,
        )
        .unwrap();
        assert_eq!((x.stats().cycles - before).get(), (12 * n + 2) as u64);
    }

    #[test]
    fn zero_minus_zero_is_zero() {
        let mut x = xbar();
        let b = x.block(1).unwrap();
        assert_eq!(subtract(&mut x, b, 0, 0, 8).unwrap(), 0);
    }

    #[test]
    fn comparator_exhaustive_4_bit() {
        let mut x = xbar();
        let b = x.block(1).unwrap();
        let n = 4;
        for a in 0u64..16 {
            for c in 0u64..16 {
                let mut alloc = RowAllocator::new(x.rows());
                let rows = alloc.alloc_many(4).unwrap();
                let scratch = SerialScratch::alloc(&mut alloc).unwrap();
                let bits = |v: u64| (0..n).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
                x.preload_word(b, rows[0], 0, &bits(a)).unwrap();
                x.preload_word(b, rows[1], 0, &bits(c)).unwrap();
                let ge = greater_equal(
                    &mut x,
                    b,
                    rows[0],
                    rows[1],
                    rows[2],
                    rows[3],
                    0..n,
                    &scratch,
                )
                .unwrap();
                assert_eq!(ge, a >= c, "{a} >= {c}");
            }
        }
    }
}
