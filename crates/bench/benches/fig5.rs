//! Regenerates Figure 5 and measures the dataset sweep's cost.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let data = apim_bench::fig5::generate();
    println!("{}", apim_bench::fig5::render(&data));
    let mut group = c.benchmark_group("fig5");
    group.sample_size(20);
    group.bench_function("generate", |b| b.iter(apim_bench::fig5::generate));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
