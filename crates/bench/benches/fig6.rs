//! Regenerates Figure 6 and measures the adder-model sweep's cost.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rows = apim_bench::fig6::generate();
    println!("{}", apim_bench::fig6::render(&rows));
    c.bench_function("fig6/generate", |b| b.iter(apim_bench::fig6::generate));
}

criterion_group!(benches, bench);
criterion_main!(benches);
