//! Microbenchmarks of the simulator itself: gate-level crossbar throughput
//! and the functional/analytic fast paths.

use apim_device::DeviceParams;
use apim_logic::multiplier::CrossbarMultiplier;
use apim_logic::{functional, CostModel, PrecisionMode};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_gate_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_level");
    let params = DeviceParams::default();
    for n in [8u32, 16, 32] {
        let mut mul = CrossbarMultiplier::new(n, &params).expect("valid width");
        let a = (1u64 << (n - 1)) | 0x35;
        let b = (1u64 << (n - 1)) | 0x5B;
        group.bench_function(format!("multiply_{n}x{n}_exact"), |bench| {
            bench.iter(|| {
                mul.multiply(black_box(a), black_box(b), PrecisionMode::Exact)
                    .expect("valid operands")
            });
        });
    }
    let mut mul = CrossbarMultiplier::new(32, &params).expect("valid width");
    group.bench_function("multiply_32x32_relax16", |bench| {
        bench.iter(|| {
            mul.multiply(
                black_box(0xDEAD_BEEF),
                black_box(0x1234_5678),
                PrecisionMode::LastStage { relax_bits: 16 },
            )
            .expect("valid operands")
        });
    });
    group.finish();
}

fn bench_functional(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional");
    group.bench_function("multiply_32x32_exact", |b| {
        b.iter(|| {
            functional::multiply(
                black_box(0xDEAD_BEEF),
                black_box(0x1234_5678),
                32,
                PrecisionMode::Exact,
            )
        });
    });
    group.bench_function("multiply_32x32_relax16", |b| {
        b.iter(|| {
            functional::multiply(
                black_box(0xDEAD_BEEF),
                black_box(0x1234_5678),
                32,
                PrecisionMode::LastStage { relax_bits: 16 },
            )
        });
    });
    group.bench_function("multiply_trunc_32", |b| {
        b.iter(|| {
            functional::multiply_trunc(
                black_box(0xDEAD_BEEF),
                black_box(0x1234_5678),
                32,
                PrecisionMode::LastStage { relax_bits: 16 },
            )
        });
    });
    group.finish();
}

fn bench_cost_model(c: &mut Criterion) {
    let model = CostModel::new(&DeviceParams::default());
    let mut group = c.benchmark_group("cost_model");
    group.bench_function("multiply_expected", |b| {
        b.iter(|| model.multiply_expected(black_box(32), PrecisionMode::Exact));
    });
    group.bench_function("mac_group_12", |b| {
        b.iter(|| {
            model.mac_group(
                black_box(12),
                32,
                16,
                PrecisionMode::LastStage { relax_bits: 16 },
            )
        });
    });
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    use apim_logic::mac::CrossbarMac;
    use apim_logic::vector::VectorUnit;
    let params = DeviceParams::default();
    let mut group = c.benchmark_group("engines");
    let mut mac = CrossbarMac::new(8, 4, &params).expect("mac");
    group.bench_function("mac_4x8bit", |b| {
        b.iter(|| {
            mac.mac(
                black_box(&[(250, 101), (37, 201), (99, 77), (11, 254)]),
                PrecisionMode::Exact,
            )
            .expect("valid terms")
        });
    });
    let mut vu = VectorUnit::new(16, 8, &params).expect("vector unit");
    group.bench_function("vector_add_8x16bit", |b| {
        b.iter(|| {
            vu.add(black_box(&[
                (1, 2),
                (300, 4),
                (5000, 600),
                (7, 65000),
                (9, 10),
                (11, 12),
                (13, 14),
                (15, 16),
            ]))
            .expect("within lanes")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gate_level,
    bench_functional,
    bench_cost_model,
    bench_engines
);
criterion_main!(benches);
