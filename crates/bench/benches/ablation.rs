//! Runs the design-choice ablation study (see `apim_bench::ablation`) and
//! measures its generation cost.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let data = apim_bench::ablation::generate();
    println!("{}", apim_bench::ablation::render(&data));
    c.bench_function("ablation/generate", |b| {
        b.iter(apim_bench::ablation::generate);
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
