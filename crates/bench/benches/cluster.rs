//! Cluster-tier overhead: one RPC round-trip through a loopback node
//! versus the same job submitted straight into an in-process pool. The
//! difference is the wire tax — framing, TCP, and a thread handoff per
//! side — which the cluster design bets is negligible next to a kernel
//! run.

use apim_cluster::LoopbackCluster;
use apim_serve::{JobKind, Pool, PoolConfig, Request, TenantId};
use criterion::{criterion_group, criterion_main, Criterion};

fn request() -> Request {
    Request::new(JobKind::Multiply {
        a: 1_000_003,
        b: 2_000_029,
    })
    .tenant(TenantId(1))
}

fn pool_config() -> PoolConfig {
    PoolConfig {
        workers: 2,
        queue_depth: 64,
        ..PoolConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    let pool = Pool::new(pool_config()).expect("pool");
    let cluster = LoopbackCluster::spawn(1, &pool_config()).expect("cluster");
    let client = cluster.client().expect("client");

    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.bench_function("submit/in-process", |b| {
        b.iter(|| {
            let response = pool.submit(request()).expect("submit").wait();
            assert!(response.result.is_ok());
        });
    });
    group.bench_function("submit/rpc-loopback", |b| {
        b.iter(|| {
            let response = client.submit(&request()).expect("rpc");
            assert!(response.node_latency_us < u64::MAX);
        });
    });
    group.finish();

    drop(client);
    cluster.shutdown();
    pool.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
