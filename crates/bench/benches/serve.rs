//! Serving-runtime throughput: drives the seeded loadgen mix through the
//! worker pool at several worker counts and reports requests per second.

use criterion::{criterion_group, criterion_main, Criterion};

fn loadgen(workers: usize, requests: u64) -> apim_serve::loadgen::LoadgenReport {
    apim_serve::loadgen::run(&apim_serve::loadgen::LoadgenConfig {
        requests,
        seed: 7,
        pool: apim_serve::PoolConfig {
            workers,
            queue_depth: 4096,
            ..apim_serve::PoolConfig::default()
        },
    })
    .expect("loadgen runs")
}

fn bench(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for workers in [1usize, 2, 4] {
        let report = loadgen(workers, 100);
        println!(
            "serve: {workers} worker(s) on {cores} core(s): {:.1} req/s, {} batches ({} coalesced)",
            report.throughput_rps, report.snapshot.batches, report.snapshot.coalesced
        );
    }
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("loadgen/100req/4workers", |b| b.iter(|| loadgen(4, 100)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
