//! Compiler-vs-hand-written cost: compiles the DAG-expressed workload
//! inner loops, prints their cycle gap against the hand-scheduled kernels'
//! analytic cost, and times the compile and gate-execute paths.

use std::collections::HashMap;

use apim_compile::{compile, CompileOptions};
use apim_workloads::dags;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let options = CompileOptions::default();
    for (name, dag, hand_cycles) in [
        (
            "sharpen",
            dags::sharpen_dag(),
            dags::sharpen_hand_cycles as fn(&apim_logic::CostModel) -> u64,
        ),
        (
            "sobel",
            dags::sobel_gradient_dag(),
            dags::sobel_gradient_hand_cycles,
        ),
    ] {
        let program = compile(&dag, &options).expect("workload DAG compiles");
        let inputs: HashMap<String, u64> = program
            .dag()
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), (i as u64 + 1) << 12))
            .collect();
        let report = program.run(&inputs).expect("compiled program runs");
        let hand = hand_cycles(program.model());
        println!(
            "compile: {name}: {} compiled vs {hand} hand cycles ({:+.1}% gap), {} micro-ops",
            report.cycles,
            100.0 * (report.cycles as f64 - hand as f64) / hand as f64,
            report.trace_len
        );

        let mut group = c.benchmark_group("compile");
        group.sample_size(10);
        group.bench_function(format!("{name}/compile"), |b| {
            b.iter(|| compile(&dag, &options).expect("compiles"));
        });
        group.bench_function(format!("{name}/run"), |b| {
            b.iter(|| program.run(&inputs).expect("runs"));
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
