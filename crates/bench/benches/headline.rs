//! Regenerates the headline numbers (incl. the adaptive QoS controller).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let h = apim_bench::headline::generate();
    println!("{}", apim_bench::headline::render(&h));
    let mut group = c.benchmark_group("headline");
    group.sample_size(10);
    group.bench_function("generate", |b| b.iter(apim_bench::headline::generate));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
