//! Reliability-layer overheads: the in-crossbar SEC-DED encode/decode
//! path, the protected-vs-raw fault campaign at the design density, and
//! the wear-leveling comparison workload.

use apim_reliability::{run_campaign, run_wear_demo, CampaignConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn campaign(ecc: bool) -> u64 {
    let report = run_campaign(&CampaignConfig {
        trials: 2,
        ecc,
        ..CampaignConfig::default()
    })
    .expect("campaign");
    report
        .kernels
        .iter()
        .map(|k| k.digest)
        .fold(0, u64::wrapping_add)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("reliability");
    group.sample_size(10);
    group.bench_function("campaign/ecc-on", |b| {
        b.iter(|| campaign(true));
    });
    group.bench_function("campaign/ecc-off", |b| {
        b.iter(|| campaign(false));
    });
    group.bench_function("wear-demo/36-rounds", |b| {
        b.iter(|| run_wear_demo(36).expect("wear demo").rotate_max_writes);
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
