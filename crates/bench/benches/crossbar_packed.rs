//! Packed vs scalar-oracle crossbar backend: NOR throughput at fixed
//! widths plus the end-to-end compiled sharpen/sobel kernels. Prints the
//! speedup table (the `BENCH_packed.json` exhibit) before measuring.

use apim_bench::perf;
use apim_crossbar::Backend;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", perf::render(&perf::generate(true)));

    for width in [64usize, 256] {
        let mut group = c.benchmark_group("crossbar_packed");
        group.sample_size(10);
        group.bench_function(format!("nor{width}/packed"), |b| {
            b.iter(|| perf::nor_ops_per_sec(Backend::Packed, width, 2_000));
        });
        group.bench_function(format!("nor{width}/oracle"), |b| {
            b.iter(|| perf::nor_ops_per_sec(Backend::Scalar, width, 2_000));
        });
        group.finish();
    }

    let mut group = c.benchmark_group("crossbar_packed");
    group.sample_size(10);
    group.bench_function("sharpen4x4/packed", |b| {
        b.iter(|| perf::sharpen_secs(Backend::Packed, 4));
    });
    group.bench_function("sobel4x4/packed", |b| {
        b.iter(|| perf::sobel_secs(Backend::Packed, 4));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
