//! Regenerates Figure 4 and measures the sweep's cost.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let data = apim_bench::fig4::generate();
    println!("{}", apim_bench::fig4::render(&data));
    c.bench_function("fig4/generate", |b| b.iter(apim_bench::fig4::generate));
}

criterion_group!(benches, bench);
criterion_main!(benches);
