//! Regenerates Table 1 and measures one full quality + cost sweep.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rows = apim_bench::table1::generate();
    println!("{}", apim_bench::table1::render(&rows));
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("generate", |b| b.iter(apim_bench::table1::generate));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
