//! Figure 5, cross-validated: the same APIM-vs-GPU sweep with the GPU
//! costed by the **trace-driven memory-hierarchy simulator**
//! ([`apim_baselines::gpusim`]) instead of the analytic model.
//!
//! The paper used a modified multi2sim; this exhibit shows that replacing
//! our analytic GPU stand-in with an actual cache/DRAM simulation driven
//! by per-kernel address streams preserves the figure's shape: rising
//! curves, a capacity cliff, and APIM winning at the gigabyte scale.

use apim::{Apim, App, Comparison, PrecisionMode};
use apim_baselines::gpusim::{access::AccessPattern, GpuSim};

use crate::fig5::{Fig5Point, APPS, DATASET_SIZES};

/// One subplot with both GPU cost sources.
#[derive(Debug, Clone)]
pub struct Fig5SimSeries {
    /// The application.
    pub app: App,
    /// Points computed against the analytic GPU model.
    pub analytic: Vec<Fig5Point>,
    /// Points computed against the trace-driven simulator.
    pub trace_driven: Vec<Fig5Point>,
}

/// Generates the cross-validated sweep.
pub fn generate() -> Vec<Fig5SimSeries> {
    let apim = Apim::default();
    let sim = GpuSim::default();
    APPS.iter()
        .map(|&app| {
            let profile = apim::profile_of(app);
            let pattern = AccessPattern::for_app(profile.name);
            let mut analytic = Vec::new();
            let mut trace_driven = Vec::new();
            for &bytes in &DATASET_SIZES {
                let run = apim
                    .run_with_mode(app, bytes, PrecisionMode::Exact)
                    .expect("fits capacity");
                analytic.push(Fig5Point {
                    dataset_bytes: bytes,
                    energy_improvement: run.comparison.energy_improvement,
                    speedup: run.comparison.speedup,
                });
                let gpu = sim.run(&pattern, &profile, bytes).cost;
                let cmp = Comparison::against(&run.apim, gpu.time, gpu.energy);
                trace_driven.push(Fig5Point {
                    dataset_bytes: bytes,
                    energy_improvement: cmp.energy_improvement,
                    speedup: cmp.speedup,
                });
            }
            Fig5SimSeries {
                app,
                analytic,
                trace_driven,
            }
        })
        .collect()
}

/// Renders the cross-validation table.
pub fn render(series: &[Fig5SimSeries]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 5 cross-validation: GPU costed analytically vs by the trace-driven\n\
         cache/DRAM simulator (energy improvement / speedup, GPU = 1)\n",
    );
    out.push_str(&format!("{:<22}", "app (gpu model)"));
    for bytes in DATASET_SIZES {
        out.push_str(&format!("{:>13}", format!("{}M", bytes >> 20)));
    }
    out.push('\n');
    for s in series {
        for (label, points) in [("analytic", &s.analytic), ("trace-driven", &s.trace_driven)] {
            out.push_str(&format!("{:<22}", format!("{} ({label})", s.app.name())));
            for p in points {
                out.push_str(&format!(
                    "{:>13}",
                    format!("{:.1}/{:.2}", p.energy_improvement, p.speedup)
                ));
            }
            out.push('\n');
        }
    }
    out.push_str(
        "\nShape check: both GPU cost sources show the capacity cliff and rising\n\
         curves; Sobel/Robert/FFT cross over to APIM wins in both. DwtHaar1D's\n\
         purely streaming trace keeps the GPU competitive even at 1 GB — an honest\n\
         divergence between the two GPU models (see EXPERIMENTS.md).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_models_agree_on_the_shape() {
        let series = generate();
        let mut wins_at_1gb = 0;
        for s in &series {
            let first = &s.trace_driven[0];
            let last = &s.trace_driven[5];
            assert!(
                last.speedup > 1.8 * first.speedup,
                "{}: trace-driven speedup must grow ({} -> {})",
                s.app,
                first.speedup,
                last.speedup
            );
            assert!(s.analytic[5].speedup > 1.0, "{} analytic", s.app);
            if last.speedup > 1.0 {
                wins_at_1gb += 1;
            }
        }
        // The streaming-only DwtHaar1D trace keeps the GPU competitive (a
        // genuine modeling difference, noted in EXPERIMENTS.md); the other
        // apps must agree with the analytic crossover.
        assert!(wins_at_1gb >= 3, "only {wins_at_1gb} apps win at 1 GB");
    }

    #[test]
    fn models_agree_within_an_order_of_magnitude_at_1gb() {
        for s in generate() {
            let a = s.analytic[5].speedup;
            let t = s.trace_driven[5].speedup;
            let ratio = (a / t).max(t / a);
            assert!(
                ratio < 12.0,
                "{}: analytic {a:.2} vs trace-driven {t:.2}",
                s.app
            );
        }
    }

    #[test]
    fn render_shows_both_sources() {
        let text = render(&generate());
        assert!(text.contains("analytic"));
        assert!(text.contains("trace-driven"));
    }
}
