//! Figure 5 — energy consumption and speedup of exact APIM normalized to
//! GPU vs dataset size, for Sobel, Robert, FFT and DwtHaar1D.

use apim::{Apim, App, PrecisionMode};

/// Dataset sizes swept by the paper's figure (bytes). The paper labels the
/// axis 32M…1G.
pub const DATASET_SIZES: [u64; 6] = [32 << 20, 64 << 20, 128 << 20, 256 << 20, 512 << 20, 1 << 30];

/// The four applications of Figure 5(a)–(d).
pub const APPS: [App; 4] = [App::Sobel, App::Robert, App::Fft, App::DwtHaar1d];

/// One point of one subplot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Point {
    /// Dataset size, bytes.
    pub dataset_bytes: u64,
    /// GPU-normalized energy improvement.
    pub energy_improvement: f64,
    /// GPU-normalized speedup.
    pub speedup: f64,
}

/// One subplot (one application).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Series {
    /// The application.
    pub app: App,
    /// Points over [`DATASET_SIZES`].
    pub points: Vec<Fig5Point>,
}

/// Generates all four subplots.
pub fn generate() -> Vec<Fig5Series> {
    let apim = Apim::default();
    APPS.iter()
        .map(|&app| Fig5Series {
            app,
            points: DATASET_SIZES
                .iter()
                .map(|&bytes| {
                    let run = apim
                        .run_with_mode(app, bytes, PrecisionMode::Exact)
                        .expect("dataset fits the default capacity");
                    Fig5Point {
                        dataset_bytes: bytes,
                        energy_improvement: run.comparison.energy_improvement,
                        speedup: run.comparison.speedup,
                    }
                })
                .collect(),
        })
        .collect()
}

/// Renders the figure as aligned text.
pub fn render(series: &[Fig5Series]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 5: exact APIM vs GPU (energy improvement / speedup, GPU = 1) by dataset size\n",
    );
    out.push_str(&format!("{:<11}", "app"));
    for bytes in DATASET_SIZES {
        out.push_str(&format!("{:>14}", format!("{}M", bytes >> 20)));
    }
    out.push('\n');
    for s in series {
        out.push_str(&format!("{:<11}", s.app.name()));
        for p in &s.points {
            out.push_str(&format!(
                "{:>14}",
                format!("{:.1}/{:.2}", p.energy_improvement, p.speedup)
            ));
        }
        let speedups: Vec<f64> = s.points.iter().map(|p| p.speedup).collect();
        out.push_str(&format!("  {}", crate::chart::sparkline(&speedups)));
        out.push('\n');
    }
    out.push_str(
        "\nShape checks: both curves rise with dataset size; the speedup crossover\n\
         (APIM = GPU) falls between 128M and 256M (paper: ~200 MB); at 1G the best\n\
         app reaches ~28x energy / ~4.8x speedup (paper's headline).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_rise_with_dataset_size() {
        for s in generate() {
            for pair in s.points.windows(2) {
                assert!(
                    pair[1].energy_improvement >= 0.999 * pair[0].energy_improvement,
                    "{}: energy curve must not fall",
                    s.app
                );
            }
            // Inside the reuse capacity the GPU's fixed launch overhead
            // amortizes, so the speedup ratio may dip slightly; beyond the
            // capacity cliff it must rise monotonically (the paper's
            // regime), and the endpoint dominates the start.
            for pair in s.points[2..].windows(2) {
                assert!(
                    pair[1].speedup >= pair[0].speedup,
                    "{}: speedup must rise beyond 128M",
                    s.app
                );
            }
            assert!(
                s.points[5].speedup > 10.0 * s.points[0].speedup,
                "{}",
                s.app
            );
        }
    }

    #[test]
    fn crossover_falls_near_200mb() {
        for s in generate() {
            let at_128 = s.points[2].speedup;
            let at_1g = s.points[5].speedup;
            assert!(at_128 < 1.0, "{}: GPU must win at 128M ({at_128})", s.app);
            assert!(at_1g > 1.5, "{}: APIM must win at 1G ({at_1g})", s.app);
        }
    }

    #[test]
    fn headline_point_calibrated() {
        // "With 1GB dataset, the APIM design can achieve 28x energy
        // savings, 4.8x performance improvement" — the best application.
        let series = generate();
        let best_energy = series
            .iter()
            .map(|s| s.points[5].energy_improvement)
            .fold(0.0f64, f64::max);
        let best_speedup = series
            .iter()
            .map(|s| s.points[5].speedup)
            .fold(0.0f64, f64::max);
        assert!(
            (18.0..60.0).contains(&best_energy),
            "energy improvement at 1G: {best_energy}"
        );
        assert!(
            (3.5..7.0).contains(&best_speedup),
            "speedup at 1G: {best_speedup}"
        );
    }

    #[test]
    fn render_lists_all_apps() {
        let text = render(&generate());
        for app in APPS {
            assert!(text.contains(app.name()));
        }
    }
}
