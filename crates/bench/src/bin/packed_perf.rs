//! Measures the packed-vs-oracle backend speedup and writes
//! `BENCH_packed.json`.
//!
//! ```text
//! cargo run -p apim-bench --release --bin packed-perf            # full sizes
//! cargo run -p apim-bench --release --bin packed-perf -- --quick # CI smoke
//! ```
//!
//! In `--quick` mode the run additionally *gates*: it exits non-zero if the
//! packed backend is not at least 4x the oracle's NOR throughput at
//! 64-column width (skipped on single-core machines, where timing noise
//! dominates).

use apim_bench::perf;
use std::env;
use std::fs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let quick = env::args().any(|a| a == "--quick");
    let report = perf::generate(quick);
    print!("{}", perf::render(&report));
    if !quick {
        fs::write("BENCH_packed.json", perf::to_json(&report)).expect("write BENCH_packed.json");
        println!("wrote BENCH_packed.json");
    }

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if quick && cores >= 2 {
        let gate = report
            .nor
            .iter()
            .find(|r| r.width == 64)
            .expect("width-64 row");
        let speedup = gate.speedup();
        if speedup < 4.0 {
            eprintln!(
                "FAIL: packed NOR throughput only {speedup:.2}x oracle at width 64 (need >= 4x)"
            );
            return ExitCode::FAILURE;
        }
        println!("gate ok: packed NOR throughput {speedup:.1}x oracle at width 64 (>= 4x)");
    } else if quick {
        println!("gate skipped: {cores} core(s), timing too noisy");
    }
    ExitCode::SUCCESS
}
