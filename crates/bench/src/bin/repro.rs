//! Regenerates every table and figure of the APIM paper.
//!
//! ```text
//! cargo run -p apim-bench --bin repro --release            # everything
//! cargo run -p apim-bench --bin repro --release -- fig5    # one exhibit
//! ```

use apim_bench::{ablation, csv, fig4, fig5, fig5_sim, fig6, headline, table1};
use std::env;
use std::fs;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.iter().any(|a| a == "csv") {
        let dir = std::path::Path::new("repro_out");
        fs::create_dir_all(dir).expect("create repro_out/");
        fs::write(dir.join("fig4.csv"), csv::fig4_csv(&fig4::generate())).unwrap();
        fs::write(dir.join("fig5.csv"), csv::fig5_csv(&fig5::generate())).unwrap();
        fs::write(dir.join("fig6.csv"), csv::fig6_csv(&fig6::generate())).unwrap();
        fs::write(dir.join("table1.csv"), csv::table1_csv(&table1::generate())).unwrap();
        println!("wrote repro_out/{{fig4,fig5,fig6,table1}}.csv");
        return;
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    if want("fig4") {
        println!("{}", fig4::render(&fig4::generate()));
    }
    if want("fig5") {
        println!("{}", fig5::render(&fig5::generate()));
    }
    if want("fig5sim") {
        println!("{}", fig5_sim::render(&fig5_sim::generate()));
    }
    if want("fig6") {
        println!("{}", fig6::render(&fig6::generate()));
    }
    if want("table1") {
        println!("{}", table1::render(&table1::generate()));
    }
    if want("headline") {
        println!("{}", headline::render(&headline::generate()));
    }
    if want("ablation") {
        println!("{}", ablation::render(&ablation::generate()));
    }
}
