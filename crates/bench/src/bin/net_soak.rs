//! Sustained cluster-transport soak: pipelined multiplexed RPC vs the
//! blocking thread-per-connection baseline, on echo probes so the
//! measurement isolates transport cost. Writes `BENCH_net.json`.
//!
//! ```text
//! cargo run -p apim-bench --release --bin net-soak            # full soak
//! cargo run -p apim-bench --release --bin net-soak -- --quick # CI smoke
//! ```
//!
//! The full soak pushes 100k requests over 1000 concurrent logical
//! streams. Both modes *gate* on zero lost requests and bit-identical
//! checksums across transports; on multi-core machines they additionally
//! gate on pipelined p99 latency and on the pipelined transport clearing
//! at least 2x the blocking baseline's throughput (timing gates are
//! skipped on single-core machines, where scheduling noise dominates).

use apim_cluster::loadgen::{soak, SoakConfig, SoakReport};
use std::env;
use std::fs;
use std::process::ExitCode;

/// Pipelined p99 latency gate, µs. Generous — the soak keeps every
/// stream's request in flight, so queueing delay dominates — but low
/// enough to catch an event loop that stalls connections.
const P99_GATE_US: u64 = 200_000;
/// Required pipelined-over-blocking throughput ratio.
const SPEEDUP_GATE: f64 = 2.0;

fn render(report: &SoakReport) -> String {
    format!(
        "{} requests / {} streams: {:.0} req/s, p50 {} µs, p99 {} µs, \
         {} succeeded, {} rejected, {} lost, elapsed {:.3} s",
        report.offered,
        report.streams,
        report.throughput_rps,
        report.p50_us,
        report.p99_us,
        report.succeeded,
        report.rejected,
        report.lost,
        report.elapsed.as_secs_f64(),
    )
}

fn side_json(report: &SoakReport) -> String {
    format!(
        "{{\"throughput_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"succeeded\": {}, \
         \"rejected\": {}, \"lost\": {}, \"elapsed_s\": {:.3}, \"checksum\": \"{:#018x}\"}}",
        report.throughput_rps,
        report.p50_us,
        report.p99_us,
        report.succeeded,
        report.rejected,
        report.lost,
        report.elapsed.as_secs_f64(),
        report.checksum,
    )
}

fn to_json(pipelined: &SoakReport, blocking: &SoakReport, speedup: f64) -> String {
    format!(
        "{{\n  \"requests\": {},\n  \"streams\": {},\n  \"pipelined\": {},\n  \
         \"blocking\": {},\n  \"speedup\": {:.2},\n  \"checksum_match\": {}\n}}\n",
        pipelined.offered,
        pipelined.streams,
        side_json(pipelined),
        side_json(blocking),
        speedup,
        pipelined.checksum == blocking.checksum,
    )
}

fn main() -> ExitCode {
    let quick = env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let (requests, streams) = if quick {
        (5_000, 200)
    } else {
        (100_000, 1_000)
    };
    let config = SoakConfig {
        requests,
        streams,
        nodes: 2,
        workers: 2,
        pipelined: true,
        driver_threads: cores.clamp(2, 8),
    };

    let pipelined = soak(&config).expect("pipelined soak");
    println!("pipelined  {}", render(&pipelined));
    let blocking = soak(&SoakConfig {
        pipelined: false,
        ..config.clone()
    })
    .expect("blocking soak");
    println!("blocking   {}", render(&blocking));
    let speedup = pipelined.throughput_rps / blocking.throughput_rps.max(1e-9);
    println!("pipelined/blocking throughput: {speedup:.2}x");

    if !quick {
        fs::write("BENCH_net.json", to_json(&pipelined, &blocking, speedup))
            .expect("write BENCH_net.json");
        println!("wrote BENCH_net.json");
    }

    // Correctness gates hold on any machine.
    if !pipelined.passed() || !blocking.passed() {
        eprintln!("FAIL: soak lost or rejected requests\n{pipelined}\n{blocking}");
        return ExitCode::FAILURE;
    }
    if pipelined.checksum != blocking.checksum {
        eprintln!(
            "FAIL: transports disagree: pipelined checksum {:#018x} != blocking {:#018x}",
            pipelined.checksum, blocking.checksum
        );
        return ExitCode::FAILURE;
    }
    println!("gate ok: zero lost on both transports, checksums bit-identical");

    // Timing gates need real parallelism to mean anything.
    if cores >= 2 {
        if pipelined.p99_us > P99_GATE_US {
            eprintln!(
                "FAIL: pipelined p99 {} µs exceeds gate {} µs",
                pipelined.p99_us, P99_GATE_US
            );
            return ExitCode::FAILURE;
        }
        if speedup < SPEEDUP_GATE {
            eprintln!(
                "FAIL: pipelined throughput only {speedup:.2}x blocking (need >= {SPEEDUP_GATE}x)"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "gate ok: p99 {} µs <= {} µs, throughput {:.2}x >= {}x blocking",
            pipelined.p99_us, P99_GATE_US, speedup, SPEEDUP_GATE
        );
    } else {
        println!("timing gates skipped: {cores} core(s), scheduling noise dominates");
    }
    ExitCode::SUCCESS
}
