//! Measures the compiled transcendental microkernels and writes
//! `BENCH_math.json`.
//!
//! ```text
//! cargo run -p apim-bench --release --bin math-bench
//! ```
//!
//! The run *gates*: it exits non-zero if the FFT-on-compiled-twiddles MRE
//! reaches 10%, if the compiled `1/√2` misses the hand constant, or if
//! the compiled Haar level diverges from the hand kernel.

use apim_bench::mathbench;
use std::fs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let bench = mathbench::generate();
    print!("{}", mathbench::render(&bench));
    fs::write("BENCH_math.json", mathbench::to_json(&bench)).expect("write BENCH_math.json");
    println!("wrote BENCH_math.json");

    if bench.fft_mre >= 0.10 {
        eprintln!(
            "FAIL: FFT on the compiled twiddle ROM has MRE {:.4} (need < 0.10)",
            bench.fft_mre
        );
        return ExitCode::FAILURE;
    }
    if !bench.inv_sqrt2_exact {
        eprintln!(
            "FAIL: compiled 1/sqrt2 = {} (expected 23170)",
            bench.inv_sqrt2
        );
        return ExitCode::FAILURE;
    }
    if !bench.haar_identical {
        eprintln!("FAIL: compiled Haar level diverges from the hand kernel");
        return ExitCode::FAILURE;
    }
    println!(
        "gate ok: fft mre {:.4} < 0.10, haar scale exact, haar level bit-identical",
        bench.fft_mre
    );
    ExitCode::SUCCESS
}
