//! Measures the lane-batched vs serial compiled-kernel speedup and writes
//! `BENCH_simd.json`.
//!
//! ```text
//! cargo run -p apim-bench --release --bin simd-perf              # full sizes
//! cargo run -p apim-bench --release --bin simd-perf -- --quick   # CI smoke
//! cargo run -p apim-bench --release --bin simd-perf -- --batch N # lane count
//! ```
//!
//! The run always *gates* on the deterministic cycles-per-instance metric:
//! it exits non-zero if the 64-lane batched kernels are not at least 10x
//! the serial baseline. Wall-clock numbers are reported informatively on
//! multi-core machines only (elsewhere timing noise dominates).

use apim_bench::simd;
use std::env;
use std::fs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut lanes = simd::LANES;
    if let Some(i) = args.iter().position(|a| a == "--batch") {
        match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if (1..=64).contains(&n) => lanes = n,
            _ => {
                eprintln!("--batch expects a lane count in 1..=64");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = simd::generate(quick, lanes);
    print!("{}", simd::render(&report));
    if !quick && lanes == simd::LANES {
        fs::write("BENCH_simd.json", simd::to_json(&report)).expect("write BENCH_simd.json");
        println!("wrote BENCH_simd.json");
    }

    for row in &report.rows {
        let speedup = row.cycle_speedup();
        if lanes < 16 {
            // Small batches can't reach the 64-lane bar; report only.
            println!(
                "{}: cycles-per-instance speedup {speedup:.1}x at {} lanes (gate needs >= 16 lanes)",
                row.name, row.lanes
            );
            continue;
        }
        if speedup < 10.0 {
            eprintln!(
                "FAIL: {} cycles-per-instance speedup only {speedup:.2}x at {} lanes (need >= 10x)",
                row.name, row.lanes
            );
            return ExitCode::FAILURE;
        }
        println!(
            "gate ok: {} cycles-per-instance speedup {speedup:.1}x at {} lanes (>= 10x)",
            row.name, row.lanes
        );
    }

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores >= 2 {
        // Informative only: the host simulator chews the same total
        // bit-work either way — the 64x is in the modeled hardware cycles.
        for row in &report.rows {
            println!(
                "wall-clock: {} batched image loop {} serial",
                row.name,
                apim_bench::times(row.wall_speedup())
            );
        }
    } else {
        println!("wall-clock report skipped: {cores} core(s), timing too noisy");
    }
    ExitCode::SUCCESS
}
