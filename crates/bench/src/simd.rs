//! Lane-batched vs serial compiled-kernel measurement (the
//! `BENCH_simd.json` exhibit).
//!
//! The serial compiler runs one pixel per microprogram pass; the
//! lane-batched backend ([`apim_compile::compile_batched`]) interleaves up
//! to 64 pixels across the bitlines and runs them all in (almost) the same
//! pass. Two families of numbers per kernel:
//!
//! * **Modeled cycles per instance** — the crossbar-charged cycle counts,
//!   which are deterministic: `lanes × serial-pass cycles` vs one batched
//!   pass. This is the number the ≥10x CI gate checks.
//! * **Wall-clock** — the full image-processing loops
//!   ([`apim_workloads::dags::sharpen_via_dag`] vs its `_batched` twin),
//!   reported informatively (host-side simulation speed, noisy under CI).
//!
//! Used by the `simd-perf` binary (which writes `BENCH_simd.json`) and the
//! CI perf-smoke gate.

use apim_compile::{compile, compile_batched, CompileOptions};
use apim_workloads::dags;
use apim_workloads::image::{synthetic_image, Image};
use std::collections::HashMap;
use std::time::Instant;

/// Lanes the exhibit batches across: one pixel per bit of a packed word.
pub const LANES: usize = 64;

/// One kernel's serial-vs-batched comparison.
#[derive(Debug, Clone)]
pub struct SimdRow {
    /// Kernel name (`sharpen` / `sobel`).
    pub name: &'static str,
    /// Instances per batched pass.
    pub lanes: usize,
    /// Pixels in the wall-clock image loops.
    pub pixels: usize,
    /// Crossbar cycles one serial pass charges for one pixel (for Sobel:
    /// both gradient passes).
    pub serial_cycles_per_pixel: u64,
    /// Crossbar cycles one batched pass charges for a whole
    /// `lanes`-pixel tile.
    pub batched_cycles_per_tile: u64,
    /// Serial image loop wall-clock, seconds.
    pub serial_secs: f64,
    /// Batched image loop wall-clock, seconds.
    pub batched_secs: f64,
}

impl SimdRow {
    /// Deterministic cycles-per-instance speedup:
    /// `lanes × serial / batched`.
    pub fn cycle_speedup(&self) -> f64 {
        (self.lanes as f64 * self.serial_cycles_per_pixel as f64)
            / self.batched_cycles_per_tile as f64
    }

    /// Host wall-clock speedup of the batched image loop.
    pub fn wall_speedup(&self) -> f64 {
        self.serial_secs / self.batched_secs
    }
}

/// The whole lane-batched exhibit.
#[derive(Debug, Clone)]
pub struct SimdPerf {
    /// One row per kernel.
    pub rows: Vec<SimdRow>,
}

fn tile_bindings(inputs: &[&str], lanes: usize) -> Vec<HashMap<String, u64>> {
    (0..lanes as u64)
        .map(|j| {
            inputs
                .iter()
                .enumerate()
                .map(|(i, n)| (n.to_string(), 7 * i as u64 + 3 * j + 1))
                .collect()
        })
        .collect()
}

/// Deterministic cycle counts for one kernel: (serial pass, batched tile
/// pass). Multiplies by `passes` for kernels that run the program more
/// than once per pixel (Sobel's two gradients).
fn cycle_counts(dag: &apim_compile::Dag, lanes: usize, passes: u64) -> (u64, u64) {
    let options = CompileOptions::default();
    let serial = compile(dag, &options).expect("kernel compiles");
    let names: Vec<&str> = serial.dag().inputs().to_vec();
    let serial_cycles = serial
        .run(&tile_bindings(&names, 1)[0])
        .expect("serial pass")
        .cycles;
    let batched = compile_batched(dag, &options, lanes).expect("kernel batches");
    let batched_cycles = batched
        .run(&tile_bindings(&names, lanes))
        .expect("batched pass")
        .cycles;
    (passes * serial_cycles, passes * batched_cycles)
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let started = Instant::now();
    let out = f();
    (out, started.elapsed().as_secs_f64())
}

/// Measures the sharpen kernel: serial per-pixel loop vs `lanes`-pixel
/// tiles over the same synthetic image (outputs checked identical — the
/// serial path is the differential oracle).
pub fn sharpen_row(side: usize, lanes: usize) -> SimdRow {
    let img = synthetic_image(side, side, 7);
    let (serial_out, serial_secs) = timed(|| dags::sharpen_via_dag(&img).expect("serial sharpen"));
    let (batched_out, batched_secs) =
        timed(|| dags::sharpen_via_dag_batched(&img, lanes).expect("batched sharpen"));
    assert_eq!(serial_out, batched_out, "batched sharpen diverged");
    let (serial_cycles_per_pixel, batched_cycles_per_tile) =
        cycle_counts(&dags::sharpen_dag(), lanes, 1);
    SimdRow {
        name: "sharpen",
        lanes,
        pixels: side * side,
        serial_cycles_per_pixel,
        batched_cycles_per_tile,
        serial_secs,
        batched_secs,
    }
}

/// Measures the Sobel kernel (both gradient passes per pixel/tile), serial
/// vs batched over the same synthetic image.
pub fn sobel_row(side: usize, lanes: usize) -> SimdRow {
    let img = synthetic_image(side, side, 7);
    let (serial_out, serial_secs) = timed(|| sobel_serial(&img));
    let (batched_out, batched_secs) =
        timed(|| dags::sobel_via_dag_batched(&img, lanes).expect("batched sobel"));
    assert_eq!(serial_out, batched_out, "batched sobel diverged");
    let (serial_cycles_per_pixel, batched_cycles_per_tile) =
        cycle_counts(&dags::sobel_gradient_dag(), lanes, 2);
    SimdRow {
        name: "sobel",
        lanes,
        pixels: side * side,
        serial_cycles_per_pixel,
        batched_cycles_per_tile,
        serial_secs,
        batched_secs,
    }
}

/// The serial Sobel oracle: per-pixel gradient passes assembled into the
/// same magnitude image the batched driver produces.
fn sobel_serial(img: &Image) -> Image {
    use apim_workloads::arith::FX_SHIFT;
    let program =
        compile(&dags::sobel_gradient_dag(), &CompileOptions::default()).expect("sobel compiles");
    let (w, h) = (img.width(), img.height());
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let (gx, gy) = dags::sobel_gradients_via_dag(&program, img, x, y).expect("sobel pixel");
            let mag = ((gx.abs() + gy.abs()) >> FX_SHIFT).clamp(0, i64::from(i32::MAX));
            out.push(mag as i32);
        }
    }
    Image::new(w, h, out)
}

/// Generates the full exhibit at `lanes` instances per pass. `quick`
/// shrinks the image side for CI smoke runs; the recorded
/// `BENCH_simd.json` uses the full size (one exact 64-pixel tile per
/// kernel) at [`LANES`].
pub fn generate(quick: bool, lanes: usize) -> SimdPerf {
    let side = if quick { 4 } else { 8 };
    SimdPerf {
        rows: vec![sharpen_row(side, lanes), sobel_row(side, lanes)],
    }
}

/// Renders the exhibit as the README's speedup table.
pub fn render(perf: &SimdPerf) -> String {
    let mut out = String::new();
    out.push_str("lane-batched vs serial compiled kernels\n");
    out.push_str("| kernel | serial cycles/px | batched cycles/tile | cycles/instance speedup | wall-clock |\n");
    out.push_str("|---|---|---|---|---|\n");
    for row in &perf.rows {
        out.push_str(&format!(
            "| {} x{} ({}px) | {} | {} | {} | {} |\n",
            row.name,
            row.lanes,
            row.pixels,
            row.serial_cycles_per_pixel,
            row.batched_cycles_per_tile,
            crate::times(row.cycle_speedup()),
            crate::times(row.wall_speedup()),
        ));
    }
    out
}

/// Serializes the exhibit as `BENCH_simd.json` (serial = before, batched =
/// after; no external JSON dependency, so formatted by hand).
pub fn to_json(perf: &SimdPerf) -> String {
    let mut out = String::from("{\n  \"exhibit\": \"lane-batched vs serial compiled kernels\",\n");
    out.push_str("  \"gate\": \"cycles-per-instance speedup >= 10x at 64 lanes\",\n");
    out.push_str("  \"kernels\": [\n");
    for (i, r) in perf.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"lanes\": {}, \"pixels\": {}, \
             \"before_cycles_per_instance\": {}, \"after_cycles_per_instance\": {:.2}, \
             \"cycle_speedup\": {:.2}, \"before_secs\": {:.4}, \"after_secs\": {:.4}, \
             \"wall_speedup\": {:.2}}}{}\n",
            r.name,
            r.lanes,
            r.pixels,
            r.serial_cycles_per_pixel,
            r.batched_cycles_per_tile as f64 / r.lanes as f64,
            r.cycle_speedup(),
            r.serial_secs,
            r.batched_secs,
            r.wall_speedup(),
            if i + 1 < perf.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_gates_and_serializes() {
        let row = sharpen_row(4, 8);
        assert_eq!(row.pixels, 16);
        assert!(row.serial_cycles_per_pixel > 0);
        // Even 8 lanes clear the 10x bar at one pass per tile.
        assert!(row.cycle_speedup() > 7.0, "{:.2}", row.cycle_speedup());
        let perf = SimdPerf { rows: vec![row] };
        let json = to_json(&perf);
        assert!(json.contains("\"cycle_speedup\""));
        assert!(render(&perf).contains("sharpen"));
    }
}
