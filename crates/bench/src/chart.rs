//! Minimal ASCII charts for terminal-friendly figure rendering.

/// Renders a horizontal bar chart. Bars scale linearly to `width`
/// characters against the maximum value.
///
/// ```
/// use apim_bench::chart::bar_chart;
/// let text = bar_chart(
///     "speedup",
///     &[("a".into(), 1.0), ("b".into(), 2.0)],
///     10,
/// );
/// assert!(text.contains("a"));
/// assert!(text.lines().count() >= 3);
/// ```
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut out = format!("{title}\n");
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN_POSITIVE, f64::max);
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let bar_len = ((value / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "  {label:<label_width$} |{:<width$}| {value:.2}\n",
            "#".repeat(bar_len.min(width)),
        ));
    }
    out
}

/// Renders a log-scale bar chart (useful for Figure 6's cycle counts,
/// which span two orders of magnitude). Zero/negative values render as
/// empty bars.
pub fn log_bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let logs: Vec<(String, f64)> = rows
        .iter()
        .map(|(l, v)| (l.clone(), if *v > 1.0 { v.log10() } else { 0.0 }))
        .collect();
    let mut out = bar_chart(title, &logs, width);
    out.push_str("  (bar length ~ log10 of the value)\n");
    out
}

/// A sparkline over a numeric series using eighth-block glyphs.
///
/// ```
/// use apim_bench::chart::sparkline;
/// let s = sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
    values
        .iter()
        .map(|v| {
            let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            GLYPHS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_the_maximum() {
        let text = bar_chart("t", &[("x".into(), 5.0), ("y".into(), 10.0)], 20);
        let lines: Vec<&str> = text.lines().collect();
        let count = |l: &str| l.matches('#').count();
        assert_eq!(count(lines[1]), 10);
        assert_eq!(count(lines[2]), 20);
    }

    #[test]
    fn labels_align() {
        let text = bar_chart(
            "t",
            &[("short".into(), 1.0), ("a-longer-label".into(), 1.0)],
            5,
        );
        let lines: Vec<&str> = text.lines().collect();
        let bar_start = |l: &str| l.find('|').unwrap();
        assert_eq!(bar_start(lines[1]), bar_start(lines[2]));
    }

    #[test]
    fn log_chart_compresses_magnitudes() {
        let text = log_bar_chart("t", &[("small".into(), 10.0), ("big".into(), 10_000.0)], 40);
        let lines: Vec<&str> = text.lines().collect();
        let count = |l: &str| l.matches('#').count();
        // log10: 1 vs 4 -> quarter-length bar, not 1/1000.
        assert_eq!(count(lines[1]) * 4, count(lines[2]));
    }

    #[test]
    fn sparkline_peaks_at_the_max() {
        let s = sparkline(&[1.0, 2.0, 8.0]);
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }
}
