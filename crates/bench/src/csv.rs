//! CSV export of every exhibit — plot-ready data without extra
//! dependencies.

use crate::{fig4, fig5, fig6, table1};
use std::fmt::Write as _;

/// Figure 4 as CSV: `series,knob_bits,edp_joule_seconds,error_percent`.
pub fn fig4_csv(data: &fig4::Fig4Data) -> String {
    let mut out = String::from("series,knob_bits,edp_joule_seconds,error_percent\n");
    for p in &data.first_stage {
        let _ = writeln!(
            out,
            "first_stage,{},{:e},{:e}",
            p.mode.masked_multiplier_bits(),
            p.edp_joule_seconds,
            p.error_percent
        );
    }
    for p in &data.last_stage {
        let _ = writeln!(
            out,
            "last_stage,{},{:e},{:e}",
            p.mode.relaxed_product_bits(),
            p.edp_joule_seconds,
            p.error_percent
        );
    }
    out
}

/// Figure 5 as CSV: `app,dataset_mb,energy_improvement,speedup`.
pub fn fig5_csv(series: &[fig5::Fig5Series]) -> String {
    let mut out = String::from("app,dataset_mb,energy_improvement,speedup\n");
    for s in series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                s.app.name(),
                p.dataset_bytes >> 20,
                p.energy_improvement,
                p.speedup
            );
        }
    }
    out
}

/// Figure 6 as CSV: `n,magic_24,pc_adder_25,apim_exact,apim_999`.
pub fn fig6_csv(rows: &[fig6::Fig6Row]) -> String {
    let mut out = String::from("n,magic_24,pc_adder_25,apim_exact,apim_999\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            r.n,
            r.magic_cycles.get(),
            r.pc_adder_cycles.get(),
            r.apim_exact_cycles.get(),
            r.apim_approx_cycles.get()
        );
    }
    out
}

/// Table 1 as CSV: `app,relax_bits,edp_improvement,qol_percent,acceptable`.
pub fn table1_csv(rows: &[table1::Table1Row]) -> String {
    let mut out = String::from("app,relax_bits,edp_improvement,qol_percent,acceptable\n");
    for row in rows {
        for cell in &row.cells {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                row.app.name(),
                cell.relax_bits,
                cell.edp_improvement,
                cell.qol_percent,
                cell.acceptable
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_csv_has_header_and_rows() {
        let csv = fig6_csv(&fig6::generate());
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "n,magic_24,pc_adder_25,apim_exact,apim_999"
        );
        assert_eq!(csv.lines().count(), 1 + fig6::N_VALUES.len());
    }

    #[test]
    fn fig5_csv_covers_all_points() {
        let csv = fig5_csv(&fig5::generate());
        assert_eq!(
            csv.lines().count(),
            1 + fig5::APPS.len() * fig5::DATASET_SIZES.len()
        );
        assert!(csv.contains("Sobel,1024,"));
    }

    #[test]
    fn fig4_csv_tags_both_series() {
        let csv = fig4_csv(&fig4::generate());
        assert!(csv.contains("first_stage,32,"));
        assert!(csv.contains("last_stage,64,"));
    }

    #[test]
    fn table1_csv_has_36_cells() {
        let csv = table1_csv(&table1::generate());
        assert_eq!(csv.lines().count(), 1 + 36);
        assert!(csv.lines().skip(1).all(|l| l.split(',').count() == 5));
    }
}
