//! Table 1 — "Quality of loss and EDP improvement of the proposed APIM
//! compared to GPU in different level of approximation".
//!
//! Six applications × relax levels {0, 4, 8, 16, 24, 32}: the EDP column
//! comes from the analytic executor at the 1 GB operating point; the QoL
//! column is *measured* by running each kernel with bit-exact approximate
//! arithmetic against its golden output.

use apim::{Apim, App, PrecisionMode};

/// The approximation levels of the paper's table (relaxed product LSBs).
pub const RELAX_LEVELS: [u8; 6] = [0, 4, 8, 16, 24, 32];

/// Dataset size the EDP columns are evaluated at.
pub const DATASET_BYTES: u64 = 1 << 30;

/// One (application, level) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Cell {
    /// Relaxed bits.
    pub relax_bits: u8,
    /// EDP improvement over the GPU baseline.
    pub edp_improvement: f64,
    /// Measured quality loss, percent.
    pub qol_percent: f64,
    /// Whether the application's QoS criterion still holds.
    pub acceptable: bool,
}

/// One application row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The application.
    pub app: App,
    /// Cells over [`RELAX_LEVELS`].
    pub cells: Vec<Table1Cell>,
}

/// Generates the full table.
pub fn generate() -> Vec<Table1Row> {
    let apim = Apim::default();
    App::all()
        .iter()
        .map(|&app| Table1Row {
            app,
            cells: RELAX_LEVELS
                .iter()
                .map(|&m| {
                    let run = apim
                        .run_with_mode(
                            app,
                            DATASET_BYTES,
                            PrecisionMode::LastStage { relax_bits: m },
                        )
                        .expect("1 GB fits the default capacity");
                    Table1Cell {
                        relax_bits: m,
                        edp_improvement: run.comparison.edp_improvement,
                        qol_percent: run.quality.qol_percent,
                        acceptable: run.quality.acceptable,
                    }
                })
                .collect(),
        })
        .collect()
}

/// Renders the table as aligned text (same layout as the paper's Table 1).
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 1: QoL and EDP improvement vs GPU at {} MB, per approximation level\n",
        DATASET_BYTES >> 20
    ));
    out.push_str(&format!("{:<11}", "app"));
    for m in RELAX_LEVELS {
        out.push_str(&format!("{:>11} {:>8}", format!("{m}b EDP"), "QoL"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<11}", row.app.name()));
        for cell in &row.cells {
            out.push_str(&format!(
                "{:>11} {:>7.2}%",
                crate::times(cell.edp_improvement),
                cell.qol_percent
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "\nShape checks: EDP improvement grows monotonically with the relax level while\n\
         QoL degrades monotonically; the exact column spans ~70-200x (paper: 69-203x)\n\
         and the 32-bit column ~240-810x (paper: 386-968x).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_grows_and_qol_degrades_monotonically() {
        for row in generate() {
            for pair in row.cells.windows(2) {
                assert!(
                    pair[1].edp_improvement > pair[0].edp_improvement,
                    "{}: EDP must grow with relaxation",
                    row.app
                );
                assert!(
                    pair[1].qol_percent >= pair[0].qol_percent - 1e-9,
                    "{}: QoL must not improve with relaxation",
                    row.app
                );
            }
        }
    }

    #[test]
    fn exact_column_matches_paper_band() {
        // Paper row starts: 94, 177, 203, 90, 104, 69.
        let rows = generate();
        for row in &rows {
            let edp0 = row.cells[0].edp_improvement;
            assert!(
                (50.0..260.0).contains(&edp0),
                "{}: exact EDP improvement {edp0}",
                row.app
            );
            assert_eq!(
                row.cells[0].qol_percent, 0.0,
                "{}: exact is lossless",
                row.app
            );
        }
        let min = rows
            .iter()
            .map(|r| r.cells[0].edp_improvement)
            .fold(f64::INFINITY, f64::min);
        let max = rows
            .iter()
            .map(|r| r.cells[0].edp_improvement)
            .fold(0.0f64, f64::max);
        assert!(
            max / min > 1.8,
            "apps must spread as in the paper ({min}..{max})"
        );
    }

    #[test]
    fn full_relaxation_multiplies_edp_gain() {
        for row in generate() {
            let gain = row.cells[5].edp_improvement / row.cells[0].edp_improvement;
            assert!(
                gain > 2.0,
                "{}: relaxing 32 bits must multiply the EDP gain (got {gain:.2})",
                row.app
            );
        }
    }

    #[test]
    fn moderate_levels_stay_acceptable() {
        for row in generate() {
            assert!(row.cells[0].acceptable, "{} exact", row.app);
            assert!(row.cells[1].acceptable, "{} @4b", row.app);
            assert!(row.cells[2].acceptable, "{} @8b", row.app);
        }
    }

    #[test]
    fn render_contains_all_apps_and_levels() {
        let text = render(&generate());
        for app in App::all() {
            assert!(text.contains(app.name()));
        }
        assert!(text.contains("32b EDP"));
    }
}
