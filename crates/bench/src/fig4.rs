//! Figure 4 — "% Error vs EDP" for first-stage vs last-stage approximation
//! of a 32×32 multiplication.
//!
//! Reproduces the paper's comparison: sweeping each approach's knob traces
//! an (EDP, error) curve; at comparable EDP the last-stage approach is
//! orders of magnitude more accurate.

use apim::{ApimConfig, DeviceParams, PrecisionMode};
use apim_logic::error_analysis::multiplier_error;
use apim_logic::CostModel;

/// One point of a Figure 4 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// The precision mode swept to.
    pub mode: PrecisionMode,
    /// Energy-delay product of one expected 32×32 multiplication, J·s.
    pub edp_joule_seconds: f64,
    /// Mean relative error, percent (Monte-Carlo over random operands).
    pub error_percent: f64,
}

/// The two series of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Data {
    /// First-stage approximation sweep (masked multiplier bits 0..=32).
    pub first_stage: Vec<Fig4Point>,
    /// Last-stage approximation sweep (relaxed product bits 0..=64).
    pub last_stage: Vec<Fig4Point>,
}

const OPERAND_BITS: u32 = 32;
const SAMPLES: u32 = 400;
const SEED: u64 = 0xF164;

fn point(model: &CostModel, mode: PrecisionMode) -> Fig4Point {
    let cost = model.multiply_expected(OPERAND_BITS, mode);
    let stats = multiplier_error(OPERAND_BITS, mode, SAMPLES, SEED);
    Fig4Point {
        mode,
        edp_joule_seconds: model.edp(cost).as_joule_seconds(),
        error_percent: 100.0 * stats.mean_relative,
    }
}

/// Generates both series.
pub fn generate() -> Fig4Data {
    let model = CostModel::new(&ApimConfig::default().params);
    let _ = DeviceParams::default();
    let first_stage = (0..=32)
        .step_by(2)
        .map(|f| {
            point(
                &model,
                PrecisionMode::FirstStage {
                    masked_bits: f as u8,
                },
            )
        })
        .collect();
    let last_stage = (0..=64)
        .step_by(4)
        .map(|m| {
            point(
                &model,
                PrecisionMode::LastStage {
                    relax_bits: m as u8,
                },
            )
        })
        .collect();
    Fig4Data {
        first_stage,
        last_stage,
    }
}

/// Renders the figure as aligned text.
pub fn render(data: &Fig4Data) -> String {
    let mut out = String::new();
    out.push_str("Figure 4: error vs EDP of the two approximation approaches (32x32 multiply)\n");
    out.push_str(&format!(
        "{:<36} {:>14} {:>14}\n",
        "mode", "EDP (J.s)", "error (%)"
    ));
    for (label, series) in [
        ("first-stage", &data.first_stage),
        ("last-stage", &data.last_stage),
    ] {
        out.push_str(&format!("-- {label} approximation --\n"));
        for p in series {
            out.push_str(&format!(
                "{:<36} {:>14.4e} {:>14.4e}\n",
                p.mode.to_string(),
                p.edp_joule_seconds,
                p.error_percent
            ));
        }
    }
    out.push_str(&format!(
        "\nAt matched EDP the last-stage error is lower by >= {:.0e}x (paper: ~5 orders of magnitude).\n",
        accuracy_advantage(data)
    ));
    out
}

/// The paper's claim quantified: for each last-stage point, find a
/// first-stage point of comparable (or lower) EDP and compare errors;
/// returns the best error ratio (first / last).
pub fn accuracy_advantage(data: &Fig4Data) -> f64 {
    let mut best: f64 = 1.0;
    for ls in &data.last_stage {
        if ls.error_percent <= 0.0 {
            continue;
        }
        for fs in &data.first_stage {
            if fs.edp_joule_seconds <= ls.edp_joule_seconds && fs.error_percent > 0.0 {
                best = best.max(fs.error_percent / ls.error_percent);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_series_are_monotone_in_their_knob() {
        let data = generate();
        // EDP decreases as approximation deepens.
        for series in [&data.first_stage, &data.last_stage] {
            for pair in series.windows(2) {
                assert!(pair[1].edp_joule_seconds <= pair[0].edp_joule_seconds + 1e-30);
            }
        }
        // Exact endpoints have zero error.
        assert_eq!(data.first_stage[0].error_percent, 0.0);
        assert_eq!(data.last_stage[0].error_percent, 0.0);
    }

    #[test]
    fn last_stage_is_orders_of_magnitude_more_accurate() {
        let advantage = accuracy_advantage(&generate());
        assert!(
            advantage > 1e3,
            "last-stage accuracy advantage only {advantage:.1e}"
        );
    }

    #[test]
    fn render_contains_both_series() {
        let text = render(&generate());
        assert!(text.contains("first-stage"));
        assert!(text.contains("last-stage"));
        assert!(text.contains("EDP"));
    }
}
