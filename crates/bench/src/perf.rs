//! Packed-vs-oracle performance measurement (the `BENCH_packed.json`
//! exhibit).
//!
//! The bit-packed backend is supposed to make the *simulator* as
//! column-parallel as the hardware it models; this module measures by how
//! much. Two families of numbers:
//!
//! * **NOR throughput** — tight init+NOR loops at fixed widths on the
//!   packed backend vs the scalar oracle ([`Backend::Scalar`]), in NOR
//!   invocations per second.
//! * **End-to-end kernels** — the compiled sharpen / sobel inner loops
//!   executed at the gate level over a synthetic image, wall-clock per
//!   backend.
//!
//! Used by the `crossbar_packed` criterion bench, the `packed-perf` binary
//! (which writes `BENCH_packed.json`) and the CI perf-smoke gate.

use apim_compile::{compile, CompileOptions};
use apim_crossbar::{Backend, BlockedCrossbar, CrossbarConfig, RowRef};
use apim_workloads::dags;
use apim_workloads::image::synthetic_image;
use std::collections::HashMap;
use std::time::Instant;

/// One width's NOR-throughput comparison.
#[derive(Debug, Clone)]
pub struct NorRow {
    /// Columns per NOR (the paper's "width-independent" axis).
    pub width: usize,
    /// NOR invocations per iteration loop.
    pub iters: u64,
    /// Packed-backend throughput, NOR invocations / second.
    pub packed_ops_per_sec: f64,
    /// Scalar-oracle throughput, NOR invocations / second.
    pub oracle_ops_per_sec: f64,
}

impl NorRow {
    /// Packed-over-oracle speedup.
    pub fn speedup(&self) -> f64 {
        self.packed_ops_per_sec / self.oracle_ops_per_sec
    }
}

/// One end-to-end kernel comparison (compiled DAG at the gate level).
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name (`sharpen` / `sobel`).
    pub name: &'static str,
    /// Pixels executed.
    pub pixels: usize,
    /// Packed-backend wall-clock, seconds.
    pub packed_secs: f64,
    /// Scalar-oracle wall-clock, seconds.
    pub oracle_secs: f64,
}

impl KernelRow {
    /// Packed-over-oracle speedup.
    pub fn speedup(&self) -> f64 {
        self.oracle_secs / self.packed_secs
    }
}

/// The whole packed-vs-oracle exhibit.
#[derive(Debug, Clone)]
pub struct PackedPerf {
    /// NOR microbenchmark rows, one per width.
    pub nor: Vec<NorRow>,
    /// End-to-end kernel rows.
    pub kernels: Vec<KernelRow>,
}

/// Measures NOR-invocation throughput on one backend: a tight
/// init-then-NOR loop (two inputs, same block) at the given width,
/// the crossbar sized so the span crosses word boundaries when `width`
/// does.
pub fn nor_ops_per_sec(backend: Backend, width: usize, iters: u64) -> f64 {
    let mut x = BlockedCrossbar::new(CrossbarConfig {
        blocks: 2,
        rows: 16,
        cols: width,
        backend,
        ..CrossbarConfig::default()
    })
    .expect("bench config");
    let b = x.block(0).expect("block 0");
    // Non-trivial operands so the fold has real bit patterns to chew on.
    for row in 0..2 {
        for col in (row..width).step_by(3) {
            x.preload_bit(b, row, col, true).expect("preload");
        }
    }
    let started = Instant::now();
    for i in 0..iters {
        let out = 2 + (i % 8) as usize;
        x.init_rows(b, &[out], 0..width).expect("init");
        x.nor_rows_shifted(
            &[RowRef::new(b, 0), RowRef::new(b, 1)],
            RowRef::new(b, out),
            0..width,
            0,
        )
        .expect("nor");
    }
    iters as f64 / started.elapsed().as_secs_f64()
}

/// Compares packed vs oracle NOR throughput at one width.
pub fn nor_row(width: usize, iters: u64) -> NorRow {
    NorRow {
        width,
        iters,
        packed_ops_per_sec: nor_ops_per_sec(Backend::Packed, width, iters),
        oracle_ops_per_sec: nor_ops_per_sec(Backend::Scalar, width, iters / 8 + 1),
    }
}

fn options(backend: Backend) -> CompileOptions {
    CompileOptions {
        config: CrossbarConfig {
            backend,
            ..CrossbarConfig::default()
        },
        ..CompileOptions::default()
    }
}

/// Wall-clock seconds for the compiled sharpen inner loop over every pixel
/// of a `side × side` synthetic image on one backend.
pub fn sharpen_secs(backend: Backend, side: usize) -> f64 {
    let program = compile(&dags::sharpen_dag(), &options(backend)).expect("sharpen compiles");
    let img = synthetic_image(side, side, 7);
    let started = Instant::now();
    for y in 0..side as isize {
        for x in 0..side as isize {
            let inputs: HashMap<String, u64> = [
                ("c", img.get_clamped(x, y)),
                ("n", img.get_clamped(x, y - 1)),
                ("s", img.get_clamped(x, y + 1)),
                ("w", img.get_clamped(x - 1, y)),
                ("e", img.get_clamped(x + 1, y)),
            ]
            .into_iter()
            .map(|(name, v)| (name.to_string(), v as i64 as u64))
            .collect();
            program.run(&inputs).expect("sharpen pixel");
        }
    }
    started.elapsed().as_secs_f64()
}

/// Wall-clock seconds for the compiled sobel gradients over every pixel of
/// a `side × side` synthetic image on one backend.
pub fn sobel_secs(backend: Backend, side: usize) -> f64 {
    let program = compile(&dags::sobel_gradient_dag(), &options(backend)).expect("sobel compiles");
    let img = synthetic_image(side, side, 7);
    let started = Instant::now();
    for y in 0..side as isize {
        for x in 0..side as isize {
            dags::sobel_gradients_via_dag(&program, &img, x, y).expect("sobel pixel");
        }
    }
    started.elapsed().as_secs_f64()
}

/// Generates the full exhibit. `quick` shrinks iteration counts and image
/// sides for CI smoke runs; the recorded `BENCH_packed.json` uses the full
/// sizes.
pub fn generate(quick: bool) -> PackedPerf {
    let iters: u64 = if quick { 20_000 } else { 200_000 };
    let side = if quick { 4 } else { 8 };
    let nor = [64usize, 256].iter().map(|&w| nor_row(w, iters)).collect();
    let kernels = vec![
        KernelRow {
            name: "sharpen",
            pixels: side * side,
            packed_secs: sharpen_secs(Backend::Packed, side),
            oracle_secs: sharpen_secs(Backend::Scalar, side),
        },
        KernelRow {
            name: "sobel",
            pixels: side * side,
            packed_secs: sobel_secs(Backend::Packed, side),
            oracle_secs: sobel_secs(Backend::Scalar, side),
        },
    ];
    PackedPerf { nor, kernels }
}

/// Renders the exhibit as the README's speedup table.
pub fn render(perf: &PackedPerf) -> String {
    let mut out = String::new();
    out.push_str("packed vs scalar-oracle crossbar backend\n");
    out.push_str("| benchmark | oracle | packed | speedup |\n");
    out.push_str("|---|---|---|---|\n");
    for row in &perf.nor {
        out.push_str(&format!(
            "| NOR width {} | {:.0} ops/s | {:.0} ops/s | {} |\n",
            row.width,
            row.oracle_ops_per_sec,
            row.packed_ops_per_sec,
            crate::times(row.speedup()),
        ));
    }
    for k in &perf.kernels {
        out.push_str(&format!(
            "| {} {}px (gate-level) | {:.3} s | {:.3} s | {} |\n",
            k.name,
            k.pixels,
            k.oracle_secs,
            k.packed_secs,
            crate::times(k.speedup()),
        ));
    }
    out
}

/// Serializes the exhibit as `BENCH_packed.json` (oracle = before,
/// packed = after; no external JSON dependency, so formatted by hand).
pub fn to_json(perf: &PackedPerf) -> String {
    let mut out = String::from("{\n  \"exhibit\": \"packed-vs-oracle crossbar backend\",\n");
    out.push_str("  \"nor_throughput\": [\n");
    for (i, row) in perf.nor.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"width\": {}, \"iters\": {}, \"before_ops_per_sec\": {:.1}, \"after_ops_per_sec\": {:.1}, \"speedup\": {:.2}}}{}\n",
            row.width,
            row.iters,
            row.oracle_ops_per_sec,
            row.packed_ops_per_sec,
            row.speedup(),
            if i + 1 < perf.nor.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"kernels\": [\n");
    for (i, k) in perf.kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"pixels\": {}, \"before_secs\": {:.4}, \"after_secs\": {:.4}, \"speedup\": {:.2}}}{}\n",
            k.name,
            k.pixels,
            k.oracle_secs,
            k.packed_secs,
            k.speedup(),
            if i + 1 < perf.kernels.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_sane_rows() {
        let row = nor_row(64, 200);
        assert!(row.packed_ops_per_sec > 0.0);
        assert!(row.oracle_ops_per_sec > 0.0);
        let perf = PackedPerf {
            nor: vec![row],
            kernels: vec![KernelRow {
                name: "sharpen",
                pixels: 1,
                packed_secs: 0.5,
                oracle_secs: 1.0,
            }],
        };
        assert!((perf.kernels[0].speedup() - 2.0).abs() < 1e-12);
        let json = to_json(&perf);
        assert!(json.contains("\"nor_throughput\""));
        assert!(json.contains("\"before_secs\": 1.0000"));
        assert!(render(&perf).contains("sharpen"));
    }
}
