//! Regeneration harness for every table and figure of the APIM paper.
//!
//! Each module produces the data behind one exhibit and renders it as the
//! rows/series the paper reports:
//!
//! | module | paper exhibit |
//! |---|---|
//! | [`fig4`] | Figure 4 — error vs EDP for the two approximation approaches |
//! | [`fig5`] | Figure 5 — energy/speedup of exact APIM vs GPU over dataset size |
//! | [`fig5_sim`] | Figure 5 cross-validated with the trace-driven GPU simulator |
//! | [`fig6`] | Figure 6 — multi-operand addition vs \[24\] and \[25\] |
//! | [`table1`] | Table 1 — EDP improvement and QoL per approximation level |
//! | [`headline`] | Abstract/§4 headline numbers incl. the adaptive controller |
//! | [`ablation`] | design-choice ablations (interconnect, tree, logic family, MAJ) |
//! | [`perf`] | packed-vs-oracle simulator speedup (`BENCH_packed.json`) |
//! | [`simd`] | lane-batched vs serial compiled kernels (`BENCH_simd.json`) |
//!
//! Run everything with `cargo run -p apim-bench --bin repro --release`, or
//! individual criterion benches (`cargo bench -p apim-bench`), which print
//! the same series before measuring harness throughput. [`csv`] exports
//! plot-ready data (`repro -- csv` writes one file per exhibit).

#![deny(missing_docs)]

pub mod ablation;
pub mod chart;
pub mod csv;
pub mod fig4;
pub mod fig5;
pub mod fig5_sim;
pub mod fig6;
pub mod headline;
pub mod mathbench;
pub mod perf;
pub mod simd;
pub mod table1;

/// Renders a ratio as the paper's "NNNx" notation.
pub fn times(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else if x >= 10.0 {
        format!("{x:.1}x")
    } else {
        format!("{x:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_formats_by_magnitude() {
        assert_eq!(times(480.4), "480x");
        assert_eq!(times(28.04), "28.0x");
        assert_eq!(times(4.8), "4.80x");
    }
}
