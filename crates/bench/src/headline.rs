//! The paper's headline numbers (abstract + §4): exact-mode 28×/4.8× at
//! 1 GB, up to 20× performance in approximate mode, and the adaptive
//! controller reaching ~480× EDP improvement while keeping QoS.

use apim::{Apim, App, PrecisionMode};

/// Per-application outcome of the adaptive QoS run.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveRow {
    /// The application.
    pub app: App,
    /// The precision the controller settled on.
    pub mode: PrecisionMode,
    /// Levels evaluated before settling.
    pub trials: u32,
    /// EDP improvement over GPU at that precision (1 GB).
    pub edp_improvement: f64,
    /// Speedup over GPU at that precision (1 GB).
    pub speedup: f64,
    /// Measured QoL, percent.
    pub qol_percent: f64,
}

/// All headline numbers.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Best exact-mode energy improvement at 1 GB across apps.
    pub exact_energy_improvement: f64,
    /// Best exact-mode speedup at 1 GB across apps.
    pub exact_speedup: f64,
    /// Best approximate-mode speedup at 1 GB across apps (32 relax bits).
    pub approx_speedup: f64,
    /// Best approximate-mode EDP improvement across apps.
    pub approx_edp_improvement: f64,
    /// Adaptive-controller outcome per application.
    pub adaptive: Vec<AdaptiveRow>,
}

const GB: u64 = 1 << 30;

/// Computes every headline number.
pub fn generate() -> Headline {
    let apim = Apim::default();
    let mut exact_energy: f64 = 0.0;
    let mut exact_speed: f64 = 0.0;
    let mut approx_speed: f64 = 0.0;
    let mut approx_edp: f64 = 0.0;
    for app in App::all() {
        let exact = apim.run_with_mode(app, GB, PrecisionMode::Exact).unwrap();
        exact_energy = exact_energy.max(exact.comparison.energy_improvement);
        exact_speed = exact_speed.max(exact.comparison.speedup);
        let approx = apim
            .run_with_mode(app, GB, PrecisionMode::LastStage { relax_bits: 32 })
            .unwrap();
        approx_speed = approx_speed.max(approx.comparison.speedup);
        approx_edp = approx_edp.max(approx.comparison.edp_improvement);
    }
    let adaptive = App::all()
        .iter()
        .map(|&app| {
            let outcome = apim.tune(app);
            let run = apim.run_with_mode(app, GB, outcome.mode).unwrap();
            AdaptiveRow {
                app,
                mode: outcome.mode,
                trials: outcome.trials,
                edp_improvement: run.comparison.edp_improvement,
                speedup: run.comparison.speedup,
                qol_percent: run.quality.qol_percent,
            }
        })
        .collect();
    Headline {
        exact_energy_improvement: exact_energy,
        exact_speedup: exact_speed,
        approx_speedup: approx_speed,
        approx_edp_improvement: approx_edp,
        adaptive,
    }
}

/// Renders the headline summary.
pub fn render(h: &Headline) -> String {
    let mut out = String::new();
    out.push_str("Headline numbers (1 GB datasets, best application unless noted)\n");
    out.push_str(&format!(
        "  exact mode:      {} energy savings, {} speedup   (paper: 28x, 4.8x)\n",
        crate::times(h.exact_energy_improvement),
        crate::times(h.exact_speedup)
    ));
    out.push_str(&format!(
        "  approx mode:     {} speedup, {} EDP improvement  (paper: up to 20x, 480-968x)\n",
        crate::times(h.approx_speedup),
        crate::times(h.approx_edp_improvement)
    ));
    out.push_str("  adaptive controller (start 32 relax bits, 4-bit accuracy steps):\n");
    for row in &h.adaptive {
        out.push_str(&format!(
            "    {:<10} -> {:<28} ({} trials): EDP {} | speedup {} | QoL {:.2}%\n",
            row.app.name(),
            row.mode.to_string(),
            row.trials,
            crate::times(row.edp_improvement),
            crate::times(row.speedup),
            row.qol_percent
        ));
    }
    let mean_adaptive =
        h.adaptive.iter().map(|r| r.edp_improvement).sum::<f64>() / h.adaptive.len().max(1) as f64;
    let best_adaptive = h
        .adaptive
        .iter()
        .map(|r| r.edp_improvement)
        .fold(0.0f64, f64::max);
    out.push_str(&format!(
        "  adaptive EDP improvement: mean {} / best {}  (paper: up to 480x with QoS held)\n",
        crate::times(mean_adaptive),
        crate::times(best_adaptive)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_headline_in_band() {
        let h = generate();
        assert!(
            (18.0..60.0).contains(&h.exact_energy_improvement),
            "energy {}",
            h.exact_energy_improvement
        );
        assert!(
            (3.5..7.0).contains(&h.exact_speedup),
            "speedup {}",
            h.exact_speedup
        );
    }

    #[test]
    fn approx_mode_multiplies_the_win() {
        let h = generate();
        assert!(h.approx_speedup > 1.5 * h.exact_speedup);
        assert!(
            (200.0..1500.0).contains(&h.approx_edp_improvement),
            "approx EDP {}",
            h.approx_edp_improvement
        );
    }

    #[test]
    fn adaptive_holds_qos_and_gains_edp() {
        let h = generate();
        for row in &h.adaptive {
            assert!(
                row.mode.relaxed_product_bits() >= 4,
                "{}: adaptive should find some relaxation",
                row.app
            );
        }
        let best = h
            .adaptive
            .iter()
            .map(|r| r.edp_improvement)
            .fold(0.0f64, f64::max);
        assert!((150.0..1200.0).contains(&best), "best adaptive EDP {best}");
    }

    #[test]
    fn render_mentions_paper_targets() {
        let text = render(&generate());
        assert!(text.contains("28x"));
        assert!(text.contains("480"));
    }
}
