//! Ablation study of APIM's design choices, quantified (§3's arguments):
//!
//! 1. blocked memory + configurable interconnect vs bit-wise shifting;
//! 2. the Wallace-tree fast adder vs serial accumulation;
//! 3. the MAGIC logic family vs IMPLY;
//! 4. the MAJ sense-amplifier final stage vs fully serial.

use apim::{ApimConfig, PrecisionMode};
use apim_baselines::{imply, magic_serial};
use apim_logic::CostModel;

/// One shift-cost comparison row (ablation 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShiftRow {
    /// Shift distance, bitlines.
    pub k: u64,
    /// Cycles with the barrel-shifter interconnect (a 2-NOT copy).
    pub blocked: u64,
    /// Cycles moving a 32-bit word bit-by-bit in a flat crossbar.
    pub flat: u64,
}

/// One multi-operand-adder comparison row (ablations 2 + 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderRow {
    /// N operands of N bits.
    pub n: u32,
    /// APIM tree cycles.
    pub tree: u64,
    /// \[24\]-style serial MAGIC accumulation.
    pub serial: u64,
    /// IMPLY-family serial accumulation.
    pub imply: u64,
}

/// One final-stage comparison row (ablation 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinalStageRow {
    /// Relaxed product bits.
    pub relax_bits: u8,
    /// Truncated 32×32 multiply cycles at this setting.
    pub mul_cycles: u64,
}

/// The full ablation data set.
#[derive(Debug, Clone)]
pub struct AblationData {
    /// Interconnect vs flat shifting.
    pub shifts: Vec<ShiftRow>,
    /// Tree vs serial vs IMPLY.
    pub adders: Vec<AdderRow>,
    /// MAJ final stage sweep.
    pub final_stage: Vec<FinalStageRow>,
}

/// Generates all three studies.
pub fn generate() -> AblationData {
    let model = CostModel::new(&ApimConfig::default().params);
    let shifts = [1u64, 4, 8, 16]
        .iter()
        .map(|&k| ShiftRow {
            k,
            blocked: 2,
            flat: 2 * 32 * k.min(32),
        })
        .collect();
    let adders = [4u32, 9, 16, 32]
        .iter()
        .map(|&n| AdderRow {
            n,
            tree: model.sum_reduce(n, n, 0).cycles.get(),
            serial: magic_serial::sum_cycles(n, n).get(),
            imply: imply::sum_cycles(n, n).get(),
        })
        .collect();
    let final_stage = [0u8, 8, 16, 24, 32]
        .iter()
        .map(|&m| FinalStageRow {
            relax_bits: m,
            mul_cycles: model
                .multiply_trunc_expected(32, PrecisionMode::LastStage { relax_bits: m })
                .cycles
                .get(),
        })
        .collect();
    AblationData {
        shifts,
        adders,
        final_stage,
    }
}

/// Renders the three tables.
pub fn render(data: &AblationData) -> String {
    let mut out = String::new();
    out.push_str("Ablation 1: shifting one 32-bit word by k bitlines\n");
    out.push_str(&format!(
        "{:>6} {:>22} {:>24}\n",
        "k", "interconnect (cycles)", "bit-wise copy (cycles)"
    ));
    for r in &data.shifts {
        out.push_str(&format!("{:>6} {:>22} {:>24}\n", r.k, r.blocked, r.flat));
    }
    out.push_str("\nAblation 2+3: summing N operands of N bits, by design\n");
    out.push_str(&format!(
        "{:>6} {:>14} {:>16} {:>16} {:>10}\n",
        "N", "APIM tree", "MAGIC serial", "IMPLY serial", "tree wins"
    ));
    for r in &data.adders {
        out.push_str(&format!(
            "{:>6} {:>14} {:>16} {:>16} {:>9.1}x\n",
            r.n,
            r.tree,
            r.serial,
            r.imply,
            r.serial as f64 / r.tree as f64
        ));
    }
    out.push_str("\nAblation 4: truncated 32x32 multiply vs final-stage relaxation\n");
    out.push_str(&format!(
        "{:>12} {:>12} {:>10}\n",
        "relax bits", "cycles", "vs exact"
    ));
    let exact = data.final_stage.first().map(|r| r.mul_cycles).unwrap_or(1);
    for r in &data.final_stage {
        out.push_str(&format!(
            "{:>12} {:>12} {:>9.2}x\n",
            r.relax_bits,
            r.mul_cycles,
            exact as f64 / r.mul_cycles as f64
        ));
    }
    out
}

/// The interconnect's advantage at shift distance `k` (ablation 1).
pub fn interconnect_advantage(data: &AblationData, k: u64) -> Option<f64> {
    data.shifts
        .iter()
        .find(|r| r.k == k)
        .map(|r| r.flat as f64 / r.blocked as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interconnect_wins_grow_with_shift_distance() {
        let data = generate();
        let a1 = interconnect_advantage(&data, 1).unwrap();
        let a16 = interconnect_advantage(&data, 16).unwrap();
        assert!(a1 >= 16.0, "even 1-bit shifts save a word's worth: {a1}");
        assert!(a16 > 10.0 * a1 / 2.0, "advantage scales: {a16}");
        assert_eq!(interconnect_advantage(&data, 999), None);
    }

    #[test]
    fn design_ordering_holds_everywhere() {
        // tree < MAGIC serial < IMPLY serial, at every N.
        for r in generate().adders {
            assert!(r.tree < r.serial, "N={}", r.n);
            assert!(r.serial < r.imply, "N={}", r.n);
        }
    }

    #[test]
    fn tree_advantage_grows_with_n() {
        let rows = generate().adders;
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        let g0 = first.serial as f64 / first.tree as f64;
        let g1 = last.serial as f64 / last.tree as f64;
        assert!(g1 > 2.0 * g0);
    }

    #[test]
    fn full_relaxation_triples_multiplier_throughput() {
        let rows = generate().final_stage;
        let exact = rows.first().unwrap().mul_cycles;
        let relaxed = rows.last().unwrap().mul_cycles;
        let ratio = exact as f64 / relaxed as f64;
        assert!((2.5..4.0).contains(&ratio), "final-stage leverage {ratio}");
        // Monotone.
        for pair in rows.windows(2) {
            assert!(pair[1].mul_cycles < pair[0].mul_cycles);
        }
    }

    #[test]
    fn render_has_all_three_studies() {
        let text = render(&generate());
        assert!(text.contains("Ablation 1"));
        assert!(text.contains("Ablation 2+3"));
        assert!(text.contains("Ablation 4"));
        assert!(text.contains("IMPLY"));
    }
}
