//! Figure 6 — performance of adding N operands of N bits each: APIM
//! (exact and 99.9 %-accurate) vs the \[24\] MAGIC serial adder and the
//! \[25\] PC-adder.

use apim::{ApimConfig, Cycles};
use apim_baselines::{magic_serial, pc_adder};
use apim_logic::model::ceil_log2;
use apim_logic::CostModel;

/// Operand counts/widths swept (the paper's x-axis runs 4…32).
pub const N_VALUES: [u32; 8] = [4, 8, 12, 16, 20, 24, 28, 32];

/// One row of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig6Row {
    /// N (operand count and width).
    pub n: u32,
    /// Talati et al. \[24\] serial MAGIC adder.
    pub magic_cycles: Cycles,
    /// Siemon et al. \[25\] PC-adder.
    pub pc_adder_cycles: Cycles,
    /// APIM fast adder, exact.
    pub apim_exact_cycles: Cycles,
    /// APIM fast adder with the final stage relaxed to ~99.9 % accuracy.
    pub apim_approx_cycles: Cycles,
}

/// Relax bits giving ≈99.9 % accuracy for an `N`-operand sum: leave 8
/// exact bits above the expected error scale.
pub fn relax_bits_999(n: u32) -> u32 {
    let result_bits = n + ceil_log2(n);
    result_bits.saturating_sub(8)
}

/// Generates the figure's rows.
pub fn generate() -> Vec<Fig6Row> {
    let model = CostModel::new(&ApimConfig::default().params);
    N_VALUES
        .iter()
        .map(|&n| Fig6Row {
            n,
            magic_cycles: magic_serial::sum_cycles(n, n),
            pc_adder_cycles: pc_adder::sum_cycles(n, n),
            apim_exact_cycles: model.sum_reduce(n, n, 0).cycles,
            apim_approx_cycles: model.sum_reduce(n, n, relax_bits_999(n)).cycles,
        })
        .collect()
}

/// Renders the figure as aligned text.
pub fn render(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 6: cycles to add N operands of N bits each\n");
    out.push_str(&format!(
        "{:>4} {:>12} {:>12} {:>12} {:>14} {:>12} {:>12}\n",
        "N", "MAGIC [24]", "PC-Adder[25]", "APIM exact", "APIM 99.9%", "vs best", "vs best~"
    ));
    for r in rows {
        let best_prior = r.magic_cycles.get().min(r.pc_adder_cycles.get()) as f64;
        out.push_str(&format!(
            "{:>4} {:>12} {:>12} {:>12} {:>14} {:>12} {:>12}\n",
            r.n,
            r.magic_cycles.get(),
            r.pc_adder_cycles.get(),
            r.apim_exact_cycles.get(),
            r.apim_approx_cycles.get(),
            crate::times(best_prior / r.apim_exact_cycles.get() as f64),
            crate::times(best_prior / r.apim_approx_cycles.get() as f64),
        ));
    }
    if let Some(last) = rows.last() {
        out.push('\n');
        out.push_str(&crate::chart::log_bar_chart(
            &format!("cycles at N = {} (log scale)", last.n),
            &[
                ("MAGIC [24]".into(), last.magic_cycles.get() as f64),
                ("PC-Adder [25]".into(), last.pc_adder_cycles.get() as f64),
                ("APIM exact".into(), last.apim_exact_cycles.get() as f64),
                ("APIM 99.9%".into(), last.apim_approx_cycles.get() as f64),
            ],
            48,
        ));
    }
    out.push_str(
        "\nShape checks: APIM wins everywhere; >= 2x vs the best prior design in exact\n\
         mode at N >= 16, and substantially more with 99.9% accuracy (paper: >= 2x / 6x).\n\
         [24]/[25] counts exclude their shift latency, as the paper notes.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apim_beats_both_priors_everywhere() {
        for r in generate() {
            assert!(r.apim_exact_cycles < r.magic_cycles, "N={}", r.n);
            assert!(r.apim_exact_cycles < r.pc_adder_cycles, "N={}", r.n);
            if relax_bits_999(r.n) > 0 {
                assert!(r.apim_approx_cycles < r.apim_exact_cycles, "N={}", r.n);
            } else {
                assert_eq!(r.apim_approx_cycles, r.apim_exact_cycles, "N={}", r.n);
            }
        }
    }

    #[test]
    fn exact_speedup_at_least_2x_beyond_n16() {
        for r in generate().iter().filter(|r| r.n >= 16) {
            let best_prior = r.magic_cycles.get().min(r.pc_adder_cycles.get());
            let ratio = best_prior as f64 / r.apim_exact_cycles.get() as f64;
            assert!(ratio >= 2.0, "N={}: exact speedup {ratio:.2}", r.n);
        }
    }

    #[test]
    fn approx_speedup_much_larger() {
        let rows = generate();
        let last = rows.last().unwrap();
        let best_prior = last.magic_cycles.get().min(last.pc_adder_cycles.get());
        let ratio = best_prior as f64 / last.apim_approx_cycles.get() as f64;
        assert!(ratio >= 4.0, "approx speedup at N=32: {ratio:.2}");
    }

    #[test]
    fn gap_to_serial_grows_with_n() {
        let rows = generate();
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        let g0 = first.magic_cycles.get() as f64 / first.apim_exact_cycles.get() as f64;
        let g1 = last.magic_cycles.get() as f64 / last.apim_exact_cycles.get() as f64;
        assert!(g1 > 2.0 * g0, "gap must widen: {g0:.1} -> {g1:.1}");
    }

    #[test]
    fn relax_bits_leave_8_exact_msbs() {
        assert_eq!(relax_bits_999(32), 32 + 5 - 8);
        assert_eq!(relax_bits_999(4), 0); // saturates for tiny widths
    }

    #[test]
    fn render_has_all_rows() {
        let text = render(&generate());
        for n in N_VALUES {
            assert!(text.contains(&format!("\n{n:>4} ")) || text.starts_with(&format!("{n:>4} ")));
        }
    }
}
