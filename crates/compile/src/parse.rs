//! The `apim` expression language: a line-oriented front end for
//! [`Dag`]s.
//!
//! ```text
//! # sharpen inner loop, 16-bit fixed point
//! width 16
//! mode relax 4
//! let acc = mac(c*5, n*65535, s*65535)
//! out acc >> 2
//! ```
//!
//! Grammar (one statement per line, `#` starts a comment):
//!
//! ```text
//! program   := line*
//! line      := "width" INT | "mode" mode | "math" math | "in" IDENT
//!            | "let" IDENT "=" expr | "out" expr
//! mode      := "exact" | "mask" INT | "relax" INT
//! math      := ("cordic" INT | "lut" INT) ["frac" INT]
//! expr      := sum (("<<" | ">>") INT)*
//! sum       := term (("+" | "-") term)*
//! term      := atom ("*" atom)*
//! atom      := INT | IDENT | "(" expr ")" | "-" atom
//!            | "mac" "(" atom "*" atom ("," atom "*" atom)* ")"
//!            | ("sin" | "cos" | "sqrt") "(" expr ")"
//! ```
//!
//! Shifts bind loosest (like C); integer literals take `0x`/`0b`
//! prefixes and `_` separators. Identifiers not bound by `let`/`in`
//! become run-time inputs on first use. The active `mode` directive
//! annotates every following `*`/`mac`; the active `math` directive
//! picks the algorithm/precision of every following `sin`/`cos`/`sqrt`
//! (per-function defaults when absent, iteration/segment counts clamped
//! to the function's legal range at the program width, the `frac`
//! clause applying to trig only — sqrt is integer-domain). `sin`, `cos`,
//! `sqrt` and `mac` are only special when called — followed by `(` —
//! and stay ordinary identifiers otherwise. Errors carry 1-based line
//! and column, in the same `line:col: message` shape the serve request
//! parser uses.
//!
//! [`render_program`] is the canonical inverse: it emits one `in`/`let`
//! per node in id order, so `parse(render(p))` reproduces `p`'s DAG
//! node for node — the round-trip property the CLI tests pin.

use std::collections::HashMap;

use apim_logic::PrecisionMode;
use apim_math::{default_spec, max_iters, max_log2_segments, MathFn, MathMode, MathSpec};

use crate::ir::{Dag, Node, NodeId};
use crate::CompileError;

/// A source-located syntax or semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// A parsed program: the DAG plus nothing else — names and modes are
/// already baked into the nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The expression DAG, with the `out` expression as root.
    pub dag: Dag,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(u64),
    Plus,
    Minus,
    Star,
    Shl,
    Shr,
    LParen,
    RParen,
    Comma,
    Eq,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "'{s}'"),
            Tok::Num(v) => write!(f, "'{v}'"),
            Tok::Plus => write!(f, "'+'"),
            Tok::Minus => write!(f, "'-'"),
            Tok::Star => write!(f, "'*'"),
            Tok::Shl => write!(f, "'<<'"),
            Tok::Shr => write!(f, "'>>'"),
            Tok::LParen => write!(f, "'('"),
            Tok::RParen => write!(f, "')'"),
            Tok::Comma => write!(f, "','"),
            Tok::Eq => write!(f, "'='"),
        }
    }
}

fn err(line: usize, col: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        col,
        msg: msg.into(),
    }
}

fn lex(line_no: usize, line: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let col = i + 1;
        let c = chars[i];
        match c {
            '#' => break,
            c if c.is_whitespace() => i += 1,
            '+' => {
                toks.push((Tok::Plus, col));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, col));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, col));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, col));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, col));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, col));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, col));
                i += 1;
            }
            '<' | '>' => {
                if i + 1 >= chars.len() || chars[i + 1] != c {
                    return Err(err(line_no, col, format!("expected '{c}{c}'")));
                }
                toks.push((if c == '<' { Tok::Shl } else { Tok::Shr }, col));
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let digits = text.replace('_', "");
                let parsed = if let Some(hex) = digits.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else if let Some(bin) = digits.strip_prefix("0b") {
                    u64::from_str_radix(bin, 2)
                } else {
                    digits.parse()
                };
                match parsed {
                    Ok(v) => toks.push((Tok::Num(v), col)),
                    Err(_) => {
                        return Err(err(line_no, col, format!("bad integer literal '{text}'")))
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push((Tok::Ident(chars[start..i].iter().collect()), col));
            }
            other => return Err(err(line_no, col, format!("unexpected character '{other}'"))),
        }
    }
    Ok(toks)
}

struct Parser {
    dag: Option<Dag>,
    names: HashMap<String, NodeId>,
    mode: PrecisionMode,
    math: Option<(MathMode, Option<u32>)>,
    has_out: bool,
}

/// Resolves the active `math` directive (if any) into the concrete spec a
/// `sin`/`cos`/`sqrt` call gets at this program width: per-function
/// defaults when no directive is active, the directive's knob clamped to
/// the function's legal range otherwise, the `frac` clause applying to
/// trig only.
fn applied_math_spec(
    state: Option<(MathMode, Option<u32>)>,
    func: MathFn,
    width: u32,
) -> Result<MathSpec, String> {
    if !(4..=64).contains(&width) {
        return Err(format!("math functions need width 4..=64, have {width}"));
    }
    let mut spec = default_spec(func, width);
    let Some((mode, frac)) = state else {
        return Ok(spec);
    };
    if func != MathFn::Sqrt {
        if let Some(f) = frac {
            spec.frac = f; // range-checked by Dag::math
        }
    }
    spec.mode = match mode {
        MathMode::Cordic { iters } => MathMode::Cordic {
            iters: iters.clamp(1, max_iters(func, width)),
        },
        MathMode::Lut { log2_segments } => {
            let max = max_log2_segments(func, width, spec.frac);
            if max == 0 {
                return Err(format!(
                    "lut mode is unavailable for {func} at width {width}"
                ));
            }
            MathMode::Lut {
                log2_segments: log2_segments.clamp(1, max),
            }
        }
    };
    Ok(spec)
}

/// One line's token cursor.
struct Cursor<'a> {
    toks: &'a [(Tok, usize)],
    pos: usize,
    line: usize,
    end_col: usize,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn col(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(_, c)| c)
            .unwrap_or(self.end_col)
    }

    fn next(&mut self, what: &str) -> Result<(Tok, usize), ParseError> {
        match self.toks.get(self.pos) {
            Some((t, c)) => {
                self.pos += 1;
                Ok((t.clone(), *c))
            }
            None => Err(err(self.line, self.end_col, format!("expected {what}"))),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<usize, ParseError> {
        let (t, c) = self.next(&tok.to_string())?;
        if t == tok {
            Ok(c)
        } else {
            Err(err(self.line, c, format!("expected {tok}, found {t}")))
        }
    }

    fn number(&mut self, what: &str) -> Result<(u64, usize), ParseError> {
        let (t, c) = self.next(what)?;
        match t {
            Tok::Num(v) => Ok((v, c)),
            other => Err(err(self.line, c, format!("expected {what}, found {other}"))),
        }
    }

    fn done(&self) -> Result<(), ParseError> {
        match self.toks.get(self.pos) {
            None => Ok(()),
            Some((t, c)) => Err(err(self.line, *c, format!("trailing {t} after statement"))),
        }
    }
}

impl Parser {
    fn new() -> Self {
        Parser {
            dag: None,
            names: HashMap::new(),
            mode: PrecisionMode::Exact,
            math: None,
            has_out: false,
        }
    }

    fn dag(&mut self, line: usize, col: usize) -> Result<&mut Dag, ParseError> {
        self.dag
            .as_mut()
            .ok_or_else(|| err(line, col, "'width' directive must come first"))
    }

    fn lift<T>(r: Result<T, CompileError>, line: usize, col: usize) -> Result<T, ParseError> {
        r.map_err(|e| err(line, col, e.to_string()))
    }

    fn statement(&mut self, cur: &mut Cursor<'_>) -> Result<(), ParseError> {
        let (head, head_col) = cur.next("a statement")?;
        let keyword = match head {
            Tok::Ident(s) => s,
            other => {
                return Err(err(
                    cur.line,
                    head_col,
                    format!("expected a statement keyword, found {other}"),
                ))
            }
        };
        match keyword.as_str() {
            "width" => {
                let (w, c) = cur.number("a word width")?;
                if self.dag.is_some() {
                    return Err(err(cur.line, head_col, "duplicate 'width' directive"));
                }
                self.dag = Some(Self::lift(Dag::new(w as u32), cur.line, c)?);
            }
            "mode" => {
                let (t, c) = cur.next("'exact', 'mask' or 'relax'")?;
                let name = match t {
                    Tok::Ident(s) => s,
                    other => {
                        return Err(err(
                            cur.line,
                            c,
                            format!("expected a mode name, found {other}"),
                        ))
                    }
                };
                self.mode = match name.as_str() {
                    "exact" => PrecisionMode::Exact,
                    "mask" => {
                        let (bits, _) = cur.number("masked bit count")?;
                        PrecisionMode::FirstStage {
                            masked_bits: bits as u8,
                        }
                    }
                    "relax" => {
                        let (bits, _) = cur.number("relaxed bit count")?;
                        PrecisionMode::LastStage {
                            relax_bits: bits as u8,
                        }
                    }
                    other => {
                        return Err(err(
                            cur.line,
                            c,
                            format!("unknown mode '{other}' (want exact, mask N or relax N)"),
                        ))
                    }
                };
            }
            "math" => {
                let (t, c) = cur.next("'cordic' or 'lut'")?;
                let name = match t {
                    Tok::Ident(s) => s,
                    other => {
                        return Err(err(
                            cur.line,
                            c,
                            format!("expected a math mode name, found {other}"),
                        ))
                    }
                };
                let mode = match name.as_str() {
                    "cordic" => {
                        let (iters, _) = cur.number("an iteration count")?;
                        MathMode::Cordic {
                            iters: iters as u32,
                        }
                    }
                    "lut" => {
                        let (k, _) = cur.number("a log2 segment count")?;
                        MathMode::Lut {
                            log2_segments: k as u32,
                        }
                    }
                    other => {
                        return Err(err(
                            cur.line,
                            c,
                            format!("unknown math mode '{other}' (want cordic N or lut N)"),
                        ))
                    }
                };
                let frac = if cur.peek() == Some(&Tok::Ident("frac".into())) {
                    cur.next("'frac'")?;
                    let (f, _) = cur.number("fraction bits")?;
                    Some(f as u32)
                } else {
                    None
                };
                self.math = Some((mode, frac));
            }
            "in" => {
                let (t, c) = cur.next("an input name")?;
                let name = match t {
                    Tok::Ident(s) => s,
                    other => {
                        return Err(err(
                            cur.line,
                            c,
                            format!("expected an input name, found {other}"),
                        ))
                    }
                };
                if self.names.contains_key(&name) {
                    return Err(err(cur.line, c, format!("'{name}' is already defined")));
                }
                let dag = self.dag(cur.line, head_col)?;
                let id = Self::lift(dag.input(&name), cur.line, c)?;
                self.names.insert(name, id);
            }
            "let" => {
                let (t, c) = cur.next("a binding name")?;
                let name = match t {
                    Tok::Ident(s) => s,
                    other => {
                        return Err(err(
                            cur.line,
                            c,
                            format!("expected a binding name, found {other}"),
                        ))
                    }
                };
                if self.names.contains_key(&name) {
                    return Err(err(cur.line, c, format!("'{name}' is already defined")));
                }
                cur.expect(Tok::Eq)?;
                self.dag(cur.line, head_col)?;
                let id = self.expr(cur)?;
                self.names.insert(name, id);
            }
            "out" => {
                if self.has_out {
                    return Err(err(cur.line, head_col, "duplicate 'out' statement"));
                }
                self.dag(cur.line, head_col)?;
                let id = self.expr(cur)?;
                let dag = self.dag.as_mut().expect("checked above");
                Self::lift(dag.set_root(id), cur.line, head_col)?;
                self.has_out = true;
            }
            other => {
                return Err(err(
                    cur.line,
                    head_col,
                    format!("unknown statement '{other}' (want width, mode, math, in, let or out)"),
                ))
            }
        }
        cur.done()
    }

    /// expr := sum (("<<" | ">>") INT)*
    fn expr(&mut self, cur: &mut Cursor<'_>) -> Result<NodeId, ParseError> {
        let mut id = self.sum(cur)?;
        loop {
            let left = match cur.peek() {
                Some(Tok::Shl) => true,
                Some(Tok::Shr) => false,
                _ => return Ok(id),
            };
            let (_, op_col) = cur.next("a shift")?;
            let (amount, _) = cur.number("a constant shift distance")?;
            let dag = self.dag.as_mut().expect("expr implies width");
            id = Self::lift(
                if left {
                    dag.shl(id, amount as u32)
                } else {
                    dag.shr(id, amount as u32)
                },
                cur.line,
                op_col,
            )?;
        }
    }

    /// sum := term (("+" | "-") term)*
    fn sum(&mut self, cur: &mut Cursor<'_>) -> Result<NodeId, ParseError> {
        let mut id = self.term(cur)?;
        loop {
            let plus = match cur.peek() {
                Some(Tok::Plus) => true,
                Some(Tok::Minus) => false,
                _ => return Ok(id),
            };
            let (_, op_col) = cur.next("an operator")?;
            let rhs = self.term(cur)?;
            let dag = self.dag.as_mut().expect("expr implies width");
            id = Self::lift(
                if plus {
                    dag.add(id, rhs)
                } else {
                    dag.sub(id, rhs)
                },
                cur.line,
                op_col,
            )?;
        }
    }

    /// term := atom ("*" atom)*
    fn term(&mut self, cur: &mut Cursor<'_>) -> Result<NodeId, ParseError> {
        let mut id = self.atom(cur)?;
        while cur.peek() == Some(&Tok::Star) {
            let (_, op_col) = cur.next("an operator")?;
            let rhs = self.atom(cur)?;
            let mode = self.mode;
            let dag = self.dag.as_mut().expect("expr implies width");
            id = Self::lift(dag.mul(id, rhs, mode), cur.line, op_col)?;
        }
        Ok(id)
    }

    /// atom := INT | IDENT | "(" expr ")" | "-" atom | mac-form
    ///       | ("sin" | "cos" | "sqrt") "(" expr ")"
    fn atom(&mut self, cur: &mut Cursor<'_>) -> Result<NodeId, ParseError> {
        let (t, col) = cur.next("an expression")?;
        match t {
            Tok::Num(v) => Ok(self.dag.as_mut().expect("expr implies width").constant(v)),
            Tok::LParen => {
                let id = self.expr(cur)?;
                cur.expect(Tok::RParen)?;
                Ok(id)
            }
            Tok::Minus => {
                if let Some(Tok::Num(_)) = cur.peek() {
                    // A negative literal is one constant node, not 0 - x.
                    let (v, _) = cur.number("an integer")?;
                    let dag = self.dag.as_mut().expect("expr implies width");
                    return Ok(dag.constant(v.wrapping_neg()));
                }
                let inner = self.atom(cur)?;
                let dag = self.dag.as_mut().expect("expr implies width");
                let zero = dag.constant(0);
                Self::lift(dag.sub(zero, inner), cur.line, col)
            }
            Tok::Ident(name) if name == "mac" && cur.peek() == Some(&Tok::LParen) => {
                self.mac_form(cur, col)
            }
            Tok::Ident(name)
                if matches!(name.as_str(), "sin" | "cos" | "sqrt")
                    && cur.peek() == Some(&Tok::LParen) =>
            {
                let func = match name.as_str() {
                    "sin" => MathFn::Sin,
                    "cos" => MathFn::Cos,
                    _ => MathFn::Sqrt,
                };
                cur.expect(Tok::LParen)?;
                let x = self.expr(cur)?;
                cur.expect(Tok::RParen)?;
                let dag = self.dag.as_mut().expect("expr implies width");
                let spec = applied_math_spec(self.math, func, dag.width())
                    .map_err(|msg| err(cur.line, col, msg))?;
                Self::lift(dag.math(x, spec), cur.line, col)
            }
            Tok::Ident(name) => {
                if let Some(&id) = self.names.get(&name) {
                    return Ok(id);
                }
                // Free identifiers are run-time inputs.
                let dag = self.dag.as_mut().expect("expr implies width");
                let id = Self::lift(dag.input(&name), cur.line, col)?;
                self.names.insert(name, id);
                Ok(id)
            }
            other => Err(err(
                cur.line,
                col,
                format!("expected an expression, found {other}"),
            )),
        }
    }

    /// mac-form := "mac" "(" atom "*" atom ("," atom "*" atom)* ")"
    fn mac_form(&mut self, cur: &mut Cursor<'_>, mac_col: usize) -> Result<NodeId, ParseError> {
        cur.expect(Tok::LParen)?;
        let mut terms = Vec::new();
        loop {
            let a = self.atom(cur)?;
            let star_col = cur.col();
            cur.expect(Tok::Star)
                .map_err(|_| err(cur.line, star_col, "mac terms must be products: a*b"))?;
            let b = self.atom(cur)?;
            terms.push((a, b));
            match cur.next("',' or ')'")? {
                (Tok::Comma, _) => continue,
                (Tok::RParen, _) => break,
                (other, c) => {
                    return Err(err(
                        cur.line,
                        c,
                        format!("expected ',' or ')', found {other}"),
                    ))
                }
            }
        }
        let mode = self.mode;
        let dag = self.dag.as_mut().expect("expr implies width");
        Self::lift(dag.mac(terms, mode), cur.line, mac_col)
    }
}

/// Parses an expression-language program into a [`Program`].
///
/// # Errors
///
/// Any syntax or semantic problem, located by 1-based line and column.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut parser = Parser::new();
    let mut lines = 0;
    for (idx, text) in src.lines().enumerate() {
        lines = idx + 1;
        let toks = lex(lines, text)?;
        if toks.is_empty() {
            continue;
        }
        let mut cur = Cursor {
            toks: &toks,
            pos: 0,
            line: lines,
            end_col: text.chars().count() + 1,
        };
        parser.statement(&mut cur)?;
    }
    let dag = parser
        .dag
        .ok_or_else(|| err(lines.max(1), 1, "empty program: missing 'width' directive"))?;
    if dag.root().is_none() {
        return Err(err(lines.max(1), 1, "program has no 'out' statement"));
    }
    Ok(Program { dag })
}

/// Renders a program in canonical form: `width`, then one `in`/`let`
/// statement per node in id order (with `mode` directives interleaved
/// where the annotation changes), then `out`.
///
/// The canonical form is a parser fixed point: `parse_program` rebuilds
/// the exact node list, so `parse(render(p)).dag == p.dag`.
pub fn render_program(program: &Program) -> String {
    let dag = &program.dag;
    let name = |id: NodeId| -> String {
        match &dag.nodes()[id.0] {
            Node::Input { name } => name.clone(),
            _ => format!("t{}", id.0),
        }
    };
    let mut out = format!("width {}\n", dag.width());
    let mut math_state: Option<(MathMode, Option<u32>)> = None;
    let mut mode = PrecisionMode::Exact;
    let mut set_mode = |out: &mut String, m: PrecisionMode| {
        if m != mode {
            mode = m;
            match m {
                PrecisionMode::Exact => out.push_str("mode exact\n"),
                PrecisionMode::FirstStage { masked_bits } => {
                    out.push_str(&format!("mode mask {masked_bits}\n"));
                }
                PrecisionMode::LastStage { relax_bits } => {
                    out.push_str(&format!("mode relax {relax_bits}\n"));
                }
            }
        }
    };
    for (i, node) in dag.nodes().iter().enumerate() {
        match node {
            Node::Input { name } => out.push_str(&format!("in {name}\n")),
            Node::Const { value } => out.push_str(&format!("let t{i} = {value}\n")),
            Node::Add { a, b } => {
                out.push_str(&format!("let t{i} = {} + {}\n", name(*a), name(*b)));
            }
            Node::Sub { a, b } => {
                out.push_str(&format!("let t{i} = {} - {}\n", name(*a), name(*b)));
            }
            Node::Mul { a, b, mode: m } => {
                set_mode(&mut out, *m);
                out.push_str(&format!("let t{i} = {} * {}\n", name(*a), name(*b)));
            }
            Node::Mac { terms, mode: m } => {
                set_mode(&mut out, *m);
                let body: Vec<String> = terms
                    .iter()
                    .map(|&(a, b)| format!("{}*{}", name(a), name(b)))
                    .collect();
                out.push_str(&format!("let t{i} = mac({})\n", body.join(", ")));
            }
            Node::Shl { x, amount } => {
                out.push_str(&format!("let t{i} = {} << {amount}\n", name(*x)));
            }
            Node::Shr { x, amount } => {
                out.push_str(&format!("let t{i} = {} >> {amount}\n", name(*x)));
            }
            Node::Math { x, spec } => {
                // Re-emit a `math` directive whenever the active state would
                // not resolve to this node's exact spec at reparse time.
                let applied = applied_math_spec(math_state, spec.func, dag.width());
                if applied.as_ref().ok() != Some(spec) {
                    let frac = match spec.func {
                        MathFn::Sqrt => None,
                        MathFn::Sin | MathFn::Cos => Some(spec.frac),
                    };
                    match frac {
                        Some(f) => out.push_str(&format!("math {} frac {f}\n", spec.mode)),
                        None => out.push_str(&format!("math {}\n", spec.mode)),
                    }
                    math_state = Some((spec.mode, frac));
                }
                out.push_str(&format!("let t{i} = {}({})\n", spec.func, name(*x)));
            }
        }
    }
    let root = dag.root().expect("programs always have a root");
    out.push_str(&format!("out {}\n", name(root)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use std::collections::HashMap as Map;

    fn eval(src: &str, bindings: &[(&str, u64)]) -> u64 {
        let program = parse_program(src).unwrap();
        let inputs: Map<String, u64> = bindings.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        evaluate(&program.dag, &inputs).unwrap()
    }

    #[test]
    fn precedence_mul_before_sum_before_shift() {
        // 2 + 3*4 = 14, then << 1 applies to the whole sum.
        assert_eq!(eval("width 16\nout 2 + 3 * 4 << 1", &[]), 28);
        assert_eq!(eval("width 16\nout (2 + 3) * 4", &[]), 20);
    }

    #[test]
    fn literals_and_unary_minus() {
        assert_eq!(eval("width 16\nout 0x10 + 0b101 + 1_000", &[]), 1021);
        assert_eq!(eval("width 16\nout -3 + 3", &[]), 0);
        assert_eq!(eval("width 16\nout -(x) + x", &[("x", 55)]), 0);
    }

    #[test]
    fn mode_directive_annotates_following_products() {
        let p =
            parse_program("width 16\nmode mask 4\nlet m = x * y\nmode exact\nout m * z").unwrap();
        let modes: Vec<PrecisionMode> = p
            .dag
            .nodes()
            .iter()
            .filter_map(|n| match n {
                Node::Mul { mode, .. } => Some(*mode),
                _ => None,
            })
            .collect();
        assert_eq!(
            modes,
            vec![
                PrecisionMode::FirstStage { masked_bits: 4 },
                PrecisionMode::Exact
            ]
        );
    }

    #[test]
    fn mac_special_form() {
        assert_eq!(
            eval("width 16\nout mac(x*3, y*5)", &[("x", 10), ("y", 20)]),
            130
        );
    }

    #[test]
    fn errors_carry_line_and_column() {
        let e = parse_program("width 16\nlet a = x +\nout a").unwrap_err();
        assert_eq!((e.line, e.col), (2, 12));
        let e = parse_program("width 16\nout x $ y").unwrap_err();
        assert_eq!((e.line, e.col), (2, 7));
        assert!(e.msg.contains('$'));
        let e = parse_program("width 16\nlet x = 1\nlet x = 2\nout x").unwrap_err();
        assert_eq!((e.line, e.col), (3, 5));
        let e = parse_program("out x").unwrap_err();
        assert_eq!((e.line, e.col), (1, 1));
        assert!(e.msg.contains("width"));
        let e = parse_program("width 16\nout x << y").unwrap_err();
        assert_eq!((e.line, e.col), (2, 10));
        assert!(e.msg.contains("constant shift distance"));
        let e = parse_program("width 16\nin x").unwrap_err();
        assert!(e.msg.contains("out"));
    }

    #[test]
    fn render_is_a_parser_fixed_point() {
        let src = "width 16\n\
                   mode relax 4\n\
                   let num = mac(c*5, n*0xFFFF, s*65535)\n\
                   mode exact\n\
                   let scaled = num * 3 - n\n\
                   out scaled >> 2 << 1";
        let p1 = parse_program(src).unwrap();
        let canon = render_program(&p1);
        let p2 = parse_program(&canon).unwrap();
        assert_eq!(
            p1.dag, p2.dag,
            "canonical form must rebuild the DAG exactly"
        );
        assert_eq!(canon, render_program(&p2), "render is idempotent");
    }

    #[test]
    fn math_atoms_take_defaults_without_a_directive() {
        let p = parse_program("width 16\nout sqrt(x)").unwrap();
        let specs: Vec<MathSpec> = p
            .dag
            .nodes()
            .iter()
            .filter_map(|n| match n {
                Node::Math { spec, .. } => Some(*spec),
                _ => None,
            })
            .collect();
        assert_eq!(specs, vec![default_spec(MathFn::Sqrt, 16)]);
        assert_eq!(eval("width 16\nout sqrt(x)", &[("x", 10_000)]), 100);
    }

    #[test]
    fn math_directive_steers_and_clamps_following_calls() {
        let p = parse_program(
            "width 16\nmath cordic 6 frac 10\nlet s = sin(a)\nmath lut 9\nout s + sqrt(b)",
        )
        .unwrap();
        let specs: Vec<MathSpec> = p
            .dag
            .nodes()
            .iter()
            .filter_map(|n| match n {
                Node::Math { spec, .. } => Some(*spec),
                _ => None,
            })
            .collect();
        assert_eq!(
            specs[0],
            MathSpec {
                func: MathFn::Sin,
                mode: MathMode::Cordic { iters: 6 },
                frac: 10,
            }
        );
        // `lut 9` exceeds the width-16 maximum and clamps; sqrt ignores
        // the stale trig frac clause.
        assert_eq!(specs[1].func, MathFn::Sqrt);
        assert_eq!(specs[1].frac, 0);
        assert_eq!(
            specs[1].mode,
            MathMode::Lut {
                log2_segments: max_log2_segments(MathFn::Sqrt, 16, 0),
            }
        );
    }

    #[test]
    fn math_keywords_stay_ordinary_identifiers_without_a_call() {
        // `sin` not followed by '(' is a plain input name.
        assert_eq!(eval("width 16\nout sin + 1", &[("sin", 41)]), 42);
        // Sqrt LUT tables need width ≥ 6 for strictly increasing
        // exact-square breakpoints.
        let e = parse_program("width 4\nmath lut 1\nout sqrt(x)").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("unavailable"), "{e}");
    }

    #[test]
    fn math_render_is_a_parser_fixed_point() {
        let src = "width 18\n\
                   math cordic 9 frac 12\n\
                   let s = sin(a)\n\
                   let c = cos(a)\n\
                   math cordic 8\n\
                   let r = sqrt(b)\n\
                   math lut 3 frac 12\n\
                   out s * c + r + sin(a + 1)";
        let p1 = parse_program(src).unwrap();
        let canon = render_program(&p1);
        let p2 = parse_program(&canon).unwrap();
        assert_eq!(p1.dag, p2.dag, "canonical form must rebuild math specs");
        assert_eq!(canon, render_program(&p2), "render is idempotent");
    }

    #[test]
    fn rendered_inputs_preserve_declaration_order() {
        let p = parse_program("width 8\nout b + a + c").unwrap();
        assert_eq!(p.dag.inputs(), vec!["b", "a", "c"]);
        let p2 = parse_program(&render_program(&p)).unwrap();
        assert_eq!(p2.dag.inputs(), vec!["b", "a", "c"]);
    }
}
