//! Pure-integer reference evaluator for expression DAGs.
//!
//! This is the semantic ground truth the gate-level backend must match
//! bit-for-bit: wrapping `width`-bit two's-complement arithmetic, with
//! multiplications and MACs deferring to the same functional models
//! ([`apim_logic::functional::multiply_trunc`],
//! [`apim_logic::mac::mac_trunc_functional`]) the hand-written kernels are
//! validated against — including the deliberate bit patterns of the §3.4
//! approximate modes.

use std::collections::HashMap;

use apim_logic::functional::multiply_trunc;
use apim_logic::mac::mac_trunc_functional;

use crate::ir::{Dag, Node, NodeId};
use crate::CompileError;

/// Evaluates every node, returning the per-node values in id order.
///
/// # Errors
///
/// Returns [`CompileError::UnboundInput`] if a named input has no binding.
pub fn evaluate_all(dag: &Dag, inputs: &HashMap<String, u64>) -> Result<Vec<u64>, CompileError> {
    evaluate_all_with(dag, inputs, &HashMap::new())
}

/// [`evaluate_all`] with per-node value overrides: after a node in
/// `overrides` is computed, its value is replaced (masked to width) before
/// any consumer reads it. Substituting an idealized value for one node and
/// watching the root is how the quality harness attributes end-to-end
/// error to individual approximate nodes.
///
/// # Errors
///
/// Returns [`CompileError::UnboundInput`] if a named input has no binding.
pub fn evaluate_all_with(
    dag: &Dag,
    inputs: &HashMap<String, u64>,
    overrides: &HashMap<NodeId, u64>,
) -> Result<Vec<u64>, CompileError> {
    let n = dag.width();
    let mask = dag.mask();
    let mut values: Vec<u64> = Vec::with_capacity(dag.len());
    for node in dag.nodes() {
        let v = match node {
            Node::Input { name } => *inputs
                .get(name)
                .ok_or_else(|| CompileError::UnboundInput(name.clone()))?,
            Node::Const { value } => *value,
            Node::Add { a, b } => values[a.0].wrapping_add(values[b.0]),
            Node::Sub { a, b } => values[a.0].wrapping_sub(values[b.0]),
            Node::Mul { a, b, mode } => multiply_trunc(values[a.0], values[b.0], n, *mode),
            Node::Mac { terms, mode } => {
                let pairs: Vec<(u64, u64)> = terms
                    .iter()
                    .map(|&(a, b)| (values[a.0], values[b.0]))
                    .collect();
                mac_trunc_functional(&pairs, n, *mode)
            }
            Node::Shl { x, amount } => values[x.0] << amount,
            Node::Shr { x, amount } => {
                let v = values[x.0];
                let sign = (v >> (n - 1)) & 1 == 1;
                let shifted = v >> amount;
                if sign {
                    // Arithmetic shift: fill the vacated top bits with the
                    // sign.
                    shifted | (mask & !(mask >> amount))
                } else {
                    shifted
                }
            }
            // apim-math's evaluator runs the same generic kernel the
            // expansion emits, so this is bit-identical to evaluating
            // the expanded DAG.
            Node::Math { x, spec } => apim_math::eval(n, spec, values[x.0])
                .map_err(|e| CompileError::InvalidDag(format!("math node: {e}")))?,
        };
        let id = NodeId(values.len());
        let v = overrides.get(&id).copied().unwrap_or(v);
        values.push(v & mask);
    }
    Ok(values)
}

/// Evaluates the DAG's root node.
///
/// # Errors
///
/// [`CompileError::NoRoot`] when no root is set, or an unbound-input error.
pub fn evaluate(dag: &Dag, inputs: &HashMap<String, u64>) -> Result<u64, CompileError> {
    let root = dag.root().ok_or(CompileError::NoRoot)?;
    Ok(evaluate_all(dag, inputs)?[root.0])
}

/// Convenience: evaluates with a slice of `(name, value)` bindings.
///
/// # Errors
///
/// Same as [`evaluate`].
pub fn evaluate_bound(dag: &Dag, bindings: &[(&str, u64)]) -> Result<u64, CompileError> {
    let map: HashMap<String, u64> = bindings.iter().map(|&(k, v)| (k.to_string(), v)).collect();
    evaluate(dag, &map)
}

/// Looks up a node's value in an [`evaluate_all`] result.
pub fn value_of(values: &[u64], id: NodeId) -> u64 {
    values[id.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_logic::PrecisionMode;

    #[test]
    fn exact_arithmetic_wraps() {
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        let c = dag.constant(200);
        let s = dag.add(x, c).unwrap();
        dag.set_root(s).unwrap();
        assert_eq!(evaluate_bound(&dag, &[("x", 100)]).unwrap(), 44); // 300 mod 256
    }

    #[test]
    fn exact_mul_is_wrapping_product() {
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let m = dag.mul(x, y, PrecisionMode::Exact).unwrap();
        dag.set_root(m).unwrap();
        assert_eq!(
            evaluate_bound(&dag, &[("x", 200), ("y", 200)]).unwrap(),
            (200u64 * 200) & 0xFF
        );
    }

    #[test]
    fn arithmetic_shift_sign_fills() {
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        let s = dag.shr(x, 2).unwrap();
        dag.set_root(s).unwrap();
        // -8 (0xF8) >> 2 = -2 (0xFE)
        assert_eq!(evaluate_bound(&dag, &[("x", 0xF8)]).unwrap(), 0xFE);
        // 0x78 >> 2 = 0x1E (positive: plain shift)
        assert_eq!(evaluate_bound(&dag, &[("x", 0x78)]).unwrap(), 0x1E);
    }

    #[test]
    fn left_shift_masks_overflow() {
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        let s = dag.shl(x, 3).unwrap();
        dag.set_root(s).unwrap();
        assert_eq!(evaluate_bound(&dag, &[("x", 0xFF)]).unwrap(), 0xF8);
    }

    #[test]
    fn unbound_input_is_an_error() {
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        dag.set_root(x).unwrap();
        assert!(matches!(
            evaluate_bound(&dag, &[]),
            Err(CompileError::UnboundInput(_))
        ));
    }

    #[test]
    fn overrides_substitute_before_consumers_read() {
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        let c = dag.constant(10);
        let m = dag.mul(x, c, PrecisionMode::Exact).unwrap();
        let r = dag.add(m, c).unwrap();
        dag.set_root(r).unwrap();
        let inputs: HashMap<String, u64> = [("x".to_string(), 3u64)].into();
        let plain = evaluate_all(&dag, &inputs).unwrap();
        assert_eq!(plain[r.0], 40);
        // Pretend the multiplier returned 100 instead of 30.
        let forced: HashMap<NodeId, u64> = [(m, 100u64)].into();
        let forced_vals = evaluate_all_with(&dag, &inputs, &forced).unwrap();
        assert_eq!(forced_vals[m.0], 100);
        assert_eq!(forced_vals[r.0], 110);
    }

    #[test]
    fn strength_reduction_preserves_semantics() {
        for value in [3u64, 77, 200, 255] {
            let mut dag = Dag::new(16).unwrap();
            let x = dag.input("x").unwrap();
            let c = dag.constant(0xF000); // -0x1000: four ones vs one negated
            let m = dag.mul(x, c, PrecisionMode::Exact).unwrap();
            let y = dag.input("y").unwrap();
            let r = dag.add(y, m).unwrap();
            dag.set_root(r).unwrap();
            let before = evaluate_bound(&dag, &[("x", value), ("y", 5)]).unwrap();
            dag.strength_reduce_negated_constants();
            let after = evaluate_bound(&dag, &[("x", value), ("y", 5)]).unwrap();
            assert_eq!(before, after, "x={value}");
        }
    }
}
