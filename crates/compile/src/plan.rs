//! Area-constrained placement and block-pair scheduling.
//!
//! The backend maps a DAG onto a [`apim_crossbar::BlockedCrossbar`] with a fixed
//! discipline (mirroring the hand-written kernels):
//!
//! * **Blocks 0/1** are the compute pair. Rows `0..16` of both are the
//!   staging area — four word rows (`X`, `Y`, `AUX`, `RES`) plus the
//!   12-row serial-adder scratch — and rows `16..16+R` are the transient
//!   ALU region that holds partial products, the Wallace tree's toggling
//!   stage outputs, and (one row above them) the shared multiplicand
//!   complement. `R` is sized from the worst multiplication in the DAG,
//!   and the placement fails with [`CompileError::AreaExceeded`] when the
//!   block cannot hold it.
//! * **Value rows** (one live row per DAG node) are register-allocated
//!   from block 0's remaining rows, lowest-first, and freed at each
//!   node's last use. When block 0 fills up, values **spill** into the
//!   data blocks (`2..`) and are staged back through the compute pair at
//!   a two-cycle copy cost per access.
//!
//! The planner simulates the exact [`RowAllocator`] call sequence the
//! backend will make, so every slot below is the row the traced allocator
//! will hand out at run time.

use apim_crossbar::{CrossbarConfig, RowAllocator};
use apim_logic::adder_csa::CSA_SCRATCH_ROWS;
use apim_logic::functional::{partial_product_shifts, tree_stages};
use apim_logic::{CostModel, PrecisionMode};

use crate::ir::{Dag, Node, NodeId};
use crate::CompileError;

/// Rows `0..STAGING_ROWS` of each compute block: X, Y, AUX, RES plus the
/// serial-adder scratch.
pub const STAGING_ROWS: usize = 16;
/// Staging row for the first serial operand.
pub const ROW_X: usize = 0;
/// Staging row for the second serial operand.
pub const ROW_Y: usize = 1;
/// Auxiliary row: subtrahend complement, copy relay, approximate-carry
/// chain.
pub const ROW_AUX: usize = 2;
/// Staging row for results awaiting a copy to their home slot.
pub const ROW_RES: usize = 3;

/// A value's home: `block` is the absolute crossbar block index (0 = the
/// anchor compute block, `2..` = data/spill blocks; block 1 never holds
/// values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Absolute block index.
    pub block: usize,
    /// Row within the block.
    pub row: usize,
}

/// The placement of one DAG onto the crossbar.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The crossbar geometry this placement targets.
    pub config: CrossbarConfig,
    /// First ALU-region row in the compute blocks.
    pub region_base: usize,
    /// ALU-region rows (worst partial-product pile + tree scratch + the
    /// shared-NOT row); zero when the DAG has no multiplications.
    pub region_rows: usize,
    /// Per-node home slot, in id order.
    pub slots: Vec<Slot>,
    /// Nodes whose rows are released after executing node `i`.
    pub frees: Vec<Vec<NodeId>>,
    /// Index of each node's last consumer (its own index if unused).
    pub last_use: Vec<usize>,
    /// Nodes whose home ended up outside the compute block.
    pub spilled: usize,
}

impl Placement {
    /// Whether `id`'s home row is in the anchor compute block.
    pub fn in_compute(&self, id: NodeId) -> bool {
        self.slots[id.0].block == 0
    }
}

/// Picks the multiplier operand of `Mul { a, b }`: a constant operand if
/// there is one (its set-bit count is then known at compile time),
/// otherwise `b`. Returns `(multiplicand, multiplier, constant value)`.
///
/// Commuting `a` into the multiplier seat is only legal under
/// [`PrecisionMode::Exact`], where the truncated product is the exact
/// wrapping product either way; the approximate modes act on the actual
/// multiplier's bits, and the reference evaluator fixes that role on `b`.
pub fn mul_multiplier(
    dag: &Dag,
    a: NodeId,
    b: NodeId,
    mode: PrecisionMode,
) -> (NodeId, NodeId, Option<u64>) {
    match (&dag.nodes()[a.0], &dag.nodes()[b.0]) {
        (_, Node::Const { value }) => (a, b, Some(*value)),
        (Node::Const { value }, _) if mode == PrecisionMode::Exact => (b, a, Some(*value)),
        _ => (a, b, None),
    }
}

/// Worst-case partial-product rows node `i` can require.
fn worst_pps(dag: &Dag, i: usize) -> usize {
    let n = dag.width() as usize;
    match &dag.nodes()[i] {
        Node::Mul { a, b, mode } => match mul_multiplier(dag, *a, *b, *mode) {
            (_, _, Some(c)) => partial_product_shifts(c, mode.masked_multiplier_bits()).len(),
            _ => n,
        },
        Node::Mac { terms, mode } => terms
            .iter()
            .map(|&(_, b)| match dag.nodes()[b.0] {
                Node::Const { value } => {
                    partial_product_shifts(value, mode.masked_multiplier_bits()).len()
                }
                _ => n,
            })
            .sum(),
        _ => 0,
    }
}

/// Places `dag` onto `config`, or fails with [`CompileError::AreaExceeded`].
pub fn place(dag: &Dag, config: &CrossbarConfig) -> Result<Placement, CompileError> {
    let n = dag.width() as usize;
    if let Some(node) = dag
        .nodes()
        .iter()
        .find(|node| matches!(node, Node::Math { .. }))
    {
        return Err(CompileError::InvalidDag(format!(
            "{node:?} must be expanded (crate::expand::expand_math) before placement"
        )));
    }
    if config.blocks < 2 {
        return Err(CompileError::AreaExceeded {
            what: "compute block pair".into(),
            needed: 2,
            available: config.blocks,
        });
    }
    if config.cols < n + 2 {
        return Err(CompileError::AreaExceeded {
            what: "bitlines (word + carry margin)".into(),
            needed: n + 2,
            available: config.cols,
        });
    }

    let worst = (0..dag.len()).map(|i| worst_pps(dag, i)).max().unwrap_or(0);
    let region_rows = if dag
        .nodes()
        .iter()
        .any(|node| matches!(node, Node::Mul { .. } | Node::Mac { .. }))
    {
        worst.max(2) + CSA_SCRATCH_ROWS + 1
    } else {
        0
    };
    if STAGING_ROWS + region_rows > config.rows {
        return Err(CompileError::AreaExceeded {
            what: format!("ALU region rows for a {worst}-row partial-product pile"),
            needed: STAGING_ROWS + region_rows,
            available: config.rows,
        });
    }

    // Liveness: a node dies after its last consumer; the root lives until
    // teardown; a node nothing consumes dies right after it executes.
    let mut last_use: Vec<usize> = (0..dag.len()).collect();
    for i in 0..dag.len() {
        for op in dag.operands(NodeId(i)) {
            last_use[op.0] = i;
        }
    }
    let root = dag.root().ok_or(CompileError::NoRoot)?;

    // Mirror the backend's exact allocator call sequence.
    let mut compute = RowAllocator::new(config.rows);
    compute
        .alloc_many(STAGING_ROWS)
        .map_err(CompileError::Crossbar)?;
    if region_rows > 0 {
        compute
            .alloc_many(region_rows)
            .map_err(CompileError::Crossbar)?;
    }
    let mut spills: Vec<RowAllocator> = (2..config.blocks)
        .map(|_| RowAllocator::new(config.rows))
        .collect();

    let mut slots = Vec::with_capacity(dag.len());
    let mut frees: Vec<Vec<NodeId>> = vec![Vec::new(); dag.len()];
    let mut spilled = 0usize;
    for i in 0..dag.len() {
        let slot = if let Ok(row) = compute.alloc() {
            Slot { block: 0, row }
        } else {
            let mut found = None;
            for (k, alloc) in spills.iter_mut().enumerate() {
                if let Ok(row) = alloc.alloc() {
                    found = Some(Slot { block: 2 + k, row });
                    break;
                }
            }
            spilled += 1;
            found.ok_or_else(|| CompileError::AreaExceeded {
                what: format!("value rows for {} live words", dag.len()),
                needed: i + 1,
                available: i,
            })?
        };
        slots.push(slot);
        let mut dying: Vec<NodeId> = dag
            .operands(NodeId(i))
            .into_iter()
            .filter(|op| last_use[op.0] == i && *op != root)
            .collect();
        dying.sort();
        dying.dedup();
        if last_use[i] == i && NodeId(i) != root {
            dying.push(NodeId(i));
        }
        for op in &dying {
            let s = slots[op.0];
            if s.block == 0 {
                compute.free(s.row).map_err(CompileError::Crossbar)?;
            } else {
                spills[s.block - 2]
                    .free(s.row)
                    .map_err(CompileError::Crossbar)?;
            }
        }
        frees[i] = dying;
    }

    Ok(Placement {
        config: config.clone(),
        region_base: STAGING_ROWS,
        region_rows,
        slots,
        frees,
        last_use,
        spilled,
    })
}

/// Extra copy cycles a node pays beyond its arithmetic closed form, given
/// the final partial-product count (`ones`), the relaxed bit count `m`,
/// and where its result must land. Shared between the run-time
/// expected-cycle bookkeeping and the scheduler's estimates.
pub fn mul_copy_overhead(n: u32, ones: usize, m: u32, dest_in_compute: bool) -> u64 {
    match ones {
        0 => 0,
        1 => 2,
        _ => {
            let survivors_in_anchor = tree_stages(ones).is_multiple_of(2);
            let m = m.min(n);
            if m == 0 {
                if survivors_in_anchor && dest_in_compute {
                    0
                } else {
                    2
                }
            } else if m == n {
                2
            } else {
                4
            }
        }
    }
}

/// Staging-copy cycles for a two-operand serial op (`Add`/`Sub`): each
/// operand outside the compute block is staged in (2 cycles), and a
/// spilled destination pays a copy out. A repeated operand costs nothing
/// extra — the serial netlist simply reads the same cell twice.
pub fn serial_copy_overhead(placement: &Placement, a: NodeId, b: NodeId, dest: NodeId) -> u64 {
    let mut cycles = 0;
    if !placement.in_compute(a) {
        cycles += 2;
    }
    if !placement.in_compute(b) {
        cycles += 2;
    }
    if !placement.in_compute(dest) {
        cycles += 2;
    }
    cycles
}

/// One scheduled node on a block pair.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleEntry {
    /// The node.
    pub node: NodeId,
    /// Block-pair index the node runs on.
    pub unit: usize,
    /// Start cycle.
    pub start: u64,
    /// End cycle.
    pub end: u64,
}

/// A dependency-respecting list schedule of the DAG across the crossbar's
/// block pairs.
#[derive(Debug, Clone)]
pub struct BlockSchedule {
    /// Number of block pairs.
    pub units: usize,
    /// Entries in issue order (zero-duration leaf nodes are omitted).
    pub entries: Vec<ScheduleEntry>,
    /// Parallel makespan in cycles.
    pub makespan: u64,
    /// Serial single-pair total in cycles.
    pub serial_cycles: u64,
}

/// A multiplier bit pattern with the §3.3 random-data expected density
/// (half the unmasked bits set), used to estimate unknown multipliers.
fn expected_density_multiplier(n: u32, mode: PrecisionMode) -> u64 {
    let masked = mode.masked_multiplier_bits().min(n);
    let pattern = 0x5555_5555_5555_5555u64;
    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    (pattern & mask) >> masked << masked
}

/// Estimated serial cycles for node `i` (exact for constant multipliers,
/// expected-density otherwise).
pub fn estimate_node_cycles(dag: &Dag, placement: &Placement, model: &CostModel, i: usize) -> u64 {
    let n = dag.width();
    let id = NodeId(i);
    match &dag.nodes()[i] {
        Node::Input { .. } | Node::Const { .. } => 0,
        Node::Add { a, b } => {
            model.serial_add(n).cycles.get() + serial_copy_overhead(placement, *a, *b, id)
        }
        Node::Sub { a, b } => {
            model.serial_sub(n).cycles.get() + serial_copy_overhead(placement, *a, *b, id)
        }
        Node::Shl { .. } => 2,
        Node::Shr { amount, .. } => 2 + u64::from(*amount),
        Node::Mul { a, b, mode } => {
            let value = match mul_multiplier(dag, *a, *b, *mode) {
                (_, _, Some(c)) => c,
                _ => expected_density_multiplier(n, *mode),
            };
            let ones = partial_product_shifts(value, mode.masked_multiplier_bits()).len();
            model.multiply_trunc_value(n, value, *mode).cycles.get()
                + mul_copy_overhead(
                    n,
                    ones,
                    mode.relaxed_product_bits(),
                    placement.in_compute(id),
                )
        }
        Node::Mac { terms, mode } => {
            let values: Vec<u64> = terms
                .iter()
                .map(|&(_, b)| match dag.nodes()[b.0] {
                    Node::Const { value } => value,
                    _ => expected_density_multiplier(n, *mode),
                })
                .collect();
            let ones: usize = values
                .iter()
                .map(|&v| partial_product_shifts(v, mode.masked_multiplier_bits()).len())
                .sum();
            model.mac_group_value(n, &values, *mode).cycles.get()
                + mul_copy_overhead(
                    n,
                    ones,
                    mode.relaxed_product_bits(),
                    placement.in_compute(id),
                )
        }
        // place() rejects unexpanded Math nodes, so no placement (and
        // hence no estimate request) can reach this arm.
        Node::Math { .. } => 0,
    }
}

/// List-schedules independent DAG nodes across the crossbar's block pairs
/// (earliest-start greedy, dependencies respected). The gate-level backend
/// executes serially on pair 0 — this is the controller-level placement a
/// multi-pair device would use, and the makespan it reports is the
/// parallel latency estimate printed by `apim-cli compile`.
pub fn schedule(dag: &Dag, placement: &Placement, model: &CostModel) -> BlockSchedule {
    let units = (placement.config.blocks / 2).max(1);
    let mut unit_free = vec![0u64; units];
    let mut finish = vec![0u64; dag.len()];
    let mut entries = Vec::new();
    let mut serial = 0u64;
    for i in 0..dag.len() {
        let dur = estimate_node_cycles(dag, placement, model, i);
        serial += dur;
        let ready = dag
            .operands(NodeId(i))
            .iter()
            .map(|op| finish[op.0])
            .max()
            .unwrap_or(0);
        if dur == 0 {
            finish[i] = ready;
            continue;
        }
        let unit = (0..units)
            .min_by_key(|&u| unit_free[u].max(ready))
            .unwrap_or(0);
        let start = unit_free[unit].max(ready);
        let end = start + dur;
        unit_free[unit] = end;
        finish[i] = end;
        entries.push(ScheduleEntry {
            node: NodeId(i),
            unit,
            start,
            end,
        });
    }
    BlockSchedule {
        units,
        entries,
        makespan: unit_free.into_iter().max().unwrap_or(0),
        serial_cycles: serial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_device::DeviceParams;

    fn dag_with_mul(width: u32) -> Dag {
        let mut dag = Dag::new(width).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let m = dag.mul(x, y, PrecisionMode::Exact).unwrap();
        let s = dag.add(m, x).unwrap();
        dag.set_root(s).unwrap();
        dag
    }

    #[test]
    fn placement_reserves_staging_and_region() {
        let dag = dag_with_mul(16);
        let p = place(&dag, &CrossbarConfig::default()).unwrap();
        assert_eq!(p.region_base, STAGING_ROWS);
        // Unknown multiplier: worst case 16 partial products + tree
        // scratch + shared-NOT row.
        assert_eq!(p.region_rows, 16 + CSA_SCRATCH_ROWS + 1);
        // First value row sits just above the region.
        assert_eq!(p.slots[0].block, 0);
        assert_eq!(p.slots[0].row, STAGING_ROWS + p.region_rows);
    }

    #[test]
    fn wide_unknown_multiplier_exceeds_area() {
        let dag = dag_with_mul(64);
        let err = place(&dag, &CrossbarConfig::default()).unwrap_err();
        assert!(matches!(err, CompileError::AreaExceeded { .. }), "{err}");
    }

    #[test]
    fn values_spill_into_data_blocks() {
        let mut dag = Dag::new(8).unwrap();
        // More simultaneously live values than one block can hold.
        let inputs: Vec<NodeId> = (0..40)
            .map(|i| dag.input(&format!("x{i}")).unwrap())
            .collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = dag.add(acc, x).unwrap();
        }
        dag.set_root(acc).unwrap();
        let config = CrossbarConfig {
            rows: 24,
            ..CrossbarConfig::default()
        };
        let p = place(&dag, &config).unwrap();
        assert!(p.spilled > 0, "expected spills with 24-row blocks");
        assert!(p.slots.iter().any(|s| s.block >= 2));
        assert!(p.slots.iter().all(|s| s.block != 1));
    }

    #[test]
    fn rows_are_recycled_at_last_use() {
        let mut dag = Dag::new(8).unwrap();
        let a = dag.input("a").unwrap();
        let b = dag.input("b").unwrap();
        let s1 = dag.add(a, b).unwrap();
        let s2 = dag.add(s1, s1).unwrap();
        dag.set_root(s2).unwrap();
        let p = place(&dag, &CrossbarConfig::default()).unwrap();
        // `a` and `b` die at s1; s2 reuses the most recently freed row
        // (the allocator's free list is a stack).
        assert_eq!(p.frees[s1.0], vec![a, b]);
        assert_eq!(p.slots[s2.0].row, p.slots[b.0].row);
    }

    #[test]
    fn schedule_respects_dependencies_and_beats_serial() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let c = dag.constant(0xABCD);
        let d = dag.constant(0x1234);
        let m1 = dag.mul(x, c, PrecisionMode::Exact).unwrap();
        let m2 = dag.mul(y, d, PrecisionMode::Exact).unwrap();
        let s = dag.add(m1, m2).unwrap();
        dag.set_root(s).unwrap();
        let p = place(&dag, &CrossbarConfig::default()).unwrap();
        let model = CostModel::new(&DeviceParams::default());
        let sched = schedule(&dag, &p, &model);
        assert_eq!(sched.units, 2);
        // Two independent multiplies overlap; the add starts after both.
        assert!(sched.makespan < sched.serial_cycles);
        let add_entry = sched.entries.iter().find(|e| e.node == s).unwrap();
        for e in &sched.entries {
            if e.node == m1 || e.node == m2 {
                assert!(e.end <= add_entry.start);
            }
        }
    }
}
