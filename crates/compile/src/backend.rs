//! Gate-level backend: executes a compiled DAG on simulated cells and
//! verifies the captured microprogram.
//!
//! The backend realizes each DAG node with the same primitive sequences
//! the hand-written kernels use (`add_words`, `sub_words`,
//! `reduce_rows_to_two_at`, the MAC's shared-NOT partial-product
//! generator), placed per the [`Placement`]'s row map. Every execution
//! runs with operation recording armed and finishes by replaying the
//! trace through all five `apim-verify` hazard passes — including
//! cycle-accounting against the closed-form cost this module accumulates
//! node by node. A finding of error severity aborts the run with
//! [`CompileError::VerificationFailed`].

use std::collections::HashMap;
use std::ops::Range;

use apim_arch::isa::Trace;
use apim_crossbar::{
    AllocEvent, BlockId, BlockedCrossbar, CrossbarConfig, OpTrace, RowAllocator, RowRef,
};
use apim_device::Joules;
use apim_logic::adder_serial::{add_words, add_words_with_carry, SerialScratch};
use apim_logic::functional::partial_product_shifts;
use apim_logic::subtractor::sub_words;
use apim_logic::wallace::reduce_rows_to_two_at;
use apim_logic::{CostModel, PrecisionMode};
use apim_verify::{check_equiv, verify_trace, EquivReport, LintReport, OutputBinding};

use crate::eval::evaluate_all;
use crate::expand::expand_math;
use crate::ir::{Dag, Node, NodeId};
use crate::lower::lower;
use crate::plan::{
    mul_copy_overhead, mul_multiplier, place, schedule, serial_copy_overhead, BlockSchedule,
    Placement, Slot, ROW_AUX, ROW_RES, ROW_X, ROW_Y,
};
use crate::CompileError;

/// Knobs for [`compile`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Target crossbar geometry (and device parameters).
    pub config: CrossbarConfig,
    /// Run the negated-constant strength reduction before placement.
    pub strength_reduce: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            config: CrossbarConfig::default(),
            strength_reduce: true,
        }
    }
}

/// A DAG compiled against a concrete crossbar geometry.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    dag: Dag,
    placement: Placement,
    schedule: BlockSchedule,
    trace: Trace,
    model: CostModel,
}

/// Outcome of one gate-level execution of a compiled program.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The value read back from the crossbar's result row.
    pub value: u64,
    /// The pure-integer reference value ([`crate::eval::evaluate`]) — equal
    /// to `value` for a correct compiler.
    pub reference: u64,
    /// Cycles actually charged by the simulated crossbar.
    pub cycles: u64,
    /// The closed-form cycle prediction fed to the cycle-accounting pass.
    pub expected_cycles: u64,
    /// Energy actually charged by the simulated crossbar.
    pub energy: Joules,
    /// Number of recorded microprogram primitives.
    pub trace_len: usize,
    /// The full hazard report (clean for a correct compiler).
    pub lint: LintReport,
}

/// Compiles `dag` for the geometry in `options`: math expansion,
/// optimization, lowering, placement and block-pair scheduling.
/// Gate-level execution is deferred to [`CompiledProgram::run`].
///
/// # Errors
///
/// [`CompileError::NoRoot`] without a designated output,
/// [`CompileError::AreaExceeded`] when the program does not fit.
pub fn compile(dag: &Dag, options: &CompileOptions) -> Result<CompiledProgram, CompileError> {
    dag.root().ok_or(CompileError::NoRoot)?;
    let mut dag = expand_math(dag);
    if options.strength_reduce {
        dag.strength_reduce_negated_constants();
    }
    let placement = place(&dag, &options.config)?;
    let model = CostModel::new(&options.config.params);
    let schedule = schedule(&dag, &placement, &model);
    let trace = lower(&dag);
    Ok(CompiledProgram {
        dag,
        placement,
        schedule,
        trace,
        model,
    })
}

impl CompiledProgram {
    /// The (possibly strength-reduced) DAG this program executes.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The row placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The block-pair list schedule.
    pub fn schedule(&self) -> &BlockSchedule {
        &self.schedule
    }

    /// The lowered controller macro-op trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The analytic cost model used for cycle bookkeeping.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Executes the program on simulated cells with the given input
    /// bindings, then lints the recorded microprogram.
    ///
    /// # Errors
    ///
    /// Unbound inputs, crossbar faults, or —
    /// [`CompileError::VerificationFailed`] — an error-severity hazard
    /// finding (a compiler bug by definition).
    pub fn run(&self, inputs: &HashMap<String, u64>) -> Result<RunReport, CompileError> {
        let exec = self.execute(inputs)?;
        let lint = verify_trace(&exec.ops, &exec.events, Some(exec.expected_cycles));
        if lint.error_count() > 0 {
            return Err(CompileError::VerificationFailed(lint.to_string()));
        }
        Ok(RunReport {
            value: exec.value,
            reference: exec.reference,
            cycles: exec.cycles,
            expected_cycles: exec.expected_cycles,
            energy: exec.energy,
            trace_len: exec.ops.len(),
            lint,
        })
    }

    /// Symbolically re-executes the recorded microprogram for one input
    /// specialization and checks the root row against the pure-integer
    /// reference evaluator.
    ///
    /// Compiled programs read multiplier operands through the sense
    /// amplifiers to steer partial-product placement, so every input stays
    /// concrete and the proof covers the recorded specialization: the
    /// symbolic replay still discharges X-propagation, init obligations
    /// and write-back divergence that concrete execution can mask.
    ///
    /// # Errors
    ///
    /// Unbound inputs or crossbar faults; checker verdicts (including
    /// non-equivalence) land in the returned report.
    pub fn verify_equiv(&self, inputs: &HashMap<String, u64>) -> Result<EquivReport, CompileError> {
        let exec = self.execute(inputs)?;
        let output = OutputBinding {
            block: exec.root_block,
            row: exec.root_row,
            col0: 0,
            width: self.dag.width() as usize,
            col_step: 1,
        };
        let reference = exec.reference;
        Ok(check_equiv(&exec.ops, &[], &output, move |_| reference))
    }

    /// Records one gate-level execution and returns the raw microprogram,
    /// its output binding and the reference value — the ingredients for
    /// external equivalence checking and miscompile-fixture construction
    /// (mutate the trace, watch the checker catch it).
    ///
    /// # Errors
    ///
    /// Unbound inputs or crossbar faults.
    pub fn record(
        &self,
        inputs: &HashMap<String, u64>,
    ) -> Result<(OpTrace, OutputBinding, u64), CompileError> {
        let exec = self.execute(inputs)?;
        let output = OutputBinding {
            block: exec.root_block,
            row: exec.root_row,
            col0: 0,
            width: self.dag.width() as usize,
            col_step: 1,
        };
        Ok((exec.ops, output, exec.reference))
    }

    /// One recorded gate-level execution: the shared body behind
    /// [`CompiledProgram::run`] and [`CompiledProgram::verify_equiv`].
    fn execute(&self, inputs: &HashMap<String, u64>) -> Result<Execution, CompileError> {
        let values = evaluate_all(&self.dag, inputs)?;
        let cfg = &self.placement.config;
        let n = self.dag.width() as usize;
        let mut xbar = BlockedCrossbar::new(cfg.clone())?;
        let blocks: Vec<BlockId> = (0..cfg.blocks)
            .map(|i| xbar.block(i))
            .collect::<Result<_, _>>()?;

        // Traced allocators, one per block; the planner pre-simulated this
        // exact call sequence, so each alloc's row is asserted against it.
        let mut allocs: Vec<RowAllocator> = (0..cfg.blocks)
            .map(|_| RowAllocator::with_tracing(cfg.rows))
            .collect();
        let mut scratches: Vec<SerialScratch> = Vec::with_capacity(2);
        let mut regions: Vec<Vec<usize>> = Vec::with_capacity(2);
        for alloc in allocs.iter_mut().take(2) {
            let staging = alloc.alloc_many(4)?;
            debug_assert_eq!(staging, [ROW_X, ROW_Y, ROW_AUX, ROW_RES]);
            scratches.push(SerialScratch::alloc(alloc)?);
            regions.push(if self.placement.region_rows > 0 {
                alloc.alloc_many(self.placement.region_rows)?
            } else {
                Vec::new()
            });
        }
        let scratches: [SerialScratch; 2] = scratches.try_into().expect("two compute blocks");

        let stats_before = *xbar.stats();
        xbar.start_recording();

        let mut machine = Machine {
            xbar: &mut xbar,
            blocks: &blocks,
            scratch: &scratches,
            n,
            t0: self.placement.region_base,
            not_row: self.placement.region_base + self.placement.region_rows.saturating_sub(1),
        };
        let mut expected_cycles = 0u64;
        for i in 0..self.dag.len() {
            let id = NodeId(i);
            let dest = self.placement.slots[i];
            let row = allocs[dest.block].alloc()?;
            debug_assert_eq!(row, dest.row, "planner/runtime divergence at {id}");
            expected_cycles +=
                machine.exec(&self.dag, &self.placement, &self.model, &values, id)?;
            for &op in &self.placement.frees[i] {
                let s = self.placement.slots[op.0];
                allocs[s.block].free(s.row)?;
            }
        }
        let trace = machine.xbar.stop_recording();

        let root = self.dag.root().ok_or(CompileError::NoRoot)?;
        let root_slot = self.placement.slots[root.0];
        let value = from_bits(&xbar.peek_word(blocks[root_slot.block], root_slot.row, 0, n)?);

        // Teardown: return every reserved row so the scratch-lifetime pass
        // sees a leak-free program.
        allocs[root_slot.block].free(root_slot.row)?;
        for (b, scratch) in scratches.into_iter().enumerate() {
            allocs[b].free_many(regions[b].iter().copied())?;
            scratch.release(&mut allocs[b])?;
            allocs[b].free_many([ROW_X, ROW_Y, ROW_AUX, ROW_RES])?;
        }

        // Merge the per-block event logs into one flat row space (block ·
        // rows + row) — each row belongs to exactly one allocator, so
        // per-row event ordering is preserved.
        let mut events = Vec::new();
        for (b, alloc) in allocs.iter_mut().enumerate() {
            let offset = b * cfg.rows;
            events.extend(alloc.take_events().into_iter().map(|ev| match ev {
                AllocEvent::Alloc { row } => AllocEvent::Alloc { row: row + offset },
                AllocEvent::Free { row } => AllocEvent::Free { row: row + offset },
            }));
        }

        let delta = *xbar.stats() - stats_before;
        Ok(Execution {
            ops: trace,
            events,
            expected_cycles,
            value,
            reference: values[root.0],
            cycles: delta.cycles.get(),
            energy: delta.energy,
            root_block: root_slot.block,
            root_row: root_slot.row,
        })
    }
}

/// Raw outcome of one recorded gate-level execution, before any
/// verification pass has judged it.
struct Execution {
    ops: OpTrace,
    events: Vec<AllocEvent>,
    expected_cycles: u64,
    value: u64,
    reference: u64,
    cycles: u64,
    energy: Joules,
    root_block: usize,
    root_row: usize,
}

/// Execution context: the crossbar plus the fixed layout handles.
struct Machine<'a> {
    xbar: &'a mut BlockedCrossbar,
    blocks: &'a [BlockId],
    scratch: &'a [SerialScratch; 2],
    n: usize,
    /// First ALU-region row (partial products / tree survivors).
    t0: usize,
    /// Shared multiplicand-complement row (block 1, top of the region).
    not_row: usize,
}

impl Machine<'_> {
    /// Two-NOT copy of a word segment between any two value rows, staged
    /// through block 1's AUX row (2 cycles).
    fn copy_word(&mut self, src: Slot, dst: Slot, cols: Range<usize>) -> Result<(), CompileError> {
        self.xbar.copy_row_shifted(
            RowRef::new(self.blocks[src.block], src.row),
            RowRef::new(self.blocks[1], ROW_AUX),
            RowRef::new(self.blocks[dst.block], dst.row),
            cols,
            0,
        )?;
        Ok(())
    }

    /// Returns a compute-block row holding the operand: its home row when
    /// already in block 0, else a 2-cycle staging copy into `staging_row`.
    fn stage(&mut self, slot: Slot, staging_row: usize) -> Result<usize, CompileError> {
        if slot.block == 0 {
            return Ok(slot.row);
        }
        let n = self.n;
        self.copy_word(
            slot,
            Slot {
                block: 0,
                row: staging_row,
            },
            0..n,
        )?;
        Ok(staging_row)
    }

    /// Executes one node, returning its closed-form expected cycle count.
    fn exec(
        &mut self,
        dag: &Dag,
        placement: &Placement,
        model: &CostModel,
        values: &[u64],
        id: NodeId,
    ) -> Result<u64, CompileError> {
        let n = self.n;
        let bits = dag.width();
        let dest = placement.slots[id.0];
        match &dag.nodes()[id.0] {
            Node::Input { .. } | Node::Const { .. } => {
                self.xbar.preload_word(
                    self.blocks[dest.block],
                    dest.row,
                    0,
                    &to_bits(values[id.0], n),
                )?;
                Ok(0)
            }
            Node::Add { a, b } => {
                let x = self.stage(placement.slots[a.0], ROW_X)?;
                let y = self.stage(placement.slots[b.0], ROW_Y)?;
                let (out, copy_out) = self.serial_out(dest);
                add_words(self.xbar, self.blocks[0], x, y, out, 0..n, &self.scratch[0])?;
                if copy_out {
                    self.copy_word(
                        Slot {
                            block: 0,
                            row: ROW_RES,
                        },
                        dest,
                        0..n,
                    )?;
                }
                Ok(model.serial_add(bits).cycles.get()
                    + serial_copy_overhead(placement, *a, *b, id))
            }
            Node::Sub { a, b } => {
                let x = self.stage(placement.slots[a.0], ROW_X)?;
                let y = self.stage(placement.slots[b.0], ROW_Y)?;
                let (out, copy_out) = self.serial_out(dest);
                sub_words(
                    self.xbar,
                    self.blocks[0],
                    x,
                    y,
                    ROW_AUX,
                    out,
                    0..n,
                    &self.scratch[0],
                )?;
                if copy_out {
                    self.copy_word(
                        Slot {
                            block: 0,
                            row: ROW_RES,
                        },
                        dest,
                        0..n,
                    )?;
                }
                Ok(model.serial_sub(bits).cycles.get()
                    + serial_copy_overhead(placement, *a, *b, id))
            }
            Node::Shl { x, amount } => {
                let k = *amount as usize;
                let src = placement.slots[x.0];
                self.xbar
                    .preload_word(self.blocks[dest.block], dest.row, 0, &vec![false; n])?;
                self.xbar.copy_row_shifted(
                    RowRef::new(self.blocks[src.block], src.row),
                    RowRef::new(self.blocks[1], ROW_AUX),
                    RowRef::new(self.blocks[dest.block], dest.row),
                    0..n - k,
                    k as isize,
                )?;
                Ok(2)
            }
            Node::Shr { x, amount } => {
                let k = *amount as usize;
                let src = placement.slots[x.0];
                let sign = self.xbar.read_bit(self.blocks[src.block], src.row, n - 1)?;
                self.xbar
                    .preload_word(self.blocks[dest.block], dest.row, 0, &vec![false; n])?;
                self.xbar.copy_row_shifted(
                    RowRef::new(self.blocks[src.block], src.row),
                    RowRef::new(self.blocks[1], ROW_AUX),
                    RowRef::new(self.blocks[dest.block], dest.row),
                    k..n,
                    -(k as isize),
                )?;
                for col in n - k..n {
                    self.xbar
                        .write_back_bit(self.blocks[dest.block], dest.row, col, sign)?;
                }
                Ok(2 + k as u64)
            }
            Node::Mul { a, b, mode } => {
                let (mcand, mult, _) = mul_multiplier(dag, *a, *b, *mode);
                let mbits = self.read_multiplier(placement.slots[mult.0])?;
                debug_assert_eq!(mbits, values[mult.0]);
                let shifts = partial_product_shifts(mbits, mode.masked_multiplier_bits());
                let count = self.place_pps(placement.slots[mcand.0], &shifts, 0)?;
                self.finish_product(count, *mode, dest)?;
                Ok(model.multiply_trunc_value(bits, mbits, *mode).cycles.get()
                    + mul_copy_overhead(
                        bits,
                        count,
                        mode.relaxed_product_bits(),
                        placement.in_compute(id),
                    ))
            }
            Node::Mac { terms, mode } => {
                let mut count = 0usize;
                let mut multipliers = Vec::with_capacity(terms.len());
                for &(ta, tb) in terms {
                    let mbits = self.read_multiplier(placement.slots[tb.0])?;
                    debug_assert_eq!(mbits, values[tb.0]);
                    multipliers.push(mbits);
                    let shifts = partial_product_shifts(mbits, mode.masked_multiplier_bits());
                    count += self.place_pps(placement.slots[ta.0], &shifts, count)?;
                }
                self.finish_product(count, *mode, dest)?;
                Ok(model
                    .mac_group_value(bits, &multipliers, *mode)
                    .cycles
                    .get()
                    + mul_copy_overhead(
                        bits,
                        count,
                        mode.relaxed_product_bits(),
                        placement.in_compute(id),
                    ))
            }
            // compile() expands Math nodes before placement and place()
            // rejects any that remain, so execution can never see one.
            Node::Math { .. } => Err(CompileError::InvalidDag(
                "unexpanded math node reached the gate-level backend".into(),
            )),
        }
    }

    /// Where a serial (block 0) result lands: the destination row when it
    /// lives in block 0, else the staging RES row plus a copy-out.
    fn serial_out(&self, dest: Slot) -> (usize, bool) {
        if dest.block == 0 {
            (dest.row, false)
        } else {
            (ROW_RES, true)
        }
    }

    /// Reads the multiplier word through the sense amplifier (free of
    /// cycles, like the hand-written multiplier's bit scan).
    fn read_multiplier(&mut self, slot: Slot) -> Result<u64, CompileError> {
        let mut bits = 0u64;
        for col in 0..self.n {
            bits |= u64::from(self.xbar.read_bit(self.blocks[slot.block], slot.row, col)?) << col;
        }
        Ok(bits)
    }

    /// Generates one multiplicand's truncated partial products into region
    /// rows `t0 + pp_base ..`, sharing a single complement NOR
    /// (`1 + shifts.len()` cycles; zero for an all-zero multiplier).
    fn place_pps(
        &mut self,
        mcand: Slot,
        shifts: &[u32],
        pp_base: usize,
    ) -> Result<usize, CompileError> {
        if shifts.is_empty() {
            return Ok(0);
        }
        let n = self.n;
        self.xbar.init_rows(self.blocks[1], &[self.not_row], 0..n)?;
        self.xbar.nor_rows_shifted(
            &[RowRef::new(self.blocks[mcand.block], mcand.row)],
            RowRef::new(self.blocks[1], self.not_row),
            0..n,
            0,
        )?;
        for (i, &shift) in shifts.iter().enumerate() {
            let lo = shift as usize;
            let row = self.t0 + pp_base + i;
            self.xbar
                .preload_word(self.blocks[0], row, 0, &vec![false; n + 2])?;
            self.xbar.init_rows(self.blocks[0], &[row], lo..n)?;
            self.xbar.nor_rows_shifted(
                &[RowRef::new(self.blocks[1], self.not_row)],
                RowRef::new(self.blocks[0], row),
                0..n - lo,
                lo as isize,
            )?;
        }
        Ok(shifts.len())
    }

    /// Turns a pile of `count` partial products (region rows `t0..`) into
    /// the destination word: Wallace reduction to two survivors, then the
    /// (optionally relaxed) final addition of the §3.4 scheme.
    fn finish_product(
        &mut self,
        count: usize,
        mode: PrecisionMode,
        dest: Slot,
    ) -> Result<(), CompileError> {
        let n = self.n;
        match count {
            0 => {
                self.xbar
                    .preload_word(self.blocks[dest.block], dest.row, 0, &vec![false; n])?;
                Ok(())
            }
            1 => self.copy_word(
                Slot {
                    block: 0,
                    row: self.t0,
                },
                dest,
                0..n,
            ),
            _ => {
                let (survivor_block, survivors) = reduce_rows_to_two_at(
                    self.xbar,
                    self.blocks[0],
                    self.blocks[1],
                    count,
                    0..n,
                    self.t0,
                )?;
                debug_assert_eq!(survivors, 2);
                let m = (mode.relaxed_product_bits() as usize).min(n);
                self.final_add(survivor_block, m, dest)
            }
        }
    }

    /// The §3.4 final product generation over the two survivors at rows
    /// `t0`/`t0 + 1` of `s`: `m` approximate LSBs via MAJ carries, the rest
    /// via the serial netlist seeded with the boundary carry.
    fn final_add(&mut self, s: BlockId, m: usize, dest: Slot) -> Result<(), CompileError> {
        let n = self.n;
        let si = if s == self.blocks[0] { 0 } else { 1 };
        let oi = 1 - si;
        let (t0, t1) = (self.t0, self.t0 + 1);
        if m == 0 {
            if si == 0 && dest.block == 0 {
                add_words(self.xbar, s, t0, t1, dest.row, 0..n, &self.scratch[0])?;
            } else {
                add_words(self.xbar, s, t0, t1, ROW_RES, 0..n, &self.scratch[si])?;
                self.copy_word(
                    Slot {
                        block: si,
                        row: ROW_RES,
                    },
                    dest,
                    0..n,
                )?;
            }
            return Ok(());
        }
        // Approximate LSBs: a MAJ + write-back carry chain in AUX, then
        // one parallel inversion into the partner block's RES row.
        self.xbar.preload_bit(s, ROW_AUX, 0, false)?;
        for col in 0..m {
            let carry = self
                .xbar
                .maj_read(s, [(t0, col), (t1, col), (ROW_AUX, col)])?;
            self.xbar.write_back_bit(s, ROW_AUX, col + 1, carry)?;
        }
        self.xbar.init_rows(self.blocks[oi], &[ROW_RES], 0..m)?;
        self.xbar.nor_rows_shifted(
            &[RowRef::new(s, ROW_AUX)],
            RowRef::new(self.blocks[oi], ROW_RES),
            1..m + 1,
            -1,
        )?;
        if m == n {
            return self.copy_word(
                Slot {
                    block: oi,
                    row: ROW_RES,
                },
                dest,
                0..n,
            );
        }
        // Hand the exact boundary carry to the serial netlist and finish
        // the high bits.
        let scratch = &self.scratch[si];
        self.xbar.init_cells(s, &[(scratch.carry, m)])?;
        self.xbar
            .nor_cells(s, &[(ROW_AUX, m)], (scratch.carry, m))?;
        add_words_with_carry(self.xbar, s, t0, t1, ROW_RES, m..n, scratch)?;
        self.copy_word(
            Slot {
                block: oi,
                row: ROW_RES,
            },
            dest,
            0..m,
        )?;
        self.copy_word(
            Slot {
                block: si,
                row: ROW_RES,
            },
            dest,
            m..n,
        )?;
        Ok(())
    }
}

fn to_bits(v: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (v >> i) & 1 == 1).collect()
}

fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;

    fn run_dag(dag: &Dag, bindings: &[(&str, u64)]) -> RunReport {
        let program = compile(dag, &CompileOptions::default()).unwrap();
        let inputs: HashMap<String, u64> =
            bindings.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        let report = program.run(&inputs).unwrap();
        assert!(report.lint.is_clean(), "lint: {}", report.lint);
        assert_eq!(
            report.cycles, report.expected_cycles,
            "measured vs predicted cycles"
        );
        assert_eq!(
            report.value,
            evaluate(program.dag(), &inputs).unwrap(),
            "gate level vs reference evaluator"
        );
        report
    }

    #[test]
    fn add_sub_chain_matches_reference() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let s = dag.add(x, y).unwrap();
        let d = dag.sub(s, x).unwrap();
        dag.set_root(d).unwrap();
        let report = run_dag(&dag, &[("x", 0xABCD), ("y", 0x1234)]);
        assert_eq!(report.value, 0x1234);
        // One add + one sub, all operands resident in the compute block.
        assert_eq!(report.cycles, (12 * 16 + 1) + (12 * 16 + 2));
    }

    #[test]
    fn constant_multiplier_product() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let c = dag.constant(0b101);
        let m = dag.mul(x, c, PrecisionMode::Exact).unwrap();
        dag.set_root(m).unwrap();
        let report = run_dag(&dag, &[("x", 1234)]);
        assert_eq!(report.value, (1234 * 0b101) & 0xFFFF);
    }

    #[test]
    fn unknown_multiplier_product_all_modes() {
        for mode in [
            PrecisionMode::Exact,
            PrecisionMode::FirstStage { masked_bits: 4 },
            PrecisionMode::LastStage { relax_bits: 6 },
            PrecisionMode::LastStage { relax_bits: 16 },
        ] {
            let mut dag = Dag::new(16).unwrap();
            let x = dag.input("x").unwrap();
            let y = dag.input("y").unwrap();
            let m = dag.mul(x, y, mode).unwrap();
            dag.set_root(m).unwrap();
            run_dag(&dag, &[("x", 51234), ("y", 47111)]);
        }
    }

    #[test]
    fn shifts_match_reference() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let l = dag.shl(x, 3).unwrap();
        let r = dag.shr(l, 5).unwrap();
        dag.set_root(r).unwrap();
        // 0xF00F << 3 = 0x8078 (negative) >> 5 arithmetic.
        let report = run_dag(&dag, &[("x", 0xF00F)]);
        assert_eq!(report.cycles, 2 + (2 + 5));
        assert_eq!(report.value, 0xFC03);
    }

    #[test]
    fn mac_node_matches_reference() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let c = dag.constant(3);
        let d = dag.constant(21);
        let m = dag.mac(vec![(x, c), (y, d)], PrecisionMode::Exact).unwrap();
        dag.set_root(m).unwrap();
        let report = run_dag(&dag, &[("x", 1000), ("y", 2000)]);
        assert_eq!(report.value, (1000 * 3 + 2000 * 21) & 0xFFFF);
    }

    #[test]
    fn spilled_values_round_trip() {
        // 24-row blocks: staging alone eats 16, so values spill quickly.
        let mut dag = Dag::new(8).unwrap();
        let inputs: Vec<NodeId> = (0..12)
            .map(|i| dag.input(&format!("x{i}")).unwrap())
            .collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = dag.add(acc, x).unwrap();
        }
        dag.set_root(acc).unwrap();
        let options = CompileOptions {
            config: CrossbarConfig {
                rows: 24,
                ..CrossbarConfig::default()
            },
            ..CompileOptions::default()
        };
        let program = compile(&dag, &options).unwrap();
        assert!(program.placement().spilled > 0);
        let bindings: HashMap<String, u64> =
            (0..12).map(|i| (format!("x{i}"), i as u64 + 1)).collect();
        let report = program.run(&bindings).unwrap();
        assert!(report.lint.is_clean(), "lint: {}", report.lint);
        assert_eq!(report.cycles, report.expected_cycles);
        assert_eq!(report.value, (1..=12).sum::<u64>() & 0xFF);
    }

    #[test]
    fn strength_reduction_pays_off_at_the_gate_level() {
        let build = || {
            let mut dag = Dag::new(16).unwrap();
            let x = dag.input("x").unwrap();
            let c = dag.constant(0xFFF0); // -16
            let m = dag.mul(x, c, PrecisionMode::Exact).unwrap();
            let y = dag.input("y").unwrap();
            let r = dag.add(y, m).unwrap();
            dag.set_root(r).unwrap();
            dag
        };
        let reduced = compile(&build(), &CompileOptions::default()).unwrap();
        let naive = compile(
            &build(),
            &CompileOptions {
                strength_reduce: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let inputs: HashMap<String, u64> =
            [("x".to_string(), 777u64), ("y".to_string(), 123u64)].into();
        let fast = reduced.run(&inputs).unwrap();
        let slow = naive.run(&inputs).unwrap();
        assert_eq!(fast.value, slow.value, "rewrite preserves semantics");
        assert!(
            fast.cycles < slow.cycles,
            "reduced {} vs naive {}",
            fast.cycles,
            slow.cycles
        );
    }

    #[test]
    fn symbolic_replay_proves_the_recorded_specialization() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let m = dag.mul(x, y, PrecisionMode::Exact).unwrap();
        let s = dag.add(m, x).unwrap();
        dag.set_root(s).unwrap();
        let program = compile(&dag, &CompileOptions::default()).unwrap();
        let inputs: HashMap<String, u64> =
            [("x".to_string(), 51234u64), ("y".to_string(), 47111u64)].into();
        let report = program.verify_equiv(&inputs).unwrap();
        assert!(report.equivalent, "{}", report.lint);
        assert_eq!(report.input_bits, 0, "compiled inputs stay concrete");
    }

    #[test]
    fn compiled_math_kernels_run_clean_at_the_gate_level() {
        use apim_math::{default_spec, to_pattern, MathFn};
        // sqrt(1521) = 39 as a pure in-crossbar microprogram.
        let mut dag = Dag::new(12).unwrap();
        let x = dag.input("x").unwrap();
        let m = dag.math(x, default_spec(MathFn::Sqrt, 12)).unwrap();
        dag.set_root(m).unwrap();
        let report = run_dag(&dag, &[("x", 1521)]);
        assert_eq!(report.value, 39);

        // sin(π/6) ≈ 0.5 in Q9 at width 12.
        let spec = default_spec(MathFn::Sin, 12);
        let angle = apim_math::consts::half_pi_q(spec.frac) / 3;
        let mut dag = Dag::new(12).unwrap();
        let x = dag.input("x").unwrap();
        let m = dag.math(x, spec).unwrap();
        dag.set_root(m).unwrap();
        let report = run_dag(&dag, &[("x", to_pattern(angle, 12))]);
        let got = apim_math::from_pattern(report.value, 12);
        assert!((got - 256).abs() <= 4, "sin(π/6) in Q9: {got}");
    }

    #[test]
    fn symbolic_prover_covers_math_expansions_at_width_12() {
        use apim_math::{default_spec, to_pattern, MathFn};
        for (func, input) in [
            (
                MathFn::Sin,
                to_pattern(apim_math::consts::half_pi_q(9) / 5, 12),
            ),
            (
                MathFn::Cos,
                to_pattern(-apim_math::consts::half_pi_q(9) / 7, 12),
            ),
            (MathFn::Sqrt, 1000),
        ] {
            let mut dag = Dag::new(12).unwrap();
            let x = dag.input("x").unwrap();
            let m = dag.math(x, default_spec(func, 12)).unwrap();
            dag.set_root(m).unwrap();
            let program = compile(&dag, &CompileOptions::default()).unwrap();
            let inputs: HashMap<String, u64> = [("x".to_string(), input)].into();
            let report = program.verify_equiv(&inputs).unwrap();
            assert!(report.equivalent, "{func}: {}", report.lint);
        }
    }

    #[test]
    fn compile_requires_root() {
        let mut dag = Dag::new(8).unwrap();
        dag.input("x").unwrap();
        assert!(matches!(
            compile(&dag, &CompileOptions::default()),
            Err(CompileError::NoRoot)
        ));
    }
}
