//! Expansion of transcendental [`Node::Math`] nodes into primitives.
//!
//! The `apim-math` kernels are written once, generically over the
//! [`FxOps`] op-builder trait. Instantiated with `apim_math::IntEval`
//! they are the pure-integer reference semantics; instantiated with the
//! [`DagFx`] builder here they emit `Add`/`Sub`/`Mul`/`Shl`/`Shr`/`Const`
//! nodes into a [`Dag`]. Because both instantiations run the *same*
//! generic kernel body over the *same* `width`-bit two's-complement op
//! semantics, the expansion is bit-identical to the reference by
//! construction — there is no separate "lowering of sin" to get wrong.
//!
//! Every multiplication the kernels emit is [`PrecisionMode::Exact`]:
//! the kernels' sign-flag selects multiply by `{0, 1}` values, which an
//! approximate first-stage mask would zero out. The precision knob for
//! transcendentals is the iteration count / table size carried in the
//! node's `MathSpec`, not the §3.4 multiplier modes.

use apim_logic::PrecisionMode;
use apim_math::FxOps;

use crate::ir::{Dag, Node, NodeId};

/// An [`FxOps`] builder that appends primitive nodes to a [`Dag`].
///
/// All emitted operands are ids the wrapper itself just created (or the
/// mapped kernel input), so the builder calls cannot fail; the `MathSpec`
/// was validated at `Dag::math` time, which keeps every shift amount the
/// kernels emit inside `1..width`.
struct DagFx<'a>(&'a mut Dag);

impl FxOps for DagFx<'_> {
    type V = NodeId;

    fn width(&self) -> u32 {
        self.0.width()
    }

    fn constant(&mut self, value: i64) -> NodeId {
        self.0.constant(value as u64)
    }

    fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.0.add(a, b).expect("operands were just created")
    }

    fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.0.sub(a, b).expect("operands were just created")
    }

    fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.0
            .mul(a, b, PrecisionMode::Exact)
            .expect("operands were just created")
    }

    fn shl(&mut self, x: NodeId, amount: u32) -> NodeId {
        self.0
            .shl(x, amount)
            .expect("validated specs keep kernel shifts in 1..width")
    }

    fn shr(&mut self, x: NodeId, amount: u32) -> NodeId {
        self.0
            .shr(x, amount)
            .expect("validated specs keep kernel shifts in 1..width")
    }
}

/// Whether `dag` contains any [`Node::Math`] node.
pub fn has_math(dag: &Dag) -> bool {
    dag.nodes()
        .iter()
        .any(|node| matches!(node, Node::Math { .. }))
}

/// Rewrites every [`Node::Math`] node into its primitive expansion,
/// returning the rewritten DAG (a plain clone when there is nothing to
/// expand). Non-math nodes keep their relative order; ids are remapped.
pub fn expand_math(dag: &Dag) -> Dag {
    if !has_math(dag) {
        return dag.clone();
    }
    let mut out = Dag::new(dag.width()).expect("source DAG width is already validated");
    let mut map: Vec<NodeId> = Vec::with_capacity(dag.len());
    for node in dag.nodes() {
        let new_id = match node {
            Node::Input { name } => out.input(name).expect("source input name is non-empty"),
            Node::Const { value } => out.constant(*value),
            Node::Add { a, b } => out
                .add(map[a.0], map[b.0])
                .expect("mapped operands precede this node"),
            Node::Sub { a, b } => out
                .sub(map[a.0], map[b.0])
                .expect("mapped operands precede this node"),
            Node::Mul { a, b, mode } => out
                .mul(map[a.0], map[b.0], *mode)
                .expect("mapped operands precede this node"),
            Node::Mac { terms, mode } => out
                .mac(
                    terms.iter().map(|&(a, b)| (map[a.0], map[b.0])).collect(),
                    *mode,
                )
                .expect("mapped operands precede this node"),
            Node::Shl { x, amount } => out
                .shl(map[x.0], *amount)
                .expect("mapped operand precedes this node"),
            Node::Shr { x, amount } => out
                .shr(map[x.0], *amount)
                .expect("mapped operand precedes this node"),
            Node::Math { x, spec } => {
                let mut builder = DagFx(&mut out);
                apim_math::build(&mut builder, map[x.0], spec)
            }
        };
        map.push(new_id);
    }
    if let Some(root) = dag.root() {
        out.set_root(map[root.0])
            .expect("mapped root exists in the expansion");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_bound;
    use apim_math::{default_spec, MathFn, MathMode, MathSpec};

    #[test]
    fn expansion_matches_math_eval_bit_for_bit() {
        for func in [MathFn::Sin, MathFn::Cos, MathFn::Sqrt] {
            for mode in [
                None,
                Some(MathMode::Cordic { iters: 4 }),
                Some(MathMode::Lut { log2_segments: 2 }),
            ] {
                let mut spec = default_spec(func, 16);
                if let Some(m) = mode {
                    spec.mode = m;
                }
                let mut dag = Dag::new(16).unwrap();
                let x = dag.input("x").unwrap();
                let m = dag.math(x, spec).unwrap();
                dag.set_root(m).unwrap();
                let expanded = expand_math(&dag);
                assert!(!has_math(&expanded));
                for sample in apim_math::reference::domain_samples(func, 16, spec.frac, 9) {
                    let via_node = evaluate_bound(&dag, &[("x", sample)]).unwrap();
                    let via_expansion = evaluate_bound(&expanded, &[("x", sample)]).unwrap();
                    let via_math = apim_math::eval(16, &spec, sample).unwrap();
                    assert_eq!(via_node, via_math, "{spec} node eval at {sample}");
                    assert_eq!(via_expansion, via_math, "{spec} expansion at {sample}");
                }
            }
        }
    }

    #[test]
    fn surrounding_arithmetic_survives_expansion() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let s = dag.add(x, y).unwrap();
        let spec = MathSpec {
            func: MathFn::Sqrt,
            mode: MathMode::Cordic { iters: 8 },
            frac: 0,
        };
        let m = dag.math(s, spec).unwrap();
        let out = dag.sub(m, y).unwrap();
        dag.set_root(out).unwrap();
        let expanded = expand_math(&dag);
        // sqrt(10000 + 25) - 25 = 100 - 25
        let got = evaluate_bound(&expanded, &[("x", 10_000), ("y", 25)]).unwrap();
        assert_eq!(got, 75);
        assert_eq!(
            got,
            evaluate_bound(&dag, &[("x", 10_000), ("y", 25)]).unwrap()
        );
    }

    #[test]
    fn expansion_without_math_is_identity() {
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        let c = dag.constant(3);
        let m = dag.mul(x, c, PrecisionMode::Exact).unwrap();
        dag.set_root(m).unwrap();
        assert_eq!(expand_math(&dag), dag);
    }
}
