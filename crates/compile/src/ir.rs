//! The expression-DAG intermediate representation.
//!
//! A [`Dag`] is a flat, topologically ordered list of [`Node`]s over
//! `width`-bit two's-complement words (stored as `u64` bit patterns).
//! Node operands always refer to earlier nodes, so the builder API cannot
//! construct a cycle; every compiler stage simply walks the list in id
//! order. Multiplications and fused MACs carry their own
//! [`PrecisionMode`] annotation — the paper's §3.4 approximation knobs are
//! a per-operation decision, not a whole-program one.

use apim_logic::PrecisionMode;
use apim_math::MathSpec;

use crate::CompileError;

/// Index of a node inside its [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One DAG operation over `width`-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A named external input, bound at run time.
    Input {
        /// Binding name.
        name: String,
    },
    /// A compile-time constant (masked to the DAG width).
    Const {
        /// The value's bit pattern.
        value: u64,
    },
    /// Wrapping addition.
    Add {
        /// Left operand.
        a: NodeId,
        /// Right operand.
        b: NodeId,
    },
    /// Wrapping subtraction `a - b`.
    Sub {
        /// Minuend.
        a: NodeId,
        /// Subtrahend.
        b: NodeId,
    },
    /// Truncated `n × n → n` multiplication under `mode`.
    Mul {
        /// Multiplicand.
        a: NodeId,
        /// Multiplier (partial products follow its set bits).
        b: NodeId,
        /// Precision annotation for this product.
        mode: PrecisionMode,
    },
    /// Fused multiply-accumulate `Σ aᵢ·bᵢ mod 2^n`: all partial products
    /// share one Wallace tree and one final addition (§3.2).
    Mac {
        /// The `(multiplicand, multiplier)` pairs.
        terms: Vec<(NodeId, NodeId)>,
        /// Precision annotation for the fused reduction.
        mode: PrecisionMode,
    },
    /// Logical left shift by a constant (low bits zero-filled).
    Shl {
        /// Operand.
        x: NodeId,
        /// Shift distance, `1 ≤ amount < width`.
        amount: u32,
    },
    /// Arithmetic right shift by a constant (sign-filled).
    Shr {
        /// Operand.
        x: NodeId,
        /// Shift distance, `1 ≤ amount < width`.
        amount: u32,
    },
    /// A transcendental microkernel (`sin`/`cos`/`sqrt` from
    /// `apim-math`). [`crate::expand::expand_math`] rewrites it into the
    /// primitive nodes above before placement and lowering, so the
    /// hazard passes, cycle accounting and equivalence prover all see
    /// ordinary straight-line arithmetic.
    Math {
        /// Input value (Q-format per `spec.frac`; unsigned for sqrt).
        x: NodeId,
        /// Function, algorithm and precision knob.
        spec: MathSpec,
    },
}

/// An expression DAG: the compiler's input program.
///
/// ```
/// use apim_compile::Dag;
/// use apim_logic::PrecisionMode;
///
/// let mut dag = Dag::new(16).unwrap();
/// let x = dag.input("x").unwrap();
/// let three = dag.constant(3);
/// let m = dag.mul(x, three, PrecisionMode::Exact).unwrap();
/// let y = dag.input("y").unwrap();
/// let root = dag.add(m, y).unwrap();
/// dag.set_root(root).unwrap();
/// assert_eq!(dag.len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag {
    width: u32,
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl Dag {
    /// Creates an empty DAG over `width`-bit words (`4..=64`).
    ///
    /// # Errors
    ///
    /// Rejects widths outside the crossbar-supported `4..=64` range.
    pub fn new(width: u32) -> Result<Self, CompileError> {
        if !(4..=64).contains(&width) {
            return Err(CompileError::InvalidDag(format!(
                "word width {width} outside supported range 4..=64"
            )));
        }
        Ok(Dag {
            width,
            nodes: Vec::new(),
            root: None,
        })
    }

    /// Word width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The `width`-bit mask.
    pub fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes in topological (id) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The designated output node.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Input names in first-definition order.
    pub fn inputs(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Input { name } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    fn check(&self, id: NodeId) -> Result<(), CompileError> {
        if id.0 >= self.nodes.len() {
            return Err(CompileError::InvalidDag(format!(
                "operand {id} does not exist yet (DAG has {} nodes)",
                self.nodes.len()
            )));
        }
        Ok(())
    }

    fn check_mode(&self, mode: PrecisionMode) -> Result<(), CompileError> {
        mode.validate(self.width)
            .map_err(|e| CompileError::InvalidDag(e.to_string()))
    }

    fn check_shift(&self, amount: u32) -> Result<(), CompileError> {
        if amount == 0 || amount >= self.width {
            return Err(CompileError::InvalidDag(format!(
                "shift distance {amount} outside 1..{}",
                self.width
            )));
        }
        Ok(())
    }

    /// Adds a named input. Re-using a name returns the existing node.
    ///
    /// # Errors
    ///
    /// Rejects empty names.
    pub fn input(&mut self, name: &str) -> Result<NodeId, CompileError> {
        if name.is_empty() {
            return Err(CompileError::InvalidDag("empty input name".into()));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if matches!(n, Node::Input { name: existing } if existing == name) {
                return Ok(NodeId(i));
            }
        }
        Ok(self.push(Node::Input { name: name.into() }))
    }

    /// Adds a constant (masked to the DAG width).
    pub fn constant(&mut self, value: u64) -> NodeId {
        let v = value & self.mask();
        self.push(Node::Const { value: v })
    }

    /// Adds a wrapping addition.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range operands.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, CompileError> {
        self.check(a)?;
        self.check(b)?;
        Ok(self.push(Node::Add { a, b }))
    }

    /// Adds a wrapping subtraction `a - b`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range operands.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, CompileError> {
        self.check(a)?;
        self.check(b)?;
        Ok(self.push(Node::Sub { a, b }))
    }

    /// Adds a truncated multiplication under `mode`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range operands and modes invalid for the width.
    pub fn mul(
        &mut self,
        a: NodeId,
        b: NodeId,
        mode: PrecisionMode,
    ) -> Result<NodeId, CompileError> {
        self.check(a)?;
        self.check(b)?;
        self.check_mode(mode)?;
        Ok(self.push(Node::Mul { a, b, mode }))
    }

    /// Adds a fused MAC over `terms`.
    ///
    /// # Errors
    ///
    /// Rejects empty term lists, out-of-range operands and invalid modes.
    pub fn mac(
        &mut self,
        terms: Vec<(NodeId, NodeId)>,
        mode: PrecisionMode,
    ) -> Result<NodeId, CompileError> {
        if terms.is_empty() {
            return Err(CompileError::InvalidDag(
                "MAC needs at least one term".into(),
            ));
        }
        for &(a, b) in &terms {
            self.check(a)?;
            self.check(b)?;
        }
        self.check_mode(mode)?;
        Ok(self.push(Node::Mac { terms, mode }))
    }

    /// Adds a logical left shift.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range operands and shift distances.
    pub fn shl(&mut self, x: NodeId, amount: u32) -> Result<NodeId, CompileError> {
        self.check(x)?;
        self.check_shift(amount)?;
        Ok(self.push(Node::Shl { x, amount }))
    }

    /// Adds an arithmetic right shift.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range operands and shift distances.
    pub fn shr(&mut self, x: NodeId, amount: u32) -> Result<NodeId, CompileError> {
        self.check(x)?;
        self.check_shift(amount)?;
        Ok(self.push(Node::Shr { x, amount }))
    }

    /// Adds a transcendental function node.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range operands and specs invalid for the DAG width
    /// (see `apim_math::validate`).
    pub fn math(&mut self, x: NodeId, spec: MathSpec) -> Result<NodeId, CompileError> {
        self.check(x)?;
        apim_math::validate(self.width, &spec)
            .map_err(|e| CompileError::InvalidDag(format!("math node {spec}: {e}")))?;
        Ok(self.push(Node::Math { x, spec }))
    }

    /// Designates the output node.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range ids.
    pub fn set_root(&mut self, id: NodeId) -> Result<(), CompileError> {
        self.check(id)?;
        self.root = Some(id);
        Ok(())
    }

    /// Direct operand ids of `id`.
    pub fn operands(&self, id: NodeId) -> Vec<NodeId> {
        match &self.nodes[id.0] {
            Node::Input { .. } | Node::Const { .. } => Vec::new(),
            Node::Add { a, b } | Node::Sub { a, b } | Node::Mul { a, b, .. } => vec![*a, *b],
            Node::Mac { terms, .. } => terms.iter().flat_map(|&(a, b)| [a, b]).collect(),
            Node::Shl { x, .. } | Node::Shr { x, .. } | Node::Math { x, .. } => vec![*x],
        }
    }

    /// Longest operand chain ending at `id` (leaves have depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut depths = vec![0usize; self.nodes.len()];
        for i in 0..=id.0 {
            let d = self
                .operands(NodeId(i))
                .iter()
                .map(|op| depths[op.0] + 1)
                .max()
                .unwrap_or(0);
            depths[i] = d;
        }
        depths[id.0]
    }

    /// Rewrites exact multiplications by a negative constant into the
    /// cheaper `x·|c|` followed by a flipped combining operation.
    ///
    /// A two's-complement constant like `-4096` has almost every high bit
    /// set, so a faithful partial-product expansion costs ~`width` rows and
    /// NOR cycles; its negation has one. Under [`PrecisionMode::Exact`] the
    /// truncated product is the exact wrapping product, so
    /// `a + x·c  ≡  a - x·(-c) (mod 2^width)` and the rewrite is
    /// semantics-preserving. Approximate modes are left untouched — there
    /// the approximation acts on the actual partial-product pile, and the
    /// rewrite would change the computed bits.
    ///
    /// Returns the number of multiplications rewritten.
    pub fn strength_reduce_negated_constants(&mut self) -> usize {
        let mask = self.mask();
        let sign = 1u64 << (self.width - 1);
        let mut rewritten = 0usize;
        // Pass 1: flip the multiplier constant of every profitable
        // candidate and remember which mul nodes now carry a negated
        // meaning.
        let mut negated = vec![false; self.nodes.len()];
        for i in 0..self.nodes.len() {
            let Node::Mul { a, b, mode } = self.nodes[i].clone() else {
                continue;
            };
            if mode != PrecisionMode::Exact {
                continue;
            }
            // Only rewrite when every consumer is an Add/Sub we can flip
            // (pass 2 below) — otherwise the negation has nowhere to go.
            // That rules out the root and dead nodes (their own value would
            // change with no consumer to compensate). An Add whose *other*
            // operand is already a negated product is excluded too: one
            // flip per consumer.
            let id = NodeId(i);
            if self.root == Some(id) {
                continue;
            }
            let mut consumed = false;
            let all_uses_flippable = (i + 1..self.nodes.len()).all(|j| {
                let uses = self.operands(NodeId(j)).contains(&id);
                consumed |= uses;
                !uses
                    || match self.nodes[j] {
                        Node::Add { a, b } => {
                            (a == id) != (b == id) && !negated[a.0] && !negated[b.0]
                        }
                        Node::Sub { a, b } => b == id && a != id && !negated[a.0],
                        _ => false,
                    }
            });
            if !all_uses_flippable || !consumed {
                continue;
            }
            if a == b {
                // x·x with a constant x: negating the shared node squares
                // the sign away instead of flipping it.
                continue;
            }
            let (op_idx, other) = match (&self.nodes[a.0], &self.nodes[b.0]) {
                (_, Node::Const { value }) => (b, *value),
                (Node::Const { value }, _) => (a, *value),
                _ => continue,
            };
            // The constant must belong to this product alone — rewriting a
            // node shared with other consumers (or the root) would change
            // their values too.
            let shared = self.root == Some(op_idx)
                || (0..self.nodes.len())
                    .any(|j| j != i && self.operands(NodeId(j)).contains(&op_idx));
            if shared {
                continue;
            }
            if other & sign == 0 {
                continue;
            }
            let neg = other.wrapping_neg() & mask;
            if neg.count_ones() >= other.count_ones() {
                continue;
            }
            self.nodes[op_idx.0] = Node::Const { value: neg };
            negated[i] = true;
            rewritten += 1;
        }
        if rewritten == 0 {
            return 0;
        }
        // Pass 2: flip the consumers. `x + m` becomes `x - m'`;
        // `x - m` becomes `x + m'`.
        for j in 0..self.nodes.len() {
            match self.nodes[j].clone() {
                Node::Add { a, b } if negated[b.0] => self.nodes[j] = Node::Sub { a, b },
                Node::Add { a, b } if negated[a.0] => self.nodes[j] = Node::Sub { a: b, b: a },
                Node::Sub { a, b } if negated[b.0] => self.nodes[j] = Node::Add { a, b },
                _ => {}
            }
        }
        rewritten
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_enforces_topological_order() {
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        assert!(dag.add(x, NodeId(7)).is_err());
        assert!(dag.set_root(NodeId(3)).is_err());
    }

    #[test]
    fn width_and_shift_validation() {
        assert!(Dag::new(3).is_err());
        assert!(Dag::new(65).is_err());
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        assert!(dag.shl(x, 0).is_err());
        assert!(dag.shl(x, 8).is_err());
        assert!(dag.shr(x, 7).is_ok());
    }

    #[test]
    fn inputs_deduplicate_by_name() {
        let mut dag = Dag::new(8).unwrap();
        let a = dag.input("x").unwrap();
        let b = dag.input("x").unwrap();
        assert_eq!(a, b);
        assert_eq!(dag.inputs(), vec!["x"]);
    }

    #[test]
    fn depth_counts_longest_chain() {
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        let c = dag.constant(3);
        let m = dag.mul(x, c, PrecisionMode::Exact).unwrap();
        let s = dag.add(m, x).unwrap();
        assert_eq!(dag.depth(x), 0);
        assert_eq!(dag.depth(m), 1);
        assert_eq!(dag.depth(s), 2);
    }

    #[test]
    fn strength_reduction_flips_add_to_sub() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let c = dag.constant(0xFFF0); // -16: 12 ones vs 1 one negated
        let m = dag.mul(x, c, PrecisionMode::Exact).unwrap();
        let y = dag.input("y").unwrap();
        let r = dag.add(y, m).unwrap();
        dag.set_root(r).unwrap();
        assert_eq!(dag.strength_reduce_negated_constants(), 1);
        assert_eq!(dag.nodes()[c.0], Node::Const { value: 16 });
        assert!(matches!(dag.nodes()[r.0], Node::Sub { a, b } if a == y && b == m));
    }

    #[test]
    fn strength_reduction_leaves_approx_modes_alone() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let c = dag.constant(0xFFF0);
        let m = dag
            .mul(x, c, PrecisionMode::LastStage { relax_bits: 4 })
            .unwrap();
        let y = dag.input("y").unwrap();
        let r = dag.add(y, m).unwrap();
        dag.set_root(r).unwrap();
        assert_eq!(dag.strength_reduce_negated_constants(), 0);
    }
}
