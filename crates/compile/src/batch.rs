//! Lane-batched gate-level backend: one compiled microprogram computes up
//! to 64 independent instances per pass.
//!
//! The serial backend ([`crate::backend`]) runs a DAG for one input
//! binding; this module runs the *same* placement for `L ≤ 64` bindings at
//! once by laying every value row out in the interleaved lane format of
//! [`apim_logic::lanes`] — logical column `c` of lane `j` at bitline
//! `c · L + j`. Column-parallel MAGIC NOR costs one cycle regardless of
//! span width, so every primitive the serial machine issues widens to all
//! lanes for free and the batched program's cycle count is (almost) the
//! serial count — a throughput win of ~`L`×.
//!
//! **Lanes are data, not control.** The batched machine is restricted to
//! nodes whose microprogram shape is independent of the operand values:
//! constant multipliers (partial-product shifts known at compile time) and
//! exact final products (`relaxed_product_bits == 0` — the approximate
//! §3.4 tail reads per-bit carries through the sense amps, which would be
//! per-lane control). [`compile_batched`] rejects anything else with
//! [`CompileError::BatchUnsupported`]. Within that class, the recorded
//! trace has the same shape for every lane, so the five hazard passes
//! certify all lanes in one replay and the symbolic equivalence check is
//! replicated per lane purely by re-aiming the output binding
//! (`col0 = lane`, `col_step = L`).
//!
//! The serial path stays the differential oracle: every batched run reads
//! back all lanes and reports them next to the pure-integer references.

use std::collections::HashMap;

use apim_arch::isa::Trace;
use apim_crossbar::{
    AllocEvent, BlockId, BlockedCrossbar, OpTrace, RowAllocator, RowRef, WORD_BITS,
};
use apim_device::Joules;
use apim_logic::adder_serial::SerialScratch;
use apim_logic::functional::partial_product_shifts;
use apim_logic::lanes::{add_lanes, preload_lanes, read_lanes, sub_lanes};
use apim_logic::wallace::reduce_rows_to_two_lanes;
use apim_logic::CostModel;
use apim_verify::{check_equiv, verify_trace, EquivReport, LintReport, OutputBinding};

use crate::backend::CompileOptions;
use crate::eval::evaluate_all;
use crate::expand::expand_math;
use crate::ir::{Dag, Node, NodeId};
use crate::lower::lower;
use crate::plan::{
    mul_copy_overhead, mul_multiplier, place, schedule, serial_copy_overhead, BlockSchedule,
    Placement, Slot, ROW_AUX, ROW_RES, ROW_X, ROW_Y,
};
use crate::CompileError;

/// A DAG compiled for lane-batched execution: `lanes` instances per pass.
#[derive(Debug, Clone)]
pub struct BatchCompiledProgram {
    dag: Dag,
    placement: Placement,
    schedule: BlockSchedule,
    trace: Trace,
    model: CostModel,
    lanes: usize,
}

/// Outcome of one lane-batched gate-level execution.
#[derive(Debug, Clone)]
pub struct BatchRunReport {
    /// Per-lane values read back from the crossbar's result row.
    pub values: Vec<u64>,
    /// Per-lane pure-integer reference values — the serial oracle; equal
    /// to `values` for a correct compiler.
    pub references: Vec<u64>,
    /// Cycles charged by the simulated crossbar — for the whole batch, not
    /// per instance.
    pub cycles: u64,
    /// The closed-form cycle prediction fed to the cycle-accounting pass.
    pub expected_cycles: u64,
    /// Energy charged by the simulated crossbar.
    pub energy: Joules,
    /// Number of recorded microprogram primitives.
    pub trace_len: usize,
    /// The full hazard report (clean for a correct compiler).
    pub lint: LintReport,
}

/// Rejects DAG features whose microprogram shape would depend on lane
/// data. Runs on the post-expansion, post-strength-reduction DAG — the one
/// the machine actually executes.
fn validate_for_batch(dag: &Dag) -> Result<(), CompileError> {
    for i in 0..dag.len() {
        match &dag.nodes()[i] {
            Node::Mul { a, b, mode } => {
                if mul_multiplier(dag, *a, *b, *mode).2.is_none() {
                    return Err(CompileError::BatchUnsupported(format!(
                        "node {i}: non-constant multiplier (partial-product placement \
                         would differ per lane)"
                    )));
                }
                if mode.relaxed_product_bits() > 0 {
                    return Err(CompileError::BatchUnsupported(format!(
                        "node {i}: approximate final product (per-bit carry reads are \
                         per-lane control)"
                    )));
                }
            }
            Node::Mac { terms, mode } => {
                if mode.relaxed_product_bits() > 0 {
                    return Err(CompileError::BatchUnsupported(format!(
                        "node {i}: approximate final product (per-bit carry reads are \
                         per-lane control)"
                    )));
                }
                if let Some((t, _)) = terms
                    .iter()
                    .enumerate()
                    .find(|(_, &(_, b))| !matches!(dag.nodes()[b.0], Node::Const { .. }))
                {
                    return Err(CompileError::BatchUnsupported(format!(
                        "node {i}: MAC term {t} has a non-constant multiplier"
                    )));
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Compiles `dag` for lane-batched execution at `lanes` instances per
/// pass: the serial pipeline (math expansion, strength reduction,
/// placement, scheduling) plus the batch legality check, against a
/// geometry widened to `(width + 2) · lanes` bitlines when the configured
/// crossbar is narrower.
///
/// # Errors
///
/// [`CompileError::BatchUnsupported`] for lane counts outside `1..=64` or
/// DAG features that would need per-lane control flow; otherwise the same
/// failures as [`crate::compile`].
pub fn compile_batched(
    dag: &Dag,
    options: &CompileOptions,
    lanes: usize,
) -> Result<BatchCompiledProgram, CompileError> {
    if lanes == 0 || lanes > WORD_BITS {
        return Err(CompileError::BatchUnsupported(format!(
            "lane count {lanes} outside 1..={WORD_BITS}"
        )));
    }
    dag.root().ok_or(CompileError::NoRoot)?;
    let mut dag = expand_math(dag);
    if options.strength_reduce {
        dag.strength_reduce_negated_constants();
    }
    validate_for_batch(&dag)?;
    let n = dag.width() as usize;
    let mut config = options.config.clone();
    config.cols = config.cols.max((n + 2) * lanes);
    let placement = place(&dag, &config)?;
    let model = CostModel::new(&config.params);
    let schedule = schedule(&dag, &placement, &model);
    let trace = lower(&dag);
    Ok(BatchCompiledProgram {
        dag,
        placement,
        schedule,
        trace,
        model,
        lanes,
    })
}

impl BatchCompiledProgram {
    /// The (possibly strength-reduced) DAG this program executes.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The row placement (shared with the serial backend — lane batching
    /// scales columns, not rows).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The block-pair list schedule.
    pub fn schedule(&self) -> &BlockSchedule {
        &self.schedule
    }

    /// The lowered controller macro-op trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The analytic cost model used for cycle bookkeeping.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Instances per pass this program was compiled for.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Executes all `lanes` input bindings in one microprogram pass, then
    /// lints the recorded trace through all five hazard passes.
    ///
    /// # Errors
    ///
    /// A binding-count mismatch ([`CompileError::BatchUnsupported`]),
    /// unbound inputs, crossbar faults, or
    /// [`CompileError::VerificationFailed`] for an error-severity hazard
    /// finding.
    pub fn run(&self, inputs: &[HashMap<String, u64>]) -> Result<BatchRunReport, CompileError> {
        let exec = self.execute(inputs)?;
        let lint = verify_trace(&exec.ops, &exec.events, Some(exec.expected_cycles));
        if lint.error_count() > 0 {
            return Err(CompileError::VerificationFailed(lint.to_string()));
        }
        Ok(BatchRunReport {
            values: exec.values,
            references: exec.references,
            cycles: exec.cycles,
            expected_cycles: exec.expected_cycles,
            energy: exec.energy,
            trace_len: exec.ops.len(),
            lint,
        })
    }

    /// Symbolically re-executes the recorded batched microprogram and
    /// checks lane `lane` of the root row against that lane's
    /// pure-integer reference — the per-lane replication of
    /// [`crate::CompiledProgram::verify_equiv`]. The trace is recorded
    /// once; only the output binding moves (`col0 = lane`,
    /// `col_step = lanes`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchCompiledProgram::run`], plus an
    /// out-of-range `lane`.
    pub fn verify_equiv_lane(
        &self,
        inputs: &[HashMap<String, u64>],
        lane: usize,
    ) -> Result<EquivReport, CompileError> {
        if lane >= self.lanes {
            return Err(CompileError::BatchUnsupported(format!(
                "lane {lane} out of range for a {}-lane program",
                self.lanes
            )));
        }
        let exec = self.execute(inputs)?;
        let output = OutputBinding {
            block: exec.root_block,
            row: exec.root_row,
            col0: lane,
            width: self.dag.width() as usize,
            col_step: self.lanes,
        };
        let reference = exec.references[lane];
        Ok(check_equiv(&exec.ops, &[], &output, move |_| reference))
    }

    /// One recorded lane-batched execution: the shared body behind
    /// [`BatchCompiledProgram::run`] and
    /// [`BatchCompiledProgram::verify_equiv_lane`]. Mirrors the serial
    /// backend's allocator discipline row for row — lane batching scales
    /// columns only, so the planner's row map transfers unchanged.
    fn execute(&self, inputs: &[HashMap<String, u64>]) -> Result<BatchExecution, CompileError> {
        if inputs.len() != self.lanes {
            return Err(CompileError::BatchUnsupported(format!(
                "{} input bindings for a {}-lane program",
                inputs.len(),
                self.lanes
            )));
        }
        let per_lane: Vec<Vec<u64>> = inputs
            .iter()
            .map(|m| evaluate_all(&self.dag, m))
            .collect::<Result<_, _>>()?;
        // Transpose to per-node lane vectors for the preload calls.
        let values: Vec<Vec<u64>> = (0..self.dag.len())
            .map(|i| per_lane.iter().map(|l| l[i]).collect())
            .collect();

        let cfg = &self.placement.config;
        let n = self.dag.width() as usize;
        let mut xbar = BlockedCrossbar::new(cfg.clone())?;
        let blocks: Vec<BlockId> = (0..cfg.blocks)
            .map(|i| xbar.block(i))
            .collect::<Result<_, _>>()?;

        let mut allocs: Vec<RowAllocator> = (0..cfg.blocks)
            .map(|_| RowAllocator::with_tracing(cfg.rows))
            .collect();
        let mut scratches: Vec<SerialScratch> = Vec::with_capacity(2);
        let mut regions: Vec<Vec<usize>> = Vec::with_capacity(2);
        for alloc in allocs.iter_mut().take(2) {
            let staging = alloc.alloc_many(4)?;
            debug_assert_eq!(staging, [ROW_X, ROW_Y, ROW_AUX, ROW_RES]);
            scratches.push(SerialScratch::alloc(alloc)?);
            regions.push(if self.placement.region_rows > 0 {
                alloc.alloc_many(self.placement.region_rows)?
            } else {
                Vec::new()
            });
        }
        let scratches: [SerialScratch; 2] = scratches.try_into().expect("two compute blocks");

        let stats_before = *xbar.stats();
        xbar.start_recording();

        let mut machine = BatchMachine {
            xbar: &mut xbar,
            blocks: &blocks,
            scratch: &scratches,
            n,
            lanes: self.lanes,
            t0: self.placement.region_base,
            not_row: self.placement.region_base + self.placement.region_rows.saturating_sub(1),
        };
        let mut expected_cycles = 0u64;
        for i in 0..self.dag.len() {
            let id = NodeId(i);
            let dest = self.placement.slots[i];
            let row = allocs[dest.block].alloc()?;
            debug_assert_eq!(row, dest.row, "planner/runtime divergence at {id}");
            expected_cycles +=
                machine.exec(&self.dag, &self.placement, &self.model, &values, id)?;
            for &op in &self.placement.frees[i] {
                let s = self.placement.slots[op.0];
                allocs[s.block].free(s.row)?;
            }
        }
        let trace = machine.xbar.stop_recording();

        let root = self.dag.root().ok_or(CompileError::NoRoot)?;
        let root_slot = self.placement.slots[root.0];
        let lane_values = read_lanes(
            &xbar,
            blocks[root_slot.block],
            root_slot.row,
            0,
            n,
            self.lanes,
        )?;

        allocs[root_slot.block].free(root_slot.row)?;
        for (b, scratch) in scratches.into_iter().enumerate() {
            allocs[b].free_many(regions[b].iter().copied())?;
            scratch.release(&mut allocs[b])?;
            allocs[b].free_many([ROW_X, ROW_Y, ROW_AUX, ROW_RES])?;
        }

        let mut events = Vec::new();
        for (b, alloc) in allocs.iter_mut().enumerate() {
            let offset = b * cfg.rows;
            events.extend(alloc.take_events().into_iter().map(|ev| match ev {
                AllocEvent::Alloc { row } => AllocEvent::Alloc { row: row + offset },
                AllocEvent::Free { row } => AllocEvent::Free { row: row + offset },
            }));
        }

        let delta = *xbar.stats() - stats_before;
        Ok(BatchExecution {
            ops: trace,
            events,
            expected_cycles,
            values: lane_values,
            references: (0..self.lanes).map(|j| per_lane[j][root.0]).collect(),
            cycles: delta.cycles.get(),
            energy: delta.energy,
            root_block: root_slot.block,
            root_row: root_slot.row,
        })
    }
}

/// Raw outcome of one recorded lane-batched execution.
struct BatchExecution {
    ops: OpTrace,
    events: Vec<AllocEvent>,
    expected_cycles: u64,
    values: Vec<u64>,
    references: Vec<u64>,
    cycles: u64,
    energy: Joules,
    root_block: usize,
    root_row: usize,
}

/// Lane-batched execution context: [`crate::backend`]'s `Machine` with
/// every column coordinate scaled by `lanes`.
struct BatchMachine<'a> {
    xbar: &'a mut BlockedCrossbar,
    blocks: &'a [BlockId],
    scratch: &'a [SerialScratch; 2],
    n: usize,
    lanes: usize,
    /// First ALU-region row (partial products / tree survivors).
    t0: usize,
    /// Shared multiplicand-complement row (block 1, top of the region).
    not_row: usize,
}

impl BatchMachine<'_> {
    /// Physical bitline span of logical columns `c0..c1`.
    fn span(&self, c0: usize, c1: usize) -> std::ops::Range<usize> {
        c0 * self.lanes..c1 * self.lanes
    }

    /// Two-NOT copy of a logical column window between value rows, staged
    /// through block 1's AUX row (2 cycles — span width is free).
    fn copy_word(
        &mut self,
        src: Slot,
        dst: Slot,
        c0: usize,
        c1: usize,
    ) -> Result<(), CompileError> {
        self.xbar.copy_row_shifted(
            RowRef::new(self.blocks[src.block], src.row),
            RowRef::new(self.blocks[1], ROW_AUX),
            RowRef::new(self.blocks[dst.block], dst.row),
            self.span(c0, c1),
            0,
        )?;
        Ok(())
    }

    /// Returns a compute-block row holding the operand: its home row when
    /// already in block 0, else a 2-cycle staging copy into `staging_row`.
    fn stage(&mut self, slot: Slot, staging_row: usize) -> Result<usize, CompileError> {
        if slot.block == 0 {
            return Ok(slot.row);
        }
        self.copy_word(
            slot,
            Slot {
                block: 0,
                row: staging_row,
            },
            0,
            self.n,
        )?;
        Ok(staging_row)
    }

    /// Executes one node across all lanes, returning its closed-form
    /// expected cycle count. `values[node][lane]` is the reference value
    /// of `node` in `lane`.
    fn exec(
        &mut self,
        dag: &Dag,
        placement: &Placement,
        model: &CostModel,
        values: &[Vec<u64>],
        id: NodeId,
    ) -> Result<u64, CompileError> {
        let n = self.n;
        let lanes = self.lanes;
        let bits = dag.width();
        let dest = placement.slots[id.0];
        match &dag.nodes()[id.0] {
            Node::Input { .. } | Node::Const { .. } => {
                preload_lanes(
                    self.xbar,
                    self.blocks[dest.block],
                    dest.row,
                    0,
                    n,
                    lanes,
                    &values[id.0],
                )?;
                Ok(0)
            }
            Node::Add { a, b } => {
                let x = self.stage(placement.slots[a.0], ROW_X)?;
                let y = self.stage(placement.slots[b.0], ROW_Y)?;
                let (out, copy_out) = self.serial_out(dest);
                add_lanes(
                    self.xbar,
                    self.blocks[0],
                    x,
                    y,
                    out,
                    0..n,
                    lanes,
                    &self.scratch[0],
                )?;
                if copy_out {
                    self.copy_word(
                        Slot {
                            block: 0,
                            row: ROW_RES,
                        },
                        dest,
                        0,
                        n,
                    )?;
                }
                Ok(model.serial_add(bits).cycles.get()
                    + serial_copy_overhead(placement, *a, *b, id))
            }
            Node::Sub { a, b } => {
                let x = self.stage(placement.slots[a.0], ROW_X)?;
                let y = self.stage(placement.slots[b.0], ROW_Y)?;
                let (out, copy_out) = self.serial_out(dest);
                sub_lanes(
                    self.xbar,
                    self.blocks[0],
                    x,
                    y,
                    ROW_AUX,
                    out,
                    0..n,
                    lanes,
                    &self.scratch[0],
                )?;
                if copy_out {
                    self.copy_word(
                        Slot {
                            block: 0,
                            row: ROW_RES,
                        },
                        dest,
                        0,
                        n,
                    )?;
                }
                Ok(model.serial_sub(bits).cycles.get()
                    + serial_copy_overhead(placement, *a, *b, id))
            }
            Node::Shl { x, amount } => {
                let k = *amount as usize;
                let src = placement.slots[x.0];
                self.xbar
                    .preload_zeros(self.blocks[dest.block], dest.row, 0, n * lanes)?;
                self.xbar.copy_row_shifted(
                    RowRef::new(self.blocks[src.block], src.row),
                    RowRef::new(self.blocks[1], ROW_AUX),
                    RowRef::new(self.blocks[dest.block], dest.row),
                    self.span(0, n - k),
                    (k * lanes) as isize,
                )?;
                Ok(2)
            }
            Node::Shr { x, amount } => {
                // The serial backend reads the sign bit through the sense
                // amplifier and writes it back per fill column — per-lane
                // control. The batched form keeps it in-array: NOT the
                // sign lane span into AUX once, then one cross-block NOR
                // per fill column re-complements it into place
                // (3 + k cycles vs. the serial 2 + k).
                let k = *amount as usize;
                let src = placement.slots[x.0];
                self.xbar
                    .preload_zeros(self.blocks[dest.block], dest.row, 0, n * lanes)?;
                self.xbar.copy_row_shifted(
                    RowRef::new(self.blocks[src.block], src.row),
                    RowRef::new(self.blocks[1], ROW_AUX),
                    RowRef::new(self.blocks[dest.block], dest.row),
                    self.span(k, n),
                    -((k * lanes) as isize),
                )?;
                if k > 0 {
                    let sign = self.span(n - 1, n);
                    self.xbar
                        .init_rows(self.blocks[1], &[ROW_AUX], sign.clone())?;
                    self.xbar.nor_rows_shifted(
                        &[RowRef::new(self.blocks[src.block], src.row)],
                        RowRef::new(self.blocks[1], ROW_AUX),
                        sign.clone(),
                        0,
                    )?;
                    for c in n - k..n {
                        let shift = (c as isize - (n as isize - 1)) * lanes as isize;
                        self.xbar.init_rows(
                            self.blocks[dest.block],
                            &[dest.row],
                            self.span(c, c + 1),
                        )?;
                        self.xbar.nor_rows_shifted(
                            &[RowRef::new(self.blocks[1], ROW_AUX)],
                            RowRef::new(self.blocks[dest.block], dest.row),
                            sign.clone(),
                            shift,
                        )?;
                    }
                }
                Ok(2 + if k > 0 { 1 + k as u64 } else { 0 })
            }
            Node::Mul { a, b, mode } => {
                let (mcand, _, cval) = mul_multiplier(dag, *a, *b, *mode);
                let c = cval.expect("compile_batched validated a constant multiplier");
                let shifts = partial_product_shifts(c, mode.masked_multiplier_bits());
                let count = self.place_pps(placement.slots[mcand.0], &shifts, 0)?;
                self.finish_product(count, dest)?;
                Ok(model.multiply_trunc_value(bits, c, *mode).cycles.get()
                    + mul_copy_overhead(bits, count, 0, placement.in_compute(id)))
            }
            Node::Mac { terms, mode } => {
                let mut count = 0usize;
                let mut multipliers = Vec::with_capacity(terms.len());
                for &(ta, tb) in terms {
                    let Node::Const { value } = dag.nodes()[tb.0] else {
                        unreachable!("compile_batched validated constant MAC multipliers")
                    };
                    multipliers.push(value);
                    let shifts = partial_product_shifts(value, mode.masked_multiplier_bits());
                    count += self.place_pps(placement.slots[ta.0], &shifts, count)?;
                }
                self.finish_product(count, dest)?;
                Ok(model
                    .mac_group_value(bits, &multipliers, *mode)
                    .cycles
                    .get()
                    + mul_copy_overhead(bits, count, 0, placement.in_compute(id)))
            }
            Node::Math { .. } => Err(CompileError::InvalidDag(
                "unexpanded math node reached the lane-batched backend".into(),
            )),
        }
    }

    /// Where a serial-netlist (block 0) result lands: the destination row
    /// when it lives in block 0, else the staging RES row plus a copy-out.
    fn serial_out(&self, dest: Slot) -> (usize, bool) {
        if dest.block == 0 {
            (dest.row, false)
        } else {
            (ROW_RES, true)
        }
    }

    /// Generates one multiplicand's partial products into region rows
    /// `t0 + pp_base ..` across all lanes, sharing a single complement NOR
    /// (`1 + shifts.len()` cycles — identical to the serial count; the
    /// shifts come from a compile-time constant, so every lane gets the
    /// same rows).
    fn place_pps(
        &mut self,
        mcand: Slot,
        shifts: &[u32],
        pp_base: usize,
    ) -> Result<usize, CompileError> {
        if shifts.is_empty() {
            return Ok(0);
        }
        let n = self.n;
        let lanes = self.lanes;
        self.xbar
            .init_rows(self.blocks[1], &[self.not_row], self.span(0, n))?;
        self.xbar.nor_rows_shifted(
            &[RowRef::new(self.blocks[mcand.block], mcand.row)],
            RowRef::new(self.blocks[1], self.not_row),
            self.span(0, n),
            0,
        )?;
        for (i, &shift) in shifts.iter().enumerate() {
            let lo = shift as usize;
            let row = self.t0 + pp_base + i;
            self.xbar
                .preload_zeros(self.blocks[0], row, 0, (n + 2) * lanes)?;
            self.xbar
                .init_rows(self.blocks[0], &[row], self.span(lo, n))?;
            self.xbar.nor_rows_shifted(
                &[RowRef::new(self.blocks[1], self.not_row)],
                RowRef::new(self.blocks[0], row),
                self.span(0, n - lo),
                (lo * lanes) as isize,
            )?;
        }
        Ok(shifts.len())
    }

    /// Turns `count` partial products (region rows `t0..`) into the
    /// destination word in every lane: Wallace reduction to two survivors,
    /// then the exact final addition (`relaxed_product_bits == 0` was
    /// enforced at compile time).
    fn finish_product(&mut self, count: usize, dest: Slot) -> Result<(), CompileError> {
        let n = self.n;
        let lanes = self.lanes;
        match count {
            0 => {
                self.xbar
                    .preload_zeros(self.blocks[dest.block], dest.row, 0, n * lanes)?;
                Ok(())
            }
            1 => self.copy_word(
                Slot {
                    block: 0,
                    row: self.t0,
                },
                dest,
                0,
                n,
            ),
            _ => {
                let (survivor_block, survivors) = reduce_rows_to_two_lanes(
                    self.xbar,
                    self.blocks[0],
                    self.blocks[1],
                    count,
                    0..n,
                    lanes,
                    self.t0,
                )?;
                debug_assert_eq!(survivors, 2);
                let si = if survivor_block == self.blocks[0] {
                    0
                } else {
                    1
                };
                let (t0, t1) = (self.t0, self.t0 + 1);
                if si == 0 && dest.block == 0 {
                    add_lanes(
                        self.xbar,
                        survivor_block,
                        t0,
                        t1,
                        dest.row,
                        0..n,
                        lanes,
                        &self.scratch[0],
                    )?;
                } else {
                    add_lanes(
                        self.xbar,
                        survivor_block,
                        t0,
                        t1,
                        ROW_RES,
                        0..n,
                        lanes,
                        &self.scratch[si],
                    )?;
                    self.copy_word(
                        Slot {
                            block: si,
                            row: ROW_RES,
                        },
                        dest,
                        0,
                        n,
                    )?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_logic::PrecisionMode;

    fn bind(pairs: &[(&str, u64)]) -> HashMap<String, u64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    /// x + y - z at width 16, batched across all 64 lanes, checked against
    /// the serial reference per lane.
    #[test]
    fn batched_add_sub_matches_reference_in_every_lane() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let z = dag.input("z").unwrap();
        let s = dag.add(x, y).unwrap();
        let d = dag.sub(s, z).unwrap();
        dag.set_root(d).unwrap();
        let lanes = 64;
        let program = compile_batched(&dag, &CompileOptions::default(), lanes).unwrap();
        let inputs: Vec<HashMap<String, u64>> = (0..lanes as u64)
            .map(|j| {
                bind(&[
                    ("x", (j * 977 + 3) & 0xFFFF),
                    ("y", (j * 1543 + 77) & 0xFFFF),
                    ("z", (j * 401 + 9) & 0xFFFF),
                ])
            })
            .collect();
        let report = program.run(&inputs).unwrap();
        assert!(report.lint.is_clean(), "lint: {}", report.lint);
        assert_eq!(report.values, report.references);
        assert_eq!(report.cycles, report.expected_cycles);
        // The batch costs what one serial instance costs: 12n+1 + 12n+2.
        assert_eq!(report.cycles, (12 * 16 + 1) + (12 * 16 + 2));
    }

    #[test]
    fn batched_cycles_match_the_serial_program() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let c = dag.constant(0b1011);
        let m = dag.mul(x, c, PrecisionMode::Exact).unwrap();
        let s = dag.add(m, x).unwrap();
        let r = dag.shr(s, 3).unwrap();
        dag.set_root(r).unwrap();

        let serial = crate::compile(&dag, &CompileOptions::default()).unwrap();
        let serial_report = serial.run(&bind(&[("x", 1234)])).unwrap();

        let lanes = 8;
        let batched = compile_batched(&dag, &CompileOptions::default(), lanes).unwrap();
        let inputs: Vec<HashMap<String, u64>> = (0..lanes as u64)
            .map(|j| bind(&[("x", 1000 + j * 111)]))
            .collect();
        let report = batched.run(&inputs).unwrap();
        assert_eq!(report.values, report.references);
        assert_eq!(report.cycles, report.expected_cycles);
        // The batched Shr pays one extra cycle (in-array sign fill); all
        // other nodes cost exactly the serial count.
        assert_eq!(report.cycles, serial_report.cycles + 1);
        // Lane 0 of the batch computes the serial lane-0 value.
        assert_eq!(
            report.values[0],
            crate::eval::evaluate(batched.dag(), &inputs[0]).unwrap()
        );
    }

    #[test]
    fn batched_mac_and_shl_run_clean() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let c = dag.constant(3);
        let d = dag.constant(21);
        let m = dag.mac(vec![(x, c), (y, d)], PrecisionMode::Exact).unwrap();
        let l = dag.shl(m, 2).unwrap();
        dag.set_root(l).unwrap();
        let lanes = 16;
        let program = compile_batched(&dag, &CompileOptions::default(), lanes).unwrap();
        let inputs: Vec<HashMap<String, u64>> = (0..lanes as u64)
            .map(|j| bind(&[("x", 500 + j * 31), ("y", 900 + j * 17)]))
            .collect();
        let report = program.run(&inputs).unwrap();
        assert!(report.lint.is_clean(), "lint: {}", report.lint);
        assert_eq!(report.values, report.references);
        assert_eq!(report.cycles, report.expected_cycles);
    }

    #[test]
    fn negative_constants_strength_reduce_and_batch() {
        // A sharpen-style tap: add(x·5, y·(-1)) — strength reduction turns
        // the negative tap into a Sub, leaving only positive constant
        // multipliers, which is exactly what makes workload DAGs batchable.
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let five = dag.constant(5);
        let neg = dag.constant(0xFFFF); // -1 at width 16
        let m1 = dag.mul(x, five, PrecisionMode::Exact).unwrap();
        let m2 = dag.mul(y, neg, PrecisionMode::Exact).unwrap();
        let s = dag.add(m1, m2).unwrap();
        dag.set_root(s).unwrap();
        let lanes = 4;
        let program = compile_batched(&dag, &CompileOptions::default(), lanes).unwrap();
        let inputs: Vec<HashMap<String, u64>> = (0..lanes as u64)
            .map(|j| bind(&[("x", 100 + j), ("y", 7 * j + 1)]))
            .collect();
        let report = program.run(&inputs).unwrap();
        assert_eq!(report.values, report.references);
    }

    #[test]
    fn per_lane_equivalence_proofs_transfer() {
        let mut dag = Dag::new(12).unwrap();
        let x = dag.input("x").unwrap();
        let c = dag.constant(0b101);
        let m = dag.mul(x, c, PrecisionMode::Exact).unwrap();
        let y = dag.input("y").unwrap();
        let s = dag.add(m, y).unwrap();
        dag.set_root(s).unwrap();
        let lanes = 8;
        let program = compile_batched(&dag, &CompileOptions::default(), lanes).unwrap();
        let inputs: Vec<HashMap<String, u64>> = (0..lanes as u64)
            .map(|j| bind(&[("x", (j * 53 + 11) & 0xFFF), ("y", (j * 29 + 5) & 0xFFF)]))
            .collect();
        for lane in [0, 1, lanes - 1] {
            let report = program.verify_equiv_lane(&inputs, lane).unwrap();
            assert!(report.equivalent, "lane {lane}: {}", report.lint);
        }
    }

    #[test]
    fn unsupported_batches_are_rejected_up_front() {
        // Unknown multiplier: per-lane partial-product placement.
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let m = dag.mul(x, y, PrecisionMode::Exact).unwrap();
        dag.set_root(m).unwrap();
        assert!(matches!(
            compile_batched(&dag, &CompileOptions::default(), 4),
            Err(CompileError::BatchUnsupported(_))
        ));

        // Approximate final product: per-lane carry reads.
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let c = dag.constant(7);
        let m = dag
            .mul(x, c, PrecisionMode::LastStage { relax_bits: 4 })
            .unwrap();
        dag.set_root(m).unwrap();
        assert!(matches!(
            compile_batched(&dag, &CompileOptions::default(), 4),
            Err(CompileError::BatchUnsupported(_))
        ));

        // Lane counts outside 1..=64.
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        dag.set_root(x).unwrap();
        for lanes in [0, 65] {
            assert!(matches!(
                compile_batched(&dag, &CompileOptions::default(), lanes),
                Err(CompileError::BatchUnsupported(_))
            ));
        }
    }

    #[test]
    fn binding_count_must_match_lanes() {
        let mut dag = Dag::new(8).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let s = dag.add(x, y).unwrap();
        dag.set_root(s).unwrap();
        let program = compile_batched(&dag, &CompileOptions::default(), 4).unwrap();
        let short: Vec<HashMap<String, u64>> =
            (0..3).map(|j| bind(&[("x", j), ("y", j)])).collect();
        assert!(matches!(
            program.run(&short),
            Err(CompileError::BatchUnsupported(_))
        ));
    }
}
