//! Lowering: expression DAG → controller macro-op trace.
//!
//! Each arithmetic node becomes one [`apim_arch::isa::Op`]; leaves
//! (inputs, constants) are resident data and lower to nothing. The
//! resulting [`Trace`] is what the analytic executor costs and what
//! `apim-serve` schedules — the gate-level backend is its bit-true
//! realization.

use apim_arch::isa::{Op, Trace};
use apim_logic::functional::partial_product_shifts;

use crate::expand::{expand_math, has_math};
use crate::ir::{Dag, Node};
use crate::plan::mul_multiplier;

/// Lowers every arithmetic node of `dag` to a controller macro-op, in id
/// order. Transcendental [`Node::Math`] nodes are expanded into their
/// primitive microkernels first, so the trace reflects what actually runs
/// on the crossbar.
pub fn lower(dag: &Dag) -> Trace {
    if has_math(dag) {
        return lower(&expand_math(dag));
    }
    let bits = dag.width();
    let mut trace = Trace::new();
    for node in dag.nodes() {
        match node {
            Node::Input { .. } | Node::Const { .. } => {}
            Node::Add { .. } => {
                trace.push(Op::Add { bits });
            }
            Node::Sub { .. } => {
                trace.push(Op::Sub { bits });
            }
            Node::Mul { a, b, mode } => {
                let multiplier_ones = match mul_multiplier(dag, *a, *b, *mode) {
                    (_, _, Some(c)) => {
                        Some(partial_product_shifts(c, mode.masked_multiplier_bits()).len() as u32)
                    }
                    _ => None,
                };
                trace.push(Op::MulTrunc {
                    bits,
                    multiplier_ones,
                    mode: *mode,
                });
            }
            Node::Mac { terms, mode } => {
                trace.push(Op::Mac {
                    group: terms.len() as u32,
                    bits,
                    mode: *mode,
                });
            }
            Node::Shl { amount, .. } => {
                trace.push(Op::Shift {
                    bits,
                    amount: *amount as i32,
                });
            }
            Node::Shr { amount, .. } => {
                trace.push(Op::Shift {
                    bits,
                    amount: -(*amount as i32),
                });
            }
            Node::Math { .. } => unreachable!("expanded above"),
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_logic::PrecisionMode;

    #[test]
    fn leaves_lower_to_nothing() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let _c = dag.constant(5);
        dag.set_root(x).unwrap();
        assert!(lower(&dag).is_empty());
    }

    #[test]
    fn const_multiplier_density_is_propagated() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let c = dag.constant(0b1010_0001);
        let m = dag.mul(x, c, PrecisionMode::Exact).unwrap();
        dag.set_root(m).unwrap();
        let trace = lower(&dag);
        assert_eq!(
            trace.ops(),
            &[Op::MulTrunc {
                bits: 16,
                multiplier_ones: Some(3),
                mode: PrecisionMode::Exact,
            }]
        );
    }

    #[test]
    fn shifts_encode_direction_in_the_sign() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let l = dag.shl(x, 3).unwrap();
        let r = dag.shr(l, 12).unwrap();
        dag.set_root(r).unwrap();
        let trace = lower(&dag);
        assert_eq!(
            trace.ops(),
            &[
                Op::Shift {
                    bits: 16,
                    amount: 3
                },
                Op::Shift {
                    bits: 16,
                    amount: -12
                }
            ]
        );
    }

    #[test]
    fn mac_lowers_to_one_fused_op() {
        let mut dag = Dag::new(16).unwrap();
        let x = dag.input("x").unwrap();
        let y = dag.input("y").unwrap();
        let c = dag.constant(3);
        let d = dag.constant(5);
        let m = dag.mac(vec![(x, c), (y, d)], PrecisionMode::Exact).unwrap();
        dag.set_root(m).unwrap();
        let trace = lower(&dag);
        assert_eq!(
            trace.ops(),
            &[Op::Mac {
                group: 2,
                bits: 16,
                mode: PrecisionMode::Exact,
            }]
        );
    }
}
