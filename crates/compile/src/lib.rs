//! Expression-DAG → MAGIC NOR microprogram compiler.
//!
//! The hand-written kernels in `apim-logic` and `apim-workloads` prove the
//! paper's arithmetic *primitives*; this crate closes the loop from
//! *programs* to those primitives. A [`Dag`] describes a fixed-point
//! computation (add/sub/mul/MAC/shift/const over `width`-bit words, each
//! multiplication carrying its own §3.4 [`apim_logic::PrecisionMode`]);
//! [`compile`] maps it onto a [`apim_crossbar::BlockedCrossbar`]:
//!
//! 1. **Lowering** ([`lower()`]) — the DAG becomes an
//!    [`apim_arch::isa::Trace`] of controller macro-ops, costable by the
//!    analytic executor.
//! 2. **Placement** ([`plan`]) — staging, serial-adder scratch and the
//!    Wallace-tree region are reserved in the compute block pair; one row
//!    per live value is register-allocated with last-use recycling, and
//!    values that exceed the block **spill** into the data blocks.
//! 3. **Scheduling** ([`plan::schedule`]) — independent DAG nodes are
//!    list-scheduled across the crossbar's block pairs for the parallel
//!    latency estimate.
//! 4. **Gate-level execution** ([`backend`]) — [`CompiledProgram::run`]
//!    drives the real simulated cells with operation recording armed, then
//!    replays the captured microprogram through **all five**
//!    `apim-verify` hazard passes as a post-condition. A compiled program
//!    that trips a lint is a compiler bug, reported as
//!    [`CompileError::VerificationFailed`].
//!
//! The reference semantics ([`eval`]) are pure-integer and bit-exact
//! against the gate level in every precision mode; the property tests pin
//! the two together over random DAGs.

#![deny(missing_docs)]

pub mod backend;
pub mod batch;
pub mod eval;
pub mod expand;
pub mod ir;
pub mod lower;
pub mod parse;
pub mod plan;

pub use apim_math::{MathFn, MathMode, MathSpec};
pub use backend::{compile, CompileOptions, CompiledProgram, RunReport};
pub use batch::{compile_batched, BatchCompiledProgram, BatchRunReport};
pub use eval::{evaluate, evaluate_all, evaluate_all_with, evaluate_bound};
pub use expand::{expand_math, has_math};
pub use ir::{Dag, Node, NodeId};
pub use lower::lower;
pub use parse::{parse_program, render_program, ParseError, Program};
pub use plan::{place, schedule, BlockSchedule, Placement, Slot};

use apim_crossbar::CrossbarError;

/// Errors from DAG construction, compilation or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The DAG itself is malformed (bad width, dangling operand, …).
    InvalidDag(String),
    /// No root node was designated before compiling/evaluating.
    NoRoot,
    /// A named input has no run-time binding.
    UnboundInput(String),
    /// The program does not fit the crossbar geometry.
    AreaExceeded {
        /// What ran out.
        what: String,
        /// How much the program needs.
        needed: usize,
        /// How much the crossbar offers.
        available: usize,
    },
    /// An underlying crossbar operation failed.
    Crossbar(CrossbarError),
    /// The expression source failed to parse.
    Parse(ParseError),
    /// The compiled microprogram tripped an `apim-verify` hazard pass —
    /// a compiler bug, never a user error.
    VerificationFailed(String),
    /// The DAG (or call) is outside the lane-batched backend's
    /// data-independent-control subset — e.g. a non-constant multiplier or
    /// an approximate final product.
    BatchUnsupported(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::InvalidDag(msg) => write!(f, "invalid DAG: {msg}"),
            CompileError::NoRoot => write!(f, "no root node designated"),
            CompileError::UnboundInput(name) => write!(f, "input '{name}' has no binding"),
            CompileError::AreaExceeded {
                what,
                needed,
                available,
            } => write!(
                f,
                "program exceeds crossbar area: {what} needs {needed}, only {available} available"
            ),
            CompileError::Crossbar(e) => write!(f, "crossbar error: {e}"),
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::VerificationFailed(msg) => {
                write!(f, "compiled microprogram failed hazard verification: {msg}")
            }
            CompileError::BatchUnsupported(msg) => {
                write!(f, "not lane-batchable: {msg}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<CrossbarError> for CompileError {
    fn from(e: CrossbarError) -> Self {
        CompileError::Crossbar(e)
    }
}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}
