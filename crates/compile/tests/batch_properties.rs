//! Differential property suite for the lane-batched backend: a random DAG
//! from the batchable subset (constant multipliers, exact final products)
//! executed at `L` lanes is bit-identical to `L` independent serial runs —
//! on both the packed production backend and the scalar reference oracle —
//! while charging exactly the predicted cycles and passing every hazard
//! lint.

use std::collections::HashMap;

use apim_compile::{compile, compile_batched, CompileOptions, Dag, NodeId};
use apim_crossbar::{Backend, CrossbarConfig};
use apim_logic::PrecisionMode;
use proptest::prelude::*;

/// SplitMix64: one seed → a reproducible stream of choices.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

const MAX_DEPTH: usize = 6;

/// Grows a random DAG inside the lane-batchable subset: multiplications
/// keep one constant operand (so partial-product placement is lane-
/// independent) and products stay exact. Shifts, adds, subs and constant-
/// multiplier MACs are unrestricted.
fn random_batchable_dag(seed: u64, width: u32) -> (Dag, Vec<String>) {
    let mut rng = Rng(seed);
    let mut dag = Dag::new(width).unwrap();
    let n_inputs = 2 + rng.below(3) as usize;
    let mut names = Vec::with_capacity(n_inputs);
    for i in 0..n_inputs {
        let name = format!("x{i}");
        dag.input(&name).unwrap();
        names.push(name);
    }
    // A few constants to multiply by, negatives included so the
    // strength-reduction path is exercised under batching too.
    let consts: Vec<NodeId> = [3u64, 5, (1 << (width / 2)) - 1, (-7i64) as u64]
        .iter()
        .map(|&c| dag.constant(c & dag.mask()))
        .collect();

    // Operand picker biased toward shallow nodes so chains stay legal.
    let pick = |dag: &Dag, rng: &mut Rng, max_depth: usize| -> NodeId {
        for _ in 0..16 {
            let id = NodeId(rng.below(dag.len() as u64) as usize);
            if dag.depth(id) < max_depth {
                return id;
            }
        }
        NodeId(rng.below(n_inputs as u64) as usize) // inputs: depth 0
    };

    let ops = 3 + rng.below(6);
    for _ in 0..ops {
        let a = pick(&dag, &mut rng, MAX_DEPTH);
        match rng.below(6) {
            0 => {
                let b = pick(&dag, &mut rng, MAX_DEPTH);
                dag.add(a, b).unwrap();
            }
            1 => {
                let b = pick(&dag, &mut rng, MAX_DEPTH);
                dag.sub(a, b).unwrap();
            }
            2 => {
                let c = consts[rng.below(consts.len() as u64) as usize];
                dag.mul(a, c, PrecisionMode::Exact).unwrap();
            }
            3 if width <= 16 => {
                let b = pick(&dag, &mut rng, MAX_DEPTH);
                let c1 = consts[rng.below(consts.len() as u64) as usize];
                let c2 = consts[rng.below(consts.len() as u64) as usize];
                dag.mac(vec![(a, c1), (b, c2)], PrecisionMode::Exact)
                    .unwrap();
            }
            4 => {
                dag.shl(a, 1 + rng.below(u64::from(width) - 1) as u32)
                    .unwrap();
            }
            _ => {
                dag.shr(a, 1 + rng.below(u64::from(width) - 1) as u32)
                    .unwrap();
            }
        }
    }
    let root = NodeId(dag.len() - 1);
    dag.set_root(root).unwrap();
    (dag, names)
}

/// One random full-width binding set per lane.
fn lane_bindings(
    rng: &mut Rng,
    names: &[String],
    mask: u64,
    lanes: usize,
) -> Vec<HashMap<String, u64>> {
    (0..lanes)
        .map(|_| {
            names
                .iter()
                .map(|name| (name.clone(), rng.next() & mask))
                .collect()
        })
        .collect()
}

fn options_for(backend: Backend) -> CompileOptions {
    CompileOptions {
        config: CrossbarConfig {
            backend,
            ..CrossbarConfig::default()
        },
        ..CompileOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole's correctness contract: one lane-batched pass over L
    /// random instances equals L serial passes, bit for bit, on both
    /// storage backends, with exact cycle accounting and clean hazards.
    #[test]
    fn lane_batched_runs_equal_n_serial_runs(seed: u64, width_sel in 0usize..3, lane_sel in 0usize..5) {
        let width = [8u32, 16, 32][width_sel];
        let lanes = [2usize, 7, 16, 33, 64][lane_sel];
        let (dag, names) = random_batchable_dag(seed, width);
        let mut rng = Rng(seed ^ 0xA5A5_A5A5);
        let inputs = lane_bindings(&mut rng, &names, dag.mask(), lanes);

        for backend in [Backend::Packed, Backend::Scalar] {
            let options = options_for(backend);
            let batched = compile_batched(&dag, &options, lanes).unwrap();
            let report = batched.run(&inputs).unwrap();
            prop_assert_eq!(report.cycles, report.expected_cycles);
            prop_assert!(report.lint.is_clean(), "lint findings: {}", report.lint);
            let serial = compile(&dag, &options).unwrap();
            for (lane, bindings) in inputs.iter().enumerate() {
                let one = serial.run(bindings).unwrap();
                prop_assert_eq!(
                    report.values[lane], one.value,
                    "{:?} lane {}/{} diverged from its serial run", backend, lane, lanes
                );
                prop_assert_eq!(report.values[lane], report.references[lane]);
            }
        }
    }

    /// Both backends see the *same* batched microprogram: identical values
    /// and identical charged cycles (the backends differ only in storage).
    #[test]
    fn packed_and_scalar_backends_agree_on_batched_programs(seed: u64, lane_sel in 0usize..3) {
        let lanes = [3usize, 16, 64][lane_sel];
        let (dag, names) = random_batchable_dag(seed, 16);
        let mut rng = Rng(seed ^ 0x5A5A_5A5A);
        let inputs = lane_bindings(&mut rng, &names, dag.mask(), lanes);

        let packed = compile_batched(&dag, &options_for(Backend::Packed), lanes)
            .unwrap()
            .run(&inputs)
            .unwrap();
        let scalar = compile_batched(&dag, &options_for(Backend::Scalar), lanes)
            .unwrap()
            .run(&inputs)
            .unwrap();
        prop_assert_eq!(&packed.values, &scalar.values);
        prop_assert_eq!(packed.cycles, scalar.cycles);
        prop_assert_eq!(packed.trace_len, scalar.trace_len);
    }
}
