//! Property tests: compiled transcendental DAGs execute bit-identically
//! on both crossbar backends. The packed backend evaluates 64 lanes per
//! word with bit-parallel NOR; the scalar backend is the per-cell oracle.
//! A compiled CORDIC kernel (~10–20k gate ops) that agrees between the
//! two — value, reference, predicted cycles and clean lints — pins the
//! packed word-level simulation to the cell-level semantics at
//! transcendental scale, not just for the small hand kernels.

use std::collections::HashMap;

use apim_compile::{compile, CompileOptions, Dag, MathFn, MathMode, MathSpec};
use apim_crossbar::{Backend, CrossbarConfig};
use apim_math::reference::domain_samples;
use apim_math::{default_spec, max_log2_segments};
use proptest::prelude::*;

const FUNCS: [MathFn; 3] = [MathFn::Sin, MathFn::Cos, MathFn::Sqrt];

fn spec_for(func: MathFn, width: u32, lut: bool) -> MathSpec {
    let spec = default_spec(func, width);
    if lut {
        let seg = max_log2_segments(func, width, spec.frac).min(3);
        MathSpec {
            mode: MathMode::Lut { log2_segments: seg },
            ..spec
        }
    } else {
        spec
    }
}

proptest! {
    // Each case runs two full gate-level executions of a multi-thousand-op
    // microprogram, so the case count stays small; the input sweep inside
    // each case still covers the domain endpoints and interior.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn packed_and_scalar_backends_agree_on_math_dags(
        func_sel in 0usize..3,
        width in 10u32..=12,
        lut: bool,
        sample_sel in 0usize..7,
    ) {
        let func = FUNCS[func_sel];
        let spec = spec_for(func, width, lut);

        let mut dag = Dag::new(width).unwrap();
        let x = dag.input("x").unwrap();
        let m = dag.math(x, spec).unwrap();
        dag.set_root(m).unwrap();

        let packed = compile(&dag, &CompileOptions::default()).unwrap();
        let scalar_config = CrossbarConfig {
            backend: Backend::Scalar,
            ..CrossbarConfig::default()
        };
        let scalar = compile(
            &dag,
            &CompileOptions { config: scalar_config, ..CompileOptions::default() },
        )
        .unwrap();

        let pattern = domain_samples(func, width, spec.frac, 7)[sample_sel];
        let inputs: HashMap<String, u64> = [("x".to_string(), pattern)].into();
        let p = packed.run(&inputs).unwrap();
        let s = scalar.run(&inputs).unwrap();

        // Bit identity between the word-parallel and per-cell backends,
        // both matching the pure-integer reference...
        prop_assert_eq!(p.value, s.value, "{} w{} x={:#x}", func, width, pattern);
        prop_assert_eq!(p.value, p.reference);
        prop_assert_eq!(s.value, s.reference);
        // ...with identical (and exactly predicted) cycle accounting...
        prop_assert_eq!(p.cycles, s.cycles);
        prop_assert_eq!(p.cycles, p.expected_cycles);
        prop_assert_eq!(s.cycles, s.expected_cycles);
        // ...and hazard-free recorded microprograms on both.
        prop_assert!(p.lint.is_clean(), "packed lint: {}", p.lint);
        prop_assert!(s.lint.is_clean(), "scalar lint: {}", s.lint);
    }
}
