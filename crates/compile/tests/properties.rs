//! Property tests: random expression DAGs compile, execute at the gate
//! level bit-identically to the pure-integer reference evaluator, charge
//! exactly the cycles the compiler predicts, and pass every hazard lint —
//! at widths 8/16/32 and in all three §3.4 precision modes.

use std::collections::HashMap;

use apim_compile::{compile, evaluate, CompileOptions, Dag, NodeId};
use apim_logic::PrecisionMode;
use proptest::prelude::*;

/// SplitMix64: one seed → a reproducible stream of choices.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

const MAX_DEPTH: usize = 6;

/// Grows a random DAG: a handful of leaves, then random ops whose operand
/// depths keep the whole expression within `MAX_DEPTH`.
fn random_dag(seed: u64, width: u32, mode: PrecisionMode) -> (Dag, HashMap<String, u64>) {
    let mut rng = Rng(seed);
    let mut dag = Dag::new(width).unwrap();
    let mut bindings = HashMap::new();
    let n_inputs = 2 + rng.below(3) as usize;
    for i in 0..n_inputs {
        let name = format!("x{i}");
        dag.input(&name).unwrap();
        bindings.insert(name, rng.next() & dag.mask());
    }
    dag.constant(rng.next());
    dag.constant(rng.below(1 << (width / 2)));

    // Operand picker biased toward shallow nodes so chains stay legal.
    let pick = |dag: &Dag, rng: &mut Rng, max_depth: usize| -> NodeId {
        for _ in 0..16 {
            let id = NodeId(rng.below(dag.len() as u64) as usize);
            if dag.depth(id) < max_depth {
                return id;
            }
        }
        NodeId(rng.below(n_inputs as u64) as usize) // inputs: depth 0
    };

    let ops = 3 + rng.below(6);
    for _ in 0..ops {
        let a = pick(&dag, &mut rng, MAX_DEPTH);
        match rng.below(6) {
            0 => {
                let b = pick(&dag, &mut rng, MAX_DEPTH);
                dag.add(a, b).unwrap();
            }
            1 => {
                let b = pick(&dag, &mut rng, MAX_DEPTH);
                dag.sub(a, b).unwrap();
            }
            2 => {
                let b = pick(&dag, &mut rng, MAX_DEPTH);
                dag.mul(a, b, mode).unwrap();
            }
            3 if width <= 16 => {
                // Two unknown multipliers worst-case to 2·width partial
                // products — keep fused MACs narrow so they always fit the
                // default 64-row block.
                let b = pick(&dag, &mut rng, MAX_DEPTH);
                let c = pick(&dag, &mut rng, MAX_DEPTH);
                let d = pick(&dag, &mut rng, MAX_DEPTH);
                dag.mac(vec![(a, b), (c, d)], mode).unwrap();
            }
            4 => {
                dag.shl(a, 1 + rng.below(u64::from(width) - 1) as u32)
                    .unwrap();
            }
            _ => {
                dag.shr(a, 1 + rng.below(u64::from(width) - 1) as u32)
                    .unwrap();
            }
        }
    }
    let root = NodeId(dag.len() - 1);
    dag.set_root(root).unwrap();
    (dag, bindings)
}

fn mode_for(width: u32, sel: u64, bits: u64) -> PrecisionMode {
    match sel {
        0 => PrecisionMode::Exact,
        1 => PrecisionMode::FirstStage {
            masked_bits: (1 + bits % u64::from(width - 1)) as u8,
        },
        _ => PrecisionMode::LastStage {
            relax_bits: (1 + bits % u64::from(width)) as u8,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_dags_execute_bit_identically(seed: u64, width_sel in 0usize..3, mode_sel in 0u64..3, mode_bits: u64) {
        let width = [8u32, 16, 32][width_sel];
        let mode = mode_for(width, mode_sel, mode_bits);
        let (dag, bindings) = random_dag(seed, width, mode);
        let program = compile(&dag, &CompileOptions::default()).unwrap();
        let report = program.run(&bindings).unwrap();
        // The gate level is bit-true to the reference evaluator...
        prop_assert_eq!(report.value, report.reference);
        prop_assert_eq!(report.value, evaluate(program.dag(), &bindings).unwrap());
        // ...the analytic cycle prediction is exact, not approximate...
        prop_assert_eq!(report.cycles, report.expected_cycles);
        // ...and the recorded microprogram is hazard-free.
        prop_assert!(report.lint.is_clean(), "lint findings: {}", report.lint);
    }

    #[test]
    fn strength_reduction_never_changes_results(seed: u64, width_sel in 0usize..3) {
        let width = [8u32, 16, 32][width_sel];
        let (dag, bindings) = random_dag(seed, width, PrecisionMode::Exact);
        let reduced = compile(&dag, &CompileOptions::default()).unwrap();
        let naive = compile(
            &dag,
            &CompileOptions { strength_reduce: false, ..CompileOptions::default() },
        )
        .unwrap();
        let fast = reduced.run(&bindings).unwrap();
        let slow = naive.run(&bindings).unwrap();
        prop_assert_eq!(fast.value, slow.value);
        prop_assert!(fast.cycles <= slow.cycles);
    }
}
