//! The framing contract between a byte stream and a protocol.
//!
//! A [`Framing`] implementation answers one question: given the bytes at
//! the front of a receive buffer, how long is the next complete frame?
//! Everything else — reassembly across arbitrary TCP chunk boundaries,
//! zero-copy hand-out of complete frames, enforcement of the maximum
//! frame length *before* any allocation — lives in
//! [`RecvBuffer`](crate::buffer::RecvBuffer), shared by every protocol.

use std::fmt;

/// Why a byte stream can no longer be framed. Once a peer has produced
/// one of these there is no trustworthy framing left on the connection;
/// callers should answer with a structured protocol error and close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header declares a frame longer than the protocol's cap. The
    /// declared length is reported without ever being allocated.
    TooLarge {
        /// Length the header declared (header + payload).
        declared: u64,
        /// The protocol's hard cap on one frame.
        max: usize,
    },
    /// The header is malformed in a protocol-specific way (bad magic,
    /// unknown version or kind, ...).
    Malformed(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { declared, max } => {
                write!(f, "declared frame length {declared} exceeds cap {max}")
            }
            FrameError::Malformed(detail) => write!(f, "malformed frame header: {detail}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A length-delimited framing: fixed-size header, then a payload whose
/// length the header declares.
pub trait Framing {
    /// Bytes of header needed before [`Framing::frame_len`] can decide.
    fn header_len(&self) -> usize;

    /// Hard cap on one frame (header + payload). A header declaring more
    /// is rejected by the buffer before any allocation happens.
    fn max_frame(&self) -> usize;

    /// Total length (header + payload) of the frame starting at
    /// `header[0]`, given at least [`Framing::header_len`] bytes.
    ///
    /// # Errors
    ///
    /// [`FrameError`] when the header is outside the protocol; the
    /// connection's framing is unrecoverable from that point on.
    fn frame_len(&self, header: &[u8]) -> Result<u64, FrameError>;
}

#[cfg(test)]
pub(crate) mod test_framing {
    use super::*;

    /// Toy framing for unit tests: 2-byte little-endian payload length.
    pub struct LenPrefix {
        pub max: usize,
    }

    impl Framing for LenPrefix {
        fn header_len(&self) -> usize {
            2
        }

        fn max_frame(&self) -> usize {
            self.max
        }

        fn frame_len(&self, header: &[u8]) -> Result<u64, FrameError> {
            let len = u64::from(u16::from_le_bytes([header[0], header[1]]));
            Ok(2 + len)
        }
    }

    /// Encodes one toy frame.
    pub fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + payload.len());
        out.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }
}
