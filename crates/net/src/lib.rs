//! # apim-net — poll-based event-loop I/O core
//!
//! The cluster tier originally ran a thread per connection over blocking
//! TCP: fine for a smoke test, a ceiling for heavy traffic. This crate is
//! the std-only replacement: a small, mio-style readiness layer over
//! nonblocking sockets that lets **one** thread drive thousands of
//! concurrent streams.
//!
//! * [`poll`] — token/interest registration and a readiness scan
//!   ([`Poller`]). With `unsafe` forbidden workspace-wide there is no
//!   `epoll`/`kqueue` binding to call, so readiness is detected with
//!   nonblocking probes (`peek` for readability) and a bounded sleep when
//!   nothing is ready — the *interface* is an event loop's, the syscall
//!   budget is one cheap probe per idle source per tick, and under load
//!   the loop never sleeps at all.
//! * [`timer`] — a hashed [`TimerWheel`] for deadlines, idle sweeps and
//!   backoff: O(1) schedule/cancel, expiry by walking the wheel.
//! * [`buffer`] — [`RecvBuffer`]/[`SendBuffer`]: per-connection byte
//!   buffers. Reads land directly in the receive buffer's tail and
//!   complete frames are handed out as **borrowed slices** of it — the
//!   zero-copy contract that lets a protocol crate parse its
//!   bounds-checked wire types in place, with no intermediate `Vec` per
//!   frame.
//! * [`frame`] — the [`Framing`] trait: a protocol tells the buffer how
//!   long the next frame is (and the hard cap a hostile length prefix
//!   must not exceed); the buffer does the reassembly across arbitrary
//!   TCP chunk boundaries.
//! * [`conn`] — [`Connection`]: one nonblocking stream + both buffers +
//!   close tracking, the per-connection state machine an event loop
//!   iterates.
//!
//! The crate is protocol-agnostic: `apim-cluster` supplies the `APCL`
//! framing and the message semantics on top.

#![deny(missing_docs)]

pub mod buffer;
pub mod conn;
pub mod frame;
pub mod poll;
pub mod timer;

pub use buffer::{RecvBuffer, SendBuffer};
pub use conn::Connection;
pub use frame::{FrameError, Framing};
pub use poll::{Event, Interest, Poller, Token};
pub use timer::{TimerId, TimerWheel};
