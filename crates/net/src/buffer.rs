//! Per-connection byte buffers: reassembly on the way in, queued flushes
//! on the way out.
//!
//! [`RecvBuffer`] owns the bytes a connection has received but not yet
//! consumed. Socket reads land directly in its tail and complete frames
//! are handed out as borrowed slices — the frame is parsed *in place*,
//! never copied into a per-frame `Vec`. The buffer also enforces the
//! framing's maximum frame length before a hostile length prefix can
//! force any allocation.
//!
//! [`SendBuffer`] queues outbound frames as one flat byte run with a
//! flush cursor, so one `write` syscall can carry many pipelined frames
//! and a partial write (`WouldBlock` mid-frame) resumes exactly where it
//! stopped.

use crate::frame::{FrameError, Framing};
use std::io::{self, Read, Write};

/// How many bytes one socket read may append to the receive buffer.
const READ_CHUNK: usize = 64 * 1024;

/// Consumed-prefix size beyond which the buffer compacts itself.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Reassembles length-delimited frames from a byte stream.
#[derive(Debug, Default)]
pub struct RecvBuffer {
    buf: Vec<u8>,
    /// Start of the unconsumed region; bytes before it belong to frames
    /// already handed out.
    start: usize,
}

impl RecvBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        RecvBuffer::default()
    }

    /// Unconsumed bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether no unconsumed bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends bytes arriving out-of-band (tests, replay harnesses). The
    /// socket path is [`RecvBuffer::read_from`].
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.compact_if_due();
        self.buf.extend_from_slice(bytes);
    }

    /// Reads once from `source` directly into the buffer's tail.
    /// Returns the bytes read; `Ok(0)` is end-of-stream.
    ///
    /// # Errors
    ///
    /// Propagates the read error (including `WouldBlock` on a drained
    /// nonblocking socket — callers treat that as "no more for now").
    pub fn read_from(&mut self, source: &mut impl Read) -> io::Result<usize> {
        self.compact_if_due();
        let len = self.buf.len();
        self.buf.resize(len + READ_CHUNK, 0);
        match source.read(&mut self.buf[len..]) {
            Ok(n) => {
                self.buf.truncate(len + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(len);
                Err(e)
            }
        }
    }

    /// Hands out the next complete frame as a borrowed slice of the
    /// buffer, or `None` when more bytes are needed. The slice covers the
    /// whole frame (header included) and stays valid until the next
    /// mutable call.
    ///
    /// # Errors
    ///
    /// [`FrameError`] as soon as the buffered header is outside the
    /// protocol — in particular [`FrameError::TooLarge`] for a hostile
    /// length prefix, raised *before* any allocation for the declared
    /// length.
    pub fn next_frame(&mut self, framing: &impl Framing) -> Result<Option<&[u8]>, FrameError> {
        if self.len() < framing.header_len() {
            return Ok(None);
        }
        let declared = framing.frame_len(&self.buf[self.start..])?;
        if declared > framing.max_frame() as u64 {
            return Err(FrameError::TooLarge {
                declared,
                max: framing.max_frame(),
            });
        }
        let total = declared as usize;
        if self.len() < total {
            return Ok(None);
        }
        let frame = &self.buf[self.start..self.start + total];
        self.start += total;
        Ok(Some(frame))
    }

    /// Drops the consumed prefix when it has grown past the threshold and
    /// memmoves the live tail to the front.
    fn compact_if_due(&mut self) {
        if self.start >= COMPACT_THRESHOLD || self.start >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Queued outbound bytes with a flush cursor.
#[derive(Debug, Default)]
pub struct SendBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl SendBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        SendBuffer::default()
    }

    /// Bytes still waiting to be written.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether any bytes are waiting to be written.
    pub fn wants_write(&self) -> bool {
        self.pending() > 0
    }

    /// Queues one encoded frame (or any byte run) behind whatever is
    /// already waiting.
    pub fn queue(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Writes as much queued data as the sink accepts. Returns `true`
    /// when the queue fully drained; `false` means the sink would block
    /// and the cursor holds the resume position.
    ///
    /// # Errors
    ///
    /// Propagates every error except `WouldBlock`/`Interrupted`, which
    /// are flow control, not failures.
    pub fn flush_to(&mut self, sink: &mut impl Write) -> io::Result<bool> {
        while self.start < self.buf.len() {
            match sink.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => self.start += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            if self.start >= COMPACT_THRESHOLD && self.start == self.buf.len() {
                self.buf.clear();
                self.start = 0;
            }
        }
        self.buf.clear();
        self.start = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::test_framing::{frame, LenPrefix};

    #[test]
    fn frames_reassemble_across_arbitrary_chunks() {
        let framing = LenPrefix { max: 1 << 16 };
        let frames: Vec<Vec<u8>> = vec![
            frame(b"hello"),
            frame(b""),
            frame(&[7u8; 300]),
            frame(b"tail"),
        ];
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        // Feed the stream one byte at a time — the worst chunking.
        let mut recv = RecvBuffer::new();
        let mut got = Vec::new();
        for &byte in &stream {
            recv.push_bytes(&[byte]);
            while let Some(f) = recv.next_frame(&framing).expect("valid stream") {
                got.push(f.to_vec());
            }
        }
        assert_eq!(got, frames);
        assert!(recv.is_empty());
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_buffering_payload() {
        let framing = LenPrefix { max: 128 };
        let mut recv = RecvBuffer::new();
        recv.push_bytes(&u16::MAX.to_le_bytes());
        match recv.next_frame(&framing) {
            Err(FrameError::TooLarge { declared, max }) => {
                assert_eq!(declared, 2 + u64::from(u16::MAX));
                assert_eq!(max, 128);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn partial_header_and_partial_payload_wait_for_more() {
        let framing = LenPrefix { max: 1 << 16 };
        let whole = frame(b"abcdef");
        let mut recv = RecvBuffer::new();
        recv.push_bytes(&whole[..1]);
        assert_eq!(recv.next_frame(&framing).unwrap(), None, "header short");
        recv.push_bytes(&whole[1..4]);
        assert_eq!(recv.next_frame(&framing).unwrap(), None, "payload short");
        recv.push_bytes(&whole[4..]);
        assert_eq!(recv.next_frame(&framing).unwrap(), Some(&whole[..]));
    }

    #[test]
    fn compaction_preserves_the_live_tail() {
        let framing = LenPrefix { max: 1 << 20 };
        let big = frame(&vec![9u8; 40 * 1024]);
        let mut recv = RecvBuffer::new();
        // Consume enough frames to push `start` past the threshold, with a
        // partial frame straddling the compaction point.
        for _ in 0..3 {
            recv.push_bytes(&big);
            assert!(recv.next_frame(&framing).unwrap().is_some());
        }
        let tail = frame(b"straddler");
        recv.push_bytes(&tail[..3]);
        recv.push_bytes(&tail[3..]); // push_bytes compacts here
        assert_eq!(recv.next_frame(&framing).unwrap(), Some(&tail[..]));
        assert!(recv.is_empty());
    }

    /// A sink that accepts at most `cap` bytes per write, then blocks.
    struct Throttled {
        accepted: Vec<u8>,
        cap: usize,
        calls_until_block: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.calls_until_block == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            self.calls_until_block -= 1;
            let n = buf.len().min(self.cap);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn send_buffer_resumes_after_would_block() {
        let mut send = SendBuffer::new();
        send.queue(b"0123456789");
        send.queue(b"abcdef");
        let mut sink = Throttled {
            accepted: Vec::new(),
            cap: 4,
            calls_until_block: 2,
        };
        assert!(!send.flush_to(&mut sink).unwrap(), "blocked mid-queue");
        assert_eq!(sink.accepted, b"01234567");
        assert_eq!(send.pending(), 8);
        sink.calls_until_block = usize::MAX;
        assert!(send.flush_to(&mut sink).unwrap());
        assert_eq!(sink.accepted, b"0123456789abcdef");
        assert!(!send.wants_write());
    }
}
