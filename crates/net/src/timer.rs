//! A hashed timer wheel for connection deadlines, idle sweeps and retry
//! backoff.
//!
//! The wheel hashes each deadline into one of a fixed number of slots by
//! its tick; a slot holds every timer whose deadline lands on that tick
//! modulo the wheel size, each carrying its *absolute* deadline tick so
//! timers more than one lap out are skipped until their lap arrives.
//! Schedule and cancel are O(1) amortised; polling walks only the slots
//! the clock has passed since the previous poll.

use std::time::{Duration, Instant};

/// Slots in the wheel. With 1 ms ticks this is one lap per ~4 s; longer
/// deadlines simply survive laps via their absolute tick.
const WHEEL_SLOTS: usize = 4096;

/// Identifies a scheduled timer so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug)]
struct TimerEntry {
    id: TimerId,
    /// Absolute deadline in ticks since the wheel's epoch.
    deadline_tick: u64,
    /// Opaque payload handed back on expiry (typically a connection
    /// token or request sequence number).
    payload: u64,
}

/// A hashed timer wheel over a monotonic clock.
#[derive(Debug)]
pub struct TimerWheel {
    epoch: Instant,
    tick: Duration,
    /// Last tick up to which expiry has run.
    cursor: u64,
    slots: Vec<Vec<TimerEntry>>,
    next_id: u64,
    live: usize,
}

impl TimerWheel {
    /// A wheel whose resolution is `tick` (deadlines round up to it).
    pub fn new(tick: Duration) -> Self {
        assert!(!tick.is_zero(), "timer wheel tick must be non-zero");
        TimerWheel {
            epoch: Instant::now(),
            tick,
            cursor: 0,
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            next_id: 0,
            live: 0,
        }
    }

    /// Timers currently scheduled and not yet expired or cancelled.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no timers are scheduled.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.epoch);
        // Round up: a timer never fires before its deadline.
        (since.as_nanos().div_ceil(self.tick.as_nanos().max(1))) as u64
    }

    /// Schedules `payload` to expire `after` from `now`, returning a
    /// handle for cancellation.
    pub fn schedule(&mut self, now: Instant, after: Duration, payload: u64) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        let deadline_tick = self.tick_of(now + after).max(self.cursor + 1);
        let slot = (deadline_tick % WHEEL_SLOTS as u64) as usize;
        self.slots[slot].push(TimerEntry {
            id,
            deadline_tick,
            payload,
        });
        self.live += 1;
        id
    }

    /// Cancels a scheduled timer. Returns `true` if it was still pending.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        for slot in &mut self.slots {
            if let Some(pos) = slot.iter().position(|e| e.id == id) {
                slot.swap_remove(pos);
                self.live -= 1;
                return true;
            }
        }
        false
    }

    /// Collects the payloads of every timer whose deadline is at or
    /// before `now`, in deadline order per slot walk.
    pub fn poll(&mut self, now: Instant, expired: &mut Vec<u64>) {
        let now_tick = self.tick_of(now);
        if now_tick <= self.cursor {
            return;
        }
        // Walk at most one full lap; beyond that every slot was visited.
        let span = (now_tick - self.cursor).min(WHEEL_SLOTS as u64);
        for step in 1..=span {
            let tick = self.cursor + step;
            let slot = (tick % WHEEL_SLOTS as u64) as usize;
            let entries = &mut self.slots[slot];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].deadline_tick <= now_tick {
                    let entry = entries.swap_remove(i);
                    expired.push(entry.payload);
                    self.live -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = now_tick;
    }

    /// Time until the earliest pending deadline, or `None` when idle.
    /// Linear in live timers; intended for choosing an idle sleep bound,
    /// where the wheel is small.
    pub fn next_deadline(&self, now: Instant) -> Option<Duration> {
        let mut earliest: Option<u64> = None;
        for slot in &self.slots {
            for entry in slot {
                earliest =
                    Some(earliest.map_or(entry.deadline_tick, |e| e.min(entry.deadline_tick)));
            }
        }
        let tick = earliest?;
        let deadline = self.epoch + self.tick * u32::try_from(tick).unwrap_or(u32::MAX);
        Some(deadline.saturating_duration_since(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_expire_in_order_and_only_once() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1));
        let start = Instant::now();
        wheel.schedule(start, Duration::from_millis(5), 1);
        wheel.schedule(start, Duration::from_millis(2), 2);
        wheel.schedule(start, Duration::from_millis(50), 3);
        let mut expired = Vec::new();
        wheel.poll(start + Duration::from_millis(10), &mut expired);
        expired.sort_unstable();
        assert_eq!(expired, vec![1, 2]);
        assert_eq!(wheel.len(), 1);
        expired.clear();
        wheel.poll(start + Duration::from_millis(10), &mut expired);
        assert!(expired.is_empty(), "no double fire");
        wheel.poll(start + Duration::from_millis(60), &mut expired);
        assert_eq!(expired, vec![3]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn cancel_prevents_expiry() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1));
        let start = Instant::now();
        let keep = wheel.schedule(start, Duration::from_millis(3), 10);
        let drop_ = wheel.schedule(start, Duration::from_millis(3), 11);
        assert!(wheel.cancel(drop_));
        assert!(!wheel.cancel(drop_), "second cancel is a no-op");
        let mut expired = Vec::new();
        wheel.poll(start + Duration::from_millis(10), &mut expired);
        assert_eq!(expired, vec![10]);
        assert!(!wheel.cancel(keep), "already expired");
    }

    #[test]
    fn deadlines_beyond_one_lap_wait_for_their_lap() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1));
        let start = Instant::now();
        // Same slot as a short timer, but one full lap later.
        let lap = Duration::from_millis(WHEEL_SLOTS as u64);
        wheel.schedule(start, Duration::from_millis(7), 1);
        wheel.schedule(start, lap + Duration::from_millis(7), 2);
        let mut expired = Vec::new();
        wheel.poll(start + Duration::from_millis(20), &mut expired);
        assert_eq!(expired, vec![1], "far timer must not fire a lap early");
        expired.clear();
        wheel.poll(start + lap + Duration::from_millis(20), &mut expired);
        assert_eq!(expired, vec![2]);
    }

    #[test]
    fn next_deadline_reports_the_earliest() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1));
        let start = Instant::now();
        assert_eq!(wheel.next_deadline(start), None);
        wheel.schedule(start, Duration::from_millis(40), 1);
        wheel.schedule(start, Duration::from_millis(8), 2);
        let next = wheel.next_deadline(start).expect("timers pending");
        assert!(next <= Duration::from_millis(10), "next {next:?}");
    }
}
