//! One nonblocking connection: stream + receive/send buffers + close
//! tracking.
//!
//! [`Connection`] is the per-socket state machine an event loop iterates:
//! on a readable event call [`Connection::fill`] then drain frames with
//! [`Connection::next_frame`]; to respond, [`Connection::queue_frame`]
//! and [`Connection::flush`]. All methods tolerate `WouldBlock` — the
//! loop simply comes back on the next readiness tick.

use crate::buffer::{RecvBuffer, SendBuffer};
use crate::frame::{FrameError, Framing};
use std::io;
use std::net::TcpStream;

/// A nonblocking TCP connection with buffered, framed I/O.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    recv: RecvBuffer,
    send: SendBuffer,
    closed: bool,
}

impl Connection {
    /// Wraps a stream, switching it to nonblocking with Nagle disabled
    /// (pipelined RPC wants small frames on the wire immediately).
    ///
    /// # Errors
    ///
    /// Propagates `set_nonblocking` failure; a `set_nodelay` failure is
    /// ignored (it is an optimisation, not a correctness requirement).
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            recv: RecvBuffer::new(),
            send: SendBuffer::new(),
            closed: false,
        })
    }

    /// The underlying stream (for poller registration or peer-addr
    /// logging).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads until the socket would block or closes. Returns the bytes
    /// read this call; after EOF the connection is marked closed (any
    /// already-buffered frames remain drainable).
    ///
    /// # Errors
    ///
    /// Real I/O errors (not `WouldBlock`/`Interrupted`) mark the
    /// connection closed and propagate.
    pub fn fill(&mut self) -> io::Result<usize> {
        let mut total = 0;
        loop {
            match self.recv.read_from(&mut self.stream) {
                Ok(0) => {
                    self.closed = true;
                    return Ok(total);
                }
                Ok(n) => total += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(total),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.closed = true;
                    return Err(e);
                }
            }
        }
    }

    /// The next complete buffered frame as a zero-copy slice, or `None`
    /// when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`FrameError`] when the peer's byte stream is no longer framable;
    /// the caller should answer with a protocol error and close.
    pub fn next_frame(&mut self, framing: &impl Framing) -> Result<Option<&[u8]>, FrameError> {
        self.recv.next_frame(framing)
    }

    /// Queues an encoded frame for sending. Call [`Connection::flush`] to
    /// push it onto the wire.
    pub fn queue_frame(&mut self, bytes: &[u8]) {
        self.send.queue(bytes);
    }

    /// Writes queued bytes until drained or the socket would block.
    /// Returns `true` when the send queue is empty.
    ///
    /// # Errors
    ///
    /// Real I/O errors mark the connection closed and propagate.
    pub fn flush(&mut self) -> io::Result<bool> {
        match self.send.flush_to(&mut self.stream) {
            Ok(done) => Ok(done),
            Err(e) => {
                self.closed = true;
                Err(e)
            }
        }
    }

    /// Whether bytes are still queued for sending.
    pub fn wants_write(&self) -> bool {
        self.send.wants_write()
    }

    /// Unconsumed received bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.recv.len()
    }

    /// Whether the peer closed or an I/O error severed the connection.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Marks the connection closed (protocol violation, idle timeout).
    pub fn close(&mut self) {
        self.closed = true;
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::test_framing::{frame, LenPrefix};
    use std::io::Write;
    use std::net::TcpListener;

    fn pair() -> (Connection, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (Connection::new(server).unwrap(), client)
    }

    fn fill_until(conn: &mut Connection, want: usize) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while conn.buffered() < want {
            conn.fill().unwrap();
            assert!(std::time::Instant::now() < deadline, "timed out filling");
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    #[test]
    fn pipelined_frames_arrive_and_replies_flush() {
        let framing = LenPrefix { max: 1 << 16 };
        let (mut conn, mut peer) = pair();
        // Peer pipelines three frames in one write.
        let frames = [frame(b"one"), frame(b"two"), frame(b"three")];
        let stream_bytes: Vec<u8> = frames.iter().flatten().copied().collect();
        peer.write_all(&stream_bytes).unwrap();
        fill_until(&mut conn, stream_bytes.len());
        let mut got = Vec::new();
        while let Some(f) = conn.next_frame(&framing).unwrap() {
            got.push(f.to_vec());
        }
        assert_eq!(got, frames);
        // Reply path.
        conn.queue_frame(&frame(b"ack"));
        assert!(conn.wants_write());
        assert!(conn.flush().unwrap());
        assert!(!conn.wants_write());
        use std::io::Read;
        let mut buf = vec![0u8; 5];
        peer.read_exact(&mut buf).unwrap();
        assert_eq!(buf, frame(b"ack"));
    }

    #[test]
    fn eof_marks_closed_but_buffered_frames_remain() {
        let framing = LenPrefix { max: 1 << 16 };
        let (mut conn, mut peer) = pair();
        let last = frame(b"last words");
        peer.write_all(&last).unwrap();
        drop(peer);
        // Drain until EOF observed.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !conn.is_closed() {
            conn.fill().unwrap();
            assert!(std::time::Instant::now() < deadline);
        }
        assert_eq!(conn.next_frame(&framing).unwrap(), Some(&last[..]));
        assert_eq!(conn.next_frame(&framing).unwrap(), None);
    }
}
