//! Token/interest registration and readiness scanning.
//!
//! [`Poller`] is the mio-shaped core of the event loop: sources register
//! under a [`Token`] with an [`Interest`], and [`Poller::poll`] fills an
//! event list with whichever sources are ready. The workspace forbids
//! `unsafe`, so there is no `epoll`/`kqueue` binding underneath — instead
//! readability is detected with a nonblocking `peek` probe per registered
//! stream and writability is reported whenever it is requested (a
//! nonblocking write then resolves it for real, with `WouldBlock` as the
//! backstop). When nothing is ready the poller sleeps up to the caller's
//! timeout, so an idle loop costs one cheap probe per source per tick and
//! a loaded loop never sleeps at all.

use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Identifies a registered source in readiness events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Which readiness a source wants reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the source has bytes to read (or has hit EOF).
    pub readable: bool,
    /// Report when the caller wants to write; the write itself resolves
    /// actual writability.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The registered source this event concerns.
    pub token: Token,
    /// Bytes are available to read, or the peer closed.
    pub readable: bool,
    /// The source asked for writability; attempt the write.
    pub writable: bool,
}

enum Source {
    /// A probeable TCP stream (kept as a cloned handle; the caller owns
    /// the primary).
    Stream(TcpStream),
    /// A source the poller cannot probe (e.g. a listener): always
    /// reported ready for its interest, letting the caller's nonblocking
    /// accept/read resolve it.
    Always,
}

struct Registration {
    token: Token,
    interest: Interest,
    source: Source,
}

/// A readiness scanner over registered sources.
#[derive(Default)]
pub struct Poller {
    sources: Vec<Registration>,
}

impl Poller {
    /// An empty poller.
    pub fn new() -> Self {
        Poller::default()
    }

    /// Registered source count.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Registers a TCP stream under `token`. The stream is switched to
    /// nonblocking and a probe handle is cloned off; the caller keeps
    /// using its own handle for actual reads and writes.
    ///
    /// # Errors
    ///
    /// Propagates `set_nonblocking`/`try_clone` failures.
    pub fn register_stream(
        &mut self,
        stream: &TcpStream,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        let probe = stream.try_clone()?;
        self.deregister(token);
        self.sources.push(Registration {
            token,
            interest,
            source: Source::Stream(probe),
        });
        Ok(())
    }

    /// Registers a source the poller cannot probe (a listener, a wakeup
    /// slot). It is reported ready on every poll for its interest; the
    /// caller's own nonblocking operation resolves actual readiness.
    pub fn register_always(&mut self, token: Token, interest: Interest) {
        self.deregister(token);
        self.sources.push(Registration {
            token,
            interest,
            source: Source::Always,
        });
    }

    /// Updates the interest of a registered source. Returns `false` when
    /// the token is unknown.
    pub fn set_interest(&mut self, token: Token, interest: Interest) -> bool {
        match self.sources.iter_mut().find(|r| r.token == token) {
            Some(reg) => {
                reg.interest = interest;
                true
            }
            None => false,
        }
    }

    /// Removes a source. Returns `true` when it was registered.
    pub fn deregister(&mut self, token: Token) -> bool {
        match self.sources.iter().position(|r| r.token == token) {
            Some(pos) => {
                self.sources.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    /// Scans all sources, filling `events` with the ready ones. Blocks up
    /// to `timeout` waiting for the first readiness; returns immediately
    /// once anything is ready (or if any `Always` source is registered
    /// with a live interest).
    pub fn poll(&mut self, events: &mut Vec<Event>, timeout: Duration) {
        events.clear();
        let deadline = Instant::now() + timeout;
        loop {
            self.scan(events);
            if !events.is_empty() {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            // Idle: nap briefly, bounded by the remaining timeout.
            let nap = (deadline - now).min(Duration::from_micros(500));
            std::thread::sleep(nap);
        }
    }

    fn scan(&mut self, events: &mut Vec<Event>) {
        let mut probe_buf = [0u8; 1];
        for reg in &self.sources {
            let (mut readable, mut writable) = (false, false);
            match &reg.source {
                Source::Always => {
                    readable = reg.interest.readable;
                    writable = reg.interest.writable;
                }
                Source::Stream(stream) => {
                    if reg.interest.readable {
                        readable = match stream.peek(&mut probe_buf) {
                            Ok(_) => true, // bytes ready, or EOF (peek == 0)
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
                            Err(_) => true, // surface the error via the caller's read
                        };
                    }
                    if reg.interest.writable {
                        writable = true;
                    }
                }
            }
            if readable || writable {
                events.push(Event {
                    token: reg.token,
                    readable,
                    writable,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn stream_becomes_readable_when_peer_writes() {
        let (client, mut server) = pair();
        let mut poller = Poller::new();
        poller
            .register_stream(&client, Token(1), Interest::READABLE)
            .unwrap();
        let mut events = Vec::new();
        poller.poll(&mut events, Duration::from_millis(10));
        assert!(events.is_empty(), "no bytes yet: {events:?}");
        server.write_all(b"x").unwrap();
        poller.poll(&mut events, Duration::from_secs(2));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(1));
        assert!(events[0].readable);
    }

    #[test]
    fn eof_reports_readable() {
        let (client, server) = pair();
        let mut poller = Poller::new();
        poller
            .register_stream(&client, Token(7), Interest::READABLE)
            .unwrap();
        drop(server);
        let mut events = Vec::new();
        poller.poll(&mut events, Duration::from_secs(2));
        assert!(events.iter().any(|e| e.token == Token(7) && e.readable));
    }

    #[test]
    fn interest_and_deregistration_are_respected() {
        let (client, mut server) = pair();
        server.write_all(b"y").unwrap();
        let mut poller = Poller::new();
        poller
            .register_stream(&client, Token(3), Interest::READABLE)
            .unwrap();
        let mut events = Vec::new();
        poller.poll(&mut events, Duration::from_secs(2));
        assert!(!events.is_empty());
        // Drop read interest: pending bytes no longer reported.
        assert!(poller.set_interest(
            Token(3),
            Interest {
                readable: false,
                writable: false
            }
        ));
        poller.poll(&mut events, Duration::from_millis(5));
        assert!(events.is_empty(), "{events:?}");
        assert!(poller.deregister(Token(3)));
        assert!(!poller.deregister(Token(3)));
        assert!(poller.is_empty());
    }

    #[test]
    fn always_sources_report_their_interest() {
        let mut poller = Poller::new();
        poller.register_always(Token(0), Interest::READABLE);
        let mut events = Vec::new();
        poller.poll(&mut events, Duration::from_secs(1));
        assert_eq!(events.len(), 1);
        assert!(events[0].readable && !events[0].writable);
    }

    #[test]
    fn write_interest_is_reported_for_streams() {
        let (client, _server) = pair();
        let mut poller = Poller::new();
        poller
            .register_stream(&client, Token(9), Interest::WRITABLE)
            .unwrap();
        let mut events = Vec::new();
        poller.poll(&mut events, Duration::from_secs(1));
        assert_eq!(events.len(), 1);
        assert!(events[0].writable && !events[0].readable);
    }
}
