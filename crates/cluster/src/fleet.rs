//! Fleet-wide metrics: per-node snapshots plus their exact merge.
//!
//! The aggregator pulls each node's `MetricsSnapshot` over the wire and
//! folds them with [`MetricsSnapshot::merge`], which sums the raw
//! histogram buckets — so the merged p50/p95/p99 are the true quantiles
//! of the union of every node's samples (at bucket resolution), not an
//! average of per-node quantiles.

use apim_serve::MetricsSnapshot;
use std::fmt;

/// One pull across the fleet: per-node snapshots, their merge, and the
/// nodes that could not be reached.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// `(address, snapshot)` for every node that answered.
    pub per_node: Vec<(String, MetricsSnapshot)>,
    /// Every answering node's snapshot merged into one.
    pub merged: MetricsSnapshot,
    /// Addresses that did not answer the pull.
    pub unreachable: Vec<String>,
}

impl FleetSnapshot {
    /// Builds the fleet view by merging the per-node snapshots.
    pub fn merge_from(
        per_node: Vec<(String, MetricsSnapshot)>,
        unreachable: Vec<String>,
    ) -> FleetSnapshot {
        let mut merged = apim_serve::Metrics::default().snapshot();
        for (_, snapshot) in &per_node {
            merged.merge(snapshot);
        }
        FleetSnapshot {
            per_node,
            merged,
            unreachable,
        }
    }
}

impl fmt::Display for FleetSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = |v: Option<u64>| v.map_or_else(|| "nan".into(), |v| v.to_string());
        writeln!(f, "# apim-cluster fleet snapshot")?;
        writeln!(f, "apim_cluster_nodes {}", self.per_node.len())?;
        writeln!(
            f,
            "apim_cluster_nodes_unreachable {}",
            self.unreachable.len()
        )?;
        for (addr, s) in &self.per_node {
            writeln!(
                f,
                "apim_cluster_node{{node=\"{addr}\"}} accepted={} rejected={} completed={} \
                 failed={} p50_us={} p99_us={}",
                s.accepted,
                s.rejected,
                s.completed,
                s.failed,
                us(s.latency_p50_us),
                us(s.latency_p99_us),
            )?;
        }
        let m = &self.merged;
        writeln!(f, "apim_cluster_accepted_total {}", m.accepted)?;
        writeln!(f, "apim_cluster_rejected_total {}", m.rejected)?;
        writeln!(f, "apim_cluster_completed_total {}", m.completed)?;
        writeln!(f, "apim_cluster_failed_total {}", m.failed)?;
        writeln!(f, "apim_cluster_retries_total {}", m.retries)?;
        writeln!(f, "apim_cluster_batches_total {}", m.batches)?;
        writeln!(f, "apim_cluster_queue_depth {}", m.queue_depth)?;
        writeln!(f, "apim_cluster_workers_busy {}", m.workers_busy)?;
        writeln!(f, "apim_cluster_connections_open {}", m.connections_open)?;
        writeln!(f, "apim_cluster_inflight_requests {}", m.inflight_requests)?;
        for (name, v) in [
            ("p50", m.latency_p50_us),
            ("p95", m.latency_p95_us),
            ("p99", m.latency_p99_us),
        ] {
            writeln!(f, "apim_cluster_latency_{name}_us {}", us(v))?;
        }
        write!(
            f,
            "apim_cluster_latency_mean_us {}",
            m.latency_mean_us
                .map_or_else(|| "nan".into(), |v| format!("{v:.1}"))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apim_serve::Metrics;
    use std::time::Duration;

    #[test]
    fn merge_from_two_nodes_reports_union_quantiles() {
        let a = Metrics::default();
        let b = Metrics::default();
        a.accepted.add(10);
        b.accepted.add(20);
        for us in 1..=50u64 {
            a.latency.record(Duration::from_micros(us));
            b.latency.record(Duration::from_micros(us + 50));
        }
        let fleet = FleetSnapshot::merge_from(
            vec![("n0:1".into(), a.snapshot()), ("n1:2".into(), b.snapshot())],
            vec![],
        );
        assert_eq!(fleet.merged.accepted, 30);
        let whole = Metrics::default();
        for us in 1..=100u64 {
            whole.latency.record(Duration::from_micros(us));
        }
        let expected = whole.snapshot();
        assert_eq!(fleet.merged.latency_p50_us, expected.latency_p50_us);
        assert_eq!(fleet.merged.latency_p99_us, expected.latency_p99_us);

        let text = fleet.to_string();
        assert!(text.contains("apim_cluster_nodes 2"), "{text}");
        assert!(text.contains("apim_cluster_accepted_total 30"), "{text}");
        assert!(text.contains("node=\"n0:1\""), "{text}");
        assert!(text.contains("apim_cluster_latency_p99_us"), "{text}");
        assert!(text.contains("apim_cluster_connections_open 0"), "{text}");
        assert!(text.contains("apim_cluster_inflight_requests 0"), "{text}");
    }
}
