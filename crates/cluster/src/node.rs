//! The node daemon: one `apim_serve::Pool` behind a TCP listener.
//!
//! The default transport is an `apim-net` event loop: **one** thread
//! drives every connection through a nonblocking readiness scan, so a
//! connection carries as many pipelined RPCs as the per-connection
//! in-flight cap allows. Frames are reassembled in each connection's
//! receive buffer and parsed in place (no per-frame copy); submits are
//! dispatched to the pool without waiting, and replies are written back
//! in completion order — out-of-order responses are the point, the `seq`
//! correlation id restores the pairing on the client.
//!
//! The pre-event-loop thread-per-connection transport is kept as
//! [`Transport::Blocking`], both as the soak benchmark's baseline and as
//! a debugging fallback. It serves one RPC at a time per connection.
//!
//! Protocol violations (bad magic, hostile length prefix, a client
//! sending server-only kinds) are answered with a structured
//! [`Message::ProtocolError`] frame and the connection is closed: once a
//! peer has sent bytes outside the protocol there is no trustworthy
//! framing left to keep serving on. Well-formed but rejected requests
//! (overload, quota, the per-connection pipeline cap) are answered with
//! structured errors, so admission control crosses the wire intact.

use crate::wire::{self, Message, RecvError, Reply, WireFraming, WireOutput};
use apim_net::{Connection, Interest, Poller, TimerWheel, Token};
use apim_serve::loadgen::output_digest;
use apim_serve::{JobHandle, Pool, PoolConfig, Response, ServeError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a node moves bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// One event-loop thread drives all connections (nonblocking I/O,
    /// multiplexed and pipelined). The default.
    #[default]
    EventLoop,
    /// One thread per connection over blocking I/O, one RPC at a time.
    /// The soak benchmark's baseline.
    Blocking,
}

/// Configuration of a [`Node`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Listen address; port 0 picks a free loopback port (the harness
    /// default).
    pub addr: String,
    /// The serving pool this node wraps.
    pub pool: PoolConfig,
    /// Which transport serves connections.
    pub transport: Transport,
    /// Per-connection cap on pipelined in-flight requests; submits beyond
    /// it are answered with [`ServeError::Overloaded`] instead of queued
    /// without bound. Ignored by [`Transport::Blocking`], which is capped
    /// at one by construction.
    pub max_inflight_per_conn: usize,
    /// Close a connection after this long without traffic (event loop
    /// only). `None` keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            addr: "127.0.0.1:0".into(),
            pool: PoolConfig::default(),
            transport: Transport::EventLoop,
            max_inflight_per_conn: 256,
            idle_timeout: None,
        }
    }
}

struct NodeInner {
    pool: Pool,
    stop: AtomicBool,
    /// Clones of every live connection (blocking transport only), kept so
    /// shutdown/kill can unblock handler threads parked in blocking reads.
    conns: Mutex<Vec<TcpStream>>,
}

/// A running node daemon. Dropping the handle without calling
/// [`Node::shutdown`] or [`Node::kill`] kills the node abruptly.
pub struct Node {
    addr: SocketAddr,
    inner: Arc<NodeInner>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node").field("addr", &self.addr).finish()
    }
}

impl Node {
    /// Binds the listener, spawns the pool and the transport thread(s).
    ///
    /// # Errors
    ///
    /// Propagates bind failures and invalid pool configurations (the
    /// latter as [`io::ErrorKind::InvalidInput`]).
    pub fn spawn(config: NodeConfig) -> io::Result<Node> {
        let pool = Pool::new(config.pool.clone())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(NodeInner {
            pool,
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_inner = Arc::clone(&inner);
        let accept_handlers = Arc::clone(&handlers);
        let accept_thread = match config.transport {
            Transport::EventLoop => {
                let max_inflight = config.max_inflight_per_conn.max(1);
                let idle_timeout = config.idle_timeout;
                std::thread::Builder::new()
                    .name(format!("apim-node-loop-{addr}"))
                    .spawn(move || {
                        event_loop(&listener, &accept_inner, max_inflight, idle_timeout);
                    })?
            }
            Transport::Blocking => std::thread::Builder::new()
                .name(format!("apim-node-accept-{addr}"))
                .spawn(move || accept_loop(&listener, &accept_inner, &accept_handlers))?,
        };
        Ok(Node {
            addr,
            inner,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's live metrics registry (also served over the wire).
    pub fn metrics(&self) -> &apim_serve::Metrics {
        self.inner.pool.metrics()
    }

    /// Graceful stop: finish the pool's backlog, let the transport write
    /// out pending replies, close connections, join every thread. Clients
    /// should quiesce first; replies racing the close may be cut off.
    pub fn shutdown(mut self) {
        self.inner.pool.drain();
        // The backlog's responses are filled; give the transport a window
        // to harvest them onto the wire before severing.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.inner.pool.metrics().inflight_requests.get() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(10));
        self.stop_threads();
    }

    /// Abrupt stop for failover testing: connections are severed
    /// immediately, mid-flight RPCs and all. Clients observe transport
    /// errors and must retry elsewhere.
    pub fn kill(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for conn in self.inner.conns.lock().expect("conn list").drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        let handlers: Vec<_> = self
            .handlers
            .lock()
            .expect("handler list")
            .drain(..)
            .collect();
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_threads();
        }
    }
}

/// Reduces a pool [`Response`] to its wire reply.
fn reply_of(response: &Response) -> Reply {
    Reply {
        tenant: response.tenant,
        attempts: response.attempts,
        latency_us: u64::try_from(response.latency.as_micros()).unwrap_or(u64::MAX),
        result: response
            .result
            .as_ref()
            .map(|output| WireOutput {
                digest: output_digest(output),
                summary: output.summary(),
            })
            .map_err(Clone::clone),
    }
}

/// A rejection reply carrying a structured error, no execution attempted.
fn rejection(seq: u64, tenant: apim_serve::TenantId, error: ServeError) -> Message {
    Message::Reply {
        seq,
        reply: Reply {
            tenant,
            attempts: 0,
            latency_us: 0,
            result: Err(error),
        },
    }
}

// ---------------------------------------------------------------------------
// Event-loop transport
// ---------------------------------------------------------------------------

/// Per-connection state the event loop iterates.
struct ConnState {
    conn: Connection,
    /// Pipelined submits dispatched to the pool and not yet answered on
    /// the wire, as `(seq, handle)` pairs.
    pending: Vec<(u64, JobHandle)>,
    last_activity: Instant,
}

/// The resolution of the idle-sweep timer wheel.
const WHEEL_TICK: Duration = Duration::from_millis(10);

fn event_loop(
    listener: &TcpListener,
    inner: &Arc<NodeInner>,
    max_inflight: usize,
    idle_timeout: Option<Duration>,
) {
    let framing = WireFraming;
    let metrics = inner.pool.metrics();
    let mut poller = Poller::new();
    let mut events = Vec::new();
    let mut wheel = TimerWheel::new(WHEEL_TICK);
    let mut expired: Vec<u64> = Vec::new();
    // Connection slab: the slot index is the poller token.
    let mut slots: Vec<Option<ConnState>> = Vec::new();
    while !inner.stop.load(Ordering::SeqCst) {
        // Accept everything waiting, then fall through to the scan so a
        // connect-then-send burst is served in one iteration.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let Ok(conn) = Connection::new(stream) else {
                        continue;
                    };
                    let token = slots.iter().position(Option::is_none).unwrap_or_else(|| {
                        slots.push(None);
                        slots.len() - 1
                    });
                    if poller
                        .register_stream(conn.stream(), Token(token), Interest::READABLE)
                        .is_err()
                    {
                        slots[token] = None;
                        continue;
                    }
                    metrics.connections_open.inc();
                    let now = Instant::now();
                    if let Some(idle) = idle_timeout {
                        wheel.schedule(now, idle, token as u64);
                    }
                    slots[token] = Some(ConnState {
                        conn,
                        pending: Vec::new(),
                        last_activity: now,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => return,
            }
        }
        // Readiness scan. With replies pending the timeout stays short so
        // completions reach the wire quickly; an idle node naps longer.
        let busy = slots
            .iter()
            .flatten()
            .any(|s| !s.pending.is_empty() || s.conn.wants_write());
        let timeout = if busy {
            Duration::from_micros(200)
        } else {
            Duration::from_millis(2)
        };
        poller.poll(&mut events, timeout);
        for event in &events {
            let Some(state) = slots.get_mut(event.token.0).and_then(Option::as_mut) else {
                continue;
            };
            if !event.readable {
                continue;
            }
            if state.conn.fill().is_ok() {
                state.last_activity = Instant::now();
            }
            drain_frames(state, inner, max_inflight, &framing);
        }
        // Harvest completions: any pipelined submit whose response is
        // ready gets its reply queued, in completion order.
        for state in slots.iter_mut().flatten() {
            let mut i = 0;
            while i < state.pending.len() {
                if let Some(response) = state.pending[i].1.try_wait() {
                    let (seq, _) = state.pending.swap_remove(i);
                    state.conn.queue_frame(&wire::encode_frame(&Message::Reply {
                        seq,
                        reply: reply_of(&response),
                    }));
                    metrics.inflight_requests.dec();
                } else {
                    i += 1;
                }
            }
            if state.conn.wants_write() && !state.conn.is_closed() {
                let _ = state.conn.flush();
            }
        }
        // Idle sweep.
        expired.clear();
        wheel.poll(Instant::now(), &mut expired);
        for &payload in &expired {
            let token = payload as usize;
            let Some(idle) = idle_timeout else { continue };
            let Some(state) = slots.get_mut(token).and_then(Option::as_mut) else {
                continue;
            };
            let quiet = state.last_activity.elapsed();
            if quiet >= idle && state.pending.is_empty() {
                state.conn.close();
            } else {
                // Active (or mid-request): re-arm for the remaining window.
                wheel.schedule(
                    Instant::now(),
                    idle.saturating_sub(quiet).max(WHEEL_TICK),
                    payload,
                );
            }
        }
        // Reap severed connections; their in-flight work is abandoned
        // (the pool still answers the handles, nobody is listening).
        for slot in &mut slots {
            let closed = slot.as_ref().is_some_and(|s| s.conn.is_closed());
            if closed {
                let state = slot.take().expect("checked above");
                for _ in &state.pending {
                    metrics.inflight_requests.dec();
                }
                metrics.connections_open.dec();
            }
        }
        let live: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect();
        // Deregister tokens whose slots emptied this iteration.
        for token in 0..slots.len() {
            if !live.contains(&token) {
                poller.deregister(Token(token));
            }
        }
    }
    // Loop exit: drop the slab, closing every socket.
    for state in slots.into_iter().flatten() {
        for _ in &state.pending {
            metrics.inflight_requests.dec();
        }
        metrics.connections_open.dec();
    }
}

/// Pulls every complete frame out of the connection's receive buffer and
/// handles it. A framing error answers with [`Message::ProtocolError`]
/// and closes.
fn drain_frames(
    state: &mut ConnState,
    inner: &Arc<NodeInner>,
    max_inflight: usize,
    framing: &WireFraming,
) {
    loop {
        let message = match state.conn.next_frame(framing) {
            Ok(Some(frame)) => match wire::decode_frame(frame) {
                Ok((message, _consumed)) => message,
                Err(e) => {
                    protocol_error(state, &e.to_string());
                    return;
                }
            },
            Ok(None) => return,
            Err(e) => {
                protocol_error(state, &e.to_string());
                return;
            }
        };
        state.last_activity = Instant::now();
        handle_message(state, inner, max_inflight, message);
        if state.conn.is_closed() {
            return;
        }
    }
}

/// Best-effort structured goodbye: queue the error frame, try one flush,
/// close.
fn protocol_error(state: &mut ConnState, detail: &str) {
    state
        .conn
        .queue_frame(&wire::encode_frame(&Message::ProtocolError {
            detail: detail.to_string(),
        }));
    let _ = state.conn.flush();
    state.conn.close();
}

fn handle_message(
    state: &mut ConnState,
    inner: &Arc<NodeInner>,
    max_inflight: usize,
    message: Message,
) {
    let metrics = inner.pool.metrics();
    match message {
        Message::Submit { seq, request } => {
            let tenant = request.tenant;
            if state.pending.len() >= max_inflight {
                // Pipeline backpressure: same shape as pool admission
                // rejection, so clients treat it identically (and never
                // fail over on it).
                metrics.rejected.inc();
                metrics.tenant(tenant.0).rejected.inc();
                state.conn.queue_frame(&wire::encode_frame(&rejection(
                    seq,
                    tenant,
                    ServeError::Overloaded {
                        depth: state.pending.len(),
                    },
                )));
            } else {
                match inner.pool.submit(request) {
                    Ok(handle) => {
                        metrics.inflight_requests.inc();
                        state.pending.push((seq, handle));
                    }
                    Err(error) => {
                        state
                            .conn
                            .queue_frame(&wire::encode_frame(&rejection(seq, tenant, error)));
                    }
                }
            }
        }
        Message::Ping { nonce } => {
            state.conn.queue_frame(&wire::encode_frame(&Message::Pong {
                nonce,
                workers: u32::try_from(inner.pool.config().workers).unwrap_or(u32::MAX),
                queue_depth: inner.pool.queue_depth() as u64,
            }));
        }
        Message::MetricsPull { seq } => {
            state
                .conn
                .queue_frame(&wire::encode_frame(&Message::Metrics {
                    seq,
                    snapshot: inner.pool.metrics().snapshot(),
                }));
        }
        // Clients never send server-only kinds; a peer that does is broken.
        Message::Reply { .. } | Message::Pong { .. } | Message::Metrics { .. } => {
            protocol_error(state, "client sent a server-only message kind");
        }
        // The peer told us our bytes confused it; nothing to answer.
        Message::ProtocolError { .. } => state.conn.close(),
    }
}

// ---------------------------------------------------------------------------
// Blocking (thread-per-connection) transport — the soak baseline
// ---------------------------------------------------------------------------

fn accept_loop(
    listener: &TcpListener,
    inner: &Arc<NodeInner>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    inner.conns.lock().expect("conn list").push(clone);
                }
                let conn_inner = Arc::clone(inner);
                let spawned = std::thread::Builder::new()
                    .name(format!("apim-node-conn-{peer}"))
                    .spawn(move || {
                        conn_inner.pool.metrics().connections_open.inc();
                        handle_connection(stream, &conn_inner);
                        conn_inner.pool.metrics().connections_open.dec();
                    });
                if let Ok(handle) = spawned {
                    handlers.lock().expect("handler list").push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(mut stream: TcpStream, inner: &Arc<NodeInner>) {
    loop {
        let message = match wire::read_message(&mut stream) {
            Ok(message) => message,
            // Protocol violation: say why before hanging up. The decoder
            // guarantees malformed bytes land here as structured errors
            // rather than panics (a hostile length prefix included).
            Err(RecvError::Wire(e)) => {
                let _ = wire::write_message(
                    &mut stream,
                    &Message::ProtocolError {
                        detail: e.to_string(),
                    },
                );
                return;
            }
            Err(RecvError::Io(_)) => return,
        };
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let metrics = inner.pool.metrics();
        let answer = match message {
            Message::Submit { seq, request } => {
                let tenant = request.tenant;
                match inner.pool.submit(request) {
                    Ok(handle) => {
                        metrics.inflight_requests.inc();
                        let response = handle.wait();
                        metrics.inflight_requests.dec();
                        Message::Reply {
                            seq,
                            reply: reply_of(&response),
                        }
                    }
                    Err(error) => rejection(seq, tenant, error),
                }
            }
            Message::Ping { nonce } => Message::Pong {
                nonce,
                workers: u32::try_from(inner.pool.config().workers).unwrap_or(u32::MAX),
                queue_depth: inner.pool.queue_depth() as u64,
            },
            Message::MetricsPull { seq } => Message::Metrics {
                seq,
                snapshot: inner.pool.metrics().snapshot(),
            },
            // Clients never send server-only kinds; a peer that does is
            // broken, and the connection closes with a structured goodbye.
            Message::Reply { .. } | Message::Pong { .. } | Message::Metrics { .. } => {
                let _ = wire::write_message(
                    &mut stream,
                    &Message::ProtocolError {
                        detail: "client sent a server-only message kind".into(),
                    },
                );
                return;
            }
            Message::ProtocolError { .. } => return,
        };
        if wire::write_message(&mut stream, &answer).is_err() {
            return;
        }
    }
}
