//! The node daemon: one `apim_serve::Pool` behind a TCP listener.
//!
//! Each accepted connection gets a handler thread that decodes frames,
//! submits work to the pool and writes replies back on the same
//! connection. A connection carries one RPC at a time — the router holds
//! a small pool of connections per node and checks one out per in-flight
//! request, so node-side concurrency equals the client's connection
//! count, with zero correlation bookkeeping on the hot path.
//!
//! Malformed frames close the connection: once a peer has sent bytes
//! outside the protocol there is no trustworthy framing left to answer
//! on. Well-formed but rejected requests (overload, quota) are answered
//! with structured errors, so admission control crosses the wire intact.

use crate::wire::{self, Message, RecvError, Reply, WireOutput};
use apim_serve::loadgen::output_digest;
use apim_serve::{Pool, PoolConfig, Response};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a [`Node`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Listen address; port 0 picks a free loopback port (the harness
    /// default).
    pub addr: String,
    /// The serving pool this node wraps.
    pub pool: PoolConfig,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            addr: "127.0.0.1:0".into(),
            pool: PoolConfig::default(),
        }
    }
}

struct NodeInner {
    pool: Pool,
    stop: AtomicBool,
    /// Clones of every live connection, kept so shutdown/kill can unblock
    /// handler threads parked in blocking reads.
    conns: Mutex<Vec<TcpStream>>,
}

/// A running node daemon. Dropping the handle without calling
/// [`Node::shutdown`] or [`Node::kill`] kills the node abruptly.
pub struct Node {
    addr: SocketAddr,
    inner: Arc<NodeInner>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node").field("addr", &self.addr).finish()
    }
}

impl Node {
    /// Binds the listener, spawns the pool and the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and invalid pool configurations (the
    /// latter as [`io::ErrorKind::InvalidInput`]).
    pub fn spawn(config: NodeConfig) -> io::Result<Node> {
        let pool = Pool::new(config.pool)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(NodeInner {
            pool,
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_inner = Arc::clone(&inner);
        let accept_handlers = Arc::clone(&handlers);
        let accept_thread = std::thread::Builder::new()
            .name(format!("apim-node-accept-{addr}"))
            .spawn(move || accept_loop(&listener, &accept_inner, &accept_handlers))?;
        Ok(Node {
            addr,
            inner,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's live metrics registry (also served over the wire).
    pub fn metrics(&self) -> &apim_serve::Metrics {
        self.inner.pool.metrics()
    }

    /// Graceful stop: refuse new connections, finish the pool's backlog,
    /// close connections, join every thread. Clients should quiesce first;
    /// replies racing the close may be cut off.
    pub fn shutdown(mut self) {
        self.inner.pool.drain();
        self.stop_threads();
    }

    /// Abrupt stop for failover testing: connections are severed
    /// immediately, mid-flight RPCs and all. Clients observe transport
    /// errors and must retry elsewhere.
    pub fn kill(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for conn in self.inner.conns.lock().expect("conn list").drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        let handlers: Vec<_> = self
            .handlers
            .lock()
            .expect("handler list")
            .drain(..)
            .collect();
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_threads();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    inner: &Arc<NodeInner>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    inner.conns.lock().expect("conn list").push(clone);
                }
                let conn_inner = Arc::clone(inner);
                let spawned = std::thread::Builder::new()
                    .name(format!("apim-node-conn-{peer}"))
                    .spawn(move || handle_connection(stream, &conn_inner));
                if let Ok(handle) = spawned {
                    handlers.lock().expect("handler list").push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Reduces a pool [`Response`] to its wire reply.
fn reply_of(response: &Response) -> Reply {
    Reply {
        tenant: response.tenant,
        attempts: response.attempts,
        latency_us: u64::try_from(response.latency.as_micros()).unwrap_or(u64::MAX),
        result: response
            .result
            .as_ref()
            .map(|output| WireOutput {
                digest: output_digest(output),
                summary: output.summary(),
            })
            .map_err(Clone::clone),
    }
}

fn handle_connection(mut stream: TcpStream, inner: &Arc<NodeInner>) {
    loop {
        let message = match wire::read_message(&mut stream) {
            Ok(message) => message,
            // Transport failure or protocol violation: the framing can no
            // longer be trusted, so the connection ends here. The decoder
            // guarantees malformed bytes land in this arm as structured
            // errors rather than panics.
            Err(RecvError::Io(_) | RecvError::Wire(_)) => return,
        };
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let answer = match message {
            Message::Submit { seq, request } => {
                let tenant = request.tenant;
                match inner.pool.submit(request) {
                    Ok(handle) => Message::Reply {
                        seq,
                        reply: reply_of(&handle.wait()),
                    },
                    Err(error) => Message::Reply {
                        seq,
                        reply: Reply {
                            tenant,
                            attempts: 0,
                            latency_us: 0,
                            result: Err(error),
                        },
                    },
                }
            }
            Message::Ping { nonce } => Message::Pong {
                nonce,
                workers: u32::try_from(inner.pool.config().workers).unwrap_or(u32::MAX),
                queue_depth: inner.pool.queue_depth() as u64,
            },
            Message::MetricsPull => Message::Metrics {
                snapshot: inner.pool.metrics().snapshot(),
            },
            // Clients never send Reply/Pong/Metrics; a peer that does is
            // broken, and the connection closes.
            Message::Reply { .. } | Message::Pong { .. } | Message::Metrics { .. } => return,
        };
        if wire::write_message(&mut stream, &answer).is_err() {
            return;
        }
    }
}
